#include "durability/recovery.hpp"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <utility>
#include <vector>

#include "core/binary_io.hpp"
#include "core/error.hpp"
#include "durability/checkpoint.hpp"
#include "obs/obs.hpp"
#include "opt/rle.hpp"

namespace dbp::durability {

namespace {

/// Checkpoint payload mode byte (first byte of every payload).
constexpr std::uint8_t kModeDispatcher =
    static_cast<std::uint8_t>(DurableMode::kDispatcher);
constexpr std::uint8_t kModeSimulation =
    static_cast<std::uint8_t>(DurableMode::kSimulation);

std::string journal_path(const DurabilityConfig& config) {
  return config.dir + "/" + kJournalFileName;
}

void write_packer_options(ByteWriter& out, const PackerOptions& options) {
  out.f64(options.mff_k);
  out.f64(options.known_mu);
  out.u64(static_cast<std::uint64_t>(options.harmonic_classes));
  out.u64(options.seed);
}

PackerOptions read_packer_options(ByteReader& in) {
  PackerOptions options;
  options.mff_k = in.f64();
  options.known_mu = in.f64();
  const std::uint64_t classes = in.u64();
  if (classes > 1'000'000) {
    throw CorruptionError("implausible harmonic class count in checkpoint");
  }
  options.harmonic_classes = static_cast<int>(classes);
  options.seed = in.u64();
  return options;
}

void write_fault_policy(ByteWriter& out, const FaultPolicy& policy) {
  out.u8(static_cast<std::uint8_t>(policy.on_anomaly));
  out.f64(policy.rental_failure_rate);
  out.u64(static_cast<std::uint64_t>(policy.max_rental_retries));
  out.f64(policy.backoff_base_minutes);
  out.u64(policy.max_fleet_servers);
  out.u64(policy.seed);
}

FaultPolicy read_fault_policy(ByteReader& in) {
  FaultPolicy policy;
  const std::uint8_t action = in.u8();
  if (action > static_cast<std::uint8_t>(
                   FaultPolicy::AnomalyAction::kDropAndCount)) {
    throw CorruptionError("invalid anomaly action in checkpoint");
  }
  policy.on_anomaly = static_cast<FaultPolicy::AnomalyAction>(action);
  policy.rental_failure_rate = in.f64();
  const std::uint64_t retries = in.u64();
  if (retries > 1'000'000) {
    throw CorruptionError("implausible rental retry count in checkpoint");
  }
  policy.max_rental_retries = static_cast<int>(retries);
  policy.backoff_base_minutes = in.f64();
  policy.max_fleet_servers = in.u64();
  policy.seed = in.u64();
  return policy;
}

}  // namespace

void DurabilityConfig::validate() const {
  DBP_REQUIRE(!dir.empty(), "durability directory must be set");
  DBP_REQUIRE(keep_checkpoints >= 1, "must keep at least one checkpoint");
  DBP_REQUIRE(flush_every >= 1, "flush cadence must be at least 1");
}

namespace detail {

StreamCore::StreamCore(DurabilityConfig cfg) : config(std::move(cfg)) {
  config.validate();
  std::error_code ec;
  std::filesystem::create_directories(config.dir, ec);
  if (ec) throw IoError("cannot create durability directory: " + config.dir);
}

void StreamCore::open_fresh_journal() {
  journal = std::make_unique<JournalWriter>(journal_path(config),
                                            config.stream_id);
}

void StreamCore::open_resumed_journal(std::uint64_t resume_offset) {
  journal = std::make_unique<JournalWriter>(journal_path(config),
                                            config.stream_id, resume_offset);
}

void StreamCore::journal_event(JournalEventKind kind, Time time,
                               std::uint64_t subject, double size) {
  JournalEvent event;
  event.seq = next_seq;
  event.kind = kind;
  event.time = time;
  event.subject = subject;
  event.size = size;
  journal->append(event);
  if (++unflushed >= config.flush_every) {
    journal->flush();
    unflushed = 0;
  }
  ++next_seq;
}

bool StreamCore::checkpoint_due() const {
  return config.checkpoint_every > 0 && next_seq > 0 &&
         next_seq % config.checkpoint_every == 0;
}

void StreamCore::commit_checkpoint(std::vector<std::uint8_t> payload) {
  // The journal must be durable through the checkpoint's position before
  // the checkpoint lands, or a crash right after the rename could leave a
  // checkpoint that claims events the journal never recorded. (During
  // bootstrap the journal does not exist yet and next_seq is 0.)
  if (journal) {
    journal->flush();
    unflushed = 0;
  }
  CheckpointData data;
  data.stream_id = config.stream_id;
  data.next_seq = next_seq;
  data.payload = std::move(payload);
  write_checkpoint(config.dir, data);
  prune_checkpoints(config.dir, config.keep_checkpoints);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// DurableDispatcher

DurableDispatcher::DurableDispatcher(const DurabilityConfig& config,
                                     const ServerSpec& spec,
                                     const std::string& algorithm,
                                     const PackerOptions& options,
                                     const FaultPolicy& policy)
    : core_(config),
      spec_(spec),
      algorithm_(algorithm),
      options_(options),
      policy_(policy),
      dispatcher_(spec, algorithm, options, policy) {
  DBP_REQUIRE(dispatcher_.snapshot_supported(),
              "algorithm cannot run durably (no snapshot support): " +
                  algorithm);
  // Checkpoint 0 before the journal exists: recovery can always fall back
  // to "nothing happened yet" even if the very first record never lands.
  core_.commit_checkpoint(checkpoint_payload());
  core_.open_fresh_journal();
}

DurableDispatcher::DurableDispatcher(RecoveredTag, DurabilityConfig config,
                                     ServerSpec spec, std::string algorithm,
                                     PackerOptions options, FaultPolicy policy)
    : core_(std::move(config)),
      spec_(spec),
      algorithm_(std::move(algorithm)),
      options_(options),
      policy_(policy),
      dispatcher_(spec_, algorithm_, options_, policy_) {}

std::vector<std::uint8_t> DurableDispatcher::checkpoint_payload() const {
  ByteWriter out;
  out.u8(kModeDispatcher);
  out.f64(spec_.gpu_capacity);
  out.f64(spec_.price_per_hour);
  out.str(algorithm_);
  write_packer_options(out, options_);
  write_fault_policy(out, policy_);
  dispatcher_.save_state(out);
  return out.take();
}

BinId DurableDispatcher::start_session(std::uint64_t session_id,
                                       double gpu_fraction, Time now_minutes) {
  core_.journal_event(JournalEventKind::kStartSession, now_minutes, session_id,
                      gpu_fraction);
  const BinId server =
      dispatcher_.start_session(session_id, gpu_fraction, now_minutes);
  maybe_checkpoint();
  return server;
}

void DurableDispatcher::end_session(std::uint64_t session_id,
                                    Time now_minutes) {
  core_.journal_event(JournalEventKind::kEndSession, now_minutes, session_id,
                      0.0);
  dispatcher_.end_session(session_id, now_minutes);
  maybe_checkpoint();
}

std::size_t DurableDispatcher::fail_server(BinId server, Time now_minutes) {
  core_.journal_event(JournalEventKind::kFailServer, now_minutes, server, 0.0);
  const std::size_t redispatched =
      dispatcher_.fail_server(server, now_minutes);
  maybe_checkpoint();
  return redispatched;
}

void DurableDispatcher::checkpoint_now() {
  core_.commit_checkpoint(checkpoint_payload());
}

void DurableDispatcher::flush() {
  core_.journal->flush();
  core_.unflushed = 0;
}

void DurableDispatcher::maybe_checkpoint() {
  if (core_.checkpoint_due()) checkpoint_now();
}

void DurableDispatcher::apply_replayed(const JournalEvent& event) {
  // Under AnomalyAction::kThrow a rejected event raises DispatchError AFTER
  // the rejection counter advanced — the observable state change. The
  // original caller already saw the throw; replay only needs the state.
  try {
    switch (event.kind) {
      case JournalEventKind::kStartSession:
        (void)dispatcher_.start_session(event.subject, event.size, event.time);
        break;
      case JournalEventKind::kEndSession:
        dispatcher_.end_session(event.subject, event.time);
        break;
      case JournalEventKind::kFailServer:
        (void)dispatcher_.fail_server(event.subject, event.time);
        break;
      case JournalEventKind::kArrival:
      case JournalEventKind::kDeparture:
        throw CorruptionError(
            "simulation event in a dispatcher journal (seq " +
            std::to_string(event.seq) + ")");
    }
  } catch (const DispatchError&) {
    // Replayed rejection; the counters advanced exactly as they did live.
  }
}

// ---------------------------------------------------------------------------
// DurableRun

DurableRun::DurableRun(const DurabilityConfig& config, const CostModel& model,
                       const std::string& algorithm,
                       const PackerOptions& options)
    : core_(config),
      model_(model),
      algorithm_(algorithm),
      options_(options),
      packer_(make_packer(algorithm, model, options)) {
  DBP_REQUIRE(packer_->snapshot_supported(),
              "algorithm cannot run durably (no snapshot support): " +
                  algorithm);
  core_.commit_checkpoint(checkpoint_payload());
  core_.open_fresh_journal();
}

DurableRun::DurableRun(RecoveredTag, DurabilityConfig config, CostModel model,
                       std::string algorithm, PackerOptions options)
    : core_(std::move(config)),
      model_(model),
      algorithm_(std::move(algorithm)),
      options_(options),
      packer_(make_packer(algorithm_, model_, options_)) {}

std::vector<std::uint8_t> DurableRun::checkpoint_payload() const {
  ByteWriter out;
  out.u8(kModeSimulation);
  out.f64(model_.bin_capacity);
  out.f64(model_.cost_rate);
  out.f64(model_.fit_tolerance);
  out.str(algorithm_);
  write_packer_options(out, options_);
  packer_->save_snapshot(out);
  // Active item table plus an RLE size-multiset cross-check: two
  // independently decoded views of the live load that must agree on restore.
  out.u64(active_.size());
  for (const auto& [id, size] : active_) {
    out.u64(id);
    out.f64(size);
  }
  std::vector<double> sizes;
  sizes.reserve(active_.size());
  for (const auto& [id, size] : active_) sizes.push_back(size);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const std::vector<SizeRun> runs = rle_from_sorted(sizes);
  out.u64(runs.size());
  for (const SizeRun& run : runs) {
    out.f64(run.size);
    out.u64(run.count);
  }
  return out.take();
}

BinId DurableRun::apply_arrival(const ArrivingItem& item) {
  core_.journal_event(JournalEventKind::kArrival, item.arrival, item.id,
                      item.size);
  const BinId bin = packer_->on_arrival(item);
  active_[item.id] = item.size;
  maybe_checkpoint();
  return bin;
}

void DurableRun::apply_departure(ItemId item, Time now) {
  core_.journal_event(JournalEventKind::kDeparture, now, item, 0.0);
  packer_->on_departure(item, now);
  active_.erase(item);
  maybe_checkpoint();
}

void DurableRun::checkpoint_now() {
  core_.commit_checkpoint(checkpoint_payload());
}

void DurableRun::flush() {
  core_.journal->flush();
  core_.unflushed = 0;
}

void DurableRun::maybe_checkpoint() {
  if (core_.checkpoint_due()) checkpoint_now();
}

void DurableRun::apply_replayed(const JournalEvent& event) {
  switch (event.kind) {
    case JournalEventKind::kArrival: {
      ArrivingItem item;
      item.id = event.subject;
      item.arrival = event.time;
      item.size = event.size;
      (void)packer_->on_arrival(item);
      active_[item.id] = item.size;
      break;
    }
    case JournalEventKind::kDeparture:
      packer_->on_departure(event.subject, event.time);
      active_.erase(event.subject);
      break;
    case JournalEventKind::kStartSession:
    case JournalEventKind::kEndSession:
    case JournalEventKind::kFailServer:
      throw CorruptionError("dispatcher event in a simulation journal (seq " +
                            std::to_string(event.seq) + ")");
  }
}

// ---------------------------------------------------------------------------
// RecoveryManager

RecoveryManager::RecoveryManager(DurabilityConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

RecoveredState RecoveryManager::recover() {
  const std::vector<CheckpointEntry> entries = list_checkpoints(config_.dir);
  if (entries.empty()) {
    throw CorruptionError("no checkpoints in durability directory: " +
                          config_.dir);
  }

  // Journal repair first: the checkpoint choice depends on how far the
  // journal's valid prefix reaches. A missing journal is only consistent
  // with a crash in the bootstrap window (checkpoint 0 written, journal not
  // yet created) — or with external damage, which the seq-coverage check
  // below converts into an error or a full re-feed from seq 0.
  const std::string path = journal_path(config_);
  JournalScan scan;
  const bool journal_exists = std::filesystem::exists(path);
  if (journal_exists) {
    scan = scan_journal(path);  // header corruption throws: nothing to replay
    if (scan.stream_id != config_.stream_id) {
      throw CorruptionError("journal belongs to a different stream: " + path);
    }
    if (scan.torn_tail) truncate_journal(path, scan);
  }
  if (!scan.events.empty() && scan.events.front().seq != 0) {
    throw CorruptionError("journal does not start at seq 0");
  }
  const std::uint64_t journal_next =
      scan.events.empty() ? 0 : scan.events.back().seq + 1;

  // Newest checkpoint that fully validates AND whose position the journal
  // covers wins. Corrupt ones are skipped (counted), never trusted; a valid
  // checkpoint ahead of the journal's valid prefix is equally unusable —
  // replaying into it is impossible, so recovery falls back past it too.
  // (WAL flushes the journal before every checkpoint, so a crash cannot
  // produce that state; mid-journal corruption can.)
  CheckpointData checkpoint;
  std::size_t skipped = 0;
  bool loaded = false;
  for (const CheckpointEntry& entry : entries) {
    try {
      CheckpointData candidate = load_checkpoint(entry.path);
      if (candidate.stream_id != config_.stream_id) {
        throw CorruptionError("checkpoint belongs to a different stream: " +
                              entry.path);
      }
      if (candidate.next_seq > journal_next) {
        throw CorruptionError(
            "checkpoint at seq " + std::to_string(candidate.next_seq) +
            " is ahead of the journal's valid prefix (seq " +
            std::to_string(journal_next) + "): " + entry.path);
      }
      checkpoint = std::move(candidate);
      loaded = true;
      break;
    } catch (const CorruptionError&) {
      ++skipped;
    }
  }
  if (!loaded) {
    throw CorruptionError("no usable checkpoint in " + config_.dir +
                          "; nothing safe to recover to");
  }

  // Reconstruct the durable object from the payload's own parameters.
  RecoveredState state;
  ByteReader in(checkpoint.payload);
  const std::uint8_t mode = in.u8();
  if (mode == kModeDispatcher) {
    ServerSpec spec;
    spec.gpu_capacity = in.f64();
    spec.price_per_hour = in.f64();
    std::string algorithm = in.str();
    const PackerOptions options = read_packer_options(in);
    const FaultPolicy policy = read_fault_policy(in);
    state.mode = DurableMode::kDispatcher;
    state.dispatcher.reset(new DurableDispatcher(
        DurableDispatcher::RecoveredTag{}, config_, spec, std::move(algorithm),
        options, policy));
    state.dispatcher->dispatcher_.restore_state(in);
    in.expect_done();
  } else if (mode == kModeSimulation) {
    CostModel model;
    model.bin_capacity = in.f64();
    model.cost_rate = in.f64();
    model.fit_tolerance = in.f64();
    std::string algorithm = in.str();
    const PackerOptions options = read_packer_options(in);
    state.mode = DurableMode::kSimulation;
    state.run.reset(new DurableRun(DurableRun::RecoveredTag{}, config_, model,
                                   std::move(algorithm), options));
    state.run->packer_->restore_snapshot(in);
    // Active item table, cross-checked against the restored packer and the
    // independently persisted RLE multiset before anything is trusted.
    const std::uint64_t active_count = in.u64();
    std::map<ItemId, double>& active = state.run->active_;
    for (std::uint64_t i = 0; i < active_count; ++i) {
      const ItemId id = in.u64();
      const double size = in.f64();
      if (!active.emplace(id, size).second) {
        throw CorruptionError("duplicate active item in checkpoint");
      }
    }
    const BinManager& bins = state.run->packer_->bins();
    if (active.size() != bins.active_item_count()) {
      throw CorruptionError("active item table disagrees with packer census");
    }
    for (BinId bin : bins.open_bins()) {
      for (ItemId id : bins.items_in(bin)) {
        if (active.find(id) == active.end()) {
          throw CorruptionError("packer resident missing from the checkpoint's "
                                "active item table");
        }
      }
    }
    std::vector<double> sizes;
    sizes.reserve(active.size());
    for (const auto& [id, size] : active) sizes.push_back(size);
    std::sort(sizes.begin(), sizes.end(), std::greater<>());
    const std::vector<SizeRun> recomputed = rle_from_sorted(sizes);
    rle_validate(recomputed, model);
    const std::uint64_t run_count = in.u64();
    if (run_count != recomputed.size()) {
      throw CorruptionError("RLE cross-check run count mismatch");
    }
    for (const SizeRun& run : recomputed) {
      if (in.f64() != run.size || in.u64() != run.count) {
        throw CorruptionError("RLE cross-check multiset mismatch");
      }
    }
    in.expect_done();
  } else {
    throw CorruptionError("unknown checkpoint payload mode " +
                          std::to_string(mode));
  }

  // Deterministic suffix replay: the events the checkpoint has not seen.
  std::uint64_t replayed = 0;
  for (const JournalEvent& event : scan.events) {
    if (event.seq < checkpoint.next_seq) continue;
    if (state.dispatcher) {
      state.dispatcher->apply_replayed(event);
    } else {
      state.run->apply_replayed(event);
    }
    ++replayed;
  }

  detail::StreamCore& core =
      state.dispatcher ? state.dispatcher->core_ : state.run->core_;
  if (journal_exists) {
    core.open_resumed_journal(scan.valid_bytes);
  } else {
    core.open_fresh_journal();
  }
  core.next_seq = journal_next;

  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("recovery.replayed_events").add(replayed);
    metrics->counter("recovery.runs").add();
  }

  state.report.checkpoint_seq = checkpoint.next_seq;
  state.report.checkpoints_skipped = skipped;
  state.report.replayed_events = replayed;
  state.report.next_seq = journal_next;
  state.report.torn_tail = scan.torn_tail;
  return state;
}

}  // namespace dbp::durability
