#include "durability/checkpoint.hpp"

#include <fcntl.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/binary_io.hpp"
#include "core/crc32.hpp"
#include "core/error.hpp"
#include "core/strfmt.hpp"
#include "durability/file_io.hpp"
#include "obs/obs.hpp"

namespace dbp::durability {

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".dbpc";

}  // namespace

std::string checkpoint_file_name(std::uint64_t next_seq) {
  return strfmt("%s%020llu%s", kPrefix,
                static_cast<unsigned long long>(next_seq), kSuffix);
}

std::string write_checkpoint(const std::string& dir, const CheckpointData& data) {
  ByteWriter out;
  out.u32(kCheckpointMagic);
  out.u32(kCheckpointVersion);
  out.u64(data.stream_id);
  out.u64(data.next_seq);
  out.u64(data.payload.size());
  out.u32(crc32(data.payload));
  out.bytes(data.payload);

  const std::string final_path = dir + "/" + checkpoint_file_name(data.next_seq);
  const std::string tmp_path = final_path + ".tmp";
  {
    detail::FileHandle file(tmp_path, O_WRONLY | O_CREAT | O_TRUNC);
    detail::write_all(file.fd(), "checkpoint", 0, out.data());
    detail::sync_fd(file.fd());
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    throw IoError("cannot rename checkpoint into place: " + final_path);
  }
  detail::sync_dir(dir);
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("checkpoint.writes").add();
    metrics->gauge("checkpoint.bytes").set(static_cast<double>(out.size()));
  }
  return final_path;
}

std::vector<CheckpointEntry> list_checkpoints(const std::string& dir) {
  std::vector<CheckpointEntry> entries;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = item.path().filename().string();
    if (name.rfind(kPrefix, 0) != 0 || name.size() <= std::string(kPrefix).size() +
                                                          std::string(kSuffix).size()) {
      continue;
    }
    if (name.substr(name.size() - std::string(kSuffix).size()) != kSuffix) continue;
    const std::string digits = name.substr(
        std::string(kPrefix).size(),
        name.size() - std::string(kPrefix).size() - std::string(kSuffix).size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    entries.push_back(CheckpointEntry{std::stoull(digits), item.path().string()});
  }
  if (ec) throw IoError("cannot list checkpoint directory: " + dir);
  // directory_iterator order is filesystem-dependent; sort for determinism.
  std::sort(entries.begin(), entries.end(),
            [](const CheckpointEntry& a, const CheckpointEntry& b) {
              return a.next_seq > b.next_seq;
            });
  return entries;
}

CheckpointData load_checkpoint(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  try {
    bytes = detail::read_file(path);
  } catch (const IoError& error) {
    throw CorruptionError(std::string("checkpoint unreadable: ") + error.what());
  }
  constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 8 + 8 + 4;
  if (bytes.size() < kHeaderBytes) {
    throw CorruptionError("checkpoint shorter than its header: " + path);
  }
  ByteReader in(bytes);
  if (in.u32() != kCheckpointMagic) {
    throw CorruptionError("checkpoint magic mismatch: " + path);
  }
  const std::uint32_t version = in.u32();
  if (version != kCheckpointVersion) {
    throw CorruptionError("unsupported checkpoint version " +
                          std::to_string(version) + ": " + path);
  }
  CheckpointData data;
  data.stream_id = in.u64();
  data.next_seq = in.u64();
  const std::uint64_t payload_len = in.u64();
  const std::uint32_t expected_crc = in.u32();
  if (in.remaining() != payload_len) {
    throw CorruptionError("checkpoint payload length mismatch: " + path);
  }
  data.payload.assign(bytes.begin() + kHeaderBytes, bytes.end());
  if (crc32(data.payload) != expected_crc) {
    throw CorruptionError("checkpoint payload CRC mismatch: " + path);
  }
  // The name encodes next_seq; a renamed/stale file must not impersonate
  // another position in the stream.
  const std::string expected_name = checkpoint_file_name(data.next_seq);
  const std::string actual_name =
      std::filesystem::path(path).filename().string();
  if (actual_name != expected_name) {
    throw CorruptionError("checkpoint name disagrees with its header: " + path);
  }
  return data;
}

void prune_checkpoints(const std::string& dir, std::size_t keep) {
  const std::vector<CheckpointEntry> entries = list_checkpoints(dir);
  for (std::size_t i = keep; i < entries.size(); ++i) {
    std::error_code ec;
    std::filesystem::remove(entries[i].path, ec);  // best-effort cleanup
  }
  std::vector<std::string> stale_tmp;
  std::error_code ec;
  for (const auto& item : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = item.path().filename().string();
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      stale_tmp.push_back(item.path().string());
    }
  }
  if (ec) throw IoError("cannot list checkpoint directory: " + dir);
  std::sort(stale_tmp.begin(), stale_tmp.end());
  for (const std::string& path : stale_tmp) {
    std::error_code remove_ec;
    std::filesystem::remove(path, remove_ec);
  }
}

}  // namespace dbp::durability
