// Durable wrappers and crash recovery (docs/durability.md Sections 4-5).
//
// DurableDispatcher / DurableRun implement write-ahead logging over the
// cloud-gaming dispatcher and the plain packing simulation: every input
// event is journaled and flushed *before* it is applied, and a full state
// checkpoint is written atomically every `checkpoint_every` events. The
// RecoveryManager inverts that: load the newest checkpoint that validates
// (falling back across corrupt ones), truncate the journal's torn tail,
// replay the journal suffix, and hand back a wrapper that continues the
// interrupted stream — bit-identically to a run that never crashed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "algo/factory.hpp"
#include "core/types.hpp"
#include "durability/journal.hpp"
#include "gaming/dispatcher.hpp"

namespace dbp::durability {

struct DurabilityConfig {
  /// Directory holding `journal.dbpj` and `ckpt-*.dbpc`. Created on demand.
  std::string dir;
  /// Events between automatic checkpoints (0 = only explicit checkpoint_now).
  std::uint64_t checkpoint_every = 64;
  /// Checkpoints retained after a new one lands (>= 1).
  std::size_t keep_checkpoints = 2;
  /// Events per journal flush; 1 = strict WAL (flush before every apply).
  std::uint64_t flush_every = 1;
  /// Stream identity stamped into journal + checkpoints so files from a
  /// different run cannot be mixed silently.
  std::uint64_t stream_id = 0xD0B9D0B9ULL;

  void validate() const;
};

inline constexpr const char* kJournalFileName = "journal.dbpj";

/// How recovery went. `next_seq` is where the caller resumes feeding events.
struct RecoveryReport {
  std::uint64_t checkpoint_seq = 0;      ///< next_seq of the checkpoint used
  std::size_t checkpoints_skipped = 0;   ///< newer-but-unusable checkpoints
  std::uint64_t replayed_events = 0;     ///< journal suffix length applied
  std::uint64_t next_seq = 0;            ///< first seq not yet applied
  bool torn_tail = false;                ///< journal had a truncated tail
};

namespace detail {

/// Journal + checkpoint bookkeeping shared by both durable wrappers.
struct StreamCore {
  DurabilityConfig config;
  std::unique_ptr<JournalWriter> journal;
  std::uint64_t next_seq = 0;
  std::uint64_t unflushed = 0;

  /// Fresh stream: creates the directory; the caller writes checkpoint 0
  /// and then calls open_fresh_journal().
  explicit StreamCore(DurabilityConfig cfg);

  void open_fresh_journal();
  void open_resumed_journal(std::uint64_t resume_offset);

  /// WAL step: append + flush (per config.flush_every) and advance the seq.
  void journal_event(JournalEventKind kind, Time time, std::uint64_t subject,
                     double size);
  [[nodiscard]] bool checkpoint_due() const;
  void commit_checkpoint(std::vector<std::uint8_t> payload);
};

}  // namespace detail

/// Crash-durable facade over GameServerDispatcher. Construction writes
/// checkpoint 0; every event is journaled ahead of being applied, so the
/// dispatcher's visible behavior (return values, throw behavior, stats) is
/// exactly GameServerDispatcher's. Requires an algorithm whose packer
/// supports snapshots (all online algorithms; not the clairvoyant ones).
class DurableDispatcher {
 public:
  DurableDispatcher(const DurabilityConfig& config, const ServerSpec& spec,
                    const std::string& algorithm, const PackerOptions& options,
                    const FaultPolicy& policy);

  BinId start_session(std::uint64_t session_id, double gpu_fraction,
                      Time now_minutes);
  void end_session(std::uint64_t session_id, Time now_minutes);
  std::size_t fail_server(BinId server, Time now_minutes);

  /// Forces a checkpoint at the current position (journal flushed first).
  void checkpoint_now();
  /// Flushes any buffered journal records (a durability point).
  void flush();

  [[nodiscard]] const GameServerDispatcher& dispatcher() const noexcept {
    return dispatcher_;
  }
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return core_.next_seq;
  }
  [[nodiscard]] const JournalWriter& journal() const noexcept {
    return *core_.journal;
  }

 private:
  friend class RecoveryManager;
  struct RecoveredTag {};
  DurableDispatcher(RecoveredTag, DurabilityConfig config, ServerSpec spec,
                    std::string algorithm, PackerOptions options,
                    FaultPolicy policy);

  [[nodiscard]] std::vector<std::uint8_t> checkpoint_payload() const;
  void maybe_checkpoint();
  /// Replay-side application: reproduces the original call, swallowing the
  /// DispatchError a kThrow policy would re-raise (the original caller
  /// already observed it; the state change — counters — is what replays).
  void apply_replayed(const JournalEvent& event);

  detail::StreamCore core_;
  ServerSpec spec_;
  std::string algorithm_;
  PackerOptions options_;
  FaultPolicy policy_;
  GameServerDispatcher dispatcher_;
};

/// Crash-durable packing run: the simulation-mode twin of DurableDispatcher.
/// Feed it the instance's event sequence (arrivals and departures in time
/// order); after the last departure the underlying packer's bin state yields
/// the same SimulationResult an uninterrupted simulate() would produce.
class DurableRun {
 public:
  DurableRun(const DurabilityConfig& config, const CostModel& model,
             const std::string& algorithm, const PackerOptions& options);

  BinId apply_arrival(const ArrivingItem& item);
  void apply_departure(ItemId item, Time now);

  void checkpoint_now();
  void flush();

  [[nodiscard]] const Packer& packer() const noexcept { return *packer_; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept {
    return core_.next_seq;
  }
  [[nodiscard]] const JournalWriter& journal() const noexcept {
    return *core_.journal;
  }

 private:
  friend class RecoveryManager;
  struct RecoveredTag {};
  DurableRun(RecoveredTag, DurabilityConfig config, CostModel model,
             std::string algorithm, PackerOptions options);

  [[nodiscard]] std::vector<std::uint8_t> checkpoint_payload() const;
  void maybe_checkpoint();
  void apply_replayed(const JournalEvent& event);

  detail::StreamCore core_;
  CostModel model_;
  std::string algorithm_;
  PackerOptions options_;
  std::unique_ptr<Packer> packer_;
  /// Active item sizes, for the checkpoint's RLE cross-check. Ordered map:
  /// iterated when building checkpoint payloads.
  std::map<ItemId, double> active_;
};

/// Which durable wrapper a directory's newest valid checkpoint belongs to.
enum class DurableMode : std::uint8_t {
  kDispatcher = 1,
  kSimulation = 2,
};

/// Loads the newest valid checkpoint, repairs the journal, replays the
/// suffix and returns a wrapper ready to continue the stream. Exactly one
/// of `dispatcher` / `run` is non-null (matching `mode`).
struct RecoveredState {
  DurableMode mode = DurableMode::kDispatcher;
  std::unique_ptr<DurableDispatcher> dispatcher;
  std::unique_ptr<DurableRun> run;
  RecoveryReport report;
};

class RecoveryManager {
 public:
  explicit RecoveryManager(DurabilityConfig config);

  /// Throws CorruptionError when no checkpoint validates (nothing safe to
  /// recover to — callers must treat the directory as lost, never guess).
  [[nodiscard]] RecoveredState recover();

 private:
  DurabilityConfig config_;
};

}  // namespace dbp::durability
