// Atomic checkpoint files (docs/durability.md Section 3).
//
// Layout of ckpt-<seq>.dbpc:
//   "DBPC" | u32 version | u64 stream_id | u64 next_seq
//   | u64 payload_len | u32 crc32(payload) | payload bytes
//
// A checkpoint captures the complete durable-object state *after* applying
// all events with seq < next_seq. Writes go to a temp file, fsync, then an
// atomic rename plus directory fsync — a reader either sees a whole
// checkpoint or none, never a partial one under its final name. Validation
// failures throw CorruptionError so recovery can fall back to an older
// checkpoint instead of trusting damaged bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dbp::durability {

inline constexpr std::uint32_t kCheckpointMagic = 0x43504244U;  // "DBPC" LE
inline constexpr std::uint32_t kCheckpointVersion = 1;

struct CheckpointData {
  std::uint64_t stream_id = 0;
  /// First journal seq NOT reflected in the payload: replay starts here.
  std::uint64_t next_seq = 0;
  std::vector<std::uint8_t> payload;
};

/// One checkpoint file found in a durability directory.
struct CheckpointEntry {
  std::uint64_t next_seq = 0;
  std::string path;
};

/// Canonical file name for a checkpoint at `next_seq` (zero-padded so the
/// lexicographic and numeric orders agree).
[[nodiscard]] std::string checkpoint_file_name(std::uint64_t next_seq);

/// Writes `data` into `dir` via write-temp -> fsync -> rename -> dir fsync.
/// Returns the final path. Counts toward the `checkpoint.bytes` metric.
std::string write_checkpoint(const std::string& dir, const CheckpointData& data);

/// Checkpoints in `dir`, sorted newest (highest next_seq) first. Files that
/// do not match the ckpt-*.dbpc name pattern are ignored; a leftover .tmp
/// from a mid-write crash is skipped here and cleaned by prune.
[[nodiscard]] std::vector<CheckpointEntry> list_checkpoints(
    const std::string& dir);

/// Loads and fully validates one checkpoint file; throws CorruptionError on
/// any mismatch (magic, version, CRC, truncation, name/seq disagreement).
[[nodiscard]] CheckpointData load_checkpoint(const std::string& path);

/// Deletes all but the newest `keep` checkpoints plus any stale .tmp files.
void prune_checkpoints(const std::string& dir, std::size_t keep);

}  // namespace dbp::durability
