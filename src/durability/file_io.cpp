#include "durability/file_io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <sys/stat.h>
#include <utility>

#include "durability/crash_hook.hpp"

namespace dbp::durability {

namespace {

WriteCrashHook g_write_crash_hook;

[[noreturn]] void kill_self() {
  // The harness's contract is an abrupt death — no destructors, no buffered
  // flushes, exactly what SIGKILL delivers.
  (void)::raise(SIGKILL);
  ::_exit(137);  // unreachable unless raise itself failed
}

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void set_write_crash_hook(WriteCrashHook hook) {
  g_write_crash_hook = std::move(hook);
}

const WriteCrashHook& detail::write_crash_hook() { return g_write_crash_hook; }

namespace detail {

FileHandle::FileHandle(const std::string& path, int flags) {
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throw IoError(errno_text("cannot open " + path));
}

FileHandle::~FileHandle() {
  if (fd_ >= 0) ::close(fd_);
}

FileHandle::FileHandle(FileHandle&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

FileHandle& FileHandle::operator=(FileHandle&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void FileHandle::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

void write_fully(int fd, std::span<const std::uint8_t> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(errno_text("write failed"));
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

void write_all(int fd, const char* tag, std::uint64_t offset,
               std::span<const std::uint8_t> data) {
  const WriteCrashHook& hook = write_crash_hook();
  if (hook) {
    const std::optional<std::size_t> allow = hook(tag, offset, data.size());
    if (allow.has_value()) {
      write_fully(fd, data.subspan(0, *allow));
      kill_self();
    }
  }
  write_fully(fd, data);
}

void sync_fd(int fd) {
  if (::fsync(fd) != 0) throw IoError(errno_text("fsync failed"));
}

void sync_dir(const std::string& dir) {
  FileHandle handle(dir, O_RDONLY | O_DIRECTORY);
  sync_fd(handle.fd());
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  FileHandle handle(path, O_RDONLY);
  std::vector<std::uint8_t> data;
  std::uint8_t buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(handle.fd(), buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(errno_text("read failed for " + path));
    }
    if (n == 0) break;
    data.insert(data.end(), buffer, buffer + n);
  }
  return data;
}

std::uint64_t file_size(const std::string& path) {
  struct stat info{};
  if (::stat(path.c_str(), &info) != 0) {
    throw IoError(errno_text("cannot stat " + path));
  }
  return static_cast<std::uint64_t>(info.st_size);
}

void truncate_file(const std::string& path, std::uint64_t size) {
  FileHandle handle(path, O_WRONLY);
  if (::ftruncate(handle.fd(), static_cast<off_t>(size)) != 0) {
    throw IoError(errno_text("cannot truncate " + path));
  }
  sync_fd(handle.fd());
}

}  // namespace detail
}  // namespace dbp::durability
