// Write-ahead event journal (docs/durability.md Section 2).
//
// Layout:
//   header   "DBPJ" | u32 version | u64 stream_id | u32 crc32(first 16 bytes)
//   record*  u32 payload_len | u32 crc32(payload) | payload
//   payload  u64 seq | u8 kind | f64 time | u64 subject | f64 size
//
// Events are journaled *before* they are applied (write-ahead), buffered in
// memory and made durable at explicit flush points (write + fsync). The
// reader accepts the longest valid prefix: a crash can only truncate the
// tail, so the first record that fails framing or CRC ends the valid region
// and everything after it is a torn tail to be cut off — never deserialized.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "durability/file_io.hpp"

namespace dbp::durability {

inline constexpr std::uint32_t kJournalMagic = 0x4A504244U;  // "DBPJ" LE
inline constexpr std::uint32_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderBytes = 20;
/// Framing sanity bound: no event payload is remotely this large, so a
/// length field beyond it is torn garbage, not a record.
inline constexpr std::uint32_t kMaxRecordPayloadBytes = 1 << 20;

/// What happened, to whom. One vocabulary for both durable modes: the
/// dispatcher journals session starts/ends and server failures; the
/// simulation journals item arrivals/departures.
enum class JournalEventKind : std::uint8_t {
  kStartSession = 1,  ///< subject = session id, size = GPU fraction
  kEndSession = 2,    ///< subject = session id
  kFailServer = 3,    ///< subject = server id
  kArrival = 4,       ///< subject = item id, size = item size
  kDeparture = 5,     ///< subject = item id
};

struct JournalEvent {
  std::uint64_t seq = 0;  ///< dense, starts at the stream's first event
  JournalEventKind kind = JournalEventKind::kStartSession;
  Time time = 0.0;
  std::uint64_t subject = 0;
  double size = 0.0;

  friend bool operator==(const JournalEvent&, const JournalEvent&) = default;
};

/// Append-side of the journal. Buffers encoded records in memory; flush()
/// writes the buffer and fsyncs, which is the WAL durability point. The
/// destructor does NOT flush — the owner decides what is durable.
class JournalWriter {
 public:
  /// Creates `path` (which must not already contain data) and writes the
  /// header. The header itself is flushed immediately.
  JournalWriter(const std::string& path, std::uint64_t stream_id);

  /// Reopens an existing journal for appending at `resume_offset` (the
  /// valid-prefix length from a scan; the file is truncated there first).
  JournalWriter(const std::string& path, std::uint64_t stream_id,
                std::uint64_t resume_offset);

  void append(const JournalEvent& event);

  /// Durability point: writes buffered records and fsyncs. No-op when the
  /// buffer is empty. Counts toward the `journal.flushes` metric.
  void flush();

  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return offset_; }
  [[nodiscard]] std::uint64_t flushes() const noexcept { return flushes_; }
  [[nodiscard]] std::uint64_t records_appended() const noexcept {
    return records_;
  }

 private:
  detail::FileHandle file_;
  std::vector<std::uint8_t> buffer_;
  std::uint64_t offset_ = 0;  ///< durable + buffered bytes
  std::uint64_t flushes_ = 0;
  std::uint64_t records_ = 0;
};

/// Result of scanning a journal file.
struct JournalScan {
  std::uint64_t stream_id = 0;
  std::vector<JournalEvent> events;  ///< the valid prefix, in order
  std::uint64_t valid_bytes = 0;     ///< header + all valid records
  bool torn_tail = false;            ///< bytes beyond the valid prefix exist
};

/// Decodes the longest valid prefix of `bytes`. Throws CorruptionError when
/// the *header* is missing, version-skewed or CRC-corrupt (there is no safe
/// prefix to accept), and when a CRC-valid record breaks the dense seq
/// order (valid framing with impossible content is not a crash artifact).
/// Record-level damage is not an error: the scan stops there and reports
/// torn_tail.
[[nodiscard]] JournalScan scan_journal_bytes(
    std::span<const std::uint8_t> bytes);

/// read_file + scan_journal_bytes.
[[nodiscard]] JournalScan scan_journal(const std::string& path);

/// Cuts a torn tail off: truncates `path` to `scan.valid_bytes`.
void truncate_journal(const std::string& path, const JournalScan& scan);

}  // namespace dbp::durability
