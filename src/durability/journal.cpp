#include "durability/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include "core/binary_io.hpp"
#include "core/crc32.hpp"
#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp::durability {

namespace {

std::vector<std::uint8_t> encode_header(std::uint64_t stream_id) {
  ByteWriter out;
  out.u32(kJournalMagic);
  out.u32(kJournalVersion);
  out.u64(stream_id);
  out.u32(crc32(std::span(out.data()).first(16)));
  return out.take();
}

std::vector<std::uint8_t> encode_record(const JournalEvent& event) {
  ByteWriter payload;
  payload.u64(event.seq);
  payload.u8(static_cast<std::uint8_t>(event.kind));
  payload.f64(event.time);
  payload.u64(event.subject);
  payload.f64(event.size);
  ByteWriter record;
  record.u32(static_cast<std::uint32_t>(payload.size()));
  record.u32(crc32(payload.data()));
  record.bytes(payload.data());
  return record.take();
}

bool valid_kind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(JournalEventKind::kStartSession) &&
         kind <= static_cast<std::uint8_t>(JournalEventKind::kDeparture);
}

}  // namespace

JournalWriter::JournalWriter(const std::string& path, std::uint64_t stream_id)
    : file_(path, O_WRONLY | O_CREAT | O_EXCL) {
  const std::vector<std::uint8_t> header = encode_header(stream_id);
  detail::write_all(file_.fd(), "journal", 0, header);
  detail::sync_fd(file_.fd());
  offset_ = header.size();
}

JournalWriter::JournalWriter(const std::string& path, std::uint64_t stream_id,
                             std::uint64_t resume_offset)
    : file_(path, O_WRONLY) {
  (void)stream_id;  // identity was verified by the scan that produced resume_offset
  DBP_REQUIRE(resume_offset >= kJournalHeaderBytes,
              "resume offset precedes the journal header");
  if (::ftruncate(file_.fd(), static_cast<off_t>(resume_offset)) != 0 ||
      ::lseek(file_.fd(), static_cast<off_t>(resume_offset), SEEK_SET) < 0) {
    throw IoError("cannot position journal for append: " + path);
  }
  detail::sync_fd(file_.fd());
  offset_ = resume_offset;
}

void JournalWriter::append(const JournalEvent& event) {
  const std::vector<std::uint8_t> record = encode_record(event);
  buffer_.insert(buffer_.end(), record.begin(), record.end());
  ++records_;
}

void JournalWriter::flush() {
  if (buffer_.empty()) return;
  detail::write_all(file_.fd(), "journal", offset_, buffer_);
  detail::sync_fd(file_.fd());
  offset_ += buffer_.size();
  buffer_.clear();
  ++flushes_;
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("journal.flushes").add();
    metrics->gauge("journal.bytes").set(static_cast<double>(offset_));
  }
}

JournalScan scan_journal_bytes(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kJournalHeaderBytes) {
    throw CorruptionError("journal shorter than its header");
  }
  ByteReader header(bytes.first(kJournalHeaderBytes));
  if (header.u32() != kJournalMagic) {
    throw CorruptionError("journal magic mismatch (not a DBPJ file)");
  }
  const std::uint32_t version = header.u32();
  if (version != kJournalVersion) {
    throw CorruptionError("unsupported journal version " +
                          std::to_string(version));
  }
  JournalScan scan;
  scan.stream_id = header.u64();
  if (header.u32() != crc32(bytes.first(16))) {
    throw CorruptionError("journal header CRC mismatch");
  }

  std::size_t offset = kJournalHeaderBytes;
  bool have_seq = false;
  std::uint64_t expect_seq = 0;
  while (offset < bytes.size()) {
    // Anything that fails from here on is a torn tail: crashes truncate,
    // they do not rewrite, so damage always sits at the end of the file.
    if (bytes.size() - offset < 8) break;
    ByteReader frame(bytes.subspan(offset, 8));
    const std::uint32_t length = frame.u32();
    const std::uint32_t expected_crc = frame.u32();
    if (length > kMaxRecordPayloadBytes) break;
    if (bytes.size() - offset - 8 < length) break;
    const auto payload = bytes.subspan(offset + 8, length);
    if (crc32(payload) != expected_crc) break;
    ByteReader reader(payload);
    JournalEvent event;
    event.seq = reader.u64();
    const std::uint8_t kind = reader.u8();
    event.time = reader.f64();
    event.subject = reader.u64();
    event.size = reader.f64();
    if (!reader.done() || !valid_kind(kind)) break;
    event.kind = static_cast<JournalEventKind>(kind);
    // A CRC-valid record with a seq break is not a crash artifact — crashes
    // cannot reorder flushed records. Refuse the whole file.
    if (have_seq && event.seq != expect_seq) {
      throw CorruptionError("journal sequence break at seq " +
                            std::to_string(event.seq));
    }
    have_seq = true;
    expect_seq = event.seq + 1;
    scan.events.push_back(event);
    offset += 8 + length;
  }
  scan.valid_bytes = offset;
  scan.torn_tail = offset < bytes.size();
  return scan;
}

JournalScan scan_journal(const std::string& path) {
  return scan_journal_bytes(detail::read_file(path));
}

void truncate_journal(const std::string& path, const JournalScan& scan) {
  detail::truncate_file(path, scan.valid_bytes);
}

}  // namespace dbp::durability
