// Test-only fault injection for the durability write path.
//
// The crash-consistency harness (tools/dbp_crashtest) must be able to kill
// the process at *arbitrary byte offsets* inside journal appends and
// checkpoint writes — in between the partial writes a real power cut or
// SIGKILL would leave behind. Every physical write in src/durability flows
// through detail::write_all, which consults this hook: the hook may allow
// the write, or demand that only a prefix be written before the process
// raises SIGKILL against itself.
//
// Production code never installs a hook; the default is "no interference"
// with zero overhead beyond one atomic load per write call.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>

namespace dbp::durability {

/// Decision callback invoked before each physical write.
///   tag     "journal" or "checkpoint" (which write path)
///   offset  current byte offset in the target file
///   length  bytes about to be written
/// Return std::nullopt to allow the write, or a byte count k <= length to
/// have exactly k bytes written before the process SIGKILLs itself.
using WriteCrashHook = std::function<std::optional<std::size_t>(
    std::string_view tag, std::uint64_t offset, std::size_t length)>;

/// Installs (or, with an empty function, removes) the process-wide hook.
/// Not thread-safe against concurrent durability writes — the harness
/// installs it before any durable object exists.
void set_write_crash_hook(WriteCrashHook hook);

namespace detail {
/// The installed hook (nullptr-equivalent when unset). Internal.
[[nodiscard]] const WriteCrashHook& write_crash_hook();
}  // namespace detail

}  // namespace dbp::durability
