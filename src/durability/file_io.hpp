// POSIX file primitives shared by the journal and checkpoint writers.
//
// Durability needs three things std::ofstream cannot give portably: explicit
// fsync points (a flushed record must survive the process dying), atomic
// rename with a directory fsync (a checkpoint is fully present or absent),
// and a single choke point for the crash-injection hook. All failures throw
// IoError with errno context — short writes are never silent.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace dbp::durability::detail {

/// RAII file descriptor. Move-only.
class FileHandle {
 public:
  FileHandle() = default;
  /// Opens with ::open(path, flags, 0644); throws IoError on failure.
  FileHandle(const std::string& path, int flags);
  ~FileHandle();

  FileHandle(FileHandle&& other) noexcept;
  FileHandle& operator=(FileHandle&& other) noexcept;
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool is_open() const noexcept { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// Writes all of `data` at the file's current position, routing through the
/// crash hook (crash_hook.hpp) under `tag` with `offset` as the position
/// being written. Retries short writes/EINTR; throws IoError on OS failure.
void write_all(int fd, const char* tag, std::uint64_t offset,
               std::span<const std::uint8_t> data);

/// fsync(fd); throws IoError on failure.
void sync_fd(int fd);

/// Opens and fsyncs the directory so a just-renamed file's name entry is
/// durable; throws IoError on failure.
void sync_dir(const std::string& dir);

/// Reads an entire file; throws IoError when it cannot be opened or read.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// File size in bytes; throws IoError when stat fails.
[[nodiscard]] std::uint64_t file_size(const std::string& path);

/// Truncates `path` to `size` bytes and fsyncs it; throws IoError on failure.
void truncate_file(const std::string& path, std::uint64_t size);

}  // namespace dbp::durability::detail
