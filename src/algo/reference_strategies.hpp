// Reference (pre-arena) First Fit and Best Fit strategies.
//
// These are the original node-based/hashed implementations the optimized
// strategies in algo/strategies.hpp replaced: First Fit with an ordered-map
// position index and predicate-callback tree descent, Best Fit with a
// node-based std::set residual index. They are kept verbatim for two jobs:
//   * the same-run benchmark baseline — dbp_bench_report measures
//     "first-fit" against "first-fit-reference" in the same process so the
//     speedup ratio is machine-independent (tools/check_bench_guard.py
//     guards it);
//   * the differential oracle — tests/packer_reference_differential_test
//     asserts the optimized strategies make bit-identical decisions.
// They are registered with make_packer under "-reference" names but not
// listed in all_algorithm_names(): sweeps and fuzzers should not pay for
// packing every workload twice.
#pragma once

#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "algo/fit_strategy.hpp"
#include "algo/segment_tree.hpp"

namespace dbp {

/// The seed First Fit: segment tree + ordered scan positions, with the
/// position looked up through a hash map on every residual change.
class FirstFitReferenceStrategy final : public FitStrategy {
 public:
  explicit FirstFitReferenceStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "first-fit-reference"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;

 private:
  CostModel model_;
  MaxSegmentTree residuals_;                  // position = registration order
  std::vector<BinId> bin_at_;                 // position -> bin
  // DBP_LINT_ALLOW(unordered-container): position lookup by bin id only;
  // never iterated (selection order comes from the segment tree).
  std::unordered_map<BinId, std::size_t> pos_of_;
};

/// The seed Best Fit: node-based ordered (residual, id) set.
class BestFitReferenceStrategy final : public FitStrategy {
 public:
  explicit BestFitReferenceStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "best-fit-reference"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;

 private:
  CostModel model_;
  std::set<std::pair<double, BinId>> by_residual_;   // (residual, id) ascending
  // DBP_LINT_ALLOW(unordered-container): residual lookup by bin id only;
  // selection order comes from the ordered by_residual_ set.
  std::unordered_map<BinId, double> residual_of_;
};

}  // namespace dbp
