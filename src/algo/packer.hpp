// The online packer interface driven by the simulator.
#pragma once

#include <span>
#include <string>

#include "algo/bin_manager.hpp"
#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/item.hpp"
#include "core/types.hpp"

namespace dbp {

/// An online dynamic-bin-packing algorithm.
///
/// The simulator calls `on_arrival` with only the information an online
/// algorithm may use (id, size, arrival time — never the departure time) and
/// `on_departure` when an item leaves. Packers are single-use: construct a
/// fresh instance per packing run (construction is cheap; see
/// make_packer in algo/factory.hpp).
class Packer {
 public:
  explicit Packer(CostModel model) : manager_(model) { }
  virtual ~Packer() = default;

  Packer(const Packer&) = delete;
  Packer& operator=(const Packer&) = delete;

  /// Algorithm name for reports ("first-fit", "modified-first-fit(k=8)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Places the arriving item and returns the chosen bin. Must not consult
  /// anything but the current bin state and the arriving item.
  virtual BinId on_arrival(const ArrivingItem& item) = 0;

  /// Handles the departure of a previously placed item at time `now`.
  virtual void on_departure(ItemId item, Time now) = 0;

  /// Drives this packer over a prebuilt sorted event sequence — the
  /// steady-state event loop. The default dispatches every event through
  /// the virtual on_arrival/on_departure (clairvoyant-aware); packers whose
  /// handlers are statically known override it so the whole loop runs with
  /// zero indirect calls. Overrides must be behaviorally identical to the
  /// default — replay is a batched driver, never a semantic variation
  /// (sim/simulator.cpp's replay_events is the public entry).
  virtual void replay(const Instance& instance, std::span<const Event> events);

  /// Capacity hint: the run will see at most `items` distinct items (and
  /// thus at most `items` bins). Pre-sizes the bookkeeping so the event
  /// loop runs allocation-free; purely an optimization — correctness never
  /// depends on the hint, and exceeding it only costs amortized growth.
  virtual void reserve_hint(std::size_t items) { manager_.reserve(items, items); }

  /// Read access to all bin state and usage history.
  [[nodiscard]] const BinManager& bins() const noexcept { return manager_; }

  [[nodiscard]] const CostModel& model() const noexcept { return manager_.model(); }

  /// True when this packer can checkpoint and restore its full decision
  /// state bit-exactly. False by default; the clairvoyant baselines stay
  /// unsupported (their pending-departure queues are out of the online
  /// durability scope).
  [[nodiscard]] virtual bool snapshot_supported() const { return false; }

  /// Serializes the complete packer state (bin mechanics + policy state).
  /// Requires snapshot_supported().
  void save_snapshot(ByteWriter& out) const {
    DBP_REQUIRE(snapshot_supported(),
                "this packer does not support snapshots: " + name());
    manager_.save_state(out);
    save_extra(out);
  }

  /// Restores the state written by save_snapshot() into a freshly
  /// constructed packer of the same algorithm and cost model. After this
  /// call the packer continues the interrupted run bit-identically.
  void restore_snapshot(ByteReader& in) {
    DBP_REQUIRE(snapshot_supported(),
                "this packer does not support snapshots: " + name());
    manager_.restore_state(in);
    restore_extra(in);
  }

 protected:
  /// Policy-state halves of the snapshot, layered on the BinManager state.
  virtual void save_extra(ByteWriter& out) const { (void)out; }
  virtual void restore_extra(ByteReader& in) { (void)in; }

  BinManager manager_;
};

}  // namespace dbp
