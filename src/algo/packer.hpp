// The online packer interface driven by the simulator.
#pragma once

#include <string>

#include "algo/bin_manager.hpp"
#include "core/item.hpp"
#include "core/types.hpp"

namespace dbp {

/// An online dynamic-bin-packing algorithm.
///
/// The simulator calls `on_arrival` with only the information an online
/// algorithm may use (id, size, arrival time — never the departure time) and
/// `on_departure` when an item leaves. Packers are single-use: construct a
/// fresh instance per packing run (construction is cheap; see
/// make_packer in algo/factory.hpp).
class Packer {
 public:
  explicit Packer(CostModel model) : manager_(model) { }
  virtual ~Packer() = default;

  Packer(const Packer&) = delete;
  Packer& operator=(const Packer&) = delete;

  /// Algorithm name for reports ("first-fit", "modified-first-fit(k=8)", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Places the arriving item and returns the chosen bin. Must not consult
  /// anything but the current bin state and the arriving item.
  virtual BinId on_arrival(const ArrivingItem& item) = 0;

  /// Handles the departure of a previously placed item at time `now`.
  virtual void on_departure(ItemId item, Time now) = 0;

  /// Read access to all bin state and usage history.
  [[nodiscard]] const BinManager& bins() const noexcept { return manager_; }

  [[nodiscard]] const CostModel& model() const noexcept { return manager_.model(); }

 protected:
  BinManager manager_;
};

}  // namespace dbp
