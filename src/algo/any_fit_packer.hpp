// The Any Fit packing framework (paper Section 3.2): open a new bin only
// when the strategy declines every open bin.
#pragma once

#include <memory>

#include "algo/fit_strategy.hpp"
#include "algo/packer.hpp"
#include "core/audit.hpp"
#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp {

/// Combines the bin mechanics (BinManager) with a pluggable bin-selection
/// policy (FitStrategy) to form a complete online packer.
class AnyFitPacker : public Packer {
 public:
  AnyFitPacker(CostModel model, std::unique_ptr<FitStrategy> strategy);

  [[nodiscard]] std::string name() const override { return strategy_->name(); }

  BinId on_arrival(const ArrivingItem& item) override;
  void on_departure(ItemId item, Time now) override;

  /// Forwards the capacity hint to the manager and the fit strategy.
  void reserve_hint(std::size_t items) override {
    Packer::reserve_hint(items);
    strategy_->reserve(items);
  }

  /// When enabled, every new-bin opening is cross-checked against *all* open
  /// bins (O(m) scan) to prove the Any Fit contract: no open bin could have
  /// accommodated the item. Used by the test suite; off by default.
  void set_paranoid(bool value) noexcept { paranoid_ = value; }

  [[nodiscard]] bool snapshot_supported() const override { return true; }

 protected:
  /// Replays on_bin_registered over the restored open bins (ascending id =
  /// opening order) and then lets the strategy restore any extra history.
  void save_extra(ByteWriter& out) const override;
  void restore_extra(ByteReader& in) override;

  [[nodiscard]] FitStrategy& strategy() noexcept { return *strategy_; }

  /// The one true arrival body. `strategy` is the same object as strategy_;
  /// taking it as a deduced reference lets StaticAnyFitPacker instantiate
  /// this with the concrete (final) strategy type, turning the per-event
  /// policy calls into direct — inlinable — calls, while the dynamic
  /// AnyFitPacker::on_arrival instantiates it with FitStrategy& and keeps
  /// the vtable dispatch. Both routes execute the identical statement
  /// sequence, so decisions and FP results are bit-identical.
  template <typename S>
  BinId arrival_impl(S& strategy, const ArrivingItem& item) {
    DBP_REQUIRE(model().fits(item.size, model().bin_capacity),
                "item larger than the bin capacity");
    const std::size_t candidates = manager_.open_count();
    std::optional<BinId> chosen = strategy.select(item.size);
    BinId bin;
    if (chosen) {
      bin = *chosen;
#if DBP_AUDIT_ENABLED
      // First Fit scan-order monotonicity: the selected bin must be the
      // *earliest-opened* open bin that fits — no open bin with a smaller id
      // may accommodate the item (bin ids are assigned in opening order).
      if (strategy.name() == "first-fit") {
        for (const BinId open : manager_.open_bins()) {
          if (open >= bin) break;
          DBP_AUDIT_CHECK(!manager_.fits(item.size, open),
                          "First Fit skipped an earlier-opened fitting bin");
        }
      }
#endif
    } else {
      if ((paranoid_ || audit_enabled()) && strategy.any_fit_contract()) {
        for (BinId open : manager_.open_bins()) {
          DBP_CHECK(!manager_.fits(item.size, open),
                    "Any Fit contract violated: a fitting bin was declined");
        }
      }
      bin = manager_.open_bin(item.arrival);
      strategy.on_bin_registered(bin, manager_.residual(bin));
    }
    manager_.place(item, bin);
    strategy.on_residual_changed(bin, manager_.residual(bin));
    obs::trace_arrival(item.arrival, item.id, item.size, bin, candidates);
    return bin;
  }

  /// The one true departure body; see arrival_impl for the dispatch story.
  template <typename S>
  void departure_impl(S& strategy, ItemId item, Time now) {
    const DepartureOutcome outcome = manager_.remove(item, now);
    obs::trace_departure(now, item, outcome.bin);
    if (outcome.bin_closed) {
      strategy.on_bin_closed(outcome.bin);
    } else {
      strategy.on_residual_changed(outcome.bin, manager_.residual(outcome.bin));
    }
  }

 private:
  std::unique_ptr<FitStrategy> strategy_;
  bool paranoid_ = false;
};

/// AnyFitPacker with the concrete strategy type visible to the compiler.
///
/// Behaviorally identical to AnyFitPacker — it routes the same
/// arrival_impl/departure_impl bodies — but because `Strategy` is a final
/// class the 3-4 per-event policy calls (select, on_residual_changed, ...)
/// devirtualize and inline into the event handlers, which is worth ~25% of
/// the First Fit event loop (docs/performance.md). The factory uses this
/// for every built-in strategy; plug-in strategies constructed against the
/// FitStrategy interface keep using AnyFitPacker directly.
template <typename Strategy>
class StaticAnyFitPacker final : public AnyFitPacker {
 public:
  StaticAnyFitPacker(CostModel model, std::unique_ptr<Strategy> strategy)
      : AnyFitPacker(model, std::move(strategy)),
        typed_(static_cast<Strategy*>(&this->strategy())) {}

  BinId on_arrival(const ArrivingItem& item) override {
    return arrival_impl(*typed_, item);
  }

  void on_departure(ItemId item, Time now) override {
    departure_impl(*typed_, item, now);
  }

  /// Same loop as Packer::replay (minus the clairvoyant branch — an Any Fit
  /// packer never is one), with the event handlers inlined: the entire
  /// steady-state loop runs without a single indirect call.
  void replay(const Instance& instance, std::span<const Event> events) override {
    for (const Event& event : events) {
      if (event.kind == EventKind::kArrival) {
        const Item& item = instance.item(event.item);
        arrival_impl(*typed_, ArrivingItem{event.item, event.time, item.size});
      } else {
        departure_impl(*typed_, event.item, event.time);
      }
    }
  }

 private:
  Strategy* typed_;  // same object as the base's strategy_, concrete type
};

}  // namespace dbp
