// The Any Fit packing framework (paper Section 3.2): open a new bin only
// when the strategy declines every open bin.
#pragma once

#include <memory>

#include "algo/fit_strategy.hpp"
#include "algo/packer.hpp"

namespace dbp {

/// Combines the bin mechanics (BinManager) with a pluggable bin-selection
/// policy (FitStrategy) to form a complete online packer.
class AnyFitPacker : public Packer {
 public:
  AnyFitPacker(CostModel model, std::unique_ptr<FitStrategy> strategy);

  [[nodiscard]] std::string name() const override { return strategy_->name(); }

  BinId on_arrival(const ArrivingItem& item) override;
  void on_departure(ItemId item, Time now) override;

  /// When enabled, every new-bin opening is cross-checked against *all* open
  /// bins (O(m) scan) to prove the Any Fit contract: no open bin could have
  /// accommodated the item. Used by the test suite; off by default.
  void set_paranoid(bool value) noexcept { paranoid_ = value; }

  [[nodiscard]] bool snapshot_supported() const override { return true; }

 protected:
  /// Replays on_bin_registered over the restored open bins (ascending id =
  /// opening order) and then lets the strategy restore any extra history.
  void save_extra(ByteWriter& out) const override;
  void restore_extra(ByteReader& in) override;

 private:
  std::unique_ptr<FitStrategy> strategy_;
  bool paranoid_ = false;
};

}  // namespace dbp
