#include "algo/strategies.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>

#include "core/error.hpp"

namespace dbp {

namespace {

constexpr double kUnregistered = std::numeric_limits<double>::quiet_NaN();

inline bool registered_residual(const std::vector<double>& residual_of,
                                BinId bin) noexcept {
  return bin < residual_of.size() &&
         !std::isnan(residual_of[static_cast<std::size_t>(bin)]);
}

}  // namespace

// ---------------------------------------------------------------- FirstFit
// (hot-path handlers are inline in strategies.hpp)

void FirstFitStrategy::compact() {
  // Re-register the live bins in position order. Relative order — the only
  // thing the leftmost descent depends on — is preserved, so every future
  // selection is identical to the uncompacted tree's.
  scratch_.clear();
  for (std::size_t p = 0; p < bin_at_.size(); ++p) {
    const BinId bin = bin_at_[p];
    if (pos_of_[static_cast<std::size_t>(bin)] == p) {
      scratch_.emplace_back(residuals_.value_at(p), bin);
    }
  }
  residuals_.clear();
  bin_at_.clear();
  for (const auto& [residual, bin] : scratch_) {
    const std::size_t pos = residuals_.push_back(residual);
    bin_at_.push_back(bin);
    pos_of_[static_cast<std::size_t>(bin)] = pos;
  }
}

void FirstFitStrategy::reserve(std::size_t bins_hint) {
  residuals_.reserve(bins_hint);
  bin_at_.reserve(bins_hint);
  pos_of_.reserve(bins_hint);
  scratch_.reserve(bins_hint);
}

// ----------------------------------------------------------------- LastFit
// (hot-path handlers are inline in strategies.hpp)

void LastFitStrategy::compact() {
  scratch_.clear();
  for (std::size_t p = 0; p < bin_at_.size(); ++p) {
    const BinId bin = bin_at_[p];
    if (pos_of_[static_cast<std::size_t>(bin)] == p) {
      scratch_.emplace_back(residuals_.value_at(p), bin);
    }
  }
  residuals_.clear();
  bin_at_.clear();
  for (const auto& [residual, bin] : scratch_) {
    const std::size_t pos = residuals_.push_back(residual);
    bin_at_.push_back(bin);
    pos_of_[static_cast<std::size_t>(bin)] = pos;
  }
}

void LastFitStrategy::reserve(std::size_t bins_hint) {
  residuals_.reserve(bins_hint);
  bin_at_.reserve(bins_hint);
  pos_of_.reserve(bins_hint);
  scratch_.reserve(bins_hint);
}

// ----------------------------------------------------------------- BestFit
// (hot-path handlers are inline in strategies.hpp)

void BestFitStrategy::reserve(std::size_t bins_hint) {
  by_residual_.reserve(bins_hint);
  pos_of_.reserve(bins_hint);
}

// ---------------------------------------------------------------- WorstFit
// (hot-path handlers are inline in strategies.hpp)

void WorstFitStrategy::reserve(std::size_t bins_hint) {
  by_residual_.reserve(bins_hint);
  pos_of_.reserve(bins_hint);
}

// ----------------------------------------------------------------- NextFit

std::optional<BinId> NextFitStrategy::select(double size) {
  if (current_ && model_.fits(size, current_residual_)) return current_;
  // Deliberately retire the current bin: Next Fit never revisits it.
  current_.reset();
  return std::nullopt;
}

void NextFitStrategy::on_bin_registered(BinId bin, double residual) {
  current_ = bin;
  current_residual_ = residual;
}

void NextFitStrategy::on_residual_changed(BinId bin, double residual) {
  if (current_ && *current_ == bin) current_residual_ = residual;
}

void NextFitStrategy::on_bin_closed(BinId bin) {
  if (current_ && *current_ == bin) current_.reset();
}

void NextFitStrategy::save_state(ByteWriter& out) const {
  out.boolean(current_.has_value());
  out.u64(current_ ? *current_ : kNoBin);
  out.f64(current_residual_);
}

void NextFitStrategy::load_state(ByteReader& in) {
  const bool has_current = in.boolean();
  const BinId bin = in.u64();
  const double residual = in.f64();
  current_ = has_current ? std::optional<BinId>(bin) : std::nullopt;
  current_residual_ = residual;
}

// --------------------------------------------------------------- RandomFit

std::optional<BinId> RandomFitStrategy::select(double size) {
  // Reservoir-sample uniformly over fitting bins in one pass.
  std::optional<BinId> chosen;
  std::size_t seen = 0;
  for (const auto& [bin, residual] : open_) {
    if (!model_.fits(size, residual)) continue;
    ++seen;
    if (std::uniform_int_distribution<std::size_t>(1, seen)(rng_) == 1) {
      chosen = bin;
    }
  }
  return chosen;
}

void RandomFitStrategy::on_bin_registered(BinId bin, double residual) {
  if (bin >= pos_of_.size()) {
    pos_of_.resize(static_cast<std::size_t>(bin) + 1, kNoPos);
  }
  pos_of_[static_cast<std::size_t>(bin)] = open_.size();
  open_.emplace_back(bin, residual);
}

void RandomFitStrategy::on_residual_changed(BinId bin, double residual) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "residual change for unregistered bin");
  open_[pos_of_[static_cast<std::size_t>(bin)]].second = residual;
}

void RandomFitStrategy::on_bin_closed(BinId bin) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "closing an unregistered bin");
  const std::size_t pos = pos_of_[static_cast<std::size_t>(bin)];
  pos_of_[static_cast<std::size_t>(bin)] = kNoPos;
  if (pos + 1 != open_.size()) {
    open_[pos] = open_.back();
    pos_of_[static_cast<std::size_t>(open_[pos].first)] = pos;
  }
  open_.pop_back();
}

void RandomFitStrategy::reserve(std::size_t bins_hint) {
  open_.reserve(bins_hint);
  pos_of_.reserve(bins_hint);
}

void RandomFitStrategy::save_state(ByteWriter& out) const {
  std::ostringstream engine;
  engine << rng_;
  out.str(engine.str());
  out.u64(open_.size());
  for (const auto& [bin, residual] : open_) {
    out.u64(bin);
    out.f64(residual);
  }
}

void RandomFitStrategy::load_state(ByteReader& in) {
  std::istringstream engine(in.str());
  engine >> rng_;
  if (engine.fail()) throw CorruptionError("malformed random-fit engine state");
  // Replace the registration-replay order with the persisted swap-remove
  // order: select() iterates open_, so the order is part of the trajectory.
  const std::uint64_t count = in.u64();
  if (count != open_.size()) {
    throw CorruptionError("random-fit open-bin census mismatch");
  }
  for (const auto& [bin, residual] : open_) {
    pos_of_[static_cast<std::size_t>(bin)] = kNoPos;
  }
  std::vector<std::pair<BinId, double>> restored;
  restored.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const BinId bin = in.u64();
    const double residual = in.f64();
    if (bin >= pos_of_.size()) {
      pos_of_.resize(static_cast<std::size_t>(bin) + 1, kNoPos);
    }
    if (pos_of_[static_cast<std::size_t>(bin)] != kNoPos) {
      throw CorruptionError("random-fit open list repeats a bin");
    }
    pos_of_[static_cast<std::size_t>(bin)] = restored.size();
    restored.emplace_back(bin, residual);
  }
  open_ = std::move(restored);
}

// ------------------------------------------------------------- MoveToFront

bool MoveToFrontStrategy::registered(BinId bin) const noexcept {
  return registered_residual(residual_of_, bin);
}

void MoveToFrontStrategy::grow_to(BinId bin) {
  if (bin >= residual_of_.size()) {
    const std::size_t count = static_cast<std::size_t>(bin) + 1;
    residual_of_.resize(count, kUnregistered);
    next_.resize(count, kNoBin);
    prev_.resize(count, kNoBin);
  }
}

void MoveToFrontStrategy::link_front(BinId bin) {
  const auto b = static_cast<std::size_t>(bin);
  prev_[b] = kNoBin;
  next_[b] = head_;
  if (head_ != kNoBin) {
    prev_[static_cast<std::size_t>(head_)] = bin;
  } else {
    tail_ = bin;
  }
  head_ = bin;
  ++list_size_;
}

void MoveToFrontStrategy::link_back(BinId bin) {
  const auto b = static_cast<std::size_t>(bin);
  next_[b] = kNoBin;
  prev_[b] = tail_;
  if (tail_ != kNoBin) {
    next_[static_cast<std::size_t>(tail_)] = bin;
  } else {
    head_ = bin;
  }
  tail_ = bin;
  ++list_size_;
}

void MoveToFrontStrategy::unlink(BinId bin) {
  const auto b = static_cast<std::size_t>(bin);
  const BinId p = prev_[b];
  const BinId n = next_[b];
  if (p != kNoBin) {
    next_[static_cast<std::size_t>(p)] = n;
  } else {
    head_ = n;
  }
  if (n != kNoBin) {
    prev_[static_cast<std::size_t>(n)] = p;
  } else {
    tail_ = p;
  }
  prev_[b] = kNoBin;
  next_[b] = kNoBin;
  --list_size_;
}

std::optional<BinId> MoveToFrontStrategy::select(double size) {
  for (BinId bin = head_; bin != kNoBin;
       bin = next_[static_cast<std::size_t>(bin)]) {
    if (model_.fits(size, residual_of_[static_cast<std::size_t>(bin)])) {
      // Selection implies placement under the Any Fit packer, so the
      // recency promotion happens here.
      if (bin != head_) {
        unlink(bin);
        link_front(bin);
      }
      return bin;
    }
  }
  return std::nullopt;
}

void MoveToFrontStrategy::on_bin_registered(BinId bin, double residual) {
  grow_to(bin);
  DBP_CHECK(!registered(bin), "duplicate move-to-front registration");
  residual_of_[static_cast<std::size_t>(bin)] = residual;
  link_front(bin);
}

void MoveToFrontStrategy::on_residual_changed(BinId bin, double residual) {
  DBP_REQUIRE(registered(bin), "residual change for unregistered bin");
  residual_of_[static_cast<std::size_t>(bin)] = residual;
}

void MoveToFrontStrategy::on_bin_closed(BinId bin) {
  DBP_REQUIRE(registered(bin), "closing an unregistered bin");
  unlink(bin);
  residual_of_[static_cast<std::size_t>(bin)] = kUnregistered;
}

void MoveToFrontStrategy::reserve(std::size_t bins_hint) {
  residual_of_.reserve(bins_hint);
  next_.reserve(bins_hint);
  prev_.reserve(bins_hint);
}

void MoveToFrontStrategy::save_state(ByteWriter& out) const {
  out.u64(list_size_);
  for (BinId bin = head_; bin != kNoBin;
       bin = next_[static_cast<std::size_t>(bin)]) {
    out.u64(bin);
  }
}

void MoveToFrontStrategy::load_state(ByteReader& in) {
  const std::uint64_t count = in.u64();
  if (count != list_size_) {
    throw CorruptionError("move-to-front recency census mismatch");
  }
  // The registration replay left the list in opening order; rebuild the
  // persisted recency order over the same bin set. Every registered bin is
  // linked (class invariant), so count == list_size_ == #registered and the
  // per-bin checks below force an exact bijection.
  std::vector<std::uint8_t> seen(residual_of_.size(), 0);
  head_ = kNoBin;
  tail_ = kNoBin;
  list_size_ = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const BinId bin = in.u64();
    if (!registered(bin) || seen[static_cast<std::size_t>(bin)] != 0) {
      throw CorruptionError("move-to-front recency list names a foreign bin");
    }
    seen[static_cast<std::size_t>(bin)] = 1;
    link_back(bin);
  }
}

}  // namespace dbp
