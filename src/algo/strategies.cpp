#include "algo/strategies.hpp"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "core/error.hpp"

namespace dbp {

// ---------------------------------------------------------------- FirstFit

std::optional<BinId> FirstFitStrategy::select(double size) {
  auto pos = residuals_.find_leftmost(
      [&](double residual) { return model_.fits(size, residual); });
  if (!pos) return std::nullopt;
  return bin_at_[*pos];
}

void FirstFitStrategy::on_bin_registered(BinId bin, double residual) {
  const std::size_t pos = residuals_.push_back(residual);
  bin_at_.push_back(bin);
  DBP_CHECK(bin_at_.size() == pos + 1, "first-fit position bookkeeping");
  pos_of_[bin] = pos;
}

void FirstFitStrategy::on_residual_changed(BinId bin, double residual) {
  residuals_.assign(pos_of_.at(bin), residual);
}

void FirstFitStrategy::on_bin_closed(BinId bin) {
  auto it = pos_of_.find(bin);
  DBP_REQUIRE(it != pos_of_.end(), "closing an unregistered bin");
  residuals_.deactivate(it->second);
  pos_of_.erase(it);
}

// ----------------------------------------------------------------- LastFit

std::optional<BinId> LastFitStrategy::select(double size) {
  auto pos = residuals_.find_rightmost(
      [&](double residual) { return model_.fits(size, residual); });
  if (!pos) return std::nullopt;
  return bin_at_[*pos];
}

void LastFitStrategy::on_bin_registered(BinId bin, double residual) {
  const std::size_t pos = residuals_.push_back(residual);
  bin_at_.push_back(bin);
  pos_of_[bin] = pos;
}

void LastFitStrategy::on_residual_changed(BinId bin, double residual) {
  residuals_.assign(pos_of_.at(bin), residual);
}

void LastFitStrategy::on_bin_closed(BinId bin) {
  auto it = pos_of_.find(bin);
  DBP_REQUIRE(it != pos_of_.end(), "closing an unregistered bin");
  residuals_.deactivate(it->second);
  pos_of_.erase(it);
}

// ----------------------------------------------------------------- BestFit

std::optional<BinId> BestFitStrategy::select(double size) {
  // Smallest residual r with fits(size, r), i.e. r >= size - tolerance.
  auto it = by_residual_.lower_bound({size - model_.fit_tolerance, 0});
  if (it == by_residual_.end()) return std::nullopt;
  DBP_CHECK(model_.fits(size, it->first), "best-fit index out of sync");
  return it->second;
}

void BestFitStrategy::on_bin_registered(BinId bin, double residual) {
  const bool inserted = by_residual_.emplace(residual, bin).second;
  DBP_CHECK(inserted, "duplicate best-fit registration");
  residual_of_[bin] = residual;
}

void BestFitStrategy::on_residual_changed(BinId bin, double residual) {
  auto it = residual_of_.find(bin);
  DBP_REQUIRE(it != residual_of_.end(), "residual change for unregistered bin");
  by_residual_.erase({it->second, bin});
  by_residual_.emplace(residual, bin);
  it->second = residual;
}

void BestFitStrategy::on_bin_closed(BinId bin) {
  auto it = residual_of_.find(bin);
  DBP_REQUIRE(it != residual_of_.end(), "closing an unregistered bin");
  by_residual_.erase({it->second, bin});
  residual_of_.erase(it);
}

// ---------------------------------------------------------------- WorstFit

std::optional<BinId> WorstFitStrategy::select(double size) {
  if (by_residual_.empty()) return std::nullopt;
  const auto& best = *by_residual_.rbegin();  // max residual, min id
  if (!model_.fits(size, best.first)) return std::nullopt;
  return best.second;
}

void WorstFitStrategy::on_bin_registered(BinId bin, double residual) {
  const bool inserted = by_residual_.emplace(residual, bin).second;
  DBP_CHECK(inserted, "duplicate worst-fit registration");
  residual_of_[bin] = residual;
}

void WorstFitStrategy::on_residual_changed(BinId bin, double residual) {
  auto it = residual_of_.find(bin);
  DBP_REQUIRE(it != residual_of_.end(), "residual change for unregistered bin");
  by_residual_.erase({it->second, bin});
  by_residual_.emplace(residual, bin);
  it->second = residual;
}

void WorstFitStrategy::on_bin_closed(BinId bin) {
  auto it = residual_of_.find(bin);
  DBP_REQUIRE(it != residual_of_.end(), "closing an unregistered bin");
  by_residual_.erase({it->second, bin});
  residual_of_.erase(it);
}

// ----------------------------------------------------------------- NextFit

std::optional<BinId> NextFitStrategy::select(double size) {
  if (current_ && model_.fits(size, current_residual_)) return current_;
  // Deliberately retire the current bin: Next Fit never revisits it.
  current_.reset();
  return std::nullopt;
}

void NextFitStrategy::on_bin_registered(BinId bin, double residual) {
  current_ = bin;
  current_residual_ = residual;
}

void NextFitStrategy::on_residual_changed(BinId bin, double residual) {
  if (current_ && *current_ == bin) current_residual_ = residual;
}

void NextFitStrategy::on_bin_closed(BinId bin) {
  if (current_ && *current_ == bin) current_.reset();
}

void NextFitStrategy::save_state(ByteWriter& out) const {
  out.boolean(current_.has_value());
  out.u64(current_ ? *current_ : kNoBin);
  out.f64(current_residual_);
}

void NextFitStrategy::load_state(ByteReader& in) {
  const bool has_current = in.boolean();
  const BinId bin = in.u64();
  const double residual = in.f64();
  current_ = has_current ? std::optional<BinId>(bin) : std::nullopt;
  current_residual_ = residual;
}

// --------------------------------------------------------------- RandomFit

std::optional<BinId> RandomFitStrategy::select(double size) {
  // Reservoir-sample uniformly over fitting bins in one pass.
  std::optional<BinId> chosen;
  std::size_t seen = 0;
  for (const auto& [bin, residual] : open_) {
    if (!model_.fits(size, residual)) continue;
    ++seen;
    if (std::uniform_int_distribution<std::size_t>(1, seen)(rng_) == 1) {
      chosen = bin;
    }
  }
  return chosen;
}

void RandomFitStrategy::on_bin_registered(BinId bin, double residual) {
  pos_of_[bin] = open_.size();
  open_.emplace_back(bin, residual);
}

void RandomFitStrategy::on_residual_changed(BinId bin, double residual) {
  open_[pos_of_.at(bin)].second = residual;
}

void RandomFitStrategy::on_bin_closed(BinId bin) {
  auto it = pos_of_.find(bin);
  DBP_REQUIRE(it != pos_of_.end(), "closing an unregistered bin");
  const std::size_t pos = it->second;
  pos_of_.erase(it);
  if (pos + 1 != open_.size()) {
    open_[pos] = open_.back();
    pos_of_[open_[pos].first] = pos;
  }
  open_.pop_back();
}

void RandomFitStrategy::save_state(ByteWriter& out) const {
  std::ostringstream engine;
  engine << rng_;
  out.str(engine.str());
  out.u64(open_.size());
  for (const auto& [bin, residual] : open_) {
    out.u64(bin);
    out.f64(residual);
  }
}

void RandomFitStrategy::load_state(ByteReader& in) {
  std::istringstream engine(in.str());
  engine >> rng_;
  if (engine.fail()) throw CorruptionError("malformed random-fit engine state");
  // Replace the registration-replay order with the persisted swap-remove
  // order: select() iterates open_, so the order is part of the trajectory.
  const std::uint64_t count = in.u64();
  if (count != open_.size()) {
    throw CorruptionError("random-fit open-bin census mismatch");
  }
  std::vector<std::pair<BinId, double>> restored;
  restored.reserve(count);
  pos_of_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    const BinId bin = in.u64();
    const double residual = in.f64();
    if (!pos_of_.emplace(bin, restored.size()).second) {
      throw CorruptionError("random-fit open list repeats a bin");
    }
    restored.emplace_back(bin, residual);
  }
  open_ = std::move(restored);
}

// ------------------------------------------------------------- MoveToFront

std::optional<BinId> MoveToFrontStrategy::select(double size) {
  for (auto it = order_.begin(); it != order_.end(); ++it) {
    if (model_.fits(size, residual_of_.at(*it))) {
      // Selection implies placement under the Any Fit packer, so the
      // recency promotion happens here.
      order_.splice(order_.begin(), order_, it);
      return order_.front();
    }
  }
  return std::nullopt;
}

void MoveToFrontStrategy::on_bin_registered(BinId bin, double residual) {
  order_.push_front(bin);
  where_[bin] = order_.begin();
  residual_of_[bin] = residual;
}

void MoveToFrontStrategy::on_residual_changed(BinId bin, double residual) {
  residual_of_.at(bin) = residual;
}

void MoveToFrontStrategy::on_bin_closed(BinId bin) {
  auto it = where_.find(bin);
  DBP_REQUIRE(it != where_.end(), "closing an unregistered bin");
  order_.erase(it->second);
  where_.erase(it);
  residual_of_.erase(bin);
}

void MoveToFrontStrategy::save_state(ByteWriter& out) const {
  out.u64(order_.size());
  for (const BinId bin : order_) out.u64(bin);
}

void MoveToFrontStrategy::load_state(ByteReader& in) {
  const std::uint64_t count = in.u64();
  if (count != residual_of_.size()) {
    throw CorruptionError("move-to-front recency census mismatch");
  }
  // The registration replay left order_ in opening order; rebuild the
  // persisted recency order over the same bin set.
  order_.clear();
  where_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    const BinId bin = in.u64();
    if (!residual_of_.contains(bin) || where_.contains(bin)) {
      throw CorruptionError("move-to-front recency list names a foreign bin");
    }
    order_.push_back(bin);
    where_[bin] = std::prev(order_.end());
  }
}

}  // namespace dbp
