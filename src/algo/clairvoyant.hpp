// Clairvoyant (departure-aware) packers — NON-PAPER baselines.
//
// The paper's model hides departure times from the online algorithm
// (Section 1); its related work covers interval scheduling with bounded
// parallelism (Flammini et al.), where job end times ARE known and the goal
// is minimum total busy time. These packers implement that semi-online
// regime so experiments can quantify the *value of departure knowledge*:
// how much of First Fit's gap to OPT is due to not knowing departures.
#pragma once

#include <map>
#include <set>
#include <unordered_map>

#include "algo/packer.hpp"
#include "core/types.hpp"

namespace dbp {

/// Base class for packers that are allowed to see the full Item (including
/// its departure time) at arrival. The plain online entry point is sealed
/// off: calling it is a contract violation, which keeps the online/semi-
/// online distinction structural.
class ClairvoyantPacker : public Packer {
 public:
  using Packer::Packer;

  /// Clairvoyant arrival: the full item, departure included.
  virtual BinId on_arrival_clairvoyant(const Item& item) = 0;

  /// Online arrivals are rejected — this packer needs departure times.
  BinId on_arrival(const ArrivingItem& item) final;

  [[nodiscard]] static constexpr bool is_clairvoyant() noexcept { return true; }
};

/// Departure-aware Any Fit variants. Both obey the Any Fit opening rule
/// (new bin only when nothing fits); they differ in *which* fitting bin
/// they prefer:
///
///  * kAlignDepartures: the bin whose current latest departure is closest
///    to the item's departure — clusters items that end together so bins
///    close promptly (interval-scheduling intuition).
///  * kMinimizeExtension: the bin whose busy period grows the least by
///    accepting the item (greedy total-busy-time minimization, cf.
///    Flammini et al. 2009).
class DurationAwarePacker final : public ClairvoyantPacker {
 public:
  enum class Policy { kAlignDepartures, kMinimizeExtension };

  DurationAwarePacker(CostModel model, Policy policy);

  [[nodiscard]] std::string name() const override;

  BinId on_arrival_clairvoyant(const Item& item) override;
  void on_departure(ItemId item, Time now) override;

  /// Latest departure among items currently in `bin` (the bin's projected
  /// close time). Requires the bin to be open and non-empty.
  [[nodiscard]] Time projected_close(BinId bin) const;

 private:
  Policy policy_;
  /// Per-open-bin multiset of resident departure times.
  // DBP_LINT_ALLOW(unordered-container): the arrival scan minimizes the
  // strict total order (score, bin id), so the argmin is independent of
  // map iteration order; all other access is by bin id.
  std::unordered_map<BinId, std::multiset<Time>> departures_;
  // DBP_LINT_ALLOW(unordered-container): departure lookup by item id only.
  std::unordered_map<ItemId, Time> departure_of_;
};

}  // namespace dbp
