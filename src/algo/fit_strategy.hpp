// Bin-selection policies for the Any Fit family (paper Section 3.2).
//
// A FitStrategy owns the *policy* half of an online packer: given an
// arriving item's size, pick one of the open bins registered with this
// strategy, or decline (meaning a new bin must be opened). The mechanics
// (levels, usage periods) live in BinManager.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "algo/bin_manager.hpp"
#include "core/types.hpp"

namespace dbp {

/// Interface implemented by each member of the Any Fit family.
///
/// Contract (enforced by AnyFitPacker's paranoid mode in tests): `select`
/// must return a bin iff at least one registered open bin can accommodate
/// the item — Any Fit algorithms "open a new bin only when no currently
/// opened bin can accommodate the item" (paper Section 1).
class FitStrategy {
 public:
  virtual ~FitStrategy() = default;

  /// Human-readable policy name ("first-fit", "best-fit", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses an open registered bin that fits `size`, or nullopt.
  [[nodiscard]] virtual std::optional<BinId> select(double size) = 0;

  /// A bin freshly opened for this strategy's pool.
  virtual void on_bin_registered(BinId bin, double residual) = 0;

  /// The bin's residual capacity changed (item placed or departed).
  virtual void on_residual_changed(BinId bin, double residual) = 0;

  /// The bin emptied and closed; it will never be offered again.
  virtual void on_bin_closed(BinId bin) = 0;

  /// True when the strategy honours the Any Fit contract (returns a bin
  /// whenever one fits). Next Fit overrides this to false.
  [[nodiscard]] virtual bool any_fit_contract() const { return true; }

  /// Capacity hint: at most `bins_hint` bins will ever be registered.
  /// Implementations pre-size their indexes so the steady-state event loop
  /// performs no heap allocation; correctness never depends on the hint.
  virtual void reserve(std::size_t bins_hint) { (void)bins_hint; }

  /// Checkpoint hooks. Restore first replays on_bin_registered over every
  /// open bin in ascending BinId order (= opening order), which fully
  /// rebuilds strategies whose choice is a pure function of (bin, residual)
  /// registrations — First/Last/Best/Worst Fit. Strategies with *extra*
  /// history (Next Fit's current bin, Random Fit's RNG position and scan
  /// order, Move-To-Front's recency list) override these to persist it;
  /// load_state runs after the registration replay and overrides it.
  virtual void save_state(ByteWriter& out) const { (void)out; }
  virtual void load_state(ByteReader& in) { (void)in; }
};

}  // namespace dbp
