#include "algo/reference_strategies.hpp"

#include "core/error.hpp"

namespace dbp {

// ------------------------------------------------------ FirstFit (reference)

std::optional<BinId> FirstFitReferenceStrategy::select(double size) {
  auto pos = residuals_.find_leftmost(
      [&](double residual) { return model_.fits(size, residual); });
  if (!pos) return std::nullopt;
  return bin_at_[*pos];
}

void FirstFitReferenceStrategy::on_bin_registered(BinId bin, double residual) {
  const std::size_t pos = residuals_.push_back(residual);
  bin_at_.push_back(bin);
  DBP_CHECK(bin_at_.size() == pos + 1, "first-fit position bookkeeping");
  pos_of_[bin] = pos;
}

void FirstFitReferenceStrategy::on_residual_changed(BinId bin, double residual) {
  residuals_.assign(pos_of_.at(bin), residual);
}

void FirstFitReferenceStrategy::on_bin_closed(BinId bin) {
  auto it = pos_of_.find(bin);
  DBP_REQUIRE(it != pos_of_.end(), "closing an unregistered bin");
  residuals_.deactivate(it->second);
  pos_of_.erase(it);
}

// ------------------------------------------------------- BestFit (reference)

std::optional<BinId> BestFitReferenceStrategy::select(double size) {
  // Smallest residual r with fits(size, r), i.e. r >= size - tolerance.
  auto it = by_residual_.lower_bound({size - model_.fit_tolerance, 0});
  if (it == by_residual_.end()) return std::nullopt;
  DBP_CHECK(model_.fits(size, it->first), "best-fit index out of sync");
  return it->second;
}

void BestFitReferenceStrategy::on_bin_registered(BinId bin, double residual) {
  const bool inserted = by_residual_.emplace(residual, bin).second;
  DBP_CHECK(inserted, "duplicate best-fit registration");
  residual_of_[bin] = residual;
}

void BestFitReferenceStrategy::on_residual_changed(BinId bin, double residual) {
  auto it = residual_of_.find(bin);
  DBP_REQUIRE(it != residual_of_.end(), "residual change for unregistered bin");
  by_residual_.erase({it->second, bin});
  by_residual_.emplace(residual, bin);
  it->second = residual;
}

void BestFitReferenceStrategy::on_bin_closed(BinId bin) {
  auto it = residual_of_.find(bin);
  DBP_REQUIRE(it != residual_of_.end(), "closing an unregistered bin");
  by_residual_.erase({it->second, bin});
  residual_of_.erase(it);
}

}  // namespace dbp
