#include "algo/packer.hpp"

#include "algo/clairvoyant.hpp"

namespace dbp {

void Packer::replay(const Instance& instance, std::span<const Event> events) {
  // Clairvoyant (departure-aware) baselines get the full item; online
  // packers get only the ArrivingItem slice.
  auto* clairvoyant = dynamic_cast<ClairvoyantPacker*>(this);
  for (const Event& event : events) {
    if (event.kind == EventKind::kArrival) {
      // Arrival ids come in id order (ids are assigned in arrival order), so
      // this item load walks the instance sequentially.
      const Item& item = instance.item(event.item);
      if (clairvoyant != nullptr) {
        clairvoyant->on_arrival_clairvoyant(item);
      } else {
        // event.time was copied from item.arrival at build time, so the
        // slice is bit-identical to one built from the item.
        on_arrival(ArrivingItem{event.item, event.time, item.size});
      }
    } else {
      // A departure event already carries (id, departure time) verbatim —
      // rereading them through the item would be a random access per event.
      on_departure(event.item, event.time);
    }
  }
}

}  // namespace dbp
