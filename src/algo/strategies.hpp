// Concrete Any Fit family members.
//
// First Fit and Best Fit are the algorithms analyzed in the paper
// (Sections 4.1-4.3); Worst/Next/Last/Random/Move-to-front Fit are
// well-known Any Fit variants included as empirical baselines (DESIGN.md
// Section 7) — every one of them obeys the Any Fit contract, so Theorem 1's
// lower bound of mu applies to each.
//
// Hot-path memory architecture (docs/performance.md): BinIds are dense by
// construction, so every per-bin lookup is a vector index — no hashing, no
// node-based containers, and with reserve() called ahead of a run, no heap
// allocation in the steady-state event loop. The pre-arena node-based
// implementations survive as algo/reference_strategies.hpp for the same-run
// benchmark baseline and the differential tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "algo/fit_strategy.hpp"
#include "algo/segment_tree.hpp"

namespace dbp {

/// First Fit: the earliest-opened bin that accommodates the item
/// (paper Section 3.2). O(log m) per operation via a max segment tree
/// indexed by opening order; position lookup is a dense BinId-indexed
/// vector.
///
/// Positions of closed bins are dead weight: without reuse the tree's depth
/// (and footprint) grows with *total* bins opened, even when only a handful
/// are concurrently open. Whenever the tree fills and at least half its
/// positions are dead, compact() re-registers the live bins in the same
/// relative order — selection depends only on that order, so decisions are
/// unchanged while the tree stays within 4x the peak open-bin count and its
/// hot path stays cache-resident.
class FirstFitStrategy final : public FitStrategy {
 public:
  explicit FirstFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "first-fit"; }
  // Hot-path handlers are defined inline at the bottom of this header so the
  // statically-typed packer (StaticAnyFitPacker) can inline them into the
  // event loop.
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  void reserve(std::size_t bins_hint) override;

 private:
  static constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

  void compact();

  CostModel model_;
  MaxSegmentTree residuals_;          // position = registration order
  std::vector<BinId> bin_at_;         // position -> bin
  std::vector<std::size_t> pos_of_;   // bin -> position (kNoPos = unregistered)
  std::size_t active_ = 0;            // currently registered bins
  std::vector<std::pair<double, BinId>> scratch_;  // compaction gather buffer
};

/// Last Fit: the *latest*-opened bin that accommodates the item. Mirror
/// image of First Fit (rightmost descent), including the dead-position
/// compaction.
class LastFitStrategy final : public FitStrategy {
 public:
  explicit LastFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "last-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  void reserve(std::size_t bins_hint) override;

 private:
  static constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

  void compact();

  CostModel model_;
  MaxSegmentTree residuals_;
  std::vector<BinId> bin_at_;
  std::vector<std::size_t> pos_of_;   // bin -> position (kNoPos = unregistered)
  std::size_t active_ = 0;
  std::vector<std::pair<double, BinId>> scratch_;
};

/// Best Fit: the open bin with the smallest residual capacity that still
/// accommodates the item (paper Section 3.2); ties broken toward the
/// earliest-opened bin. The (residual, id) index is a flat sorted vector —
/// value-identical to the reference std::set ordering (std::pair's
/// lexicographic compare) at a fraction of the node churn.
class BestFitStrategy final : public FitStrategy {
 public:
  explicit BestFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "best-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  void reserve(std::size_t bins_hint) override;

 private:
  static constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

  /// Moves the entry at `pos` to the sorted position of `to` by shifting the
  /// entries in between (updating their dense positions as they move) — no
  /// binary search, no node churn; the array contents end up exactly as a
  /// set erase+insert would leave them.
  void relocate(std::size_t pos, std::pair<double, BinId> to);

  CostModel model_;
  std::vector<std::pair<double, BinId>> by_residual_;  // sorted ascending
  std::vector<std::size_t> pos_of_;  // bin -> index in by_residual_ (kNoPos)
};

/// Worst Fit: the open bin with the *largest* residual capacity that
/// accommodates the item; ties toward the earliest-opened bin. Same flat
/// index as Best Fit under the (residual asc, id desc) order, so back() is
/// the (max residual, min id) entry.
class WorstFitStrategy final : public FitStrategy {
 public:
  explicit WorstFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "worst-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  void reserve(std::size_t bins_hint) override;

 private:
  struct Order {
    // residual ascending, id descending => back() = (max residual, min id).
    bool operator()(const std::pair<double, BinId>& a,
                    const std::pair<double, BinId>& b) const noexcept {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
  };

  static constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

  void relocate(std::size_t pos, std::pair<double, BinId> to);

  CostModel model_;
  std::vector<std::pair<double, BinId>> by_residual_;  // sorted by Order
  std::vector<std::size_t> pos_of_;  // bin -> index in by_residual_ (kNoPos)
};

/// Next Fit adapted to dynamic bin packing: only the most recently opened
/// bin is a candidate; once an item fails to fit there, a new bin is opened
/// and the old one never receives items again (it stays open until its items
/// depart). NOTE: Next Fit is *not* an Any Fit algorithm — it may decline
/// even when some older open bin has room.
class NextFitStrategy final : public FitStrategy {
 public:
  explicit NextFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "next-fit"; }
  [[nodiscard]] bool any_fit_contract() const override { return false; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  // The current bin is real history, not derivable from the open bins: a
  // failed fit retires it even though it stays open in the BinManager.
  void save_state(ByteWriter& out) const override;
  void load_state(ByteReader& in) override;

 private:
  CostModel model_;
  std::optional<BinId> current_;
  double current_residual_ = 0.0;
};

/// Random Fit: a uniformly random open bin among those that accommodate the
/// item. O(open bins) per arrival; deterministic under a fixed seed.
class RandomFitStrategy final : public FitStrategy {
 public:
  RandomFitStrategy(const CostModel& model, std::uint64_t seed)
      : model_(model), rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "random-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  void reserve(std::size_t bins_hint) override;
  // Persists the engine *position* and the swap-remove scan order of open_
  // — both consumed by the reservoir sampler, neither derivable from the
  // set of open bins.
  void save_state(ByteWriter& out) const override;
  void load_state(ByteReader& in) override;

 private:
  static constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

  CostModel model_;
  std::mt19937_64 rng_;
  std::vector<std::pair<BinId, double>> open_;  // unordered (bin, residual)
  std::vector<std::size_t> pos_of_;  // bin -> index in open_ (kNoPos = closed)
};

/// Move-To-Front Fit: bins kept in a recency list; the first fitting bin in
/// the list receives the item and moves to the front. A locality-exploiting
/// Any Fit variant. The recency list is intrusive — prev/next links live in
/// dense BinId-indexed vectors, so promotion and closure are O(1) with no
/// node allocation.
class MoveToFrontStrategy final : public FitStrategy {
 public:
  explicit MoveToFrontStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "move-to-front-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  void reserve(std::size_t bins_hint) override;
  // Persists the recency order, which encodes the full placement history.
  void save_state(ByteWriter& out) const override;
  void load_state(ByteReader& in) override;

 private:
  void link_front(BinId bin);
  void link_back(BinId bin);
  void unlink(BinId bin);
  void grow_to(BinId bin);
  [[nodiscard]] bool registered(BinId bin) const noexcept;

  CostModel model_;
  BinId head_ = kNoBin;  // most recently used
  BinId tail_ = kNoBin;  // least recently used
  std::size_t list_size_ = 0;
  std::vector<BinId> next_;          // bin -> next (toward tail)
  std::vector<BinId> prev_;          // bin -> previous (toward head)
  std::vector<double> residual_of_;  // bin -> residual (NaN = unregistered)
};

// ------------------------------------------------------------------------
// Inline hot-path definitions. These live in the header so that the
// statically-typed packer instantiations (StaticAnyFitPacker<...> in the
// factory) can inline the per-event policy work into the event loop; the
// dynamic FitStrategy interface keeps working unchanged. Cold paths
// (reserve, compaction, persistence, the O(open) strategies) stay in
// strategies.cpp.
// ------------------------------------------------------------------------

// ---------------------------------------------------------------- FirstFit

inline std::optional<BinId> FirstFitStrategy::select(double size) {
  // The descent inlines CostModel::fits exactly: size <= residual + tol.
  auto pos = residuals_.find_first_fit(size, model_.fit_tolerance);
  if (!pos) return std::nullopt;
  return bin_at_[*pos];
}

inline void FirstFitStrategy::on_bin_registered(BinId bin, double residual) {
  // Compact instead of growing when at least half the positions are dead:
  // the tree depth then tracks the *peak open* bin count, not the total.
  if (residuals_.size() == residuals_.capacity() &&
      2 * active_ <= residuals_.capacity()) {
    compact();
  }
  const std::size_t pos = residuals_.push_back(residual);
  bin_at_.push_back(bin);
  DBP_CHECK(bin_at_.size() == pos + 1, "first-fit position bookkeeping");
  if (bin >= pos_of_.size()) {
    pos_of_.resize(static_cast<std::size_t>(bin) + 1, kNoPos);
  }
  pos_of_[static_cast<std::size_t>(bin)] = pos;
  ++active_;
}

inline void FirstFitStrategy::on_residual_changed(BinId bin, double residual) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "residual change for unregistered bin");
  residuals_.assign(pos_of_[static_cast<std::size_t>(bin)], residual);
}

inline void FirstFitStrategy::on_bin_closed(BinId bin) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "closing an unregistered bin");
  residuals_.deactivate(pos_of_[static_cast<std::size_t>(bin)]);
  pos_of_[static_cast<std::size_t>(bin)] = kNoPos;
  --active_;
}

// ----------------------------------------------------------------- LastFit

inline std::optional<BinId> LastFitStrategy::select(double size) {
  auto pos = residuals_.find_last_fit(size, model_.fit_tolerance);
  if (!pos) return std::nullopt;
  return bin_at_[*pos];
}

inline void LastFitStrategy::on_bin_registered(BinId bin, double residual) {
  if (residuals_.size() == residuals_.capacity() &&
      2 * active_ <= residuals_.capacity()) {
    compact();
  }
  const std::size_t pos = residuals_.push_back(residual);
  bin_at_.push_back(bin);
  if (bin >= pos_of_.size()) {
    pos_of_.resize(static_cast<std::size_t>(bin) + 1, kNoPos);
  }
  pos_of_[static_cast<std::size_t>(bin)] = pos;
  ++active_;
}

inline void LastFitStrategy::on_residual_changed(BinId bin, double residual) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "residual change for unregistered bin");
  residuals_.assign(pos_of_[static_cast<std::size_t>(bin)], residual);
}

inline void LastFitStrategy::on_bin_closed(BinId bin) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "closing an unregistered bin");
  residuals_.deactivate(pos_of_[static_cast<std::size_t>(bin)]);
  pos_of_[static_cast<std::size_t>(bin)] = kNoPos;
  --active_;
}

// ----------------------------------------------------------------- BestFit

inline std::optional<BinId> BestFitStrategy::select(double size) {
  // Smallest residual r with fits(size, r), i.e. r >= size - tolerance —
  // the first entry not below the key, exactly what the reference std::set
  // lower_bound returns (std::pair's lexicographic operator< over the same
  // (residual, id) keys). Small indexes scan linearly: the loop branch is
  // predictable where a binary search mispredicts half its probes.
  const std::pair<double, BinId> key{size - model_.fit_tolerance, 0};
  const auto* const data = by_residual_.data();
  const std::size_t count = by_residual_.size();
  std::size_t i;
  if (count <= 64) {
    for (i = 0; i < count && data[i] < key; ++i) {
    }
  } else {
    i = static_cast<std::size_t>(
        std::lower_bound(data, data + count, key) - data);
  }
  if (i == count) return std::nullopt;
  DBP_CHECK(model_.fits(size, data[i].first), "best-fit index out of sync");
  return data[i].second;
}

inline void BestFitStrategy::relocate(std::size_t pos,
                                      std::pair<double, BinId> to) {
  auto* const data = by_residual_.data();
  const std::size_t count = by_residual_.size();
  while (pos > 0 && to < data[pos - 1]) {
    data[pos] = data[pos - 1];
    pos_of_[static_cast<std::size_t>(data[pos].second)] = pos;
    --pos;
  }
  while (pos + 1 < count && data[pos + 1] < to) {
    data[pos] = data[pos + 1];
    pos_of_[static_cast<std::size_t>(data[pos].second)] = pos;
    ++pos;
  }
  data[pos] = to;
  pos_of_[static_cast<std::size_t>(to.second)] = pos;
}

inline void BestFitStrategy::on_bin_registered(BinId bin, double residual) {
  if (bin >= pos_of_.size()) {
    pos_of_.resize(static_cast<std::size_t>(bin) + 1, kNoPos);
  }
  DBP_CHECK(pos_of_[static_cast<std::size_t>(bin)] == kNoPos,
            "duplicate best-fit registration");
  // Append past the end, then let relocate shift it left into sorted place.
  const std::pair<double, BinId> entry{residual, bin};
  by_residual_.push_back(entry);
  pos_of_[static_cast<std::size_t>(bin)] = by_residual_.size() - 1;
  relocate(by_residual_.size() - 1, entry);
}

inline void BestFitStrategy::on_residual_changed(BinId bin, double residual) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "residual change for unregistered bin");
  relocate(pos_of_[static_cast<std::size_t>(bin)], {residual, bin});
}

inline void BestFitStrategy::on_bin_closed(BinId bin) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "closing an unregistered bin");
  std::size_t pos = pos_of_[static_cast<std::size_t>(bin)];
  auto* const data = by_residual_.data();
  const std::size_t count = by_residual_.size();
  for (; pos + 1 < count; ++pos) {
    data[pos] = data[pos + 1];
    pos_of_[static_cast<std::size_t>(data[pos].second)] = pos;
  }
  by_residual_.pop_back();
  pos_of_[static_cast<std::size_t>(bin)] = kNoPos;
}

// ---------------------------------------------------------------- WorstFit

inline std::optional<BinId> WorstFitStrategy::select(double size) {
  if (by_residual_.empty()) return std::nullopt;
  const auto& best = by_residual_.back();  // max residual, min id
  if (!model_.fits(size, best.first)) return std::nullopt;
  return best.second;
}

inline void WorstFitStrategy::relocate(std::size_t pos,
                                       std::pair<double, BinId> to) {
  constexpr Order kOrder{};
  auto* const data = by_residual_.data();
  const std::size_t count = by_residual_.size();
  while (pos > 0 && kOrder(to, data[pos - 1])) {
    data[pos] = data[pos - 1];
    pos_of_[static_cast<std::size_t>(data[pos].second)] = pos;
    --pos;
  }
  while (pos + 1 < count && kOrder(data[pos + 1], to)) {
    data[pos] = data[pos + 1];
    pos_of_[static_cast<std::size_t>(data[pos].second)] = pos;
    ++pos;
  }
  data[pos] = to;
  pos_of_[static_cast<std::size_t>(to.second)] = pos;
}

inline void WorstFitStrategy::on_bin_registered(BinId bin, double residual) {
  if (bin >= pos_of_.size()) {
    pos_of_.resize(static_cast<std::size_t>(bin) + 1, kNoPos);
  }
  DBP_CHECK(pos_of_[static_cast<std::size_t>(bin)] == kNoPos,
            "duplicate worst-fit registration");
  const std::pair<double, BinId> entry{residual, bin};
  by_residual_.push_back(entry);
  pos_of_[static_cast<std::size_t>(bin)] = by_residual_.size() - 1;
  relocate(by_residual_.size() - 1, entry);
}

inline void WorstFitStrategy::on_residual_changed(BinId bin, double residual) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "residual change for unregistered bin");
  relocate(pos_of_[static_cast<std::size_t>(bin)], {residual, bin});
}

inline void WorstFitStrategy::on_bin_closed(BinId bin) {
  DBP_REQUIRE(bin < pos_of_.size() && pos_of_[static_cast<std::size_t>(bin)] != kNoPos,
              "closing an unregistered bin");
  std::size_t pos = pos_of_[static_cast<std::size_t>(bin)];
  auto* const data = by_residual_.data();
  const std::size_t count = by_residual_.size();
  for (; pos + 1 < count; ++pos) {
    data[pos] = data[pos + 1];
    pos_of_[static_cast<std::size_t>(data[pos].second)] = pos;
  }
  by_residual_.pop_back();
  pos_of_[static_cast<std::size_t>(bin)] = kNoPos;
}

}  // namespace dbp
