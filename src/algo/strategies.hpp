// Concrete Any Fit family members.
//
// First Fit and Best Fit are the algorithms analyzed in the paper
// (Sections 4.1-4.3); Worst/Next/Last/Random/Move-to-front Fit are
// well-known Any Fit variants included as empirical baselines (DESIGN.md
// Section 7) — every one of them obeys the Any Fit contract, so Theorem 1's
// lower bound of mu applies to each.
#pragma once

#include <cstdint>
#include <list>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

#include "algo/fit_strategy.hpp"
#include "algo/segment_tree.hpp"

namespace dbp {

/// First Fit: the earliest-opened bin that accommodates the item
/// (paper Section 3.2). O(log m) per operation via a max segment tree
/// indexed by opening order.
class FirstFitStrategy final : public FitStrategy {
 public:
  explicit FirstFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "first-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;

 private:
  CostModel model_;
  MaxSegmentTree residuals_;                  // position = registration order
  std::vector<BinId> bin_at_;                 // position -> bin
  // DBP_LINT_ALLOW(unordered-container): position lookup by bin id only;
  // never iterated (selection order comes from the segment tree).
  std::unordered_map<BinId, std::size_t> pos_of_;
};

/// Last Fit: the *latest*-opened bin that accommodates the item. Mirror
/// image of First Fit (rightmost descent).
class LastFitStrategy final : public FitStrategy {
 public:
  explicit LastFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "last-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;

 private:
  CostModel model_;
  MaxSegmentTree residuals_;
  std::vector<BinId> bin_at_;
  // DBP_LINT_ALLOW(unordered-container): position lookup by bin id only;
  // never iterated (selection order comes from the segment tree).
  std::unordered_map<BinId, std::size_t> pos_of_;
};

/// Best Fit: the open bin with the smallest residual capacity that still
/// accommodates the item (paper Section 3.2); ties broken toward the
/// earliest-opened bin. O(log m) via an ordered (residual, id) index.
class BestFitStrategy final : public FitStrategy {
 public:
  explicit BestFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "best-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;

 private:
  CostModel model_;
  std::set<std::pair<double, BinId>> by_residual_;   // (residual, id) ascending
  // DBP_LINT_ALLOW(unordered-container): residual lookup by bin id only;
  // selection order comes from the ordered by_residual_ set.
  std::unordered_map<BinId, double> residual_of_;
};

/// Worst Fit: the open bin with the *largest* residual capacity that
/// accommodates the item; ties toward the earliest-opened bin.
class WorstFitStrategy final : public FitStrategy {
 public:
  explicit WorstFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "worst-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;

 private:
  struct Order {
    // residual ascending, id descending => rbegin() = (max residual, min id).
    bool operator()(const std::pair<double, BinId>& a,
                    const std::pair<double, BinId>& b) const noexcept {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    }
  };
  CostModel model_;
  std::set<std::pair<double, BinId>, Order> by_residual_;
  // DBP_LINT_ALLOW(unordered-container): residual lookup by bin id only;
  // selection order comes from the ordered by_residual_ set.
  std::unordered_map<BinId, double> residual_of_;
};

/// Next Fit adapted to dynamic bin packing: only the most recently opened
/// bin is a candidate; once an item fails to fit there, a new bin is opened
/// and the old one never receives items again (it stays open until its items
/// depart). NOTE: Next Fit is *not* an Any Fit algorithm — it may decline
/// even when some older open bin has room.
class NextFitStrategy final : public FitStrategy {
 public:
  explicit NextFitStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "next-fit"; }
  [[nodiscard]] bool any_fit_contract() const override { return false; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  // The current bin is real history, not derivable from the open bins: a
  // failed fit retires it even though it stays open in the BinManager.
  void save_state(ByteWriter& out) const override;
  void load_state(ByteReader& in) override;

 private:
  CostModel model_;
  std::optional<BinId> current_;
  double current_residual_ = 0.0;
};

/// Random Fit: a uniformly random open bin among those that accommodate the
/// item. O(open bins) per arrival; deterministic under a fixed seed.
class RandomFitStrategy final : public FitStrategy {
 public:
  RandomFitStrategy(const CostModel& model, std::uint64_t seed)
      : model_(model), rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "random-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  // Persists the engine *position* and the swap-remove scan order of open_
  // — both consumed by the reservoir sampler, neither derivable from the
  // set of open bins.
  void save_state(ByteWriter& out) const override;
  void load_state(ByteReader& in) override;

 private:
  CostModel model_;
  std::mt19937_64 rng_;
  std::vector<std::pair<BinId, double>> open_;       // unordered (bin, residual)
  // DBP_LINT_ALLOW(unordered-container): index lookup by bin id only; the
  // random choice draws from open_ by seeded RNG index, never map order.
  std::unordered_map<BinId, std::size_t> pos_of_;    // bin -> index in open_
};

/// Move-To-Front Fit: bins kept in a recency list; the first fitting bin in
/// the list receives the item and moves to the front. A locality-exploiting
/// Any Fit variant.
class MoveToFrontStrategy final : public FitStrategy {
 public:
  explicit MoveToFrontStrategy(const CostModel& model) : model_(model) {}

  [[nodiscard]] std::string name() const override { return "move-to-front-fit"; }
  [[nodiscard]] std::optional<BinId> select(double size) override;
  void on_bin_registered(BinId bin, double residual) override;
  void on_residual_changed(BinId bin, double residual) override;
  void on_bin_closed(BinId bin) override;
  // Persists the recency order, which encodes the full placement history.
  void save_state(ByteWriter& out) const override;
  void load_state(ByteReader& in) override;

 private:
  CostModel model_;
  std::list<BinId> order_;  // front = most recently used
  // DBP_LINT_ALLOW(unordered-container): iterator/residual lookups by bin
  // id only; scan order is the explicit recency list order_.
  std::unordered_map<BinId, std::list<BinId>::iterator> where_;
  // DBP_LINT_ALLOW(unordered-container): lookup by bin id only.
  std::unordered_map<BinId, double> residual_of_;
};

}  // namespace dbp
