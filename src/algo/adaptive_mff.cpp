#include "algo/adaptive_mff.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/audit.hpp"
#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp {

AdaptiveMffPacker::AdaptiveMffPacker(CostModel model)
    : Packer(model), small_pool_(model), large_pool_(model) {}

BinId AdaptiveMffPacker::on_arrival(const ArrivingItem& item) {
  DBP_REQUIRE(model().fits(item.size, model().bin_capacity),
              "item larger than the bin capacity");
  const bool large = item.size >= threshold();
  FitStrategy& pool = large ? static_cast<FitStrategy&>(large_pool_)
                            : static_cast<FitStrategy&>(small_pool_);
  const std::size_t candidates = manager_.open_count();
  std::optional<BinId> chosen = pool.select(item.size);
  BinId bin;
  if (chosen) {
    bin = *chosen;
    DBP_AUDIT_CHECK(bin_is_large_.at(bin) == large,
                    "adaptive MFF routed an item to the wrong pool's bin");
#if DBP_AUDIT_ENABLED
    // Pool-local First Fit scan-order monotonicity (both pools are FF).
    for (const BinId open : manager_.open_bins()) {
      if (open >= bin) break;
      if (bin_is_large_.at(open) != large) continue;
      DBP_AUDIT_CHECK(!manager_.fits(item.size, open),
                      "adaptive MFF skipped an earlier-opened fitting bin");
    }
#endif
  } else {
    bin = manager_.open_bin(item.arrival);
    bin_is_large_[bin] = large;
    pool.on_bin_registered(bin, manager_.residual(bin));
  }
  manager_.place(item, bin);
  pool.on_residual_changed(bin, manager_.residual(bin));
  arrival_of_[item.id] = item.arrival;
  obs::trace_arrival(item.arrival, item.id, item.size, bin, candidates);
  return bin;
}

void AdaptiveMffPacker::save_extra(ByteWriter& out) const {
  // Maps are persisted in sorted key order so the byte stream is a pure
  // function of the logical state, not of hash iteration order.
  std::vector<std::pair<BinId, bool>> pools(bin_is_large_.begin(),
                                            bin_is_large_.end());
  std::sort(pools.begin(), pools.end());
  out.u64(pools.size());
  for (const auto& [bin, large] : pools) {
    out.u64(bin);
    out.boolean(large);
  }
  std::vector<std::pair<ItemId, Time>> arrivals(arrival_of_.begin(),
                                                arrival_of_.end());
  std::sort(arrivals.begin(), arrivals.end());
  out.u64(arrivals.size());
  for (const auto& [item, arrival] : arrivals) {
    out.u64(item);
    out.f64(arrival);
  }
  out.f64(mu_hat_);
  out.f64(min_len_seen_);
  out.f64(max_len_seen_);
  small_pool_.save_state(out);
  large_pool_.save_state(out);
}

void AdaptiveMffPacker::restore_extra(ByteReader& in) {
  bin_is_large_.clear();
  arrival_of_.clear();
  const std::uint64_t pool_count = in.u64();
  if (pool_count != manager_.open_count()) {
    throw CorruptionError("adaptive-mff pool census disagrees with open bins");
  }
  for (std::uint64_t i = 0; i < pool_count; ++i) {
    const BinId bin = in.u64();
    const bool large = in.boolean();
    if (bin >= manager_.total_bins_opened() || !manager_.is_open(bin) ||
        !bin_is_large_.emplace(bin, large).second) {
      throw CorruptionError("adaptive-mff pool map names an invalid bin");
    }
  }
  const std::uint64_t arrival_count = in.u64();
  if (arrival_count != manager_.active_item_count()) {
    throw CorruptionError("adaptive-mff arrival census disagrees with items");
  }
  for (std::uint64_t i = 0; i < arrival_count; ++i) {
    const ItemId item = in.u64();
    const Time arrival = in.f64();
    if (!arrival_of_.emplace(item, arrival).second) {
      throw CorruptionError("adaptive-mff arrival map repeats an item");
    }
  }
  mu_hat_ = in.f64();
  min_len_seen_ = in.f64();
  max_len_seen_ = in.f64();
  // Pool registration replay in opening order, routed by the restored map.
  for (const BinId bin : manager_.open_bins()) {
    FitStrategy& pool = bin_is_large_.at(bin)
                            ? static_cast<FitStrategy&>(large_pool_)
                            : static_cast<FitStrategy&>(small_pool_);
    pool.on_bin_registered(bin, manager_.residual(bin));
  }
  small_pool_.load_state(in);
  large_pool_.load_state(in);
}

void AdaptiveMffPacker::on_departure(ItemId item, Time now) {
  auto arrival_it = arrival_of_.find(item);
  DBP_REQUIRE(arrival_it != arrival_of_.end(), "unknown item id");
  const Time length = now - arrival_it->second;
  arrival_of_.erase(arrival_it);
  // Update the completed-interval statistics and hence mu_hat. Zero-length
  // observations (same-timestamp arrive/depart) are ignored: they would
  // make mu_hat infinite while the paper's model has d(r) > a(r).
  if (length > 0.0) {
    min_len_seen_ = std::min(min_len_seen_, length);
    max_len_seen_ = std::max(max_len_seen_, length);
    mu_hat_ = std::max(1.0, max_len_seen_ / min_len_seen_);
  }

  const DepartureOutcome outcome = manager_.remove(item, now);
  obs::trace_departure(now, item, outcome.bin);
  FitStrategy& pool = bin_is_large_.at(outcome.bin)
                          ? static_cast<FitStrategy&>(large_pool_)
                          : static_cast<FitStrategy&>(small_pool_);
  if (outcome.bin_closed) {
    pool.on_bin_closed(outcome.bin);
    bin_is_large_.erase(outcome.bin);
  } else {
    pool.on_residual_changed(outcome.bin, manager_.residual(outcome.bin));
  }
}

}  // namespace dbp
