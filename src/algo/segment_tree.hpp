// Max segment tree over an append-only position space, with leftmost /
// rightmost fit descent.
//
// First Fit needs "the earliest-opened open bin whose residual capacity
// accommodates the item"; with residuals stored at bin-opening positions and
// max aggregation, that query is an O(log m) leftmost descent instead of the
// O(m) scan of a textbook implementation. Last Fit uses the symmetric
// rightmost descent.
//
// The hot-path queries are the non-template find_first_fit/find_last_fit
// threshold descents: each level chooses a child from one comparison against
// contiguous storage, with no per-node predicate callback. They inline the
// *exact* CostModel::fits expression `size <= residual + tolerance` — the
// algebraically equivalent `residual >= size - tolerance` rounds differently
// and would change fit decisions, so it must never be substituted. The
// template find_leftmost/find_rightmost predicate descents remain for
// arbitrary monotone queries (and as the reference implementation the
// differential tests compare against).
#pragma once

#include <algorithm>
#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "core/error.hpp"

namespace dbp {

/// Segment tree keyed by dense positions 0..size-1 storing doubles with max
/// aggregation. Positions are appended with push_back and may later be
/// deactivated by setting them to -infinity.
class MaxSegmentTree {
 public:
  MaxSegmentTree() = default;

  static constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Appends a new position holding `value`; returns its index.
  std::size_t push_back(double value) {
    const std::size_t pos = size_;
    if (size_ == capacity_) grow();
    ++size_;
    assign(pos, value);
    return pos;
  }

  /// Overwrites the value at `pos`.
  void assign(std::size_t pos, double value) {
    DBP_REQUIRE(pos < size_, "segment tree position out of range");
    std::size_t node = capacity_ + pos;
    tree_[node] = value;
    // Unconditional climb to the root: with compaction keeping the tree
    // small the ~6 levels are L1 hits, and a branchless climb beats an
    // "aggregate unchanged" early exit (its data-dependent break point
    // mispredicts, costing more than the skipped levels save).
    for (node /= 2; node >= 1; node /= 2) {
      tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);
    }
  }

  /// Marks a position as permanently unusable (e.g. the bin closed).
  void deactivate(std::size_t pos) { assign(pos, kNegInf); }

  [[nodiscard]] double value_at(std::size_t pos) const {
    DBP_REQUIRE(pos < size_, "segment tree position out of range");
    return tree_[capacity_ + pos];
  }

  /// Maximum over all positions (kNegInf when empty).
  [[nodiscard]] double max_value() const noexcept {
    return capacity_ == 0 ? kNegInf : tree_[1];
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Reserves *physical* storage so the tree never heap-allocates up to
  /// `positions` appends. The logical capacity (and with it the descent
  /// depth) is untouched: it still grows on demand, so a tree that only ever
  /// holds a handful of live positions keeps its hot path in L1 instead of
  /// paying for the worst case on every query.
  void reserve(std::size_t positions) {
    std::size_t full = 1;
    while (full < positions) full *= 2;
    tree_.reserve(2 * full);
  }

  /// Forgets every position while keeping the allocated storage — the arena
  /// reset idiom, so a reused tree (e.g. FFD scratch across OPT snapshots)
  /// performs zero heap allocations in steady state.
  void clear() noexcept {
    std::fill(tree_.begin(), tree_.end(), kNegInf);
    size_ = 0;
  }

  /// Smallest position `p` with `size <= value(p) + tolerance` — i.e. the
  /// leftmost position an item of `size` fits under CostModel::fits — or
  /// nullopt. Branchless contiguous descent; O(log capacity).
  [[nodiscard]] std::optional<std::size_t> find_first_fit(
      double size, double tolerance) const {
    if (capacity_ == 0 || !(size <= tree_[1] + tolerance)) return std::nullopt;
    std::size_t node = 1;
    while (node < capacity_) {
      const std::size_t left = 2 * node;
      // Left child when the item fits somewhere under it, else right child.
      node = left + static_cast<std::size_t>(!(size <= tree_[left] + tolerance));
    }
    const std::size_t pos = node - capacity_;
    DBP_CHECK(pos < size_ && size <= tree_[node] + tolerance,
              "segment tree descent failed");
    return pos;
  }

  /// Largest fitting position (the Last Fit query), or nullopt.
  [[nodiscard]] std::optional<std::size_t> find_last_fit(
      double size, double tolerance) const {
    if (capacity_ == 0 || !(size <= tree_[1] + tolerance)) return std::nullopt;
    std::size_t node = 1;
    while (node < capacity_) {
      const std::size_t left = 2 * node;
      // Right child when the item fits somewhere under it, else left child.
      node = left + static_cast<std::size_t>(size <= tree_[left + 1] + tolerance);
    }
    const std::size_t pos = node - capacity_;
    DBP_CHECK(pos < size_ && size <= tree_[node] + tolerance,
              "segment tree descent failed");
    return pos;
  }

  /// Smallest position whose value satisfies `pred`, where `pred` must be
  /// monotone in the sense pred(x) && y >= x implies pred(y) (true for
  /// "residual fits this item"). O(log n). Reference/general path: the hot
  /// loops use the threshold descents above.
  template <typename Pred>
  [[nodiscard]] std::optional<std::size_t> find_leftmost(const Pred& pred) const {
    return find_directional<true>(pred);
  }

  /// Largest position whose value satisfies `pred` (same monotonicity).
  template <typename Pred>
  [[nodiscard]] std::optional<std::size_t> find_rightmost(const Pred& pred) const {
    return find_directional<false>(pred);
  }

 private:
  template <bool Leftmost, typename Pred>
  [[nodiscard]] std::optional<std::size_t> find_directional(const Pred& pred) const {
    if (capacity_ == 0 || !pred(tree_[1])) return std::nullopt;
    std::size_t node = 1;
    while (node < capacity_) {
      const std::size_t first = Leftmost ? 2 * node : 2 * node + 1;
      const std::size_t second = Leftmost ? 2 * node + 1 : 2 * node;
      node = pred(tree_[first]) ? first : second;
    }
    const std::size_t pos = node - capacity_;
    // The aggregate said some leaf qualifies; the descent found it.
    DBP_CHECK(pos < size_ && pred(tree_[node]), "segment tree descent failed");
    return pos;
  }

  void grow() { rebuild(capacity_ == 0 ? 1 : capacity_ * 2); }

  /// Doubles in place: leaves move up to their new offsets within the same
  /// buffer, so after reserve() this never heap-allocates. Values are copied
  /// verbatim and max-aggregation is exact, so queries are unaffected.
  void rebuild(std::size_t new_capacity) {
    tree_.resize(2 * new_capacity, kNegInf);
    std::copy_backward(tree_.begin() + static_cast<std::ptrdiff_t>(capacity_),
                       tree_.begin() + static_cast<std::ptrdiff_t>(capacity_ + size_),
                       tree_.begin() + static_cast<std::ptrdiff_t>(new_capacity + size_));
    std::fill(tree_.begin(), tree_.begin() + static_cast<std::ptrdiff_t>(new_capacity),
              kNegInf);
    std::fill(tree_.begin() + static_cast<std::ptrdiff_t>(new_capacity + size_),
              tree_.end(), kNegInf);
    capacity_ = new_capacity;
    for (std::size_t i = new_capacity - 1; i >= 1; --i) {
      tree_[i] = std::max(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  std::vector<double> tree_;  // 1-based heap layout; leaves at [capacity_, 2*capacity_)
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace dbp
