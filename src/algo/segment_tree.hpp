// Max segment tree over an append-only position space, with leftmost /
// rightmost predicate descent.
//
// First Fit needs "the earliest-opened open bin whose residual capacity
// accommodates the item"; with residuals stored at bin-opening positions and
// max aggregation, that query is an O(log m) leftmost descent instead of the
// O(m) scan of a textbook implementation. Last Fit uses the symmetric
// rightmost descent.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <vector>

#include "core/error.hpp"

namespace dbp {

/// Segment tree keyed by dense positions 0..size-1 storing doubles with max
/// aggregation. Positions are appended with push_back and may later be
/// deactivated by setting them to -infinity.
class MaxSegmentTree {
 public:
  MaxSegmentTree() = default;

  static constexpr double kNegInf = -std::numeric_limits<double>::infinity();

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Appends a new position holding `value`; returns its index.
  std::size_t push_back(double value) {
    const std::size_t pos = size_;
    if (size_ == capacity_) grow();
    ++size_;
    assign(pos, value);
    return pos;
  }

  /// Overwrites the value at `pos`.
  void assign(std::size_t pos, double value) {
    DBP_REQUIRE(pos < size_, "segment tree position out of range");
    std::size_t node = capacity_ + pos;
    tree_[node] = value;
    for (node /= 2; node >= 1; node /= 2) {
      tree_[node] = std::max(tree_[2 * node], tree_[2 * node + 1]);
    }
  }

  /// Marks a position as permanently unusable (e.g. the bin closed).
  void deactivate(std::size_t pos) { assign(pos, kNegInf); }

  [[nodiscard]] double value_at(std::size_t pos) const {
    DBP_REQUIRE(pos < size_, "segment tree position out of range");
    return tree_[capacity_ + pos];
  }

  /// Maximum over all positions (kNegInf when empty).
  [[nodiscard]] double max_value() const noexcept {
    return capacity_ == 0 ? kNegInf : tree_[1];
  }

  /// Smallest position whose value satisfies `pred`, where `pred` must be
  /// monotone in the sense pred(x) && y >= x implies pred(y) (true for
  /// "residual fits this item"). O(log n).
  template <typename Pred>
  [[nodiscard]] std::optional<std::size_t> find_leftmost(const Pred& pred) const {
    return find_directional<true>(pred);
  }

  /// Largest position whose value satisfies `pred` (same monotonicity).
  template <typename Pred>
  [[nodiscard]] std::optional<std::size_t> find_rightmost(const Pred& pred) const {
    return find_directional<false>(pred);
  }

 private:
  template <bool Leftmost, typename Pred>
  [[nodiscard]] std::optional<std::size_t> find_directional(const Pred& pred) const {
    if (capacity_ == 0 || !pred(tree_[1])) return std::nullopt;
    std::size_t node = 1;
    while (node < capacity_) {
      const std::size_t first = Leftmost ? 2 * node : 2 * node + 1;
      const std::size_t second = Leftmost ? 2 * node + 1 : 2 * node;
      node = pred(tree_[first]) ? first : second;
    }
    const std::size_t pos = node - capacity_;
    // The aggregate said some leaf qualifies; the descent found it.
    DBP_CHECK(pos < size_ && pred(tree_[node]), "segment tree descent failed");
    return pos;
  }

  void grow() {
    const std::size_t new_capacity = capacity_ == 0 ? 1 : capacity_ * 2;
    std::vector<double> new_tree(2 * new_capacity, kNegInf);
    for (std::size_t i = 0; i < size_; ++i) {
      new_tree[new_capacity + i] = tree_[capacity_ + i];
    }
    for (std::size_t i = new_capacity - 1; i >= 1; --i) {
      new_tree[i] = std::max(new_tree[2 * i], new_tree[2 * i + 1]);
    }
    tree_ = std::move(new_tree);
    capacity_ = new_capacity;
  }

  std::vector<double> tree_;  // 1-based heap layout; leaves at [capacity_, 2*capacity_)
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace dbp
