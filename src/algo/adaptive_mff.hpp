// Modified First Fit with mu *estimated online* — the practical variant the
// paper itself suggests (Section 4.4: "it is possible to estimate the
// max/min item interval length ratio mu according to the statistics of
// historical playing data").
//
// The packer starts with the mu-unknown split k = 8 and, as items depart,
// updates a running estimate mu_hat = max observed length / min observed
// length over COMPLETED items only (an online algorithm may use departures
// it has already witnessed). Future arrivals are classified against the
// current threshold W / (mu_hat + 7). Bins keep the pool they were opened
// in; only the classification of new items drifts.
#pragma once

#include <unordered_map>

#include "algo/fit_strategy.hpp"
#include "algo/packer.hpp"
#include "algo/strategies.hpp"

namespace dbp {

class AdaptiveMffPacker final : public Packer {
 public:
  explicit AdaptiveMffPacker(CostModel model);

  [[nodiscard]] std::string name() const override { return "adaptive-mff"; }

  BinId on_arrival(const ArrivingItem& item) override;
  void on_departure(ItemId item, Time now) override;

  /// Current estimate (1 until at least one item has completed).
  [[nodiscard]] double mu_estimate() const noexcept { return mu_hat_; }

  /// Current size threshold between the small and large pools.
  [[nodiscard]] double threshold() const noexcept {
    return manager_.model().bin_capacity / (mu_hat_ + 7.0);
  }

  [[nodiscard]] bool snapshot_supported() const override { return true; }

 protected:
  void save_extra(ByteWriter& out) const override;
  void restore_extra(ByteReader& in) override;

 private:
  FirstFitStrategy small_pool_;
  FirstFitStrategy large_pool_;
  // DBP_LINT_ALLOW(unordered-container): pool-membership lookup by bin id
  // only; pool scan order lives in the FirstFitStrategy segment trees.
  std::unordered_map<BinId, bool> bin_is_large_;
  // DBP_LINT_ALLOW(unordered-container): arrival lookup by item id only.
  std::unordered_map<ItemId, Time> arrival_of_;
  double mu_hat_ = 1.0;
  Time min_len_seen_ = kTimeInfinity;
  Time max_len_seen_ = 0.0;
};

}  // namespace dbp
