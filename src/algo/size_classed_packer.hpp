// Size-classified packing: partition items into size classes and pack each
// class into its own bin pool with an independent policy.
//
// Modified First Fit (paper Section 4.4) is the two-class case (threshold
// W/k, First Fit in both pools); the Harmonic-style packer (extension) is
// the K-class case. Bin ids stay globally unique because all pools share
// one BinManager — total cost accounting needs no special cases.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/fit_strategy.hpp"
#include "algo/packer.hpp"

namespace dbp {

class SizeClassedPacker : public Packer {
 public:
  using StrategyFactory =
      std::function<std::unique_ptr<FitStrategy>(const CostModel&)>;

  /// `boundaries` are strictly increasing size thresholds in (0, W]; they
  /// induce classes [0, b_0), [b_0, b_1), ..., [b_last, W]. Each class gets
  /// its own strategy from `factory`.
  SizeClassedPacker(CostModel model, std::string name,
                    std::vector<double> boundaries, const StrategyFactory& factory);

  [[nodiscard]] std::string name() const override { return name_; }

  BinId on_arrival(const ArrivingItem& item) override;
  void on_departure(ItemId item, Time now) override;

  /// Index of the class an item of `size` belongs to.
  [[nodiscard]] std::size_t class_of(double size) const;

  [[nodiscard]] std::size_t class_count() const noexcept {
    return strategies_.size();
  }

  /// The class whose pool owns `bin`.
  [[nodiscard]] std::size_t class_of_bin(BinId bin) const;

  [[nodiscard]] bool snapshot_supported() const override { return true; }

  /// Forwards the capacity hint to every class strategy and the per-bin
  /// class index. Each pool could in the worst case own every bin, so all
  /// pools get the full hint; after this the event loop is allocation-free
  /// (tests/zero_alloc_test.cpp).
  void reserve_hint(std::size_t items) override;

 protected:
  void save_extra(ByteWriter& out) const override;
  void restore_extra(ByteReader& in) override;

 private:
  std::string name_;
  std::vector<double> boundaries_;
  std::vector<std::unique_ptr<FitStrategy>> strategies_;
  std::vector<std::size_t> bin_class_;  // by BinId
};

/// Modified First Fit (paper Section 4.4): items of size >= W/k are "large",
/// packed by plain First Fit into their own pool; items of size < W/k are
/// "small", packed by First Fit into a second pool. k > 1.
[[nodiscard]] std::unique_ptr<SizeClassedPacker> make_modified_first_fit(
    const CostModel& model, double k = 8.0);

/// Modified First Fit when the max/min interval length ratio mu is known:
/// the paper shows k = mu + 7 minimizes the bound, giving ratio mu + 8.
/// (Semi-online: only the scalar mu is revealed, never departure times.)
[[nodiscard]] std::unique_ptr<SizeClassedPacker> make_modified_first_fit_known_mu(
    const CostModel& model, double mu);

/// Harmonic-style size-classified First Fit (extension, cf. classical
/// Harmonic packing): classes [0, W/K), [W/K, W/(K-1)), ..., [W/2, W].
[[nodiscard]] std::unique_ptr<SizeClassedPacker> make_harmonic_first_fit(
    const CostModel& model, int class_count = 5);

}  // namespace dbp
