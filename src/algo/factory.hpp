// Name-based packer construction for benches, examples and CLI tools.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "algo/packer.hpp"
#include "core/types.hpp"

namespace dbp {

/// Tunables consumed by make_packer for parameterized algorithms.
struct PackerOptions {
  double mff_k = 8.0;        ///< MFF size threshold parameter (mu unknown)
  double known_mu = 0.0;     ///< >= 1 enables the semi-online MFF (k = mu+7)
  int harmonic_classes = 5;  ///< K for harmonic-first-fit
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;  ///< random-fit seed
};

/// Builds a packer by name. Known names:
///   first-fit, best-fit, worst-fit, next-fit, last-fit, random-fit,
///   move-to-front-fit, modified-first-fit, modified-first-fit-known-mu,
///   harmonic-first-fit
/// Throws PreconditionError for unknown names (and for
/// modified-first-fit-known-mu without options.known_mu >= 1).
[[nodiscard]] std::unique_ptr<Packer> make_packer(const std::string& name,
                                                  const CostModel& model,
                                                  const PackerOptions& options = {});

/// All algorithm names make_packer accepts, in canonical report order.
[[nodiscard]] const std::vector<std::string>& all_algorithm_names();

/// The subset analyzed in the paper: first-fit, best-fit, modified-first-fit
/// (plus modified-first-fit-known-mu when options.known_mu is set by caller).
[[nodiscard]] const std::vector<std::string>& paper_algorithm_names();

/// Departure-aware baselines (NOT in the paper's online model; see
/// algo/clairvoyant.hpp): align-departures-fit, min-extension-fit.
/// make_packer accepts these names too; the simulator feeds them full items.
[[nodiscard]] const std::vector<std::string>& clairvoyant_algorithm_names();

}  // namespace dbp
