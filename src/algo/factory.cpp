#include "algo/factory.hpp"

#include <memory>

#include "algo/adaptive_mff.hpp"
#include "algo/any_fit_packer.hpp"
#include "algo/clairvoyant.hpp"
#include "algo/reference_strategies.hpp"
#include "algo/size_classed_packer.hpp"
#include "algo/strategies.hpp"
#include "core/error.hpp"

namespace dbp {

std::unique_ptr<Packer> make_packer(const std::string& name, const CostModel& model,
                                    const PackerOptions& options) {
  // Built-in strategies go through StaticAnyFitPacker<S>: bit-identical to
  // AnyFitPacker (same arrival/departure bodies) with the per-event policy
  // calls devirtualized and inlined into the event loop.
  auto static_fit = [&]<typename S>(std::unique_ptr<S> strategy) {
    return std::make_unique<StaticAnyFitPacker<S>>(model, std::move(strategy));
  };
  if (name == "first-fit") {
    return static_fit(std::make_unique<FirstFitStrategy>(model));
  }
  if (name == "best-fit") {
    return static_fit(std::make_unique<BestFitStrategy>(model));
  }
  if (name == "worst-fit") {
    return static_fit(std::make_unique<WorstFitStrategy>(model));
  }
  if (name == "next-fit") {
    return static_fit(std::make_unique<NextFitStrategy>(model));
  }
  if (name == "last-fit") {
    return static_fit(std::make_unique<LastFitStrategy>(model));
  }
  if (name == "random-fit") {
    return static_fit(std::make_unique<RandomFitStrategy>(model, options.seed));
  }
  if (name == "move-to-front-fit") {
    return static_fit(std::make_unique<MoveToFrontStrategy>(model));
  }
  // Pre-arena reference implementations (algo/reference_strategies.hpp):
  // same-run benchmark baselines and differential-test oracles. Deliberately
  // absent from all_algorithm_names() — sweeps should not pack twice. They
  // keep the seed's dynamic dispatch (plain AnyFitPacker) so the baseline
  // they provide is the seed's, not a hybrid.
  if (name == "first-fit-reference") {
    return std::make_unique<AnyFitPacker>(
        model, std::make_unique<FirstFitReferenceStrategy>(model));
  }
  if (name == "best-fit-reference") {
    return std::make_unique<AnyFitPacker>(
        model, std::make_unique<BestFitReferenceStrategy>(model));
  }
  if (name == "modified-first-fit") {
    return make_modified_first_fit(model, options.mff_k);
  }
  if (name == "modified-first-fit-known-mu") {
    DBP_REQUIRE(options.known_mu >= 1.0,
                "modified-first-fit-known-mu requires options.known_mu >= 1");
    return make_modified_first_fit_known_mu(model, options.known_mu);
  }
  if (name == "harmonic-first-fit") {
    return make_harmonic_first_fit(model, options.harmonic_classes);
  }
  if (name == "adaptive-mff") {
    return std::make_unique<AdaptiveMffPacker>(model);
  }
  if (name == "align-departures-fit") {
    return std::make_unique<DurationAwarePacker>(
        model, DurationAwarePacker::Policy::kAlignDepartures);
  }
  if (name == "min-extension-fit") {
    return std::make_unique<DurationAwarePacker>(
        model, DurationAwarePacker::Policy::kMinimizeExtension);
  }
  DBP_REQUIRE(false, "unknown packer name: " + name);
  return nullptr;  // unreachable
}

const std::vector<std::string>& all_algorithm_names() {
  static const std::vector<std::string> names{
      "first-fit",         "best-fit",   "worst-fit",
      "next-fit",          "last-fit",   "random-fit",
      "move-to-front-fit", "modified-first-fit", "modified-first-fit-known-mu",
      "adaptive-mff",      "harmonic-first-fit"};
  return names;
}

const std::vector<std::string>& paper_algorithm_names() {
  static const std::vector<std::string> names{"first-fit", "best-fit",
                                              "modified-first-fit"};
  return names;
}

const std::vector<std::string>& clairvoyant_algorithm_names() {
  static const std::vector<std::string> names{"align-departures-fit",
                                              "min-extension-fit"};
  return names;
}

}  // namespace dbp
