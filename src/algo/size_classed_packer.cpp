#include "algo/size_classed_packer.hpp"

#include <algorithm>
#include <cmath>

#include "algo/strategies.hpp"
#include "core/audit.hpp"
#include "core/strfmt.hpp"
#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp {

SizeClassedPacker::SizeClassedPacker(CostModel model, std::string name,
                                     std::vector<double> boundaries,
                                     const StrategyFactory& factory)
    : Packer(model), name_(std::move(name)), boundaries_(std::move(boundaries)) {
  DBP_REQUIRE(std::is_sorted(boundaries_.begin(), boundaries_.end()) &&
                  std::adjacent_find(boundaries_.begin(), boundaries_.end()) ==
                      boundaries_.end(),
              "class boundaries must be strictly increasing");
  for (double b : boundaries_) {
    DBP_REQUIRE(b > 0.0 && b <= model.bin_capacity,
                "class boundaries must lie in (0, W]");
  }
  strategies_.reserve(boundaries_.size() + 1);
  for (std::size_t i = 0; i <= boundaries_.size(); ++i) {
    strategies_.push_back(factory(model));
    DBP_REQUIRE(strategies_.back() != nullptr, "strategy factory returned null");
  }
}

std::size_t SizeClassedPacker::class_of(double size) const {
  // Number of boundaries <= size: class i covers [b_{i-1}, b_i).
  return static_cast<std::size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), size) -
      boundaries_.begin());
}

std::size_t SizeClassedPacker::class_of_bin(BinId bin) const {
  DBP_REQUIRE(bin < bin_class_.size(), "unknown bin id");
  return bin_class_[static_cast<std::size_t>(bin)];
}

BinId SizeClassedPacker::on_arrival(const ArrivingItem& item) {
  DBP_REQUIRE(model().fits(item.size, model().bin_capacity),
              "item larger than the bin capacity");
  const std::size_t cls = class_of(item.size);
  FitStrategy& strategy = *strategies_[cls];
  const std::size_t candidates = manager_.open_count();
  std::optional<BinId> chosen = strategy.select(item.size);
  BinId bin;
  if (chosen) {
    bin = *chosen;
    DBP_AUDIT_CHECK(class_of_bin(bin) == cls,
                    "size class routed an item to a foreign pool's bin");
#if DBP_AUDIT_ENABLED
    // Per-pool First Fit scan-order monotonicity: within the item's class,
    // no earlier-opened open bin may accommodate it.
    if (strategy.name() == "first-fit") {
      for (const BinId open : manager_.open_bins()) {
        if (open >= bin) break;
        if (class_of_bin(open) != cls) continue;
        DBP_AUDIT_CHECK(!manager_.fits(item.size, open),
                        "pool First Fit skipped an earlier-opened fitting bin");
      }
    }
#endif
  } else {
#if DBP_AUDIT_ENABLED
    // Opening a new bin is only legal when every open bin of the class is
    // unable to host the item (First Fit pools obey the Any Fit contract).
    if (strategy.name() == "first-fit") {
      for (const BinId open : manager_.open_bins()) {
        if (class_of_bin(open) != cls) continue;
        DBP_AUDIT_CHECK(!manager_.fits(item.size, open),
                        "pool declined an item although an open bin fits");
      }
    }
#endif
    bin = manager_.open_bin(item.arrival);
    DBP_CHECK(bin == bin_class_.size(), "bin ids must be dense");
    bin_class_.push_back(cls);
    strategy.on_bin_registered(bin, manager_.residual(bin));
  }
  manager_.place(item, bin);
  strategy.on_residual_changed(bin, manager_.residual(bin));
  obs::trace_arrival(item.arrival, item.id, item.size, bin, candidates);
  return bin;
}

void SizeClassedPacker::on_departure(ItemId item, Time now) {
  const DepartureOutcome outcome = manager_.remove(item, now);
  obs::trace_departure(now, item, outcome.bin);
  FitStrategy& strategy = *strategies_[class_of_bin(outcome.bin)];
  if (outcome.bin_closed) {
    strategy.on_bin_closed(outcome.bin);
  } else {
    strategy.on_residual_changed(outcome.bin, manager_.residual(outcome.bin));
  }
}

void SizeClassedPacker::reserve_hint(std::size_t items) {
  Packer::reserve_hint(items);
  bin_class_.reserve(items);
  for (const auto& strategy : strategies_) strategy->reserve(items);
}

void SizeClassedPacker::save_extra(ByteWriter& out) const {
  out.u64(boundaries_.size());
  for (const double b : boundaries_) out.f64(b);
  out.u64(bin_class_.size());
  for (const std::size_t cls : bin_class_) out.u64(cls);
  for (const auto& strategy : strategies_) strategy->save_state(out);
}

void SizeClassedPacker::restore_extra(ByteReader& in) {
  const std::uint64_t boundary_count = in.u64();
  if (boundary_count != boundaries_.size()) {
    throw CorruptionError("size-class boundary count differs from this packer");
  }
  for (const double b : boundaries_) {
    if (in.f64() != b) {
      throw CorruptionError("size-class boundaries differ from this packer");
    }
  }
  bin_class_.clear();
  const std::uint64_t bin_count = in.u64();
  if (bin_count != manager_.total_bins_opened()) {
    throw CorruptionError("size-class bin census disagrees with the manager");
  }
  bin_class_.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) {
    const std::uint64_t cls = in.u64();
    if (cls >= strategies_.size()) {
      throw CorruptionError("size-class map names an unknown class");
    }
    bin_class_.push_back(static_cast<std::size_t>(cls));
  }
  // Per-pool registration replay in opening order, then each pool's own
  // extra history in class order.
  for (const BinId bin : manager_.open_bins()) {
    strategies_[class_of_bin(bin)]->on_bin_registered(bin, manager_.residual(bin));
  }
  for (const auto& strategy : strategies_) strategy->load_state(in);
}

namespace {

std::unique_ptr<FitStrategy> make_ff_strategy(const CostModel& model) {
  return std::make_unique<FirstFitStrategy>(model);
}

}  // namespace

std::unique_ptr<SizeClassedPacker> make_modified_first_fit(const CostModel& model,
                                                           double k) {
  DBP_REQUIRE(std::isfinite(k) && k > 1.0, "Modified First Fit requires k > 1");
  return std::make_unique<SizeClassedPacker>(
      model, strfmt("modified-first-fit(k=%g)", k),
      std::vector<double>{model.bin_capacity / k}, make_ff_strategy);
}

std::unique_ptr<SizeClassedPacker> make_modified_first_fit_known_mu(
    const CostModel& model, double mu) {
  DBP_REQUIRE(std::isfinite(mu) && mu >= 1.0, "mu must be >= 1");
  const double k = mu + 7.0;  // paper Section 4.4: argmin of max{k, (mu+6)/(1-1/k)}
  return std::make_unique<SizeClassedPacker>(
      model, strfmt("modified-first-fit(mu=%g known)", mu),
      std::vector<double>{model.bin_capacity / k}, make_ff_strategy);
}

std::unique_ptr<SizeClassedPacker> make_harmonic_first_fit(const CostModel& model,
                                                           int class_count) {
  DBP_REQUIRE(class_count >= 2, "harmonic packer needs at least 2 classes");
  std::vector<double> boundaries;
  boundaries.reserve(static_cast<std::size_t>(class_count) - 1);
  for (int i = class_count; i >= 2; --i) {
    boundaries.push_back(model.bin_capacity / static_cast<double>(i));
  }
  return std::make_unique<SizeClassedPacker>(
      model, strfmt("harmonic-first-fit(K=%d)", class_count),
      std::move(boundaries), make_ff_strategy);
}

}  // namespace dbp
