#include "algo/bin_manager.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dbp {

BinManager::BinManager(CostModel model) : model_(model) { model_.validate(); }

BinId BinManager::open_bin(Time t) {
  const BinId id = static_cast<BinId>(bins_.size());
  bins_.push_back(BinState{CompensatedSum{}, 0, true});
  usage_.push_back(BinUsageRecord{id, t, kTimeInfinity});
  ++open_count_;
  return id;
}

const BinManager::BinState& BinManager::state_of(BinId bin) const {
  DBP_REQUIRE(bin < bins_.size(), "unknown bin id");
  return bins_[static_cast<std::size_t>(bin)];
}

void BinManager::place(const ArrivingItem& item, BinId bin) {
  DBP_REQUIRE(bin < bins_.size(), "unknown bin id");
  BinState& state = bins_[static_cast<std::size_t>(bin)];
  DBP_REQUIRE(state.open, "cannot place into a closed bin");
  DBP_REQUIRE(item.size > 0.0, "item size must be positive");
  DBP_REQUIRE(model_.fits(item.size, model_.bin_capacity - state.level.value()),
              "item does not fit into the chosen bin");
  DBP_REQUIRE(!items_.contains(item.id), "item id already active");
  state.level.add(item.size);
  ++state.item_count;
  items_.emplace(item.id, PlacedItem{bin, item.size});
  assignment_[item.id] = bin;
}

DepartureOutcome BinManager::remove(ItemId item, Time t) {
  auto it = items_.find(item);
  DBP_REQUIRE(it != items_.end(), "departure of an item that is not active");
  const BinId bin = it->second.bin;
  BinState& state = bins_[static_cast<std::size_t>(bin)];
  DBP_CHECK(state.open && state.item_count > 0, "departure from an empty/closed bin");
  state.level.subtract(it->second.size);
  --state.item_count;
  items_.erase(it);
  DepartureOutcome outcome{bin, false};
  if (state.item_count == 0) {
    state.level.reset();  // exact zero: no drift survives a bin closure
    state.open = false;
    usage_[static_cast<std::size_t>(bin)].closed = t;
    --open_count_;
    outcome.bin_closed = true;
  }
  return outcome;
}

double BinManager::level(BinId bin) const { return state_of(bin).level.value(); }

double BinManager::residual(BinId bin) const {
  return model_.bin_capacity - state_of(bin).level.value();
}

bool BinManager::fits(double size, BinId bin) const {
  const BinState& state = state_of(bin);
  return state.open && model_.fits(size, model_.bin_capacity - state.level.value());
}

bool BinManager::is_open(BinId bin) const { return state_of(bin).open; }

std::size_t BinManager::item_count(BinId bin) const { return state_of(bin).item_count; }

const BinUsageRecord& BinManager::usage(BinId bin) const {
  DBP_REQUIRE(bin < usage_.size(), "unknown bin id");
  return usage_[static_cast<std::size_t>(bin)];
}

std::vector<BinId> BinManager::open_bins() const {
  std::vector<BinId> result;
  result.reserve(open_count_);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].open) result.push_back(static_cast<BinId>(i));
  }
  return result;
}

std::optional<BinId> BinManager::assignment_of(ItemId item) const {
  auto it = assignment_.find(item);
  if (it == assignment_.end()) return std::nullopt;
  return it->second;
}

std::vector<ItemId> BinManager::items_in(BinId bin) const {
  DBP_REQUIRE(bin < bins_.size(), "unknown bin id");
  std::vector<ItemId> result;
  for (const auto& [id, placed] : items_) {
    if (placed.bin == bin) result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void BinManager::reset() {
  bins_.clear();
  usage_.clear();
  items_.clear();
  assignment_.clear();
  open_count_ = 0;
}

}  // namespace dbp
