#include "algo/bin_manager.hpp"

#include <algorithm>
#include <cmath>

#include "core/audit.hpp"
#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp {

BinManager::BinManager(CostModel model) : model_(model) { model_.validate(); }

BinId BinManager::open_bin(Time t) {
  const BinId id = static_cast<BinId>(bins_.size());
  bins_.push_back(BinState{CompensatedSum{}, 0, kNoItem, true});
  usage_.push_back(BinUsageRecord{id, t, kTimeInfinity});
  ++open_count_;
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = t;
    record.kind = obs::TraceKind::kBinOpen;
    record.bin = id;
    record.count = open_count_;
    tracer->record(std::move(record));
  }
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("bin_manager.bins_opened").add();
    metrics->gauge("bin_manager.open_bins").set(static_cast<double>(open_count_));
  }
  return id;
}

void BinManager::close_emptied_bin(BinId bin, Time t) {
  BinState& state = bins_[static_cast<std::size_t>(bin)];
  DBP_CHECK(state.head == kNoItem, "empty bin with a non-empty resident list");
  state.level.reset();  // exact zero: no drift survives a bin closure
  state.open = false;
  usage_[static_cast<std::size_t>(bin)].closed = t;
  --open_count_;
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = t;
    record.kind = obs::TraceKind::kBinClose;
    record.bin = bin;
    record.count = open_count_;
    tracer->record(std::move(record));
  }
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("bin_manager.bins_closed").add();
    metrics->gauge("bin_manager.open_bins").set(static_cast<double>(open_count_));
  }
}

std::size_t BinManager::item_count(BinId bin) const { return state_of(bin).item_count; }

const BinUsageRecord& BinManager::usage(BinId bin) const {
  DBP_REQUIRE(bin < usage_.size(), "unknown bin id");
  return usage_[static_cast<std::size_t>(bin)];
}

std::vector<BinId> BinManager::open_bins() const {
  std::vector<BinId> result;
  result.reserve(open_count_);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].open) result.push_back(static_cast<BinId>(i));
  }
  return result;
}

std::optional<BinId> BinManager::assignment_of(ItemId item) const {
  const auto index = static_cast<std::size_t>(item);
  if (index >= items_.size() || items_[index].bin == kNoBin) return std::nullopt;
  return items_[index].bin;
}

std::vector<BinId> BinManager::assignment_history() const {
  std::vector<BinId> history(items_.size(), kNoBin);
  for (std::size_t i = 0; i < items_.size(); ++i) history[i] = items_[i].bin;
  return history;
}

std::vector<ItemId> BinManager::items_in(BinId bin) const {
  const BinState& state = state_of(bin);
  std::vector<ItemId> result;
  result.reserve(state.item_count);
  for (ItemId id = state.head; id != kNoItem;
       id = items_[static_cast<std::size_t>(id)].next) {
    result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void BinManager::save_state(ByteWriter& out) const {
  // Cost model fields are written so restore can verify the receiving
  // manager was constructed identically (fit decisions depend on all three).
  out.f64(model_.bin_capacity);
  out.f64(model_.cost_rate);
  out.f64(model_.fit_tolerance);
  out.u64(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const BinState& state = bins_[i];
    out.f64(state.level.raw_sum());
    out.f64(state.level.raw_compensation());
    out.u64(state.item_count);
    out.u64(state.head);
    out.boolean(state.open);
    out.f64(usage_[i].opened);
    out.f64(usage_[i].closed);
  }
  out.u64(items_.size());
  for (const ItemSlot& slot : items_) {
    out.f64(slot.size);
    out.u64(slot.bin);
    out.u64(slot.next);
    out.u64(slot.prev);
    out.boolean(slot.active);
  }
}

void BinManager::restore_state(ByteReader& in) {
  const double capacity = in.f64();
  const double rate = in.f64();
  const double tolerance = in.f64();
  if (capacity != model_.bin_capacity || rate != model_.cost_rate ||
      tolerance != model_.fit_tolerance) {
    throw CorruptionError("checkpoint cost model differs from this manager's");
  }
  reset();
  const std::uint64_t bin_count = in.u64();
  bins_.reserve(bin_count);
  usage_.reserve(bin_count);
  for (std::uint64_t i = 0; i < bin_count; ++i) {
    const double sum = in.f64();
    const double compensation = in.f64();
    BinState state{CompensatedSum::from_raw(sum, compensation),
                   static_cast<std::size_t>(in.u64()), in.u64(), in.boolean()};
    BinUsageRecord record{static_cast<BinId>(i), in.f64(), in.f64()};
    if (state.open != !record.is_closed()) {
      throw CorruptionError("bin open flag disagrees with its usage record");
    }
    if (state.open) ++open_count_;
    bins_.push_back(state);
    usage_.push_back(record);
  }
  const std::uint64_t item_count = in.u64();
  items_.reserve(item_count);
  for (std::uint64_t i = 0; i < item_count; ++i) {
    ItemSlot slot;
    slot.size = in.f64();
    slot.bin = in.u64();
    slot.next = in.u64();
    slot.prev = in.u64();
    slot.active = in.boolean();
    if (slot.active) {
      if (slot.bin >= bins_.size() || !bins_[static_cast<std::size_t>(slot.bin)].open) {
        throw CorruptionError("active item resides in an unknown or closed bin");
      }
      ++active_count_;
    }
    items_.push_back(slot);
  }
  // Census check: the decoded resident lists must agree with the per-bin
  // item counts before any caller trusts the state.
  std::size_t resident_census = 0;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const BinState& state = bins_[b];
    std::size_t walked = 0;
    for (ItemId id = state.head; id != kNoItem;
         id = items_[static_cast<std::size_t>(id)].next) {
      if (static_cast<std::size_t>(id) >= items_.size() ||
          !items_[static_cast<std::size_t>(id)].active ||
          items_[static_cast<std::size_t>(id)].bin != static_cast<BinId>(b)) {
        throw CorruptionError("resident list is inconsistent with item slots");
      }
      if (++walked > state.item_count) {
        throw CorruptionError("resident list longer than the bin's item count");
      }
    }
    if (walked != state.item_count) {
      throw CorruptionError("resident census disagrees with the item count");
    }
    resident_census += state.item_count;
  }
  if (resident_census != active_count_) {
    throw CorruptionError("active-item count disagrees with per-bin censuses");
  }
  audit();
}

void BinManager::reserve(std::size_t bins_hint, std::size_t items_hint) {
  bins_.reserve(bins_hint);
  usage_.reserve(bins_hint);
  items_.reserve(items_hint);
}

void BinManager::reset() {
  bins_.clear();
  usage_.clear();
  items_.clear();
  open_count_ = 0;
  active_count_ = 0;
}

#if DBP_AUDIT_ENABLED

void BinManager::audit_bin(BinId bin) const {
  const BinState& state = bins_[static_cast<std::size_t>(bin)];
  const BinUsageRecord& record = usage_[static_cast<std::size_t>(bin)];
  DBP_AUDIT_CHECK(state.open == !record.is_closed(),
                  "bin open flag disagrees with its usage record");
  if (!state.open) {
    DBP_AUDIT_CHECK(state.item_count == 0 && state.head == kNoItem &&
                        state.level.value() == 0.0,
                    "closed bin retains residents or a non-zero level");
    return;
  }
  // Walk the intrusive resident list: census, link symmetry, membership,
  // and the level recomputed from scratch.
  double recomputed = 0.0;
  std::size_t census = 0;
  ItemId prev = kNoItem;
  for (ItemId id = state.head; id != kNoItem;
       id = items_[static_cast<std::size_t>(id)].next) {
    DBP_AUDIT_CHECK(static_cast<std::size_t>(id) < items_.size(),
                    "resident list points past the item table");
    const ItemSlot& slot = items_[static_cast<std::size_t>(id)];
    DBP_AUDIT_CHECK(slot.active, "resident list contains an inactive item");
    DBP_AUDIT_CHECK(slot.bin == bin, "resident list contains a foreign item");
    DBP_AUDIT_CHECK(slot.prev == prev, "resident list prev/next links disagree");
    DBP_AUDIT_CHECK(slot.size > 0.0, "resident item has a non-positive size");
    recomputed += slot.size;
    ++census;
    DBP_AUDIT_CHECK(census <= state.item_count,
                    "resident list is longer than the bin's item count");
    prev = id;
  }
  DBP_AUDIT_CHECK(census == state.item_count,
                  "open-bin resident census disagrees with item count");
  // The cached level is a compensated sum over the placement history while
  // the recomputation folds in list order, so agreement is up to the fit
  // tolerance (itself far below any meaningful size), not bitwise.
  const double tolerance =
      model_.fit_tolerance * static_cast<double>(state.item_count + 1);
  DBP_AUDIT_CHECK(std::abs(recomputed - state.level.value()) <= tolerance,
                  "bin level disagrees with the sum of resident sizes");
  DBP_AUDIT_CHECK(state.level.value() <= model_.bin_capacity + model_.fit_tolerance,
                  "bin level exceeds the bin capacity");
}

void BinManager::audit() const {
  std::size_t open_census = 0;
  std::size_t resident_census = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    audit_bin(static_cast<BinId>(i));
    if (bins_[i].open) {
      ++open_census;
      resident_census += bins_[i].item_count;
    }
  }
  DBP_AUDIT_CHECK(open_census == open_count_,
                  "open-bin count disagrees with the census of open bins");
  DBP_AUDIT_CHECK(resident_census == active_count_,
                  "active-item count disagrees with the per-bin item counts");
  std::size_t active_slots = 0;
  for (const ItemSlot& slot : items_) {
    if (slot.active) ++active_slots;
  }
  DBP_AUDIT_CHECK(active_slots == active_count_,
                  "active-item count disagrees with the item-slot census");
}

#else  // !DBP_AUDIT_ENABLED

void BinManager::audit_bin(BinId) const {}
void BinManager::audit() const {}

#endif  // DBP_AUDIT_ENABLED

}  // namespace dbp
