#include "algo/bin_manager.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp {

BinManager::BinManager(CostModel model) : model_(model) { model_.validate(); }

BinId BinManager::open_bin(Time t) {
  const BinId id = static_cast<BinId>(bins_.size());
  bins_.push_back(BinState{CompensatedSum{}, 0, kNoItem, true});
  usage_.push_back(BinUsageRecord{id, t, kTimeInfinity});
  ++open_count_;
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = t;
    record.kind = obs::TraceKind::kBinOpen;
    record.bin = id;
    record.count = open_count_;
    tracer->record(std::move(record));
  }
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("bin_manager.bins_opened").add();
    metrics->gauge("bin_manager.open_bins").set(static_cast<double>(open_count_));
  }
  return id;
}

const BinManager::BinState& BinManager::state_of(BinId bin) const {
  DBP_REQUIRE(bin < bins_.size(), "unknown bin id");
  return bins_[static_cast<std::size_t>(bin)];
}

void BinManager::place(const ArrivingItem& item, BinId bin) {
  DBP_REQUIRE(bin < bins_.size(), "unknown bin id");
  BinState& state = bins_[static_cast<std::size_t>(bin)];
  DBP_REQUIRE(state.open, "cannot place into a closed bin");
  DBP_REQUIRE(item.size > 0.0, "item size must be positive");
  DBP_REQUIRE(model_.fits(item.size, model_.bin_capacity - state.level.value()),
              "item does not fit into the chosen bin");
  const auto index = static_cast<std::size_t>(item.id);
  if (index >= items_.size()) {
    items_.resize(index + 1);  // ids are dense; growth is amortized O(1)
  }
  ItemSlot& slot = items_[index];
  DBP_REQUIRE(!slot.active, "item id already active");
  state.level.add(item.size);
  ++state.item_count;
  slot.size = item.size;
  slot.bin = bin;
  slot.active = true;
  // Push onto the bin's resident list.
  slot.prev = kNoItem;
  slot.next = state.head;
  if (state.head != kNoItem) items_[static_cast<std::size_t>(state.head)].prev = item.id;
  state.head = item.id;
  ++active_count_;
}

DepartureOutcome BinManager::remove(ItemId item, Time t) {
  const auto index = static_cast<std::size_t>(item);
  DBP_REQUIRE(index < items_.size() && items_[index].active,
              "departure of an item that is not active");
  ItemSlot& slot = items_[index];
  const BinId bin = slot.bin;
  BinState& state = bins_[static_cast<std::size_t>(bin)];
  DBP_CHECK(state.open && state.item_count > 0, "departure from an empty/closed bin");
  state.level.subtract(slot.size);
  --state.item_count;
  // Unlink from the bin's resident list.
  if (slot.prev != kNoItem) {
    items_[static_cast<std::size_t>(slot.prev)].next = slot.next;
  } else {
    state.head = slot.next;
  }
  if (slot.next != kNoItem) {
    items_[static_cast<std::size_t>(slot.next)].prev = slot.prev;
  }
  slot.next = kNoItem;
  slot.prev = kNoItem;
  slot.active = false;  // slot.bin stays: assignment history
  --active_count_;
  DepartureOutcome outcome{bin, false};
  if (state.item_count == 0) {
    DBP_CHECK(state.head == kNoItem, "empty bin with a non-empty resident list");
    state.level.reset();  // exact zero: no drift survives a bin closure
    state.open = false;
    usage_[static_cast<std::size_t>(bin)].closed = t;
    --open_count_;
    outcome.bin_closed = true;
    if (obs::RunTracer* tracer = obs::tracer()) {
      obs::TraceRecord record;
      record.time = t;
      record.kind = obs::TraceKind::kBinClose;
      record.bin = bin;
      record.count = open_count_;
      tracer->record(std::move(record));
    }
    if (obs::MetricsRegistry* metrics = obs::metrics()) {
      metrics->counter("bin_manager.bins_closed").add();
      metrics->gauge("bin_manager.open_bins").set(static_cast<double>(open_count_));
    }
  }
  return outcome;
}

double BinManager::level(BinId bin) const { return state_of(bin).level.value(); }

double BinManager::residual(BinId bin) const {
  return model_.bin_capacity - state_of(bin).level.value();
}

bool BinManager::fits(double size, BinId bin) const {
  const BinState& state = state_of(bin);
  return state.open && model_.fits(size, model_.bin_capacity - state.level.value());
}

bool BinManager::is_open(BinId bin) const { return state_of(bin).open; }

std::size_t BinManager::item_count(BinId bin) const { return state_of(bin).item_count; }

const BinUsageRecord& BinManager::usage(BinId bin) const {
  DBP_REQUIRE(bin < usage_.size(), "unknown bin id");
  return usage_[static_cast<std::size_t>(bin)];
}

std::vector<BinId> BinManager::open_bins() const {
  std::vector<BinId> result;
  result.reserve(open_count_);
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i].open) result.push_back(static_cast<BinId>(i));
  }
  return result;
}

std::optional<BinId> BinManager::assignment_of(ItemId item) const {
  const auto index = static_cast<std::size_t>(item);
  if (index >= items_.size() || items_[index].bin == kNoBin) return std::nullopt;
  return items_[index].bin;
}

std::vector<BinId> BinManager::assignment_history() const {
  std::vector<BinId> history(items_.size(), kNoBin);
  for (std::size_t i = 0; i < items_.size(); ++i) history[i] = items_[i].bin;
  return history;
}

std::vector<ItemId> BinManager::items_in(BinId bin) const {
  const BinState& state = state_of(bin);
  std::vector<ItemId> result;
  result.reserve(state.item_count);
  for (ItemId id = state.head; id != kNoItem;
       id = items_[static_cast<std::size_t>(id)].next) {
    result.push_back(id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

void BinManager::reset() {
  bins_.clear();
  usage_.clear();
  items_.clear();
  open_count_ = 0;
  active_count_ = 0;
}

}  // namespace dbp
