// Runtime bin bookkeeping shared by all online packers.
//
// Bins are identified by dense BinIds assigned in opening order, so BinId
// order coincides with the temporal opening order the paper's First Fit
// definition refers to. Closed bins are never reopened (paper Section 3.2:
// "when all the items in a bin depart, the bin is closed").
//
// Item bookkeeping is hash-free: ItemIds are dense by construction (the
// Instance assigns them sequentially), so per-item state lives in vectors
// indexed by ItemId and each bin's residents form an intrusive doubly-linked
// list through those slots. place/remove are O(1) plus the compensated level
// update — no hashing in the packer event loop.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/audit.hpp"
#include "core/binary_io.hpp"
#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "core/item.hpp"
#include "core/types.hpp"

namespace dbp {

/// One bin's lifetime: [opened, closed). `closed` is kTimeInfinity while the
/// bin is still open.
struct BinUsageRecord {
  BinId id = 0;
  Time opened = 0.0;
  Time closed = kTimeInfinity;

  [[nodiscard]] bool is_closed() const noexcept { return closed != kTimeInfinity; }
  [[nodiscard]] Time usage_length() const noexcept { return closed - opened; }
};

/// Result of removing an item from its bin.
struct DepartureOutcome {
  BinId bin = 0;
  bool bin_closed = false;  ///< the departure emptied (and thus closed) the bin
};

/// Tracks levels, residual capacities, membership and usage periods of all
/// bins opened during one packing run. Purely mechanical: placement *policy*
/// lives in FitStrategy implementations.
class BinManager {
 public:
  explicit BinManager(CostModel model);

  [[nodiscard]] const CostModel& model() const noexcept { return model_; }

  /// Opens a fresh bin at time `t` and returns its id.
  BinId open_bin(Time t);

  /// Places an arriving item into `bin`. Throws PreconditionError when the
  /// bin is closed, the item does not fit (beyond tolerance), or the item id
  /// is already present. Defined inline below: place/remove run once per
  /// event inside the devirtualized replay loop, and out-of-line they cost
  /// a call (plus a call to the no-op audit hook) per event.
  void place(const ArrivingItem& item, BinId bin);

  /// Removes a previously placed item at time `t`; closes the bin when it
  /// becomes empty (the close itself is the out-of-line cold path — it
  /// traces and touches usage records). Throws PreconditionError for
  /// unknown item ids. Defined inline below.
  DepartureOutcome remove(ItemId item, Time t);

  /// Total size of items currently in `bin` (0 for closed bins).
  [[nodiscard]] double level(BinId bin) const { return state_of(bin).level.value(); }

  /// W - level(bin); negative-free up to tolerance.
  [[nodiscard]] double residual(BinId bin) const {
    return model_.bin_capacity - state_of(bin).level.value();
  }

  /// True when an item of `size` fits in `bin` now (tolerance-aware).
  [[nodiscard]] bool fits(double size, BinId bin) const {
    const BinState& state = state_of(bin);
    return state.open && model_.fits(size, model_.bin_capacity - state.level.value());
  }

  [[nodiscard]] bool is_open(BinId bin) const { return state_of(bin).open; }
  [[nodiscard]] std::size_t open_count() const noexcept { return open_count_; }
  [[nodiscard]] std::size_t total_bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t item_count(BinId bin) const;
  [[nodiscard]] std::size_t active_item_count() const noexcept { return active_count_; }

  /// Usage record of one bin (valid for all bins ever opened).
  [[nodiscard]] const BinUsageRecord& usage(BinId bin) const;

  /// Usage records of every bin ever opened, indexed by BinId.
  [[nodiscard]] std::span<const BinUsageRecord> usage_records() const noexcept {
    return usage_;
  }

  /// Ids of all currently open bins, ascending (= opening order).
  [[nodiscard]] std::vector<BinId> open_bins() const;

  /// The bin an item was assigned to, including items that already departed.
  /// std::nullopt for items this manager never saw.
  [[nodiscard]] std::optional<BinId> assignment_of(ItemId item) const;

  /// Full item -> bin assignment history, dense by ItemId; kNoBin marks
  /// items this manager never saw. A re-dispatched item (same id placed
  /// again after departing) records its latest bin.
  [[nodiscard]] std::vector<BinId> assignment_history() const;

  /// Item ids currently resident in `bin`, ascending.
  [[nodiscard]] std::vector<ItemId> items_in(BinId bin) const;

  /// Pre-sizes the bin and item tables for a run expected to open at most
  /// `bins_hint` bins over at most `items_hint` distinct item ids, so the
  /// event loop's amortized growth never actually reallocates. A hint of 0
  /// leaves the corresponding table untouched; under-estimation is safe.
  void reserve(std::size_t bins_hint, std::size_t items_hint);

  /// Drops all state, keeping the cost model.
  void reset();

  /// Serializes the complete manager state — levels as raw compensated-sum
  /// terms, usage records, the full item table with its intrusive resident
  /// lists — so restore_state() is bit-exact: every subsequent fit decision,
  /// level update and usage record matches an uninterrupted run.
  void save_state(ByteWriter& out) const;

  /// Rebuilds the state written by save_state() over a manager constructed
  /// with the *same* cost model (checked; mismatch throws CorruptionError).
  /// Existing state is discarded. Structural invariants of the decoded state
  /// are re-validated; violations throw CorruptionError.
  void restore_state(ByteReader& in);

  /// Deep structural audit: every open bin's level equals the sum of its
  /// residents (within fit tolerance), levels respect W, the open-bin count
  /// matches a census of open bins, intrusive resident lists are doubly
  /// linked consistently, and the active-item count matches the per-bin item
  /// counts. Throws InvariantError on violation. Compiled to a no-op unless
  /// the build defines DBP_AUDIT (core/audit.hpp); place/remove additionally
  /// audit the touched bin on every call in audit builds.
  void audit() const;

 private:
  struct BinState {
    CompensatedSum level;
    std::size_t item_count = 0;
    ItemId head = kNoItem;  ///< first resident of the intrusive item list
    bool open = false;
  };

  /// Per-item slot, indexed by ItemId. `bin` persists after departure (the
  /// assignment history); `active` distinguishes residents from alumni.
  struct ItemSlot {
    double size = 0.0;
    BinId bin = kNoBin;
    ItemId next = kNoItem;
    ItemId prev = kNoItem;
    bool active = false;
  };

  const BinState& state_of(BinId bin) const {
    DBP_REQUIRE(bin < bins_.size(), "unknown bin id");
    return bins_[static_cast<std::size_t>(bin)];
  }

  /// Cold half of remove(): closes a bin whose last resident just departed
  /// (resets the level exactly, stamps the usage record, traces).
  void close_emptied_bin(BinId bin, Time t);

  /// Audits one bin's resident list against its cached level/item count
  /// (DBP_AUDIT builds only; no-op otherwise).
  void audit_bin(BinId bin) const;

  CostModel model_;
  std::vector<BinState> bins_;         // by BinId
  std::vector<BinUsageRecord> usage_;  // by BinId
  std::vector<ItemSlot> items_;        // by ItemId (dense)
  std::size_t open_count_ = 0;
  std::size_t active_count_ = 0;
};

// ------------------------------------------------------------------------
// Inline hot paths: place/remove run once per event inside the
// devirtualized replay loops, so their bodies live here. The statement
// sequences are identical to the historical out-of-line definitions —
// inlining changes where the code is emitted, never what it computes.
// ------------------------------------------------------------------------

inline void BinManager::place(const ArrivingItem& item, BinId bin) {
  DBP_REQUIRE(bin < bins_.size(), "unknown bin id");
  BinState& state = bins_[static_cast<std::size_t>(bin)];
  DBP_REQUIRE(state.open, "cannot place into a closed bin");
  DBP_REQUIRE(item.size > 0.0, "item size must be positive");
  DBP_REQUIRE(model_.fits(item.size, model_.bin_capacity - state.level.value()),
              "item does not fit into the chosen bin");
  const auto index = static_cast<std::size_t>(item.id);
  if (index >= items_.size()) {
    items_.resize(index + 1);  // ids are dense; growth is amortized O(1)
  }
  ItemSlot& slot = items_[index];
  DBP_REQUIRE(!slot.active, "item id already active");
  state.level.add(item.size);
  ++state.item_count;
  slot.size = item.size;
  slot.bin = bin;
  slot.active = true;
  // Push onto the bin's resident list.
  slot.prev = kNoItem;
  slot.next = state.head;
  if (state.head != kNoItem) items_[static_cast<std::size_t>(state.head)].prev = item.id;
  state.head = item.id;
  ++active_count_;
#if DBP_AUDIT_ENABLED
  audit_bin(bin);
#endif
}

inline DepartureOutcome BinManager::remove(ItemId item, Time t) {
  const auto index = static_cast<std::size_t>(item);
  DBP_REQUIRE(index < items_.size() && items_[index].active,
              "departure of an item that is not active");
  ItemSlot& slot = items_[index];
  const BinId bin = slot.bin;
  BinState& state = bins_[static_cast<std::size_t>(bin)];
  DBP_CHECK(state.open && state.item_count > 0, "departure from an empty/closed bin");
  state.level.subtract(slot.size);
  --state.item_count;
  // Unlink from the bin's resident list.
  if (slot.prev != kNoItem) {
    items_[static_cast<std::size_t>(slot.prev)].next = slot.next;
  } else {
    state.head = slot.next;
  }
  if (slot.next != kNoItem) {
    items_[static_cast<std::size_t>(slot.next)].prev = slot.prev;
  }
  slot.next = kNoItem;
  slot.prev = kNoItem;
  slot.active = false;  // slot.bin stays: assignment history
  --active_count_;
  DepartureOutcome outcome{bin, false};
  if (state.item_count == 0) {
    close_emptied_bin(bin, t);
    outcome.bin_closed = true;
  }
#if DBP_AUDIT_ENABLED
  audit_bin(bin);
#endif
  return outcome;
}

}  // namespace dbp
