// Runtime bin bookkeeping shared by all online packers.
//
// Bins are identified by dense BinIds assigned in opening order, so BinId
// order coincides with the temporal opening order the paper's First Fit
// definition refers to. Closed bins are never reopened (paper Section 3.2:
// "when all the items in a bin depart, the bin is closed").
//
// Item bookkeeping is hash-free: ItemIds are dense by construction (the
// Instance assigns them sequentially), so per-item state lives in vectors
// indexed by ItemId and each bin's residents form an intrusive doubly-linked
// list through those slots. place/remove are O(1) plus the compensated level
// update — no hashing in the packer event loop.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/binary_io.hpp"
#include "core/compensated_sum.hpp"
#include "core/item.hpp"
#include "core/types.hpp"

namespace dbp {

/// One bin's lifetime: [opened, closed). `closed` is kTimeInfinity while the
/// bin is still open.
struct BinUsageRecord {
  BinId id = 0;
  Time opened = 0.0;
  Time closed = kTimeInfinity;

  [[nodiscard]] bool is_closed() const noexcept { return closed != kTimeInfinity; }
  [[nodiscard]] Time usage_length() const noexcept { return closed - opened; }
};

/// Result of removing an item from its bin.
struct DepartureOutcome {
  BinId bin = 0;
  bool bin_closed = false;  ///< the departure emptied (and thus closed) the bin
};

/// Tracks levels, residual capacities, membership and usage periods of all
/// bins opened during one packing run. Purely mechanical: placement *policy*
/// lives in FitStrategy implementations.
class BinManager {
 public:
  explicit BinManager(CostModel model);

  [[nodiscard]] const CostModel& model() const noexcept { return model_; }

  /// Opens a fresh bin at time `t` and returns its id.
  BinId open_bin(Time t);

  /// Places an arriving item into `bin`. Throws PreconditionError when the
  /// bin is closed, the item does not fit (beyond tolerance), or the item id
  /// is already present.
  void place(const ArrivingItem& item, BinId bin);

  /// Removes a previously placed item at time `t`; closes the bin when it
  /// becomes empty. Throws PreconditionError for unknown item ids.
  DepartureOutcome remove(ItemId item, Time t);

  /// Total size of items currently in `bin` (0 for closed bins).
  [[nodiscard]] double level(BinId bin) const;

  /// W - level(bin); negative-free up to tolerance.
  [[nodiscard]] double residual(BinId bin) const;

  /// True when an item of `size` fits in `bin` now (tolerance-aware).
  [[nodiscard]] bool fits(double size, BinId bin) const;

  [[nodiscard]] bool is_open(BinId bin) const;
  [[nodiscard]] std::size_t open_count() const noexcept { return open_count_; }
  [[nodiscard]] std::size_t total_bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t item_count(BinId bin) const;
  [[nodiscard]] std::size_t active_item_count() const noexcept { return active_count_; }

  /// Usage record of one bin (valid for all bins ever opened).
  [[nodiscard]] const BinUsageRecord& usage(BinId bin) const;

  /// Usage records of every bin ever opened, indexed by BinId.
  [[nodiscard]] std::span<const BinUsageRecord> usage_records() const noexcept {
    return usage_;
  }

  /// Ids of all currently open bins, ascending (= opening order).
  [[nodiscard]] std::vector<BinId> open_bins() const;

  /// The bin an item was assigned to, including items that already departed.
  /// std::nullopt for items this manager never saw.
  [[nodiscard]] std::optional<BinId> assignment_of(ItemId item) const;

  /// Full item -> bin assignment history, dense by ItemId; kNoBin marks
  /// items this manager never saw. A re-dispatched item (same id placed
  /// again after departing) records its latest bin.
  [[nodiscard]] std::vector<BinId> assignment_history() const;

  /// Item ids currently resident in `bin`, ascending.
  [[nodiscard]] std::vector<ItemId> items_in(BinId bin) const;

  /// Drops all state, keeping the cost model.
  void reset();

  /// Serializes the complete manager state — levels as raw compensated-sum
  /// terms, usage records, the full item table with its intrusive resident
  /// lists — so restore_state() is bit-exact: every subsequent fit decision,
  /// level update and usage record matches an uninterrupted run.
  void save_state(ByteWriter& out) const;

  /// Rebuilds the state written by save_state() over a manager constructed
  /// with the *same* cost model (checked; mismatch throws CorruptionError).
  /// Existing state is discarded. Structural invariants of the decoded state
  /// are re-validated; violations throw CorruptionError.
  void restore_state(ByteReader& in);

  /// Deep structural audit: every open bin's level equals the sum of its
  /// residents (within fit tolerance), levels respect W, the open-bin count
  /// matches a census of open bins, intrusive resident lists are doubly
  /// linked consistently, and the active-item count matches the per-bin item
  /// counts. Throws InvariantError on violation. Compiled to a no-op unless
  /// the build defines DBP_AUDIT (core/audit.hpp); place/remove additionally
  /// audit the touched bin on every call in audit builds.
  void audit() const;

 private:
  struct BinState {
    CompensatedSum level;
    std::size_t item_count = 0;
    ItemId head = kNoItem;  ///< first resident of the intrusive item list
    bool open = false;
  };

  /// Per-item slot, indexed by ItemId. `bin` persists after departure (the
  /// assignment history); `active` distinguishes residents from alumni.
  struct ItemSlot {
    double size = 0.0;
    BinId bin = kNoBin;
    ItemId next = kNoItem;
    ItemId prev = kNoItem;
    bool active = false;
  };

  const BinState& state_of(BinId bin) const;

  /// Audits one bin's resident list against its cached level/item count
  /// (DBP_AUDIT builds only; no-op otherwise).
  void audit_bin(BinId bin) const;

  CostModel model_;
  std::vector<BinState> bins_;         // by BinId
  std::vector<BinUsageRecord> usage_;  // by BinId
  std::vector<ItemSlot> items_;        // by ItemId (dense)
  std::size_t open_count_ = 0;
  std::size_t active_count_ = 0;
};

}  // namespace dbp
