// Runtime bin bookkeeping shared by all online packers.
//
// Bins are identified by dense BinIds assigned in opening order, so BinId
// order coincides with the temporal opening order the paper's First Fit
// definition refers to. Closed bins are never reopened (paper Section 3.2:
// "when all the items in a bin depart, the bin is closed").
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/compensated_sum.hpp"
#include "core/item.hpp"
#include "core/types.hpp"

namespace dbp {

/// One bin's lifetime: [opened, closed). `closed` is kTimeInfinity while the
/// bin is still open.
struct BinUsageRecord {
  BinId id = 0;
  Time opened = 0.0;
  Time closed = kTimeInfinity;

  [[nodiscard]] bool is_closed() const noexcept { return closed != kTimeInfinity; }
  [[nodiscard]] Time usage_length() const noexcept { return closed - opened; }
};

/// Result of removing an item from its bin.
struct DepartureOutcome {
  BinId bin = 0;
  bool bin_closed = false;  ///< the departure emptied (and thus closed) the bin
};

/// Tracks levels, residual capacities, membership and usage periods of all
/// bins opened during one packing run. Purely mechanical: placement *policy*
/// lives in FitStrategy implementations.
class BinManager {
 public:
  explicit BinManager(CostModel model);

  [[nodiscard]] const CostModel& model() const noexcept { return model_; }

  /// Opens a fresh bin at time `t` and returns its id.
  BinId open_bin(Time t);

  /// Places an arriving item into `bin`. Throws PreconditionError when the
  /// bin is closed, the item does not fit (beyond tolerance), or the item id
  /// is already present.
  void place(const ArrivingItem& item, BinId bin);

  /// Removes a previously placed item at time `t`; closes the bin when it
  /// becomes empty. Throws PreconditionError for unknown item ids.
  DepartureOutcome remove(ItemId item, Time t);

  /// Total size of items currently in `bin` (0 for closed bins).
  [[nodiscard]] double level(BinId bin) const;

  /// W - level(bin); negative-free up to tolerance.
  [[nodiscard]] double residual(BinId bin) const;

  /// True when an item of `size` fits in `bin` now (tolerance-aware).
  [[nodiscard]] bool fits(double size, BinId bin) const;

  [[nodiscard]] bool is_open(BinId bin) const;
  [[nodiscard]] std::size_t open_count() const noexcept { return open_count_; }
  [[nodiscard]] std::size_t total_bins_opened() const noexcept { return bins_.size(); }
  [[nodiscard]] std::size_t item_count(BinId bin) const;
  [[nodiscard]] std::size_t active_item_count() const noexcept { return items_.size(); }

  /// Usage record of one bin (valid for all bins ever opened).
  [[nodiscard]] const BinUsageRecord& usage(BinId bin) const;

  /// Usage records of every bin ever opened, indexed by BinId.
  [[nodiscard]] std::span<const BinUsageRecord> usage_records() const noexcept {
    return usage_;
  }

  /// Ids of all currently open bins, ascending (= opening order).
  [[nodiscard]] std::vector<BinId> open_bins() const;

  /// The bin an item was assigned to, including items that already departed.
  /// std::nullopt for items this manager never saw.
  [[nodiscard]] std::optional<BinId> assignment_of(ItemId item) const;

  /// Full item -> bin assignment history.
  [[nodiscard]] const std::unordered_map<ItemId, BinId>& assignment_history()
      const noexcept {
    return assignment_;
  }

  /// Item ids currently resident in `bin` (unordered).
  [[nodiscard]] std::vector<ItemId> items_in(BinId bin) const;

  /// Drops all state, keeping the cost model.
  void reset();

 private:
  struct BinState {
    CompensatedSum level;
    std::size_t item_count = 0;
    bool open = false;
  };

  struct PlacedItem {
    BinId bin;
    double size;
  };

  const BinState& state_of(BinId bin) const;

  CostModel model_;
  std::vector<BinState> bins_;       // by BinId
  std::vector<BinUsageRecord> usage_;  // by BinId
  std::unordered_map<ItemId, PlacedItem> items_;   // active items only
  std::unordered_map<ItemId, BinId> assignment_;   // full history
  std::size_t open_count_ = 0;
};

}  // namespace dbp
