#include "algo/clairvoyant.hpp"

#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace dbp {

BinId ClairvoyantPacker::on_arrival(const ArrivingItem& item) {
  (void)item;
  DBP_REQUIRE(false,
              "clairvoyant packer requires departure times; the simulator "
              "must use on_arrival_clairvoyant");
  return 0;  // unreachable
}

DurationAwarePacker::DurationAwarePacker(CostModel model, Policy policy)
    : ClairvoyantPacker(model), policy_(policy) {}

std::string DurationAwarePacker::name() const {
  return policy_ == Policy::kAlignDepartures ? "align-departures-fit"
                                             : "min-extension-fit";
}

Time DurationAwarePacker::projected_close(BinId bin) const {
  auto it = departures_.find(bin);
  DBP_REQUIRE(it != departures_.end() && !it->second.empty(),
              "projected close of an empty or closed bin");
  return *it->second.rbegin();
}

BinId DurationAwarePacker::on_arrival_clairvoyant(const Item& item) {
  DBP_REQUIRE(model().fits(item.size, model().bin_capacity),
              "item larger than the bin capacity");
  // Any Fit scan over open bins: keep the best-scoring fitting bin —
  // lower score wins, ties go to the lowest bin id via the explicit
  // (score, bin) comparison, so the argmin is independent of the
  // unordered_map's iteration order.
  BinId best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  bool found = false;
  for (const auto& [bin, departures] : departures_) {
    if (!manager_.fits(item.size, bin)) continue;
    const Time close = *departures.rbegin();
    const double score = policy_ == Policy::kAlignDepartures
                             ? std::abs(close - item.departure)
                             : std::max(0.0, item.departure - close);
    if (!found || score < best_score ||
        (score == best_score && bin < best)) {
      best = bin;
      best_score = score;
      found = true;
    }
  }
  if (!found) best = manager_.open_bin(item.arrival);
  manager_.place(ArrivingItem{item.id, item.arrival, item.size}, best);
  departures_[best].insert(item.departure);
  departure_of_[item.id] = item.departure;
  return best;
}

void DurationAwarePacker::on_departure(ItemId item, Time now) {
  auto departure_it = departure_of_.find(item);
  DBP_REQUIRE(departure_it != departure_of_.end(), "unknown item id");
  const DepartureOutcome outcome = manager_.remove(item, now);
  auto& departures = departures_.at(outcome.bin);
  departures.erase(departures.find(departure_it->second));
  departure_of_.erase(departure_it);
  if (outcome.bin_closed) {
    DBP_CHECK(departures.empty(), "closed bin still holds departures");
    departures_.erase(outcome.bin);
  }
}

}  // namespace dbp
