#include "algo/any_fit_packer.hpp"

#include "core/audit.hpp"
#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp {

AnyFitPacker::AnyFitPacker(CostModel model, std::unique_ptr<FitStrategy> strategy)
    : Packer(model), strategy_(std::move(strategy)) {
  DBP_REQUIRE(strategy_ != nullptr, "AnyFitPacker requires a strategy");
}

BinId AnyFitPacker::on_arrival(const ArrivingItem& item) {
  DBP_REQUIRE(model().fits(item.size, model().bin_capacity),
              "item larger than the bin capacity");
  const std::size_t candidates = manager_.open_count();
  std::optional<BinId> chosen = strategy_->select(item.size);
  BinId bin;
  if (chosen) {
    bin = *chosen;
#if DBP_AUDIT_ENABLED
    // First Fit scan-order monotonicity: the selected bin must be the
    // *earliest-opened* open bin that fits — no open bin with a smaller id
    // may accommodate the item (bin ids are assigned in opening order).
    if (strategy_->name() == "first-fit") {
      for (const BinId open : manager_.open_bins()) {
        if (open >= bin) break;
        DBP_AUDIT_CHECK(!manager_.fits(item.size, open),
                        "First Fit skipped an earlier-opened fitting bin");
      }
    }
#endif
  } else {
    if ((paranoid_ || audit_enabled()) && strategy_->any_fit_contract()) {
      for (BinId open : manager_.open_bins()) {
        DBP_CHECK(!manager_.fits(item.size, open),
                  "Any Fit contract violated: a fitting bin was declined");
      }
    }
    bin = manager_.open_bin(item.arrival);
    strategy_->on_bin_registered(bin, manager_.residual(bin));
  }
  manager_.place(item, bin);
  strategy_->on_residual_changed(bin, manager_.residual(bin));
  obs::trace_arrival(item.arrival, item.id, item.size, bin, candidates);
  return bin;
}

void AnyFitPacker::save_extra(ByteWriter& out) const {
  strategy_->save_state(out);
}

void AnyFitPacker::restore_extra(ByteReader& in) {
  // Registration replay in ascending BinId order reproduces the original
  // registration order (bin ids are assigned in opening order), so the
  // derived strategies rebuild the exact relative scan order; residuals come
  // from the bit-exact restored levels. Stateful strategies then override
  // their extra history in load_state.
  for (const BinId bin : manager_.open_bins()) {
    strategy_->on_bin_registered(bin, manager_.residual(bin));
  }
  strategy_->load_state(in);
}

void AnyFitPacker::on_departure(ItemId item, Time now) {
  const DepartureOutcome outcome = manager_.remove(item, now);
  obs::trace_departure(now, item, outcome.bin);
  if (outcome.bin_closed) {
    strategy_->on_bin_closed(outcome.bin);
  } else {
    strategy_->on_residual_changed(outcome.bin, manager_.residual(outcome.bin));
  }
}

}  // namespace dbp
