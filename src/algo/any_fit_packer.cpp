#include "algo/any_fit_packer.hpp"

namespace dbp {

AnyFitPacker::AnyFitPacker(CostModel model, std::unique_ptr<FitStrategy> strategy)
    : Packer(model), strategy_(std::move(strategy)) {
  DBP_REQUIRE(strategy_ != nullptr, "AnyFitPacker requires a strategy");
}

BinId AnyFitPacker::on_arrival(const ArrivingItem& item) {
  return arrival_impl(*strategy_, item);
}

void AnyFitPacker::on_departure(ItemId item, Time now) {
  departure_impl(*strategy_, item, now);
}

void AnyFitPacker::save_extra(ByteWriter& out) const {
  strategy_->save_state(out);
}

void AnyFitPacker::restore_extra(ByteReader& in) {
  // Registration replay in ascending BinId order reproduces the original
  // registration order (bin ids are assigned in opening order), so the
  // derived strategies rebuild the exact relative scan order; residuals come
  // from the bit-exact restored levels. Stateful strategies then override
  // their extra history in load_state.
  for (const BinId bin : manager_.open_bins()) {
    strategy_->on_bin_registered(bin, manager_.residual(bin));
  }
  strategy_->load_state(in);
}

}  // namespace dbp
