// The online packing simulator: replays an Instance's events against a
// Packer and produces exact total-cost accounting.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "algo/packer.hpp"
#include "core/instance.hpp"
#include "core/step_function.hpp"
#include "core/types.hpp"
#include "sim/event.hpp"

namespace dbp {

/// Everything measured about one packing run.
struct SimulationResult {
  std::string algorithm;

  /// A_total(R) = C * integral of n(t) dt over the packing period.
  double total_cost = 0.0;
  /// Same quantity accounted per bin: C * sum of len(I_i). The simulator
  /// verifies both accountings agree to relative 1e-9.
  double total_cost_from_bins = 0.0;

  /// max_t n(t): the classical DBP objective, reported for comparison with
  /// the Coffman-Garey-Johnson setting.
  std::int64_t max_open_bins = 0;
  std::size_t bins_opened = 0;

  /// Usage period [opened, closed) of every bin, indexed by BinId.
  std::vector<BinUsageRecord> bin_usage;
  /// assignment[item id] = bin id.
  std::vector<BinId> assignment;
  /// n(t), finalized.
  StepFunction open_bins_over_time;

  TimeInterval packing_period{};

  /// Items grouped by bin: result[bin id] = item ids assigned to that bin
  /// in arrival order. Derived on demand.
  [[nodiscard]] std::vector<std::vector<ItemId>> items_by_bin() const;
};

/// Runs `packer` over `instance` (packer must be freshly constructed).
/// The packer only ever sees ArrivingItem slices — the online contract is
/// structural, not advisory.
[[nodiscard]] SimulationResult simulate(const Instance& instance, Packer& packer);

/// Same run over a caller-provided event sequence (must be exactly
/// build_event_sequence(instance)); lets repeated runs over one instance —
/// algorithm comparisons, benchmarks — pay the event sort once.
[[nodiscard]] SimulationResult simulate(const Instance& instance,
                                        std::span<const Event> events,
                                        Packer& packer);

/// The packer event loop alone: drives `packer` (clairvoyant-aware) over a
/// prebuilt event sequence with no result accounting. This is the
/// steady-state hot path — with reserve_hint() called first it performs
/// zero heap allocations (tests/zero_alloc_test.cpp pins that).
void replay_events(const Instance& instance, std::span<const Event> events,
                   Packer& packer);

/// Convenience: build the named packer and simulate.
[[nodiscard]] SimulationResult simulate(const Instance& instance,
                                        const std::string& algorithm,
                                        const CostModel& model,
                                        const PackerOptions& options = {});

namespace detail {

/// Shared result finalization for simulate() and simulate_faulted(): copies
/// usage records, computes both cost accountings (and checks they agree to
/// relative 1e-9), and fills the per-item assignment from the manager's
/// history. Requires every bin to be closed.
void finalize_accounting(SimulationResult& result, const Instance& instance,
                         const BinManager& bins);

}  // namespace detail

}  // namespace dbp
