#include "sim/event.hpp"

#include <algorithm>

namespace dbp {

void build_event_sequence(const Instance& instance, std::vector<Event>& events) {
  // event_before is a strict *total* order — (time, kind, item) is unique
  // per event — so any correct sorting procedure produces the same sequence.
  // Sorting the two kinds separately and merging halves the n log n work of
  // sorting the interleaved whole and reuses the caller's capacity.
  const std::size_t n = instance.size();
  events.clear();
  events.reserve(2 * n);
  for (const Item& item : instance.items()) {
    events.push_back({item.arrival, EventKind::kArrival, item.id});
  }
  std::sort(events.begin(), events.end(), event_before);
  for (const Item& item : instance.items()) {
    events.push_back({item.departure, EventKind::kDeparture, item.id});
  }
  std::sort(events.begin() + static_cast<std::ptrdiff_t>(n), events.end(),
            event_before);
  std::inplace_merge(events.begin(),
                     events.begin() + static_cast<std::ptrdiff_t>(n),
                     events.end(), event_before);
}

std::vector<Event> build_event_sequence(const Instance& instance) {
  std::vector<Event> events;
  build_event_sequence(instance, events);
  return events;
}

}  // namespace dbp
