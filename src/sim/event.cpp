#include "sim/event.hpp"

#include <algorithm>

namespace dbp {

bool event_before(const Event& a, const Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.item < b.item;
}

std::vector<Event> build_event_sequence(const Instance& instance) {
  std::vector<Event> events;
  events.reserve(instance.size() * 2);
  for (const Item& item : instance.items()) {
    events.push_back({item.arrival, EventKind::kArrival, item.id});
    events.push_back({item.departure, EventKind::kDeparture, item.id});
  }
  std::sort(events.begin(), events.end(), event_before);
  return events;
}

}  // namespace dbp
