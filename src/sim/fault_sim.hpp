// Fault-injected simulation: replays an Instance against an online packer
// while executing a FaultPlan, with exact cost accounting on both the
// fault-free baseline and the post-fault run (docs/fault_model.md).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/fault.hpp"
#include "sim/simulator.hpp"

namespace dbp {

/// What the injector did during one faulted run.
struct FaultInjectionStats {
  /// Crash faults in the plan / crashes that found an open bin to kill.
  std::size_t crashes_requested = 0;
  std::size_t crashes_landed = 0;
  /// Live items re-injected as fresh arrivals after their bin crashed.
  std::size_t sessions_redispatched = 0;
  /// Anomalous events synthesized and fed to the guarded event layer.
  std::size_t anomalies_injected = 0;
  /// Anomalous events the guard rejected, by detected category. Every
  /// injected anomaly must land here: the instance itself is clean, so
  /// total_dropped() == anomalies_injected on a correct run.
  std::array<std::uint64_t, kAnomalyKindCount> anomalies_dropped{};

  [[nodiscard]] std::uint64_t dropped(AnomalyKind kind) const noexcept {
    return anomalies_dropped[static_cast<std::size_t>(kind)];
  }
  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    std::uint64_t total = 0;
    for (const std::uint64_t count : anomalies_dropped) total += count;
    return total;
  }
};

/// Baseline + faulted accounting for one (instance, algorithm, plan) cell.
struct FaultSimulationResult {
  SimulationResult faulted;   ///< the run with the plan executed
  SimulationResult baseline;  ///< the same packer, fault-free
  /// faulted.total_cost / baseline.total_cost — exact, per run. Can dip
  /// below 1: a crash acts as a forced repack, which occasionally
  /// consolidates a fragmented fleet.
  double cost_inflation_ratio = 1.0;
  FaultInjectionStats stats;
};

/// Core faulted replay. On a bin crash at time t the victim's live items
/// depart at t (closing its cost accrual) and immediately re-arrive, in
/// ascending item-id order, as fresh online arrivals at t — re-dispatch
/// without migration, preserving the online contract. Anomalous events are
/// rejected by a validation layer with per-category counters; they never
/// reach the packer.
///
/// With an empty plan this performs exactly the operations of simulate():
/// the results are bit-identical. Clairvoyant packers are rejected
/// (re-dispatch is an online notion).
[[nodiscard]] SimulationResult simulate_faulted(const Instance& instance,
                                                Packer& packer,
                                                const FaultPlan& plan,
                                                FaultInjectionStats* stats = nullptr);

/// Convenience wrapper: runs the fault-free baseline and the faulted run
/// with fresh packers of the named algorithm and reports the exact
/// cost-inflation ratio.
[[nodiscard]] FaultSimulationResult simulate_with_faults(
    const Instance& instance, const std::string& algorithm,
    const CostModel& model, const FaultPlan& plan,
    const PackerOptions& options = {});

}  // namespace dbp
