#include "sim/fault_sim.hpp"

#include <cmath>
#include <limits>
#include <set>

#include "algo/clairvoyant.hpp"
#include "core/error.hpp"
#include "core/strfmt.hpp"
#include "obs/obs.hpp"

namespace dbp {

namespace {

/// SplitMix64 — self-contained so the sim layer does not depend on the
/// workload layer's Rng. Drives every in-plan random choice.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// An event as fed to the guarded layer — either straight from the
/// instance or synthesized from an AnomalyFault.
struct RawEvent {
  Time time = 0.0;
  bool is_arrival = true;
  ItemId id = 0;
  double size = 0.0;
};

/// Why the guard refused an event, in FaultInjectionStats categories.
enum class Reject : std::uint8_t {
  kNone,
  kOutOfOrder,
  kNaNSize,
  kNegativeSize,
  kDuplicateStart,
  kUnknownEnd,
};

AnomalyKind to_anomaly_kind(Reject reject) {
  switch (reject) {
    case Reject::kOutOfOrder: return AnomalyKind::kOutOfOrderTimestamp;
    case Reject::kNaNSize: return AnomalyKind::kNaNSize;
    case Reject::kNegativeSize: return AnomalyKind::kNegativeSize;
    case Reject::kDuplicateStart: return AnomalyKind::kDuplicateStart;
    case Reject::kUnknownEnd: return AnomalyKind::kUnknownSessionEnd;
    case Reject::kNone: break;
  }
  DBP_CHECK(false, "unreachable reject category");
  return AnomalyKind::kDuplicateStart;  // unreachable
}

/// Validation layer between the event stream and the packer: anomalous
/// events are classified and never reach the packer, so a malformed feed
/// cannot corrupt packing state.
class GuardedFeeder {
 public:
  explicit GuardedFeeder(Packer& packer) : packer_(packer) {}

  [[nodiscard]] Reject classify(const RawEvent& event) const {
    if (event.time < clock_) return Reject::kOutOfOrder;
    if (event.is_arrival) {
      if (std::isnan(event.size)) return Reject::kNaNSize;
      if (!std::isfinite(event.size)) {
        return event.size < 0.0 ? Reject::kNegativeSize : Reject::kNaNSize;
      }
      if (event.size <= 0.0) return Reject::kNegativeSize;
      if (active_.contains(event.id)) return Reject::kDuplicateStart;
    } else if (!active_.contains(event.id)) {
      return Reject::kUnknownEnd;
    }
    return Reject::kNone;
  }

  /// Applies the event when it is valid; returns the reject category
  /// otherwise. Only accepted events advance the stream clock.
  Reject feed(const RawEvent& event) {
    const Reject reject = classify(event);
    if (reject != Reject::kNone) return reject;
    clock_ = event.time;
    if (event.is_arrival) {
      packer_.on_arrival(ArrivingItem{event.id, event.time, event.size});
      active_.insert(event.id);
    } else {
      packer_.on_departure(event.id, event.time);
      active_.erase(event.id);
    }
    return Reject::kNone;
  }

  /// Faults carry wall-clock times too; processing one advances the clock.
  void advance_clock(Time t) noexcept { clock_ = std::max(clock_, t); }

  [[nodiscard]] Time clock() const noexcept { return clock_; }
  [[nodiscard]] const std::set<ItemId>& active() const noexcept { return active_; }

 private:
  Packer& packer_;
  std::set<ItemId> active_;  // ordered: deterministic duplicate-target picks
  Time clock_ = -kTimeInfinity;
};

BinId select_victim(const BinManager& bins, const std::vector<BinId>& open,
                    CrashTarget target, std::uint64_t& rng_state) {
  switch (target) {
    case CrashTarget::kOldest:
      return open.front();
    case CrashTarget::kNewest:
      return open.back();
    case CrashTarget::kRandom:
      return open[static_cast<std::size_t>(splitmix64(rng_state) % open.size())];
    case CrashTarget::kFullest: {
      BinId best = open.front();
      double best_level = bins.level(best);
      for (const BinId bin : open) {
        const double level = bins.level(bin);
        if (level > best_level) {
          best = bin;
          best_level = level;
        }
      }
      return best;
    }
    case CrashTarget::kEmptiest: {
      BinId best = open.front();
      double best_level = bins.level(best);
      for (const BinId bin : open) {
        const double level = bins.level(bin);
        if (level < best_level) {
          best = bin;
          best_level = level;
        }
      }
      return best;
    }
  }
  DBP_CHECK(false, "unreachable crash target");
  return open.front();  // unreachable
}

}  // namespace

SimulationResult simulate_faulted(const Instance& instance, Packer& packer,
                                  const FaultPlan& plan,
                                  FaultInjectionStats* stats_out) {
  DBP_REQUIRE(packer.bins().total_bins_opened() == 0,
              "packers are single-use; construct a fresh one per run");
  DBP_REQUIRE(dynamic_cast<ClairvoyantPacker*>(&packer) == nullptr,
              "fault injection requires an online packer (re-dispatch is an "
              "online notion)");
  plan.validate();

  FaultInjectionStats stats;
  SimulationResult result;
  result.algorithm = packer.name();
  if (instance.empty()) {
    // Nothing can land on an empty run; record the plan size and finish.
    stats.crashes_requested = plan.crashes.size();
    if (stats_out != nullptr) *stats_out = stats;
    result.open_bins_over_time.finalize();
    return result;
  }
  result.packing_period = instance.packing_period();
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = result.packing_period.begin;
    record.kind = obs::TraceKind::kRunBegin;
    record.count = instance.size();
    record.label = result.algorithm;
    tracer->record(std::move(record));
  }

  const std::vector<Event> events = build_event_sequence(instance);
  GuardedFeeder feeder(packer);
  std::uint64_t rng_state = plan.seed;
  ItemId next_synthetic_id = static_cast<ItemId>(instance.size());
  stats.crashes_requested = plan.crashes.size();

  std::size_t ei = 0, ai = 0, ci = 0;
  while (ei < events.size() || ai < plan.anomalies.size() ||
         ci < plan.crashes.size()) {
    const Time event_time = ei < events.size() ? events[ei].time : kTimeInfinity;
    const Time anomaly_time =
        ai < plan.anomalies.size() ? plan.anomalies[ai].time : kTimeInfinity;
    const Time crash_time =
        ci < plan.crashes.size() ? plan.crashes[ci].time : kTimeInfinity;

    if (event_time <= anomaly_time && event_time <= crash_time) {
      // Instance events are trusted input: a guard rejection here means the
      // caller fed corrupt data, which is a precondition violation.
      const Event& event = events[ei++];
      const Item& item = instance.item(event.item);
      RawEvent raw;
      raw.time = event.time;
      raw.is_arrival = event.kind == EventKind::kArrival;
      raw.id = item.id;
      raw.size = item.size;
      const Reject reject = feeder.feed(raw);
      DBP_REQUIRE(reject == Reject::kNone,
                  strfmt("instance event for item %llu rejected as %s",
                         static_cast<unsigned long long>(item.id),
                         to_string(to_anomaly_kind(reject))));
    } else if (anomaly_time <= crash_time) {
      const AnomalyFault& fault = plan.anomalies[ai++];
      feeder.advance_clock(fault.time);
      RawEvent raw;
      raw.time = fault.time;
      switch (fault.kind) {
        case AnomalyKind::kDuplicateStart: {
          if (feeder.active().empty()) continue;  // no session to duplicate
          const auto& active = feeder.active();
          auto it = active.begin();
          std::advance(it, static_cast<std::ptrdiff_t>(
                               splitmix64(rng_state) % active.size()));
          raw.id = *it;
          raw.size = instance.item(*it).size;
          break;
        }
        case AnomalyKind::kUnknownSessionEnd:
          raw.is_arrival = false;
          raw.id = next_synthetic_id++;
          break;
        case AnomalyKind::kOutOfOrderTimestamp:
          raw.id = next_synthetic_id++;
          raw.size = 0.25;
          raw.time = feeder.clock() - 1.0;
          break;
        case AnomalyKind::kNaNSize:
          raw.id = next_synthetic_id++;
          raw.size = std::numeric_limits<double>::quiet_NaN();
          break;
        case AnomalyKind::kNegativeSize:
          raw.id = next_synthetic_id++;
          raw.size = -0.25;
          break;
      }
      ++stats.anomalies_injected;
      const Reject reject = feeder.feed(raw);
      DBP_CHECK(reject != Reject::kNone,
                "injected anomaly slipped past the event guard");
      ++stats.anomalies_dropped[static_cast<std::size_t>(to_anomaly_kind(reject))];
      if (obs::RunTracer* tracer = obs::tracer()) {
        obs::TraceRecord record;
        record.time = raw.time;
        record.kind = obs::TraceKind::kFaultAnomaly;
        record.item = raw.id;
        record.label = to_string(to_anomaly_kind(reject));
        tracer->record(std::move(record));
      }
      if (obs::MetricsRegistry* metrics = obs::metrics()) {
        metrics->counter("fault.anomalies_dropped").add();
      }
    } else {
      const CrashFault& fault = plan.crashes[ci++];
      feeder.advance_clock(fault.time);
      const BinManager& bins = packer.bins();
      const std::vector<BinId> open = bins.open_bins();
      if (open.empty()) continue;  // crash on an idle fleet: nothing to kill
      const BinId victim = select_victim(bins, open, fault.target, rng_state);
      const std::vector<ItemId> live = bins.items_in(victim);
      if (obs::RunTracer* tracer = obs::tracer()) {
        obs::TraceRecord record;
        record.time = fault.time;
        record.kind = obs::TraceKind::kFaultCrash;
        record.bin = victim;
        record.count = live.size();
        record.label = to_string(fault.target);
        tracer->record(std::move(record));
      }
      // The crash ends the victim's cost accrual: every live item departs
      // at the crash time, which closes the bin...
      for (const ItemId id : live) packer.on_departure(id, fault.time);
      DBP_CHECK(!bins.is_open(victim), "crashed bin still open");
      // ...then the orphans re-arrive as fresh online arrivals (ascending
      // id order), i.e. re-dispatch without migration.
      for (const ItemId id : live) {
        packer.on_arrival(ArrivingItem{id, fault.time, instance.item(id).size});
      }
      ++stats.crashes_landed;
      stats.sessions_redispatched += live.size();
      if (obs::RunTracer* tracer = obs::tracer()) {
        obs::TraceRecord record;
        record.time = fault.time;
        record.kind = obs::TraceKind::kRedispatch;
        record.bin = victim;
        record.count = live.size();
        tracer->record(std::move(record));
      }
      if (obs::MetricsRegistry* metrics = obs::metrics()) {
        metrics->counter("fault.crashes_landed").add();
        metrics->counter("fault.sessions_redispatched").add(live.size());
      }
    }
  }

  const BinManager& bins = packer.bins();
  DBP_CHECK(bins.open_count() == 0, "bins remain open after the last departure");
  detail::finalize_accounting(result, instance, bins);
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = result.packing_period.end;
    record.kind = obs::TraceKind::kRunEnd;
    record.count = result.bins_opened;
    record.label = result.algorithm;
    tracer->record(std::move(record));
  }
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

FaultSimulationResult simulate_with_faults(const Instance& instance,
                                           const std::string& algorithm,
                                           const CostModel& model,
                                           const FaultPlan& plan,
                                           const PackerOptions& options) {
  FaultSimulationResult cell;
  cell.baseline = simulate(instance, algorithm, model, options);
  auto packer = make_packer(algorithm, model, options);
  cell.faulted = simulate_faulted(instance, *packer, plan, &cell.stats);
  cell.cost_inflation_ratio =
      cell.baseline.total_cost > 0.0
          ? cell.faulted.total_cost / cell.baseline.total_cost
          : 1.0;
  return cell;
}

}  // namespace dbp
