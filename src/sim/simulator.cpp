#include "sim/simulator.hpp"

#include <cmath>

#include "algo/clairvoyant.hpp"

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "obs/obs.hpp"

namespace dbp {

std::vector<std::vector<ItemId>> SimulationResult::items_by_bin() const {
  std::vector<std::vector<ItemId>> result(bins_opened);
  for (std::size_t item = 0; item < assignment.size(); ++item) {
    result[static_cast<std::size_t>(assignment[item])].push_back(
        static_cast<ItemId>(item));
  }
  return result;
}

void replay_events(const Instance& instance, std::span<const Event> events,
                   Packer& packer) {
  // The loop itself is a Packer method so the statically-typed packers can
  // devirtualize it end to end; the default handles the general (including
  // clairvoyant) case. See algo/packer.cpp.
  packer.replay(instance, events);
}

SimulationResult simulate(const Instance& instance, std::span<const Event> events,
                          Packer& packer) {
  DBP_REQUIRE(packer.bins().total_bins_opened() == 0,
              "packers are single-use; construct a fresh one per run");
  SimulationResult result;
  result.algorithm = packer.name();
  if (instance.empty()) {
    result.open_bins_over_time.finalize();
    return result;
  }
  result.packing_period = instance.packing_period();
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = result.packing_period.begin;
    record.kind = obs::TraceKind::kRunBegin;
    record.count = instance.size();
    record.label = result.algorithm;
    tracer->record(std::move(record));
  }

  packer.reserve_hint(instance.size());
  replay_events(instance, events, packer);

  const BinManager& bins = packer.bins();
  DBP_CHECK(bins.open_count() == 0, "bins remain open after the last departure");
  detail::finalize_accounting(result, instance, bins);
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = result.packing_period.end;
    record.kind = obs::TraceKind::kRunEnd;
    record.count = result.bins_opened;
    record.label = result.algorithm;
    tracer->record(std::move(record));
  }
  return result;
}

SimulationResult simulate(const Instance& instance, Packer& packer) {
  const std::vector<Event> events = build_event_sequence(instance);
  return simulate(instance, events, packer);
}

void detail::finalize_accounting(SimulationResult& result,
                                 const Instance& instance,
                                 const BinManager& bins) {
  result.bins_opened = bins.total_bins_opened();
  result.bin_usage.assign(bins.usage_records().begin(), bins.usage_records().end());

  const double rate = bins.model().cost_rate;
  CompensatedSum per_bin_cost;
  for (const BinUsageRecord& record : result.bin_usage) {
    DBP_CHECK(record.is_closed(), "usage record of an unclosed bin");
    result.open_bins_over_time.add_interval({record.opened, record.closed});
    per_bin_cost.add(record.usage_length() * rate);
  }
  result.open_bins_over_time.finalize();
  result.total_cost_from_bins = per_bin_cost.value();
  result.total_cost = result.open_bins_over_time.integral() * rate;
  result.max_open_bins = result.open_bins_over_time.max_value();

  const double scale = std::max({std::abs(result.total_cost),
                                 std::abs(result.total_cost_from_bins), 1.0});
  DBP_CHECK(std::abs(result.total_cost - result.total_cost_from_bins) <=
                1e-9 * scale,
            "per-bin and integral cost accounting disagree");

  result.assignment.resize(instance.size());
  for (const Item& item : instance.items()) {
    auto bin = bins.assignment_of(item.id);
    DBP_CHECK(bin.has_value(), "item missing from assignment history");
    result.assignment[static_cast<std::size_t>(item.id)] = *bin;
  }
}

SimulationResult simulate(const Instance& instance, const std::string& algorithm,
                          const CostModel& model, const PackerOptions& options) {
  auto packer = make_packer(algorithm, model, options);
  return simulate(instance, *packer);
}

}  // namespace dbp
