// Discrete events of a dynamic bin packing run.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

/// What happens at an event point. Departures order before arrivals at equal
/// times: items occupy [a, d), so capacity frees before new placements
/// (DESIGN.md "Semantics"; the paper's constructions in Theorems 1-2 state
/// departures happen "before" subsequent arrivals).
enum class EventKind : std::uint8_t { kDeparture = 0, kArrival = 1 };

struct Event {
  Time time = 0.0;
  EventKind kind = EventKind::kArrival;
  ItemId item = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Strict weak order: by time, then departures before arrivals, then by item
/// id (generator emission order breaks simultaneous-arrival ties).
[[nodiscard]] bool event_before(const Event& a, const Event& b) noexcept;

/// The full sorted event sequence (2 events per item) of an instance.
[[nodiscard]] std::vector<Event> build_event_sequence(const Instance& instance);

}  // namespace dbp
