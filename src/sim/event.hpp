// Building the sorted event sequence of an instance. The Event record
// itself lives in core/event.hpp (the Packer replay loop consumes it).
#pragma once

#include <vector>

#include "core/event.hpp"
#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

/// The full sorted event sequence (2 events per item) of an instance.
[[nodiscard]] std::vector<Event> build_event_sequence(const Instance& instance);

/// Same sequence written into `events` (cleared first), reusing its
/// capacity — for callers that rebuild sequences in a loop. The order is
/// identical to the value-returning overload: event_before is a strict
/// total order, so the sequence is unique.
void build_event_sequence(const Instance& instance, std::vector<Event>& events);

}  // namespace dbp
