#include "obs/obs.hpp"

namespace dbp::obs::detail {

thread_local ObsContext g_context{};

}  // namespace dbp::obs::detail
