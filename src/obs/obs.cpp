#include "obs/obs.hpp"

namespace dbp::obs {

namespace detail {

thread_local ObsContext g_context{};

}  // namespace detail

std::uint64_t current_shard() noexcept { return detail::g_context.shard; }

}  // namespace dbp::obs
