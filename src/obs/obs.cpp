#include "obs/obs.hpp"

#include <chrono>

namespace dbp::obs {

namespace detail {

thread_local ObsContext g_context{};

}  // namespace detail

std::uint64_t current_shard() noexcept { return detail::g_context.shard; }

namespace {

/// The one steady-clock read in the library. Everything that wants elapsed
/// time goes through PhaseStopwatch and therefore through this TU; objects
/// outside src/obs referencing a clock symbol fail dbp_symcheck.
[[nodiscard]] double steady_now_ms() noexcept {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

}  // namespace

void PhaseStopwatch::begin() noexcept {
  if (active_) start_ms_ = steady_now_ms();
}

double PhaseStopwatch::elapsed_ms() const noexcept {
  if (!active_) return 0.0;
  return steady_now_ms() - start_ms_;
}

}  // namespace dbp::obs
