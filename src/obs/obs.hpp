// Observability context: how instrumented code finds the active tracer
// and metrics registry.
//
// The context is a thread-local pair of non-owning pointers, installed by
// an RAII ObsScope. Instrumentation sites ask obs::tracer() / obs::metrics()
// and do nothing when the answer is null — with no scope installed (the
// default) an instrumented call site costs one thread-local load and one
// predictable branch, so observability is effectively free when off.
//
// The context is thread-local on purpose: parallel workers (e.g. phase 2 of
// estimate_opt_total) never inherit the caller's scope, so traces contain
// only the deterministic, sequentially-emitted records and stay
// byte-identical across worker counts (docs/observability.md).
#pragma once

#include "obs/metrics_registry.hpp"
#include "obs/run_tracer.hpp"

namespace dbp::obs {

struct ObsContext {
  RunTracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// Engine shard attribution: records emitted under this context carry
  /// this shard id in their "shard" JSONL field (kNoShard = omitted).
  std::uint64_t shard = kNoShard;
};

namespace detail {
/// The active context of this thread. Do not touch directly — install an
/// ObsScope instead.
extern thread_local ObsContext g_context;
}  // namespace detail

/// The tracer of the current thread's scope, or null (tracing off).
[[nodiscard]] inline RunTracer* tracer() noexcept {
  return detail::g_context.tracer;
}

/// The metrics registry of the current thread's scope, or null.
[[nodiscard]] inline MetricsRegistry* metrics() noexcept {
  return detail::g_context.metrics;
}

/// The shard attribution of the current thread's scope (kNoShard = none).
[[nodiscard]] inline std::uint64_t shard() noexcept {
  return detail::g_context.shard;
}

/// Installs `tracer`/`metrics` as this thread's observability context for
/// the scope's lifetime; restores the previous context on destruction
/// (scopes nest). Pass null for either half to leave it disabled. The
/// 3-argument form additionally tags records with an engine shard id.
class ObsScope {
 public:
  ObsScope(RunTracer* tracer, MetricsRegistry* metrics) noexcept
      : saved_(detail::g_context) {
    detail::g_context = ObsContext{tracer, metrics, kNoShard};
  }
  ObsScope(RunTracer* tracer, MetricsRegistry* metrics,
           std::uint64_t shard) noexcept
      : saved_(detail::g_context) {
    detail::g_context = ObsContext{tracer, metrics, shard};
  }
  ~ObsScope() { detail::g_context = saved_; }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  ObsContext saved_;
};

/// Result-neutral phase stopwatch for instrumented code outside src/obs.
///
/// begin()/elapsed_ms() are defined out of line in obs.cpp so the clock
/// read never compiles into the caller's translation unit: dbp_symcheck's
/// `wall-clock` object policy (docs/static_analysis.md) verifies that no
/// object outside src/obs references a clock symbol, which keeps timing —
/// and therefore any timing-dependent behaviour — structurally impossible
/// in the packing/OPT layers. Inactive (no tracer and no metrics installed
/// on this thread at construction) means zero clock reads.
class PhaseStopwatch {
 public:
  PhaseStopwatch() noexcept
      : active_(tracer() != nullptr || metrics() != nullptr) {}

  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Starts (or restarts) the stopwatch. No-op when inactive.
  void begin() noexcept;

  /// Milliseconds since the last begin(); 0.0 when inactive.
  [[nodiscard]] double elapsed_ms() const noexcept;

 private:
  bool active_;
  double start_ms_ = 0.0;  ///< steady-clock timestamp, milliseconds
};

/// Shared emitters for the packer event loop (AnyFit, size-classed MFF,
/// adaptive MFF): one arrival/departure record per event plus throughput
/// counters. No-ops when the corresponding half of the context is off.
/// `candidates` is the number of open bins the fit strategy chose from at
/// selection time (before any new bin was opened for the item).
inline void trace_arrival(Time t, ItemId item, double size, BinId bin,
                          std::uint64_t candidates) {
  if (RunTracer* tr = tracer()) {
    TraceRecord record;
    record.time = t;
    record.kind = TraceKind::kArrival;
    record.item = item;
    record.bin = bin;
    record.size = size;
    record.count = candidates;
    tr->record(std::move(record));
  }
  if (MetricsRegistry* m = metrics()) m->counter("packer.arrivals").add();
}

inline void trace_departure(Time t, ItemId item, BinId bin) {
  if (RunTracer* tr = tracer()) {
    TraceRecord record;
    record.time = t;
    record.kind = TraceKind::kDeparture;
    record.item = item;
    record.bin = bin;
    tr->record(std::move(record));
  }
  if (MetricsRegistry* m = metrics()) m->counter("packer.departures").add();
}

}  // namespace dbp::obs
