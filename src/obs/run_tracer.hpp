// Structured per-event run tracing into a bounded in-memory ring buffer.
//
// A RunTracer records one TraceRecord per observable decision — arrivals
// with the chosen bin and candidate count, departures, bin openings and
// closings, fault injections, oracle hits/misses, estimator phases,
// dispatcher rejections — and exports them as JSONL (one JSON object per
// line, schema "dbp-trace/1", documented in docs/observability.md).
//
// Tracing is strictly read-only with respect to the traced computation: a
// traced run and an untraced run produce byte-identical results
// (tests/trace_neutrality_test.cpp enforces this). The buffer is a ring:
// once `capacity` records are held the oldest are dropped and counted, so
// a runaway trace can never exhaust memory.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace dbp::obs {

/// What a trace record describes. Names are stable — they are the JSONL
/// "kind" strings the validator checks against.
enum class TraceKind : std::uint8_t {
  kRunBegin,        ///< simulate()/simulate_faulted() entered
  kRunEnd,          ///< run finished; count = bins opened
  kArrival,         ///< item placed; bin = chosen, count = candidate open bins
  kDeparture,       ///< item left; bin = the bin it departed from
  kBinOpen,         ///< BinManager opened a fresh bin
  kBinClose,        ///< last resident departed; the bin closed
  kFaultCrash,      ///< injected crash landed; bin = victim, count = live items
  kFaultAnomaly,    ///< injected anomaly; label = detected category
  kRedispatch,      ///< crash orphans re-dispatched; count = sessions
  kOracleHit,       ///< bin-count oracle memo hit; count = snapshot index
  kOracleMiss,      ///< oracle memo miss; count = snapshot index
  kOptPhase,        ///< estimator phase finished; label = phase, ms = duration
  kDispatchReject,  ///< dispatcher rejected an event; label = error kind
  kSessionShed,     ///< degraded mode shed a session
  kServerFail,      ///< dispatcher fail_server; bin = server, count = orphans
  kEpochMark,       ///< engine epoch boundary; count = events applied so far
  kShardSnapshot,   ///< per-shard RLE snapshot; count = active sessions
};

/// Stable JSONL name of a kind ("arrival", "bin_open", ...).
[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

/// The current thread's shard attribution (ObsContext::shard, defined in
/// obs.hpp/obs.cpp); kNoShard outside an engine shard scope. Declared here
/// so RunTracer::record can stamp it without a header cycle.
[[nodiscard]] std::uint64_t current_shard() noexcept;

/// "no value" sentinel for TraceRecord::count.
inline constexpr std::uint64_t kNoCount = std::numeric_limits<std::uint64_t>::max();

/// "no shard" sentinel for TraceRecord::shard / ObsContext::shard.
inline constexpr std::uint64_t kNoShard = std::numeric_limits<std::uint64_t>::max();

/// One structured trace entry. Fields without a meaning for the record's
/// kind keep their sentinel defaults and are omitted from the JSONL line.
struct TraceRecord {
  std::uint64_t seq = 0;  ///< assigned by the tracer, strictly increasing
  Time time = 0.0;
  TraceKind kind = TraceKind::kArrival;
  ItemId item = kNoItem;
  BinId bin = kNoBin;
  double size = -1.0;             ///< item size / GPU fraction; < 0 = absent
  std::uint64_t count = kNoCount;  ///< kind-specific count (see TraceKind)
  double ms = -1.0;               ///< timing payload (kOptPhase); < 0 = absent
  std::uint64_t shard = kNoShard;  ///< engine shard attribution; see obs.hpp
  std::string label;              ///< kind-specific detail; empty = absent
};

class RunTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // ~256k records

  explicit RunTracer(std::size_t capacity = kDefaultCapacity);

  /// Appends a record (thread-safe); assigns its sequence number. The
  /// oldest record is dropped once the ring is full.
  void record(TraceRecord record);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Records evicted by the ring so far.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Records ever submitted (= size() + dropped()).
  [[nodiscard]] std::uint64_t total_recorded() const;

  /// Buffer contents in sequence order (oldest surviving record first).
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Writes one "trace_meta" header line followed by one JSON object per
  /// record. `include_timings` = false omits the "ms" field, making traces
  /// byte-comparable across runs whose only difference is wall-clock noise
  /// (the determinism tests diff traces this way).
  void export_jsonl(std::ostream& out, bool include_timings = true) const;

  /// Drops all records (capacity and sequence numbering are kept).
  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceRecord> ring_;  // ring_[ (first_ + i) % capacity_ ]
  std::size_t first_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dbp::obs
