#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <ostream>

#include "core/strfmt.hpp"

namespace dbp::obs {

void Timer::record_ms(double ms) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.count == 0) {
    stats_.min_ms = ms;
    stats_.max_ms = ms;
  } else {
    stats_.min_ms = std::min(stats_.min_ms, ms);
    stats_.max_ms = std::max(stats_.max_ms, ms);
  }
  stats_.total_ms += ms;
  ++stats_.count;
}

TimerStats Timer::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  Counter& slot = counter_storage_.emplace_back();
  counters_.emplace(std::string(name), &slot);
  return slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  Gauge& slot = gauge_storage_.emplace_back();
  gauges_.emplace(std::string(name), &slot);
  return slot;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(name);
  if (it != timers_.end()) return *it->second;
  Timer& slot = timer_storage_.emplace_back();
  timers_.emplace(std::string(name), &slot);
  return slot;
}

std::optional<std::uint64_t> MetricsRegistry::counter_value(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return std::nullopt;
  return it->second->value();
}

std::optional<double> MetricsRegistry::gauge_value(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  return it->second->value();
}

std::optional<TimerStats> MetricsRegistry::timer_stats(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = timers_.find(name);
  if (it == timers_.end()) return std::nullopt;
  return it->second->stats();
}

void MetricsRegistry::write_text(std::ostream& out, bool include_timings) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    out << strfmt("counter %-42s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out << strfmt("gauge   %-42s %g\n", name.c_str(), gauge->value());
  }
  for (const auto& [name, timer] : timers_) {
    const TimerStats stats = timer->stats();
    if (include_timings) {
      out << strfmt(
          "timer   %-42s total %.3f ms | count %llu | min %.3f | mean %.3f | "
          "max %.3f\n",
          name.c_str(), stats.total_ms,
          static_cast<unsigned long long>(stats.count), stats.min_ms,
          stats.mean_ms(), stats.max_ms);
    } else {
      out << strfmt("timer   %-42s count %llu\n", name.c_str(),
                    static_cast<unsigned long long>(stats.count));
    }
  }
}

}  // namespace dbp::obs
