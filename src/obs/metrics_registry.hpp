// Named runtime metrics: monotonic counters, gauges, and wall-clock timers.
//
// A MetricsRegistry is the passive half of the observability layer (the
// active, per-event half is RunTracer): instrumentation sites look up a
// metric once and bump it with relaxed atomics, so a registry can be shared
// across threads without serializing the hot path. When no registry is
// installed (obs::metrics() == nullptr, the default) instrumentation costs
// one thread-local load and a branch — see obs/obs.hpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace dbp::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Aggregate of every duration recorded against one timer.
struct TimerStats {
  double total_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t count = 0;

  [[nodiscard]] double mean_ms() const noexcept {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
};

/// Wall-clock duration accumulator (min/max/total/count). Recording takes a
/// per-timer mutex: timers wrap multi-microsecond scopes, never per-item
/// work, so the lock is invisible next to the timed region.
class Timer {
 public:
  void record_ms(double ms) noexcept;
  [[nodiscard]] TimerStats stats() const;

 private:
  mutable std::mutex mutex_;
  TimerStats stats_{};
};

/// Thread-safe name -> metric registry. Metric objects are allocated in
/// deques, so references returned by counter()/gauge()/timer() stay valid
/// for the registry's lifetime and can be cached by instrumentation sites.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);

  /// Point-in-time values of a metric by name (nullopt when never touched).
  [[nodiscard]] std::optional<std::uint64_t> counter_value(std::string_view name) const;
  [[nodiscard]] std::optional<double> gauge_value(std::string_view name) const;
  [[nodiscard]] std::optional<TimerStats> timer_stats(std::string_view name) const;

  /// Human-readable dump, one metric per line, sorted by name (the CLI
  /// tools' --metrics report). With include_timings=false, timer lines
  /// carry only the (deterministic) invocation count and omit the measured
  /// milliseconds, so two identical runs produce byte-identical dumps.
  void write_text(std::ostream& out, bool include_timings = true) const;

 private:
  mutable std::mutex mutex_;
  std::deque<Counter> counter_storage_;
  std::deque<Gauge> gauge_storage_;
  std::deque<Timer> timer_storage_;
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, Timer*, std::less<>> timers_;
};

/// RAII wall-clock scope: records into `timer` on destruction. A null timer
/// disables the scope entirely (not even a clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) noexcept : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() { stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Ends the scope early; idempotent.
  void stop() noexcept {
    if (timer_ == nullptr) return;
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start_;
    timer_->record_ms(elapsed.count());
    timer_ = nullptr;
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace dbp::obs
