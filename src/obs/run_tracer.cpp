#include "obs/run_tracer.hpp"

#include <locale>
#include <ostream>
#include <sstream>

#include "core/error.hpp"

namespace dbp::obs {

namespace {

/// Round-trippable, locale-independent double formatting (matches the
/// BENCH_perf.json emitter).
std::string json_number(double value) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(17);
  out << value;
  return out.str();
}

/// Minimal JSON string escaping; labels are ASCII identifiers in practice.
std::string json_string(const std::string& value) {
  std::string out = "\"";
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kRunBegin: return "run_begin";
    case TraceKind::kRunEnd: return "run_end";
    case TraceKind::kArrival: return "arrival";
    case TraceKind::kDeparture: return "departure";
    case TraceKind::kBinOpen: return "bin_open";
    case TraceKind::kBinClose: return "bin_close";
    case TraceKind::kFaultCrash: return "fault_crash";
    case TraceKind::kFaultAnomaly: return "fault_anomaly";
    case TraceKind::kRedispatch: return "redispatch";
    case TraceKind::kOracleHit: return "oracle_hit";
    case TraceKind::kOracleMiss: return "oracle_miss";
    case TraceKind::kOptPhase: return "opt_phase";
    case TraceKind::kDispatchReject: return "dispatch_reject";
    case TraceKind::kSessionShed: return "session_shed";
    case TraceKind::kServerFail: return "server_fail";
    case TraceKind::kEpochMark: return "epoch_mark";
    case TraceKind::kShardSnapshot: return "shard_snapshot";
  }
  return "unknown";
}

RunTracer::RunTracer(std::size_t capacity) : capacity_(capacity) {
  DBP_REQUIRE(capacity_ > 0, "trace ring capacity must be positive");
}

void RunTracer::record(TraceRecord record) {
  // Stamp the thread's shard attribution (obs.hpp) unless the emitter set
  // one explicitly. Outside engine shard scopes this is kNoShard and the
  // field is omitted from the export, so non-engine traces are unchanged.
  if (record.shard == kNoShard) record.shard = current_shard();
  const std::lock_guard<std::mutex> lock(mutex_);
  record.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  // Full: overwrite the oldest slot and advance the ring start.
  ring_[first_] = std::move(record);
  first_ = (first_ + 1) % capacity_;
  ++dropped_;
}

std::size_t RunTracer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t RunTracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t RunTracer::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::vector<TraceRecord> RunTracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(first_ + i) % ring_.size()]);
  }
  return out;
}

void RunTracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  first_ = 0;
  dropped_ = 0;
}

void RunTracer::export_jsonl(std::ostream& out, bool include_timings) const {
  const std::vector<TraceRecord> records = snapshot();
  std::uint64_t dropped_count = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    dropped_count = dropped_;
  }
  out << "{\"kind\": \"trace_meta\", \"schema\": \"dbp-trace/1\", \"records\": "
      << records.size() << ", \"dropped\": " << dropped_count
      << ", \"capacity\": " << capacity_ << "}\n";
  for (const TraceRecord& r : records) {
    out << "{\"seq\": " << r.seq << ", \"kind\": \"" << to_string(r.kind)
        << "\", \"t\": " << json_number(r.time);
    if (r.item != kNoItem) out << ", \"item\": " << r.item;
    if (r.bin != kNoBin) out << ", \"bin\": " << r.bin;
    if (r.size >= 0.0) out << ", \"size\": " << json_number(r.size);
    if (r.count != kNoCount) out << ", \"count\": " << r.count;
    if (include_timings && r.ms >= 0.0) out << ", \"ms\": " << json_number(r.ms);
    if (r.shard != kNoShard) out << ", \"shard\": " << r.shard;
    if (!r.label.empty()) out << ", \"label\": " << json_string(r.label);
    out << "}\n";
  }
}

}  // namespace dbp::obs
