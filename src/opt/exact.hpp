// Exact bin packing by budgeted branch-and-bound.
#pragma once

#include <cstdint>
#include <span>

#include "core/types.hpp"

namespace dbp {

/// Outcome of a branch-and-bound search.
struct ExactPackingResult {
  std::size_t lower = 0;   ///< proven lower bound on the optimum
  std::size_t upper = 0;   ///< bin count of the best packing found
  bool proven = false;     ///< lower == upper and the search was exhaustive
  std::uint64_t nodes = 0; ///< nodes expanded
};

struct ExactPackingOptions {
  /// Abort the search (returning the best bounds so far) after this many
  /// nodes. The default solves typical |active| <= 64 mixed instances.
  std::uint64_t node_budget = 200'000;
};

/// Branch-and-bound over items in non-increasing size order: each item is
/// tried in every open bin with a distinct residual (symmetry breaking) and
/// in a fresh bin; subtrees are pruned with the area bound. Sound under the
/// library-wide tolerance-based feasibility (see opt/lower_bounds.hpp).
[[nodiscard]] ExactPackingResult exact_bin_count(std::span<const double> sizes,
                                                 const CostModel& model,
                                                 const ExactPackingOptions& options = {});

class MonotonicArena;

/// Search-only entry point for callers that already hold valid bounds:
/// `sorted_desc` must be non-increasing, `lower` must come from
/// l2_lower_bound_* and `upper` from min(FFD, BFD) over the same multiset.
/// Under that contract the result is bit-identical to exact_bin_count (which
/// recomputes exactly those bounds before searching); the recomputation is
/// skipped and every working array comes out of `scratch`, so a caller that
/// resets the arena between snapshots (opt/scratch.hpp) runs the solver
/// without heap allocations.
[[nodiscard]] ExactPackingResult exact_bin_count_bounded(
    std::span<const double> sorted_desc, const CostModel& model, std::size_t lower,
    std::size_t upper, const ExactPackingOptions& options, MonotonicArena& scratch);

}  // namespace dbp
