#include "opt/classical.hpp"

#include <algorithm>
#include <set>

#include "algo/segment_tree.hpp"
#include "core/error.hpp"

namespace dbp {

namespace {

std::vector<double> sorted_desc(std::span<const double> sizes) {
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

void validate_sizes(std::span<const double> sizes, const CostModel& model) {
  for (double s : sizes) {
    DBP_REQUIRE(s > 0.0 && model.fits(s, model.bin_capacity),
                "size must be in (0, bin capacity]");
  }
}

}  // namespace

std::size_t first_fit_decreasing(std::span<const double> sizes,
                                 const CostModel& model) {
  return first_fit_decreasing_sorted(sorted_desc(sizes), model);
}

std::size_t first_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                        const CostModel& model) {
  model.validate();
  validate_sizes(sorted_desc, model);
  DBP_REQUIRE(std::is_sorted(sorted_desc.rbegin(), sorted_desc.rend()),
              "sizes must be non-increasing");
  MaxSegmentTree residuals;
  for (double size : sorted_desc) {
    auto pos = residuals.find_leftmost(
        [&](double residual) { return model.fits(size, residual); });
    if (!pos) pos = residuals.push_back(model.bin_capacity);
    residuals.assign(*pos, residuals.value_at(*pos) - size);
  }
  return residuals.size();
}

std::size_t best_fit_decreasing(std::span<const double> sizes,
                                const CostModel& model) {
  return best_fit_decreasing_sorted(sorted_desc(sizes), model);
}

std::size_t best_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                       const CostModel& model) {
  model.validate();
  validate_sizes(sorted_desc, model);
  DBP_REQUIRE(std::is_sorted(sorted_desc.rbegin(), sorted_desc.rend()),
              "sizes must be non-increasing");
  std::multiset<double> residuals;  // residual capacities of open bins
  std::size_t bins = 0;
  for (double size : sorted_desc) {
    auto it = residuals.lower_bound(size - model.fit_tolerance);
    if (it == residuals.end()) {
      ++bins;
      residuals.insert(model.bin_capacity - size);
    } else {
      const double residual = *it;
      residuals.erase(it);
      residuals.insert(residual - size);
    }
  }
  return bins;
}

}  // namespace dbp
