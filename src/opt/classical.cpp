#include "opt/classical.hpp"

#include <algorithm>
#include <set>

#include "algo/segment_tree.hpp"
#include "core/error.hpp"

namespace dbp {

namespace {

std::vector<double> sorted_desc(std::span<const double> sizes) {
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return sorted;
}

void validate_sizes(std::span<const double> sizes, const CostModel& model) {
  for (double s : sizes) {
    DBP_REQUIRE(s > 0.0 && model.fits(s, model.bin_capacity),
                "size must be in (0, bin capacity]");
  }
}

}  // namespace

std::size_t first_fit_decreasing(std::span<const double> sizes,
                                 const CostModel& model) {
  return first_fit_decreasing_sorted(sorted_desc(sizes), model);
}

std::size_t first_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                        const CostModel& model) {
  model.validate();
  validate_sizes(sorted_desc, model);
  DBP_REQUIRE(std::is_sorted(sorted_desc.rbegin(), sorted_desc.rend()),
              "sizes must be non-increasing");
  MaxSegmentTree residuals;
  for (double size : sorted_desc) {
    auto pos = residuals.find_leftmost(
        [&](double residual) { return model.fits(size, residual); });
    if (!pos) pos = residuals.push_back(model.bin_capacity);
    residuals.assign(*pos, residuals.value_at(*pos) - size);
  }
  return residuals.size();
}

std::size_t best_fit_decreasing(std::span<const double> sizes,
                                const CostModel& model) {
  return best_fit_decreasing_sorted(sorted_desc(sizes), model);
}

std::size_t best_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                       const CostModel& model) {
  model.validate();
  validate_sizes(sorted_desc, model);
  DBP_REQUIRE(std::is_sorted(sorted_desc.rbegin(), sorted_desc.rend()),
              "sizes must be non-increasing");
  std::multiset<double> residuals;  // residual capacities of open bins
  std::size_t bins = 0;
  for (double size : sorted_desc) {
    auto it = residuals.lower_bound(size - model.fit_tolerance);
    if (it == residuals.end()) {
      ++bins;
      residuals.insert(model.bin_capacity - size);
    } else {
      const double residual = *it;
      residuals.erase(it);
      residuals.insert(residual - size);
    }
  }
  return bins;
}

std::size_t first_fit_decreasing_rle(std::span<const SizeRun> runs,
                                     const CostModel& model) {
  MaxSegmentTree residuals;
  return first_fit_decreasing_rle(runs, model, residuals);
}

std::size_t first_fit_decreasing_rle(std::span<const SizeRun> runs,
                                     const CostModel& model,
                                     MaxSegmentTree& residuals) {
  model.validate();
  rle_validate(runs, model);
  // A reused tree after clear() holds only -inf leaves, so the descents and
  // appends below behave exactly as on a fresh tree (its larger physical
  // capacity never changes which position a fit query selects).
  residuals.clear();
  // Equivalence to the per-item loop: once an item of size s lands in the
  // leftmost fitting bin b, every bin left of b still rejects s (their
  // residuals are unchanged), so the next item of the same size lands in b
  // again until b rejects s. A run therefore fills bins left to right, and
  // the per-item subtraction sequence on each residual is replayed exactly.
  for (const SizeRun& run : runs) {
    std::uint64_t remaining = run.count;
    while (remaining > 0) {
      auto pos = residuals.find_leftmost(
          [&](double residual) { return model.fits(run.size, residual); });
      if (!pos) pos = residuals.push_back(model.bin_capacity);
      double residual = residuals.value_at(*pos);
      while (remaining > 0 && model.fits(run.size, residual)) {
        residual -= run.size;
        --remaining;
      }
      residuals.assign(*pos, residual);
    }
  }
  return residuals.size();
}

std::size_t best_fit_decreasing_rle(std::span<const SizeRun> runs,
                                    const CostModel& model) {
  model.validate();
  rle_validate(runs, model);
  // Equivalence to the per-item loop: the best-fit bin is the smallest
  // residual >= s - tol. Placing s there yields residual r - s, which is
  // smaller than every other fitting residual (they were all >= r), so as
  // long as r - s still fits, the *same* bin is re-selected; once it drops
  // below the threshold it never receives s again. A run therefore drains
  // into one bin at a time with the per-item subtraction sequence replayed
  // exactly, at one multiset erase/insert per bin touched instead of per
  // item. A fresh bin behaves identically with r starting at W - s.
  std::multiset<double> residuals;
  std::size_t bins = 0;
  for (const SizeRun& run : runs) {
    const double threshold = run.size - model.fit_tolerance;
    std::uint64_t remaining = run.count;
    while (remaining > 0) {
      auto it = residuals.lower_bound(threshold);
      double residual;
      if (it == residuals.end()) {
        ++bins;
        residual = model.bin_capacity - run.size;
      } else {
        residual = *it;
        residuals.erase(it);
        residual -= run.size;
      }
      --remaining;
      while (remaining > 0 && !(residual < threshold)) {
        residual -= run.size;
        --remaining;
      }
      residuals.insert(residual);
    }
  }
  return bins;
}

std::size_t best_fit_decreasing_rle(std::span<const SizeRun> runs,
                                    const CostModel& model,
                                    std::vector<double>& residuals) {
  model.validate();
  rle_validate(runs, model);
  // Same run-draining walk as the multiset overload above, on a flat
  // ascending-sorted vector. std::lower_bound finds the same residual value
  // the multiset's lower_bound finds; erase/insert at the bound keep the
  // vector sorted with the same value multiset, and only values are ever
  // read, so the two overloads return identical counts (classical.hpp).
  // Bins stay in the low tens here, so the memmove behind insert/erase is
  // cheaper than multiset node churn — and clear() keeps the capacity, so a
  // reusing caller allocates nothing in steady state.
  residuals.clear();
  std::size_t bins = 0;
  for (const SizeRun& run : runs) {
    const double threshold = run.size - model.fit_tolerance;
    std::uint64_t remaining = run.count;
    while (remaining > 0) {
      const auto it = std::lower_bound(residuals.begin(), residuals.end(), threshold);
      double residual;
      if (it == residuals.end()) {
        ++bins;
        residual = model.bin_capacity - run.size;
      } else {
        residual = *it;
        residuals.erase(it);
        residual -= run.size;
      }
      --remaining;
      while (remaining > 0 && !(residual < threshold)) {
        residual -= run.size;
        --remaining;
      }
      residuals.insert(std::upper_bound(residuals.begin(), residuals.end(), residual),
                       residual);
    }
  }
  return bins;
}

}  // namespace dbp
