// Reference OPT_total estimator: the specification the fast pipeline in
// opt_total.cpp is differentially tested against.
//
// Maintains the active multiset as a plain std::multiset<double>, takes a
// flat O(active items) snapshot per segment, evaluates every distinct
// snapshot through the flat optimal_bin_count, strictly sequentially, and
// combines with the same deterministic first-occurrence accumulation order
// as the fast path. estimate_opt_total must return bit-identical results
// (tests/opt_total_differential_test.cpp); bench_perf_micro benchmarks the
// two side by side so the speedup stays measured, not asserted.
#pragma once

#include "opt/opt_total.hpp"

namespace dbp {

/// Sequential reference estimator. Ignores OptTotalOptions::parallel and
/// ::oracle; only bin_count options apply.
[[nodiscard]] OptTotalResult estimate_opt_total_reference(
    const Instance& instance, const CostModel& model,
    const OptTotalOptions& options = {});

}  // namespace dbp
