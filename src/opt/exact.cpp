#include "opt/exact.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/arena.hpp"
#include "core/error.hpp"
#include "opt/classical.hpp"
#include "opt/lower_bounds.hpp"

namespace dbp {

namespace {

/// The branch-and-bound search body. Storage for the suffix sums (n + 1
/// doubles) and the open-bin residual stack (upper + 1 doubles) is provided
/// by the caller — a plain vector for the one-shot entry point, an arena for
/// the scratch-reusing one — so the search itself never allocates.
class Search {
 public:
  Search(std::span<const double> sorted_desc, const CostModel& model,
         const ExactPackingOptions& options, std::span<double> suffix_sum,
         std::span<double> residual_stack)
      : sizes_(sorted_desc),
        capacity_(model.bin_capacity + model.fit_tolerance),  // for area bounds
        real_capacity_(model.bin_capacity),  // fresh-bin residual, as BinManager
        tolerance_(model.fit_tolerance),
        options_(options),
        residuals_(residual_stack),
        suffix_sum_(suffix_sum) {
    suffix_sum_[sizes_.size()] = 0.0;
    for (std::size_t i = sizes_.size(); i-- > 0;) {
      suffix_sum_[i] = suffix_sum_[i + 1] + sizes_[i];
    }
  }

  ExactPackingResult run(std::size_t lower, std::size_t upper) {
    best_ = upper;
    lower_ = lower;
    aborted_ = false;
    if (lower_ < best_) branch(0);
    ExactPackingResult result;
    result.upper = best_;
    result.nodes = nodes_;
    result.proven = !aborted_;
    // An exhaustive search proves best_ optimal; an aborted one only keeps
    // the initial lower bound.
    result.lower = result.proven ? best_ : std::min(lower_, best_);
    return result;
  }

 private:
  void branch(std::size_t index) {
    if (aborted_) return;
    if (++nodes_ > options_.node_budget) {
      aborted_ = true;
      return;
    }
    if (index == sizes_.size()) {
      best_ = std::min(best_, open_);
      return;
    }
    // Area prune: open bins + bins forced by volume that cannot go into the
    // open bins' spare capacity.
    double spare = 0.0;
    for (std::size_t b = 0; b < open_; ++b) spare += residuals_[b];
    const double overflow = suffix_sum_[index] - spare;
    std::size_t forced = 0;
    if (overflow > 0.0) {
      forced = static_cast<std::size_t>(std::ceil(overflow / capacity_ * (1.0 - 1e-12)));
    }
    if (open_ + forced >= best_) return;

    const double size = sizes_[index];
    // Try each open bin with a distinct residual (equal residuals are
    // interchangeable — placing into either yields isomorphic subtrees).
    double last_residual = -1.0;
    for (std::size_t b = 0; b < open_; ++b) {
      const double residual = residuals_[b];
      if (size > residual + tolerance_) continue;
      if (residual == last_residual) continue;
      last_residual = residual;
      residuals_[b] = residual - size;
      branch(index + 1);
      residuals_[b] = residual;
      if (aborted_) return;
      // Perfect fit dominance: if the item exactly fills a bin, no other
      // placement can do better.
      if (std::abs(residual - size) <= tolerance_) return;
    }
    // Try a new bin (only useful if we may still beat best_). The stack
    // never outgrows its `upper + 1` storage: the guard keeps open_ < best_
    // <= the initial upper after every push.
    if (open_ + 1 + (forced > 0 ? forced - 1 : 0) < best_) {
      residuals_[open_++] = real_capacity_ - size;
      branch(index + 1);
      --open_;
    }
  }

  std::span<const double> sizes_;
  double capacity_;
  double real_capacity_;
  double tolerance_;
  ExactPackingOptions options_;
  std::span<double> residuals_;    // open-bin stack; live prefix is [0, open_)
  std::span<double> suffix_sum_;
  std::size_t open_ = 0;
  std::size_t best_ = 0;
  std::size_t lower_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

ExactPackingResult run_search(std::span<const double> sorted_desc,
                              const CostModel& model, std::size_t lower,
                              std::size_t upper, const ExactPackingOptions& options,
                              std::span<double> suffix_sum,
                              std::span<double> residual_stack) {
  Search search(sorted_desc, model, options, suffix_sum, residual_stack);
  ExactPackingResult result = search.run(lower, upper);
  DBP_CHECK(result.lower <= result.upper, "exact search produced crossed bounds");
  return result;
}

}  // namespace

ExactPackingResult exact_bin_count(std::span<const double> sizes,
                                   const CostModel& model,
                                   const ExactPackingOptions& options) {
  model.validate();
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t lower = l2_lower_bound_sorted(sorted, model);
  const std::size_t upper = std::min(first_fit_decreasing_sorted(sorted, model),
                                     best_fit_decreasing_sorted(sorted, model));
  DBP_CHECK(lower <= upper, "lower bound exceeds heuristic upper bound");
  if (lower == upper) {
    return ExactPackingResult{lower, upper, true, 0};
  }
  std::vector<double> suffix_sum(sorted.size() + 1);
  std::vector<double> residual_stack(upper + 1);
  return run_search(sorted, model, lower, upper, options, suffix_sum, residual_stack);
}

ExactPackingResult exact_bin_count_bounded(std::span<const double> sorted_desc,
                                           const CostModel& model, std::size_t lower,
                                           std::size_t upper,
                                           const ExactPackingOptions& options,
                                           MonotonicArena& scratch) {
  model.validate();
  DBP_REQUIRE(std::is_sorted(sorted_desc.rbegin(), sorted_desc.rend()),
              "sizes must be non-increasing");
  DBP_CHECK(lower <= upper, "lower bound exceeds heuristic upper bound");
  if (lower == upper) {
    return ExactPackingResult{lower, upper, true, 0};
  }
  return run_search(sorted_desc, model, lower, upper, options,
                    scratch.allocate_array<double>(sorted_desc.size() + 1),
                    scratch.allocate_array<double>(upper + 1));
}

}  // namespace dbp
