#include "opt/exact.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/error.hpp"
#include "opt/classical.hpp"
#include "opt/lower_bounds.hpp"

namespace dbp {

namespace {

class Search {
 public:
  Search(std::span<const double> sorted_desc, const CostModel& model,
         const ExactPackingOptions& options)
      : sizes_(sorted_desc),
        capacity_(model.bin_capacity + model.fit_tolerance),  // for area bounds
        real_capacity_(model.bin_capacity),  // fresh-bin residual, as BinManager
        tolerance_(model.fit_tolerance),
        options_(options) {
    suffix_sum_.resize(sizes_.size() + 1, 0.0);
    for (std::size_t i = sizes_.size(); i-- > 0;) {
      suffix_sum_[i] = suffix_sum_[i + 1] + sizes_[i];
    }
  }

  ExactPackingResult run(std::size_t lower, std::size_t upper) {
    best_ = upper;
    lower_ = lower;
    aborted_ = false;
    if (lower_ < best_) branch(0);
    ExactPackingResult result;
    result.upper = best_;
    result.nodes = nodes_;
    result.proven = !aborted_;
    // An exhaustive search proves best_ optimal; an aborted one only keeps
    // the initial lower bound.
    result.lower = result.proven ? best_ : std::min(lower_, best_);
    return result;
  }

 private:
  void branch(std::size_t index) {
    if (aborted_) return;
    if (++nodes_ > options_.node_budget) {
      aborted_ = true;
      return;
    }
    if (index == sizes_.size()) {
      best_ = std::min(best_, residuals_.size());
      return;
    }
    // Area prune: open bins + bins forced by volume that cannot go into the
    // open bins' spare capacity.
    double spare = 0.0;
    for (double r : residuals_) spare += r;
    const double overflow = suffix_sum_[index] - spare;
    std::size_t forced = 0;
    if (overflow > 0.0) {
      forced = static_cast<std::size_t>(std::ceil(overflow / capacity_ * (1.0 - 1e-12)));
    }
    if (residuals_.size() + forced >= best_) return;

    const double size = sizes_[index];
    // Try each open bin with a distinct residual (equal residuals are
    // interchangeable — placing into either yields isomorphic subtrees).
    double last_residual = -1.0;
    for (std::size_t b = 0; b < residuals_.size(); ++b) {
      const double residual = residuals_[b];
      if (size > residual + tolerance_) continue;
      if (residual == last_residual) continue;
      last_residual = residual;
      residuals_[b] = residual - size;
      branch(index + 1);
      residuals_[b] = residual;
      if (aborted_) return;
      // Perfect fit dominance: if the item exactly fills a bin, no other
      // placement can do better.
      if (std::abs(residual - size) <= tolerance_) return;
    }
    // Try a new bin (only useful if we may still beat best_).
    if (residuals_.size() + 1 + (forced > 0 ? forced - 1 : 0) < best_) {
      residuals_.push_back(real_capacity_ - size);
      branch(index + 1);
      residuals_.pop_back();
    }
  }

  std::span<const double> sizes_;
  double capacity_;
  double real_capacity_;
  double tolerance_;
  ExactPackingOptions options_;
  std::vector<double> residuals_;
  std::vector<double> suffix_sum_;
  std::size_t best_ = 0;
  std::size_t lower_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

ExactPackingResult exact_bin_count(std::span<const double> sizes,
                                   const CostModel& model,
                                   const ExactPackingOptions& options) {
  model.validate();
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t lower = l2_lower_bound_sorted(sorted, model);
  const std::size_t upper = std::min(first_fit_decreasing_sorted(sorted, model),
                                     best_fit_decreasing_sorted(sorted, model));
  DBP_CHECK(lower <= upper, "lower bound exceeds heuristic upper bound");
  if (lower == upper) {
    return ExactPackingResult{lower, upper, true, 0};
  }
  Search search(sorted, model, options);
  ExactPackingResult result = search.run(lower, upper);
  DBP_CHECK(result.lower <= result.upper, "exact search produced crossed bounds");
  return result;
}

}  // namespace dbp
