// Classical (static) bin packing heuristics.
//
// OPT(R, t) — the paper's per-time-point optimum (Section 3.2) — is a
// classical bin packing problem over the multiset of active item sizes.
// FFD/BFD provide upper bounds; opt/lower_bounds.hpp provides lower bounds;
// opt/exact.hpp closes the gap when affordable.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "opt/rle.hpp"

namespace dbp {

/// Number of bins First Fit Decreasing uses to pack `sizes` into bins of
/// capacity model.bin_capacity (tolerance-aware). O(n log n).
[[nodiscard]] std::size_t first_fit_decreasing(std::span<const double> sizes,
                                               const CostModel& model);

/// Number of bins Best Fit Decreasing uses. O(n log n).
[[nodiscard]] std::size_t best_fit_decreasing(std::span<const double> sizes,
                                              const CostModel& model);

/// Pre-sorted variants (sizes must be non-increasing); used on hot paths
/// where the caller maintains sorted order.
[[nodiscard]] std::size_t first_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                                      const CostModel& model);
[[nodiscard]] std::size_t best_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                                     const CostModel& model);

/// Run-length-encoded variants (strictly decreasing run sizes). Bit-identical
/// to the `_sorted` variants on the expanded multiset: equal consecutive
/// items land in the same bin under FFD, so a whole run is placed with one
/// tree search per target bin while the per-item residual subtractions are
/// replayed unchanged; BFD replays its per-item multiset walk verbatim.
/// first_fit_decreasing_rle is O(d log b + placements) for d runs instead of
/// O(n log b) for n items.
[[nodiscard]] std::size_t first_fit_decreasing_rle(std::span<const SizeRun> runs,
                                                   const CostModel& model);
[[nodiscard]] std::size_t best_fit_decreasing_rle(std::span<const SizeRun> runs,
                                                  const CostModel& model);

}  // namespace dbp
