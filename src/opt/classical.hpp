// Classical (static) bin packing heuristics.
//
// OPT(R, t) — the paper's per-time-point optimum (Section 3.2) — is a
// classical bin packing problem over the multiset of active item sizes.
// FFD/BFD provide upper bounds; opt/lower_bounds.hpp provides lower bounds;
// opt/exact.hpp closes the gap when affordable.
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "opt/rle.hpp"

namespace dbp {

/// Number of bins First Fit Decreasing uses to pack `sizes` into bins of
/// capacity model.bin_capacity (tolerance-aware). O(n log n).
[[nodiscard]] std::size_t first_fit_decreasing(std::span<const double> sizes,
                                               const CostModel& model);

/// Number of bins Best Fit Decreasing uses. O(n log n).
[[nodiscard]] std::size_t best_fit_decreasing(std::span<const double> sizes,
                                              const CostModel& model);

/// Pre-sorted variants (sizes must be non-increasing); used on hot paths
/// where the caller maintains sorted order.
[[nodiscard]] std::size_t first_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                                      const CostModel& model);
[[nodiscard]] std::size_t best_fit_decreasing_sorted(std::span<const double> sorted_desc,
                                                     const CostModel& model);

/// Run-length-encoded variants (strictly decreasing run sizes). Bit-identical
/// to the `_sorted` variants on the expanded multiset: equal consecutive
/// items land in the same bin under FFD, so a whole run is placed with one
/// tree search per target bin while the per-item residual subtractions are
/// replayed unchanged; BFD replays its per-item multiset walk verbatim.
/// first_fit_decreasing_rle is O(d log b + placements) for d runs instead of
/// O(n log b) for n items.
[[nodiscard]] std::size_t first_fit_decreasing_rle(std::span<const SizeRun> runs,
                                                   const CostModel& model);
[[nodiscard]] std::size_t best_fit_decreasing_rle(std::span<const SizeRun> runs,
                                                  const CostModel& model);

class MaxSegmentTree;

/// Scratch variants for callers that evaluate many multisets in a row (the
/// OPT_total evaluate phase, see opt/scratch.hpp): the residual structures
/// are clear()ed and reused instead of rebuilt, so steady-state calls touch
/// no heap. Results are identical to the scratch-free overloads.
///
/// FFD reuses the caller's segment tree (clear() keeps its storage).
[[nodiscard]] std::size_t first_fit_decreasing_rle(std::span<const SizeRun> runs,
                                                   const CostModel& model,
                                                   MaxSegmentTree& scratch_tree);

/// BFD on a flat ascending-sorted residual vector instead of the reference
/// std::multiset. Value-equivalent by construction: lower_bound on a sorted
/// double vector selects the same residual *value* the multiset's
/// lower_bound does, and erase/insert keep the same sorted value sequence
/// (ties are interchangeable — only values are ever read), so the per-item
/// subtraction sequence and the bin count match the multiset walk exactly.
[[nodiscard]] std::size_t best_fit_decreasing_rle(std::span<const SizeRun> runs,
                                                  const CostModel& model,
                                                  std::vector<double>& scratch_residuals);

}  // namespace dbp
