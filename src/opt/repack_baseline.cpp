#include "opt/repack_baseline.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "sim/event.hpp"

namespace dbp {

namespace {

/// FFD over (size, id) pairs; returns item -> bin index. Sorting by
/// (size desc, id asc) makes assignments deterministic and stable, which
/// keeps the migration count meaningful.
// DBP_LINT_ALLOW(unordered-container): the returned map is consumed via
// point lookups keyed by item id only — callers never iterate it.
std::unordered_map<ItemId, std::size_t> ffd_assign(
    std::vector<std::pair<double, ItemId>>& active, const CostModel& model,
    std::size_t* bins_used) {
  std::sort(active.begin(), active.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  // DBP_LINT_ALLOW(unordered-container): filled in sorted order, read by key.
  std::unordered_map<ItemId, std::size_t> assignment;
  assignment.reserve(active.size());
  std::vector<double> residual;
  for (const auto& [size, id] : active) {
    std::size_t bin = residual.size();
    for (std::size_t b = 0; b < residual.size(); ++b) {
      if (model.fits(size, residual[b])) {
        bin = b;
        break;
      }
    }
    if (bin == residual.size()) residual.push_back(model.bin_capacity);
    residual[bin] -= size;
    assignment.emplace(id, bin);
  }
  *bins_used = residual.size();
  return assignment;
}

}  // namespace

RepackBaselineResult run_repack_baseline(const Instance& instance,
                                         const CostModel& model) {
  model.validate();
  RepackBaselineResult result;
  if (instance.empty()) return result;

  const std::vector<Event> events = build_event_sequence(instance);
  // DBP_LINT_ALLOW(unordered-container): active set is materialized into a
  // sorted vector before every FFD pass; the map itself is never the
  // iteration source of any accounting.
  std::unordered_map<ItemId, double> active;  // id -> size
  // DBP_LINT_ALLOW(unordered-container): point lookups by item id only.
  std::unordered_map<ItemId, std::size_t> previous_assignment;
  CompensatedSum cost;

  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].time;
    for (; i < events.size() && events[i].time == t; ++i) {
      const Item& item = instance.item(events[i].item);
      if (events[i].kind == EventKind::kArrival) {
        active.emplace(item.id, item.size);
      } else {
        active.erase(item.id);
      }
    }
    if (i == events.size()) break;
    const double width = events[i].time - t;
    if (active.empty()) {
      previous_assignment.clear();
      continue;
    }

    std::vector<std::pair<double, ItemId>> items;
    items.reserve(active.size());
    // DBP_LINT_ALLOW(unordered-container): collection order is irrelevant —
    // ffd_assign re-sorts `items` by (size desc, id asc) before any use.
    for (const auto& [id, size] : active) items.emplace_back(size, id);
    std::size_t bins = 0;
    // DBP_LINT_ALLOW(unordered-container): point lookups by item id below;
    // the migration sweep iterates the sorted `items` vector instead.
    std::unordered_map<ItemId, std::size_t> assignment =
        ffd_assign(items, model, &bins);
    ++result.batches;
    result.max_bins = std::max(result.max_bins, bins);
    if (width > 0.0) {
      cost.add(static_cast<double>(bins) * width);
    }
    // Iterate the sorted items, not the hash map: migrated_volume is a
    // floating-point accumulation, so the summation order must be
    // deterministic across standard-library implementations.
    for (const auto& [size, id] : items) {
      auto prev = previous_assignment.find(id);
      if (prev != previous_assignment.end() && prev->second != assignment.at(id)) {
        ++result.migrations;
        result.migrated_volume += size;
      }
    }
    previous_assignment = std::move(assignment);
  }
  result.total_cost = cost.value() * model.cost_rate;
  return result;
}

}  // namespace dbp
