#include "opt/repack_baseline.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "sim/event.hpp"

namespace dbp {

namespace {

/// FFD over (size, id) pairs; returns item -> bin index. Sorting by
/// (size desc, id asc) makes assignments deterministic and stable, which
/// keeps the migration count meaningful.
std::unordered_map<ItemId, std::size_t> ffd_assign(
    std::vector<std::pair<double, ItemId>>& active, const CostModel& model,
    std::size_t* bins_used) {
  std::sort(active.begin(), active.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  std::unordered_map<ItemId, std::size_t> assignment;
  assignment.reserve(active.size());
  std::vector<double> residual;
  for (const auto& [size, id] : active) {
    std::size_t bin = residual.size();
    for (std::size_t b = 0; b < residual.size(); ++b) {
      if (model.fits(size, residual[b])) {
        bin = b;
        break;
      }
    }
    if (bin == residual.size()) residual.push_back(model.bin_capacity);
    residual[bin] -= size;
    assignment.emplace(id, bin);
  }
  *bins_used = residual.size();
  return assignment;
}

}  // namespace

RepackBaselineResult run_repack_baseline(const Instance& instance,
                                         const CostModel& model) {
  model.validate();
  RepackBaselineResult result;
  if (instance.empty()) return result;

  const std::vector<Event> events = build_event_sequence(instance);
  std::unordered_map<ItemId, double> active;  // id -> size
  std::unordered_map<ItemId, std::size_t> previous_assignment;
  CompensatedSum cost;

  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].time;
    for (; i < events.size() && events[i].time == t; ++i) {
      const Item& item = instance.item(events[i].item);
      if (events[i].kind == EventKind::kArrival) {
        active.emplace(item.id, item.size);
      } else {
        active.erase(item.id);
      }
    }
    if (i == events.size()) break;
    const double width = events[i].time - t;
    if (active.empty()) {
      previous_assignment.clear();
      continue;
    }

    std::vector<std::pair<double, ItemId>> items;
    items.reserve(active.size());
    for (const auto& [id, size] : active) items.emplace_back(size, id);
    std::size_t bins = 0;
    std::unordered_map<ItemId, std::size_t> assignment =
        ffd_assign(items, model, &bins);
    ++result.batches;
    result.max_bins = std::max(result.max_bins, bins);
    if (width > 0.0) {
      cost.add(static_cast<double>(bins) * width);
    }
    for (const auto& [id, bin] : assignment) {
      auto prev = previous_assignment.find(id);
      if (prev != previous_assignment.end() && prev->second != bin) {
        ++result.migrations;
        result.migrated_volume += active.at(id);
      }
    }
    previous_assignment = std::move(assignment);
  }
  result.total_cost = cost.value() * model.cost_rate;
  return result;
}

}  // namespace dbp
