#include "opt/opt_total_reference.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "sim/event.hpp"

namespace dbp {

namespace {

struct FlatSnapshotHash {
  std::size_t operator()(const std::vector<double>& v) const noexcept {
    // FNV-1a over the raw byte representation; the key is the exact multiset.
    std::uint64_t h = 1469598103934665603ULL;
    for (double d : v) {
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      for (int shift = 0; shift < 64; shift += 8) {
        h ^= (bits >> shift) & 0xFF;
        h *= 1099511628211ULL;
      }
    }
    return static_cast<std::size_t>(h);
  }
};

struct SnapshotWeight {
  CompensatedSum width;
  std::size_t segment_count = 0;
};

}  // namespace

OptTotalResult estimate_opt_total_reference(const Instance& instance,
                                            const CostModel& model,
                                            const OptTotalOptions& options) {
  model.validate();
  OptTotalResult result;
  result.exact = true;
  if (instance.empty()) return result;
  result.closed_form = compute_cost_bounds(instance, model);

  const std::vector<Event> events = build_event_sequence(instance);

  // Active sizes in descending order (greater<> comparator), so a snapshot
  // is a straight copy.
  std::multiset<double, std::greater<>> active;
  std::vector<std::vector<double>> snapshots;  // first-occurrence order
  std::vector<SnapshotWeight> weights;
  // DBP_LINT_ALLOW(unordered-container): dedup via try_emplace by exact
  // key; never iterated — snapshot order is first-occurrence order.
  std::unordered_map<std::vector<double>, std::size_t, FlatSnapshotHash> index;
  std::vector<double> snapshot;

  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].time;
    for (; i < events.size() && events[i].time == t; ++i) {
      const Item& item = instance.item(events[i].item);
      if (events[i].kind == EventKind::kArrival) {
        active.insert(item.size);
      } else {
        const auto it = active.find(item.size);
        DBP_CHECK(it != active.end(), "departure of an inactive size");
        active.erase(it);
      }
    }
    if (i == events.size()) {
      DBP_CHECK(active.empty(), "items remain active after the last event");
      break;
    }
    const Time segment_end = events[i].time;
    const double width = segment_end - t;
    if (width <= 0.0 || active.empty()) continue;

    snapshot.assign(active.begin(), active.end());
    const auto [slot, inserted] = index.try_emplace(snapshot, snapshots.size());
    if (inserted) {
      snapshots.push_back(snapshot);
      weights.emplace_back();
    }
    SnapshotWeight& weight = weights[slot->second];
    weight.width.add(width);
    ++weight.segment_count;
    ++result.segments;
  }

  CompensatedSum lower_integral;
  CompensatedSum upper_integral;
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    const BinCountBounds bounds =
        optimal_bin_count(snapshots[s], model, options.bin_count);
    const double width = weights[s].width.value();
    if (bounds.exact()) {
      result.exact_segments += weights[s].segment_count;
    } else {
      result.exact = false;
    }
    lower_integral.add(static_cast<double>(bounds.lower) * width);
    upper_integral.add(static_cast<double>(bounds.upper) * width);
    result.max_bins_lower = std::max(result.max_bins_lower, bounds.lower);
    result.max_bins_upper = std::max(result.max_bins_upper, bounds.upper);
  }

  result.distinct_snapshots = snapshots.size();
  result.dedup_hits = result.segments - snapshots.size();
  result.oracle_misses = snapshots.size();  // one evaluation per distinct set

  result.lower_cost = lower_integral.value() * model.cost_rate;
  result.upper_cost = upper_integral.value() * model.cost_rate;
  result.lower_cost = std::max(result.lower_cost, result.closed_form.lower());
  DBP_CHECK(result.lower_cost <= result.upper_cost * (1.0 + 1e-9),
            "OPT_total bounds crossed");
  return result;
}

}  // namespace dbp
