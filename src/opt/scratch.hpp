// Reusable per-worker scratch for the bin-count computation.
//
// The OPT_total evaluate phase calls optimal_bin_count_rle once per distinct
// snapshot — routinely ~10k times per estimate. Each call's working set (an
// FFD segment tree, a BFD residual index, L2 prefix arrays, the exact
// solver's expansion and branch stack) is small but was heap-allocated
// afresh every time, so the phase spent a large share of its time in the
// allocator instead of in the bounds math. A BinCountScratch owns all of
// that storage once per worker: containers are clear()ed between snapshots
// (capacity retained) and transient arrays come out of a monotonic arena
// that is reset() per call, so after the first few snapshots the evaluate
// phase performs zero heap allocations (core/arena.hpp documents the
// discipline; the arena counters are the regression-test hook).
//
// Not thread-safe — one scratch per worker. The scratch path is bit-identical
// to the scratch-free one: it reuses storage, never changes the computation.
#pragma once

#include <vector>

#include "algo/segment_tree.hpp"
#include "core/arena.hpp"

namespace dbp {

struct BinCountScratch {
  /// Transient per-call arrays (L2 prefix sums, exact-solver expansion and
  /// branch stack). reset() at the top of every optimal_bin_count_rle call.
  MonotonicArena arena;

  /// FFD residual tree; clear()ed per call, physical storage retained.
  MaxSegmentTree ffd_tree;

  /// BFD residual index: a flat ascending-sorted vector standing in for the
  /// scratch-free path's std::multiset<double> (opt/classical.cpp documents
  /// the value-equivalence). clear()ed per call, capacity retained.
  std::vector<double> bfd_residuals;
};

}  // namespace dbp
