// Certified bounds on OPT_total(R) (paper Section 3.2).
//
// OPT(R, t) — the minimum number of bins into which the items active at
// time t can be repacked — is piecewise constant between events, so
//   OPT_total(R) = sum over inter-event segments of opt(active) * len * C
// is computed *exactly* whenever the per-segment bin-count oracle proves
// optimality; otherwise certified [lower, upper] interval bounds are
// integrated instead.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/types.hpp"
#include "opt/bin_count.hpp"

namespace dbp {

struct OptTotalResult {
  /// Integral bounds: lower_cost <= OPT_total(R) <= upper_cost.
  double lower_cost = 0.0;
  double upper_cost = 0.0;
  /// True when every evaluated segment was proven optimal (lower == upper).
  bool exact = false;

  /// The paper's closed-form lower bounds (b.1) and (b.2) for reference;
  /// `lower_cost` always dominates their max.
  CostBounds closed_form{};

  /// Number of distinct time segments evaluated and how many were exact.
  std::size_t segments = 0;
  std::size_t exact_segments = 0;

  /// Bounds on max_t OPT(R, t): the *classical* DBP objective (Coffman,
  /// Garey & Johnson), computed in the same sweep. Lets experiments relate
  /// the MinTotal objective to the classical max-bins one (paper Section 2).
  std::size_t max_bins_lower = 0;
  std::size_t max_bins_upper = 0;

  /// Midpoint estimate, handy for plotting.
  [[nodiscard]] double midpoint() const noexcept {
    return 0.5 * (lower_cost + upper_cost);
  }
};

struct OptTotalOptions {
  BinCountOptions bin_count{};
};

/// Walks the instance's event sequence, maintaining the active size multiset,
/// and integrates the oracle's per-segment bounds. O(E * (A log A + oracle))
/// where E = event batch count and A = active items; memoization collapses
/// repeated multisets.
[[nodiscard]] OptTotalResult estimate_opt_total(const Instance& instance,
                                                const CostModel& model,
                                                const OptTotalOptions& options = {});

/// Bounds on the competitive ratio A_total / OPT_total given a measured
/// algorithm cost and an OPT estimate.
struct RatioBounds {
  double lower = 0.0;  ///< algorithm_cost / opt.upper_cost
  double upper = 0.0;  ///< algorithm_cost / opt.lower_cost
};

[[nodiscard]] RatioBounds competitive_ratio_bounds(double algorithm_cost,
                                                   const OptTotalResult& opt);

}  // namespace dbp
