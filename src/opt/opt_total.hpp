// Certified bounds on OPT_total(R) (paper Section 3.2).
//
// OPT(R, t) — the minimum number of bins into which the items active at
// time t can be repacked — is piecewise constant between events, so
//   OPT_total(R) = sum over inter-event segments of opt(active) * len * C
// is computed *exactly* whenever the per-segment bin-count oracle proves
// optimality; otherwise certified [lower, upper] interval bounds are
// integrated instead.
//
// Pipeline (three phases, deterministic end to end):
//   1. A sequential event sweep maintains the active multiset run-length
//      encoded (distinct size -> count) and collects one (snapshot, total
//      width) entry per *distinct* snapshot — exact, because the integral
//      is linear in segment width and adversarial/cyclic workloads revisit
//      the same active set constantly.
//   2. The distinct snapshots are evaluated through the memoizing oracle;
//      misses go through the pure bin-count computation, in parallel when
//      OpenMP is available.
//   3. A sequential combine integrates the bounds in snapshot
//      first-occurrence order with compensated summation, so results are
//      bit-identical run to run regardless of worker count.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "core/types.hpp"
#include "exec/execution_policy.hpp"
#include "opt/bin_count.hpp"

namespace dbp {

struct OptTotalResult {
  /// Integral bounds: lower_cost <= OPT_total(R) <= upper_cost.
  double lower_cost = 0.0;
  double upper_cost = 0.0;
  /// True when every evaluated segment was proven optimal (lower == upper).
  bool exact = false;

  /// The paper's closed-form lower bounds (b.1) and (b.2) for reference;
  /// `lower_cost` always dominates their max.
  CostBounds closed_form{};

  /// Number of distinct time segments evaluated and how many were exact.
  std::size_t segments = 0;
  std::size_t exact_segments = 0;

  /// Bounds on max_t OPT(R, t): the *classical* DBP objective (Coffman,
  /// Garey & Johnson), computed in the same sweep. Lets experiments relate
  /// the MinTotal objective to the classical max-bins one (paper Section 2).
  std::size_t max_bins_lower = 0;
  std::size_t max_bins_upper = 0;

  /// Distinct active-set snapshots after merging duplicate segments;
  /// dedup_hits = segments - distinct_snapshots (segments whose bounds were
  /// reused for free).
  std::size_t distinct_snapshots = 0;
  std::size_t dedup_hits = 0;

  /// Bin-count oracle traffic attributable to this call. Hits are nonzero
  /// only when OptTotalOptions::oracle carries a memo across calls —
  /// within one call every snapshot is already distinct by construction.
  std::uint64_t oracle_hits = 0;
  std::uint64_t oracle_misses = 0;
  std::uint64_t oracle_evictions = 0;

  /// Execution metadata, not part of the mathematical result (the
  /// differential suite compares every field above this line, never these):
  /// which path phase 2 took and how many workers it used. With the
  /// adaptive policy on a 1-worker budget these read {false, 1}.
  bool evaluate_parallel = false;
  int evaluate_workers = 1;

  /// Midpoint estimate, handy for plotting.
  [[nodiscard]] double midpoint() const noexcept {
    return 0.5 * (lower_cost + upper_cost);
  }
};

struct OptTotalOptions {
  BinCountOptions bin_count{};
  /// How phase 2 evaluates the distinct snapshots. kAdaptive (the default)
  /// routes through parallel_map only when the worker budget and the
  /// pending job mix can amortize the fan-out overhead (see
  /// exec/execution_policy.hpp); kSequential and kParallel force one path.
  /// The combine is sequential under every policy, so results are
  /// bit-identical across policies and worker counts.
  exec::ExecutionPolicy policy = exec::ExecutionPolicy::kAdaptive;
  /// Optional caller-owned oracle whose memo persists across calls (cyclic
  /// workloads, repeated evaluation of transformed instances). The caller
  /// must not share one oracle between concurrent estimate_opt_total calls.
  BinCountOracle* oracle = nullptr;
};

/// Walks the instance's event sequence, maintaining the active size multiset
/// run-length encoded, and integrates the oracle's per-snapshot bounds.
/// O(E log d) sweep + one oracle evaluation per distinct snapshot, for E
/// event batches and d distinct sizes.
[[nodiscard]] OptTotalResult estimate_opt_total(const Instance& instance,
                                                const CostModel& model,
                                                const OptTotalOptions& options = {});

/// Bounds on the competitive ratio A_total / OPT_total given a measured
/// algorithm cost and an OPT estimate.
struct RatioBounds {
  double lower = 0.0;  ///< algorithm_cost / opt.upper_cost
  double upper = 0.0;  ///< algorithm_cost / opt.lower_cost
};

[[nodiscard]] RatioBounds competitive_ratio_bounds(double algorithm_cost,
                                                   const OptTotalResult& opt);

}  // namespace dbp
