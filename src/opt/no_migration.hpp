// Exact offline optimum WITHOUT migration.
//
// The paper measures algorithms against OPT(R, t) — repacking allowed at
// every instant — which is a stronger adversary than the algorithms' own
// class: an online packer commits each item to one bin forever. This module
// computes (for small instances) the best possible *assignment* cost:
//
//   NoMigrationOPT(R) = min over assignments item -> bin, feasible at all
//   times, of sum over bins of len(union of assigned intervals) * C.
//
// Sandwich: OPT_total(R) <= NoMigrationOPT(R) <= A_total(R) for every
// (online or offline) non-migrating algorithm A. The gap between the two
// optima is the "price of commitment"; the gap from NoMigrationOPT to an
// online algorithm is the genuine "price of not knowing the future".
// Experiment E16 measures both.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

struct NoMigrationResult {
  /// Certified bounds: lower <= NoMigrationOPT(R) <= upper.
  double lower = 0.0;
  double upper = 0.0;
  bool proven = false;  ///< search was exhaustive (lower == upper)
  std::uint64_t nodes = 0;
};

struct NoMigrationOptions {
  /// Abort (keeping sound bounds) beyond this many search nodes. The
  /// default handles ~14 mixed items; the search is exponential.
  std::uint64_t node_budget = 2'000'000;
};

/// Branch-and-bound over assignments in arrival order, with symmetry
/// breaking (one fresh bin per level; identical consecutive items never
/// placed in a lower-indexed bin than their twin). Intended for small
/// instances; throws for instances above 64 items.
[[nodiscard]] NoMigrationResult exact_no_migration_cost(
    const Instance& instance, const CostModel& model,
    const NoMigrationOptions& options = {});

}  // namespace dbp
