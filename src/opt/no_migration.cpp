#include "opt/no_migration.hpp"

#include <algorithm>
#include <vector>

#include "core/error.hpp"
#include "core/interval_set.hpp"
#include "core/metrics.hpp"
#include "sim/simulator.hpp"

namespace dbp {

namespace {

/// One bin of the partial assignment: resident items plus cached coverage.
struct SearchBin {
  std::vector<const Item*> items;
  IntervalSet coverage;
};

class Search {
 public:
  Search(std::vector<const Item*> order, const CostModel& model,
         const NoMigrationOptions& options)
      : order_(std::move(order)), model_(model), options_(options) {}

  NoMigrationResult run(double global_lower, double initial_upper) {
    best_ = initial_upper;
    global_lower_ = global_lower;
    aborted_ = false;
    branch(0, 0.0);
    NoMigrationResult result;
    result.upper = best_;
    result.nodes = nodes_;
    result.proven = !aborted_;
    result.lower = result.proven ? best_ : global_lower_;
    // Guard against float drift between the simulated initial upper bound
    // and the search's own accounting.
    result.lower = std::min(result.lower, result.upper);
    return result;
  }

 private:
  bool feasible(const SearchBin& bin, const Item& item) const {
    // The level of `bin` within I(item) peaks at an arrival event; check
    // item.arrival and every resident arrival inside the interval.
    const auto level_at = [&](Time t) {
      double level = 0.0;
      for (const Item* resident : bin.items) {
        if (resident->active_at(t)) level += resident->size;
      }
      return level;
    };
    if (!model_.fits(item.size + level_at(item.arrival), model_.bin_capacity)) {
      return false;
    }
    for (const Item* resident : bin.items) {
      if (resident->arrival > item.arrival && resident->arrival < item.departure) {
        if (!model_.fits(item.size + level_at(resident->arrival),
                         model_.bin_capacity)) {
          return false;
        }
      }
    }
    return true;
  }

  void branch(std::size_t index, double total_coverage) {
    if (aborted_) return;
    if (++nodes_ > options_.node_budget) {
      aborted_ = true;
      return;
    }
    if (std::max(total_coverage, global_lower_) >= best_) return;
    if (index == order_.size()) {
      best_ = std::min(best_, total_coverage);
      return;
    }
    const Item& item = *order_[index];

    // Candidate placements sorted by incremental coverage cost (cheapest
    // first tightens the pruning bound early).
    struct Option {
      std::size_t bin;  // bins_.size() = fresh bin
      double delta;
    };
    std::vector<Option> options;
    options.reserve(bins_.size() + 1);
    // Symmetry breaking for identical consecutive items: the twin may not
    // go into a lower-indexed bin than its predecessor chose (ids differ,
    // so compare the payload fields).
    std::size_t min_bin = 0;
    if (index > 0) {
      const Item& prev = *order_[index - 1];
      if (prev.arrival == item.arrival && prev.departure == item.departure &&
          prev.size == item.size) {
        min_bin = previous_choice_;
      }
    }
    for (std::size_t b = min_bin; b < bins_.size(); ++b) {
      if (!feasible(bins_[b], item)) continue;
      const double before = bins_[b].coverage.total_length();
      IntervalSet extended = bins_[b].coverage;
      extended.insert(item.interval());
      options.push_back({b, extended.total_length() - before});
    }
    options.push_back({bins_.size(), item.interval_length()});  // fresh bin
    std::stable_sort(options.begin(), options.end(),
                     [](const Option& a, const Option& b) {
                       return a.delta < b.delta;
                     });

    for (const Option& option : options) {
      const std::size_t saved_choice = previous_choice_;
      previous_choice_ = option.bin;
      if (option.bin == bins_.size()) {
        bins_.emplace_back();
        bins_.back().items.push_back(&item);
        bins_.back().coverage.insert(item.interval());
        branch(index + 1, total_coverage + option.delta);
        bins_.pop_back();
      } else {
        // Note: re-index after the recursion — deeper levels may grow
        // `bins_` and invalidate references.
        const IntervalSet saved = bins_[option.bin].coverage;
        bins_[option.bin].items.push_back(&item);
        bins_[option.bin].coverage.insert(item.interval());
        branch(index + 1, total_coverage + option.delta);
        bins_[option.bin].items.pop_back();
        bins_[option.bin].coverage = saved;
      }
      previous_choice_ = saved_choice;
      if (aborted_) return;
    }
  }

  std::vector<const Item*> order_;
  CostModel model_;
  NoMigrationOptions options_;
  std::vector<SearchBin> bins_;
  double best_ = 0.0;
  double global_lower_ = 0.0;
  std::size_t previous_choice_ = 0;
  std::uint64_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

NoMigrationResult exact_no_migration_cost(const Instance& instance,
                                          const CostModel& model,
                                          const NoMigrationOptions& options) {
  model.validate();
  DBP_REQUIRE(instance.size() <= 64,
              "the no-migration solver is exponential; 64 items max");
  NoMigrationResult empty;
  if (instance.empty()) {
    empty.proven = true;
    return empty;
  }

  // Arrival order (ties by id), matching the simulator's processing order.
  std::vector<const Item*> order;
  order.reserve(instance.size());
  for (const Item& item : instance.items()) order.push_back(&item);
  std::stable_sort(order.begin(), order.end(), [](const Item* a, const Item* b) {
    return a->arrival < b->arrival || (a->arrival == b->arrival && a->id < b->id);
  });

  // Initial upper bound: First Fit is a valid assignment. Costs here use
  // C = 1 (coverage time); scale at the end.
  CostModel unit = model;
  unit.cost_rate = 1.0;
  const SimulationResult ff = simulate(instance, "first-fit", unit);
  const CostBounds closed = compute_cost_bounds(instance, unit);

  Search search(std::move(order), unit, options);
  NoMigrationResult result = search.run(closed.lower(), ff.total_cost);
  result.lower *= model.cost_rate;
  result.upper *= model.cost_rate;
  return result;
}

}  // namespace dbp
