// Lower bounds on the optimal bin count of a static packing instance.
//
// Soundness under floating-point: the packing feasibility test everywhere in
// this library is `sum of sizes <= W + fit_tolerance`, so all bounds here
// are computed against the *effective* capacity W' = W + fit_tolerance (plus
// a relative ceil guard). A bound that is valid for W' is valid for every
// packing the BinManager would accept.
#pragma once

#include <span>

#include "core/types.hpp"
#include "opt/rle.hpp"

namespace dbp {

/// L1 (continuous/area bound): ceil(sum sizes / W'). 0 for the empty set.
[[nodiscard]] std::size_t l1_lower_bound(std::span<const double> sizes,
                                         const CostModel& model);

/// L2 (Martello-Toth): partitions items around a threshold alpha and counts
/// bins that large items force open; maximized over all candidate alphas.
/// Dominates L1. O(n log n).
[[nodiscard]] std::size_t l2_lower_bound(std::span<const double> sizes,
                                         const CostModel& model);

/// Pre-sorted variant (non-increasing sizes).
[[nodiscard]] std::size_t l2_lower_bound_sorted(std::span<const double> sorted_desc,
                                                const CostModel& model);

/// Run-length-encoded variant (strictly decreasing run sizes). Bit-identical
/// to l2_lower_bound_sorted on the expanded multiset: every index the flat
/// algorithm touches (threshold partitions, candidate alphas) is a run
/// boundary, so only boundary prefix sums are materialized — O(d log d)
/// bookkeeping for d runs on top of the O(n) compensated summation.
[[nodiscard]] std::size_t l2_lower_bound_rle(std::span<const SizeRun> runs,
                                             const CostModel& model);

class MonotonicArena;

/// Scratch variant: the boundary prefix arrays come out of `scratch` instead
/// of the heap, so a caller that resets the arena between snapshots (see
/// opt/scratch.hpp) pays zero allocations in steady state. Bit-identical to
/// the overload above.
[[nodiscard]] std::size_t l2_lower_bound_rle(std::span<const SizeRun> runs,
                                             const CostModel& model,
                                             MonotonicArena& scratch);

}  // namespace dbp
