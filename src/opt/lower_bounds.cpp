#include "opt/lower_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/arena.hpp"
#include "core/compensated_sum.hpp"
#include "core/error.hpp"

namespace dbp {

namespace {

/// ceil(x) robust to x being a hair above an integer due to rounding.
std::size_t guarded_ceil(double x) {
  if (x <= 0.0) return 0;
  const double guarded = x * (1.0 - 1e-12);
  return static_cast<std::size_t>(std::ceil(guarded));
}

}  // namespace

std::size_t l1_lower_bound(std::span<const double> sizes, const CostModel& model) {
  model.validate();
  if (sizes.empty()) return 0;
  CompensatedSum sum;
  for (double s : sizes) {
    DBP_REQUIRE(s > 0.0, "sizes must be positive");
    sum.add(s);
  }
  const double capacity = model.bin_capacity + model.fit_tolerance;
  return std::max<std::size_t>(1, guarded_ceil(sum.value() / capacity));
}

std::size_t l2_lower_bound(std::span<const double> sizes, const CostModel& model) {
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  return l2_lower_bound_sorted(sorted, model);
}

std::size_t l2_lower_bound_sorted(std::span<const double> sorted_desc,
                                  const CostModel& model) {
  model.validate();
  DBP_REQUIRE(std::is_sorted(sorted_desc.rbegin(), sorted_desc.rend()),
              "sizes must be non-increasing");
  const std::size_t n = sorted_desc.size();
  if (n == 0) return 0;
  const double capacity = model.bin_capacity + model.fit_tolerance;
  const double half = capacity / 2.0;

  // Prefix sums over the descending order.
  std::vector<double> prefix(n + 1, 0.0);
  {
    CompensatedSum sum;
    for (std::size_t i = 0; i < n; ++i) {
      DBP_REQUIRE(sorted_desc[i] > 0.0, "sizes must be positive");
      sum.add(sorted_desc[i]);
      prefix[i + 1] = sum.value();
    }
  }

  // For threshold alpha (<= capacity/2):
  //   S1 = { s : s > capacity - alpha }   -- no other item >= alpha fits
  //   S2 = { s : capacity - alpha >= s > capacity/2 }
  //   S3 = { s : capacity/2 >= s >= alpha }
  //   L2(alpha) = |S1| + |S2|
  //             + max(0, ceil((sum(S3) - (|S2|*capacity - sum(S2))) / capacity))
  // Candidate alphas: the distinct sizes <= capacity/2, plus the trivial 0
  // (which reduces to L1 over all items).
  const auto first_le = [&](double bound) {
    // Index of first element <= bound in the descending array.
    return static_cast<std::size_t>(
        std::lower_bound(sorted_desc.begin(), sorted_desc.end(), bound,
                         [](double a, double b) { return a > b; }) -
        sorted_desc.begin());
  };

  const std::size_t first_half = first_le(half);  // start of sizes <= capacity/2
  std::size_t best = 0;

  std::size_t i = first_half;
  std::vector<double> alphas;
  alphas.push_back(0.0);
  while (i < n) {
    alphas.push_back(sorted_desc[i]);
    const double v = sorted_desc[i];
    while (i < n && sorted_desc[i] == v) ++i;
  }

  for (double alpha : alphas) {
    const std::size_t n1 = first_le(capacity - alpha);  // |S1|
    const std::size_t n12 = first_half;                 // |S1| + |S2|
    // S3 spans indices [first_half, end_of >= alpha).
    std::size_t s3_end = n;
    if (alpha > 0.0) {
      // First element < alpha in descending order.
      s3_end = static_cast<std::size_t>(
          std::lower_bound(sorted_desc.begin(), sorted_desc.end(), alpha,
                           [](double a, double b) { return a >= b; }) -
          sorted_desc.begin());
    }
    if (s3_end < n12) continue;  // alpha > capacity/2 candidates never occur
    const std::size_t n2 = n12 - n1;
    const double sum_s2 = prefix[n12] - prefix[n1];
    const double sum_s3 = prefix[s3_end] - prefix[n12];
    const double spare_in_s2_bins = static_cast<double>(n2) * capacity - sum_s2;
    const std::size_t extra = guarded_ceil((sum_s3 - spare_in_s2_bins) / capacity);
    best = std::max(best, n12 + extra);
  }
  return std::max(best, l1_lower_bound(sorted_desc, model));
}

namespace {

/// Shared body of the two l2_lower_bound_rle overloads; `cum` and `boundary`
/// are caller-provided uninitialized arrays of d + 1 elements each.
std::size_t l2_rle_with_buffers(std::span<const SizeRun> runs, const CostModel& model,
                                std::span<std::uint64_t> cum,
                                std::span<double> boundary) {
  const std::size_t d = runs.size();
  const double capacity = model.bin_capacity + model.fit_tolerance;
  const double half = capacity / 2.0;

  // Boundary prefix sums: boundary[j] is the compensated sum after the first
  // j runs, produced by the same per-item add sequence the flat algorithm
  // uses, so the values match prefix[cum[j]] bitwise.
  cum[0] = 0;
  boundary[0] = 0.0;
  {
    CompensatedSum sum;
    for (std::size_t j = 0; j < d; ++j) {
      for (std::uint64_t i = 0; i < runs[j].count; ++i) sum.add(runs[j].size);
      cum[j + 1] = cum[j] + runs[j].count;
      boundary[j + 1] = sum.value();
    }
  }
  const std::uint64_t n = cum[d];

  // Item count of elements strictly larger than `bound` = items of every run
  // before the first run with size <= bound. Returns the *run* index.
  const auto first_run_le = [&](double bound) {
    return static_cast<std::size_t>(
        std::lower_bound(runs.begin(), runs.end(), bound,
                         [](const SizeRun& run, double b) { return run.size > b; }) -
        runs.begin());
  };

  const std::size_t half_run = first_run_le(half);  // first run with size <= half
  const std::uint64_t n12 = cum[half_run];          // |S1| + |S2|
  std::size_t best = 0;

  // Candidate alphas: 0 plus every distinct size <= capacity/2 — exactly the
  // runs from half_run on (runs are strictly decreasing, hence distinct).
  for (std::size_t a = half_run; a <= d; ++a) {
    const bool trivial = a == d;  // the alpha = 0 candidate
    const double alpha = trivial ? 0.0 : runs[a].size;
    const std::size_t n1_run = first_run_le(capacity - alpha);
    const std::uint64_t n1 = cum[n1_run];
    // S3 ends at the last run with size >= alpha; for alpha = 0 that is n.
    const std::uint64_t s3_end = trivial ? n : cum[a + 1];
    if (s3_end < n12) continue;
    const std::uint64_t n2 = n12 - n1;
    const double sum_s2 = boundary[half_run] - boundary[n1_run];
    const double sum_s3 =
        (trivial ? boundary[d] : boundary[a + 1]) - boundary[half_run];
    const double spare_in_s2_bins = static_cast<double>(n2) * capacity - sum_s2;
    const std::size_t extra = guarded_ceil((sum_s3 - spare_in_s2_bins) / capacity);
    best = std::max(best, static_cast<std::size_t>(n12) + extra);
  }

  // L1 fallback over all items; boundary[d] equals the flat total bitwise.
  const std::size_t l1 =
      std::max<std::size_t>(1, guarded_ceil(boundary[d] / capacity));
  return std::max(best, l1);
}

}  // namespace

std::size_t l2_lower_bound_rle(std::span<const SizeRun> runs, const CostModel& model) {
  model.validate();
  rle_validate(runs, model);
  const std::size_t d = runs.size();
  if (d == 0) return 0;
  std::vector<std::uint64_t> cum(d + 1);
  std::vector<double> boundary(d + 1);
  return l2_rle_with_buffers(runs, model, cum, boundary);
}

std::size_t l2_lower_bound_rle(std::span<const SizeRun> runs, const CostModel& model,
                               MonotonicArena& scratch) {
  model.validate();
  rle_validate(runs, model);
  const std::size_t d = runs.size();
  if (d == 0) return 0;
  return l2_rle_with_buffers(runs, model, scratch.allocate_array<std::uint64_t>(d + 1),
                             scratch.allocate_array<double>(d + 1));
}

}  // namespace dbp
