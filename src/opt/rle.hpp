// Run-length-encoded size multisets.
//
// The OPT_total estimator evaluates the multiset of *active item sizes* at
// every event boundary. Cloud workloads draw sizes from a small catalog of
// flavors, so the multiset compresses to (distinct size, count) runs: oracle
// keys, snapshot copies and hashing all shrink from O(active items) to
// O(distinct sizes). Every consumer of SizeRun spans in this library is
// bit-identical to the same computation on the expanded flat multiset — the
// run-aware code paths replicate the flat code's floating-point operation
// sequence exactly (see opt/classical.hpp, opt/lower_bounds.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"

namespace dbp {

/// One run of a compressed multiset: `count` items of identical `size`.
/// Runs are kept in strictly decreasing size order (sizes bitwise distinct).
struct SizeRun {
  double size = 0.0;
  std::uint64_t count = 0;

  friend bool operator==(const SizeRun&, const SizeRun&) = default;
};

/// Total item count of a run sequence.
[[nodiscard]] inline std::uint64_t rle_item_count(
    std::span<const SizeRun> runs) noexcept {
  std::uint64_t total = 0;
  for (const SizeRun& run : runs) total += run.count;
  return total;
}

/// Compresses a non-increasing flat multiset into runs (bitwise-equal sizes
/// merge). Throws PreconditionError when `sorted_desc` is not sorted.
[[nodiscard]] inline std::vector<SizeRun> rle_from_sorted(
    std::span<const double> sorted_desc) {
  std::vector<SizeRun> runs;
  for (double size : sorted_desc) {
    DBP_REQUIRE(runs.empty() || size <= runs.back().size,
                "sizes must be non-increasing");
    if (!runs.empty() && runs.back().size == size) {
      ++runs.back().count;
    } else {
      runs.push_back(SizeRun{size, 1});
    }
  }
  return runs;
}

/// Expands runs back into the flat non-increasing multiset, appending to
/// `out` (cleared first).
inline void rle_expand(std::span<const SizeRun> runs, std::vector<double>& out) {
  out.clear();
  out.reserve(static_cast<std::size_t>(rle_item_count(runs)));
  for (const SizeRun& run : runs) {
    for (std::uint64_t i = 0; i < run.count; ++i) out.push_back(run.size);
  }
}

/// Throws PreconditionError unless runs are well-formed for `model`:
/// positive counts, sizes in (0, bin capacity], strictly decreasing.
inline void rle_validate(std::span<const SizeRun> runs, const CostModel& model) {
  double previous = std::numeric_limits<double>::infinity();
  for (const SizeRun& run : runs) {
    DBP_REQUIRE(run.count > 0, "run count must be positive");
    DBP_REQUIRE(run.size > 0.0 && model.fits(run.size, model.bin_capacity),
                "size must be in (0, bin capacity]");
    DBP_REQUIRE(run.size < previous, "runs must have strictly decreasing sizes");
    previous = run.size;
  }
}

/// FNV-1a over the raw (size bits, count) representation; the key is the
/// exact compressed multiset. Shared by the bin-count oracle memo and the
/// OPT_total snapshot-deduplication map. Transparent: arena-backed spans
/// hash identically to owning vectors, so they can probe a vector-keyed
/// memo (heterogeneous lookup) without materializing a key copy.
struct SizeRunVectorHash {
  using is_transparent = void;

  std::size_t operator()(std::span<const SizeRun> runs) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    const auto mix = [&h](std::uint64_t bits) {
      for (int shift = 0; shift < 64; shift += 8) {
        h ^= (bits >> shift) & 0xFF;
        h *= 1099511628211ULL;
      }
    };
    for (const SizeRun& run : runs) {
      std::uint64_t bits;
      std::memcpy(&bits, &run.size, sizeof(bits));
      mix(bits);
      mix(run.count);
    }
    return static_cast<std::size_t>(h);
  }

  std::size_t operator()(const std::vector<SizeRun>& runs) const noexcept {
    return (*this)(std::span<const SizeRun>(runs));
  }
};

/// Transparent equality over run contents, pairing with SizeRunVectorHash
/// for heterogeneous span-vs-vector memo lookups.
struct SizeRunKeyEqual {
  using is_transparent = void;

  bool operator()(std::span<const SizeRun> a, std::span<const SizeRun> b) const noexcept {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
};

}  // namespace dbp
