// Fully-dynamic repacking baseline — NON-PAPER reference.
//
// The paper's model forbids migration; the classical fully dynamic bin
// packing literature (Ivkovic & Lloyd, cited in Section 2) allows it. This
// baseline repacks the entire active set with FFD at every event batch,
// giving (a) an achievable-with-migration cost trajectory that sandwiches
// tightly against OPT_total, and (b) the migration volume such a policy
// would require — quantifying what the no-migration constraint costs and
// why cloud gaming cannot pay it (Section 1: "migration ... is not
// preferable due to large migration overheads").
#pragma once

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

struct RepackBaselineResult {
  /// Total cost of the FFD-repacked fleet: integral of FFD(active) * C.
  double total_cost = 0.0;
  /// Peak FFD bin count.
  std::size_t max_bins = 0;
  /// Number of item moves: at each event batch, items whose bin index
  /// changed relative to the previous FFD packing (matched by item id).
  std::uint64_t migrations = 0;
  /// Item-size volume moved (sum of sizes over migrations).
  double migrated_volume = 0.0;
  /// Event batches evaluated.
  std::size_t batches = 0;
};

/// Runs the repack-everything-with-FFD-at-every-event baseline.
/// Deterministic: FFD processes active items by (size desc, id asc).
[[nodiscard]] RepackBaselineResult run_repack_baseline(const Instance& instance,
                                                       const CostModel& model);

}  // namespace dbp
