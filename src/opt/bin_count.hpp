// The bin-count oracle: certified [lower, upper] bounds (exact whenever
// affordable) on the optimal number of bins for a static size multiset.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "opt/exact.hpp"

namespace dbp {

/// Certified bounds on the optimal bin count.
struct BinCountBounds {
  std::size_t lower = 0;
  std::size_t upper = 0;
  [[nodiscard]] bool exact() const noexcept { return lower == upper; }
};

struct BinCountOptions {
  /// Forwarded to the exact solver when heuristic bounds do not meet.
  ExactPackingOptions exact{};
  /// Disable the exact solver entirely (bounds then come from L2 and
  /// FFD/BFD only) — used by large sweeps where speed matters more.
  bool use_exact_solver = true;
  /// Sizes whose relative spread is below this are treated as equal,
  /// enabling the exact equal-size fast path.
  double equal_size_rel_tolerance = 1e-12;
};

/// Computes bounds for the given multiset. Fast paths (exact, O(n)):
/// empty, everything-fits-one-bin, all-equal sizes. General path:
/// max(L1, L2) lower, min(FFD, BFD) upper, branch-and-bound to close.
[[nodiscard]] BinCountBounds optimal_bin_count(std::span<const double> sizes,
                                               const CostModel& model,
                                               const BinCountOptions& options = {});

/// Memoizing wrapper around optimal_bin_count keyed on the exact multiset
/// (sorted contents). The OPT_total estimator evaluates the active multiset
/// at every event boundary; adversarial and cyclic workloads revisit the
/// same multiset many times.
class BinCountOracle {
 public:
  BinCountOracle(CostModel model, BinCountOptions options = {});

  /// `sorted_desc` must be non-increasing. O(n) on a memo hit.
  [[nodiscard]] BinCountBounds count_sorted(std::span<const double> sorted_desc);

  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  /// Evictions happen wholesale when the memo exceeds this many entries.
  static constexpr std::size_t kMemoLimit = 1 << 18;

 private:
  struct VectorHash {
    std::size_t operator()(const std::vector<double>& v) const noexcept;
  };

  CostModel model_;
  BinCountOptions options_;
  std::unordered_map<std::vector<double>, BinCountBounds, VectorHash> memo_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace dbp
