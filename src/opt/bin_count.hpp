// The bin-count oracle: certified [lower, upper] bounds (exact whenever
// affordable) on the optimal number of bins for a static size multiset.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/types.hpp"
#include "opt/exact.hpp"
#include "opt/rle.hpp"

namespace dbp {

/// Certified bounds on the optimal bin count.
struct BinCountBounds {
  std::size_t lower = 0;
  std::size_t upper = 0;
  [[nodiscard]] bool exact() const noexcept { return lower == upper; }
};

struct BinCountOptions {
  /// Forwarded to the exact solver when heuristic bounds do not meet.
  ExactPackingOptions exact{};
  /// Disable the exact solver entirely (bounds then come from L2 and
  /// FFD/BFD only) — used by large sweeps where speed matters more.
  bool use_exact_solver = true;
  /// Sizes whose relative spread is below this are treated as equal,
  /// enabling the exact equal-size fast path.
  double equal_size_rel_tolerance = 1e-12;
};

/// Computes bounds for the given multiset. Fast paths (exact, O(n)):
/// empty, everything-fits-one-bin, all-equal sizes. General path:
/// max(L1, L2) lower, min(FFD, BFD) upper, branch-and-bound to close.
[[nodiscard]] BinCountBounds optimal_bin_count(std::span<const double> sizes,
                                               const CostModel& model,
                                               const BinCountOptions& options = {});

/// Run-length-encoded entry point (strictly decreasing run sizes).
/// Bit-identical to optimal_bin_count on the expanded multiset — the
/// heuristic chain runs on the compressed form via the `_rle` variants
/// (which replay the flat floating-point sequence exactly) and the exact
/// solver, when needed, runs on a transient expansion. Thread-safe: pure.
[[nodiscard]] BinCountBounds optimal_bin_count_rle(std::span<const SizeRun> runs,
                                                   const CostModel& model,
                                                   const BinCountOptions& options = {});

struct BinCountScratch;

/// Scratch variant: identical bounds, but every working structure (L2
/// prefix arrays, FFD tree, BFD residual index, exact-solver expansion and
/// stack) is reused from `scratch` — see opt/scratch.hpp. The OPT_total
/// evaluate phase calls this once per distinct snapshot with a per-worker
/// scratch, making the phase allocation-free in steady state.
[[nodiscard]] BinCountBounds optimal_bin_count_rle(std::span<const SizeRun> runs,
                                                   const CostModel& model,
                                                   const BinCountOptions& options,
                                                   BinCountScratch& scratch);

/// Memoizing wrapper around the bin-count computation, keyed on the exact
/// run-length-encoded multiset. The OPT_total estimator evaluates the active
/// multiset at every event boundary; adversarial and cyclic workloads
/// revisit the same multiset many times. Not thread-safe — the estimator's
/// parallel phase computes misses via the pure optimal_bin_count_rle and
/// stores them sequentially.
class BinCountOracle {
 public:
  /// Evictions trim the memo back under `memo_limit` entries (FIFO halves,
  /// see store_rle) instead of wiping it wholesale.
  static constexpr std::size_t kMemoLimit = 1 << 18;

  explicit BinCountOracle(CostModel model, BinCountOptions options = {},
                          std::size_t memo_limit = kMemoLimit);

  /// `sorted_desc` must be non-increasing. Compresses to runs, then counts.
  [[nodiscard]] BinCountBounds count_sorted(std::span<const double> sorted_desc);

  /// Memoized bounds for a compressed multiset (lookup + compute + store).
  [[nodiscard]] BinCountBounds count_rle(std::span<const SizeRun> runs);

  /// Memo probe only; counts a hit or a miss. Lets callers batch the
  /// computation of misses (e.g. in parallel) before store_rle-ing them.
  /// The span form probes without copying the key (transparent lookup) —
  /// arena-backed snapshot spans pass through allocation-free.
  [[nodiscard]] std::optional<BinCountBounds> lookup_rle(std::span<const SizeRun> runs);
  [[nodiscard]] std::optional<BinCountBounds> lookup_rle(
      const std::vector<SizeRun>& runs) {
    return lookup_rle(std::span<const SizeRun>(runs));
  }

  /// Inserts a computed entry, evicting the oldest half of the memo first
  /// when `memo_limit` is reached (FIFO by insertion; bounded, never a
  /// wholesale wipe). Overwrites silently on duplicate keys. Only an actual
  /// insert copies the key into an owning vector.
  void store_rle(std::span<const SizeRun> runs, BinCountBounds bounds);
  void store_rle(const std::vector<SizeRun>& runs, BinCountBounds bounds) {
    store_rle(std::span<const SizeRun>(runs), bounds);
  }

  [[nodiscard]] std::size_t memo_size() const noexcept { return memo_.size(); }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Total entries evicted over the oracle's lifetime.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct MemoEntry {
    BinCountBounds bounds{};
    std::uint64_t seq = 0;  ///< insertion sequence number, for FIFO eviction
  };

  CostModel model_;
  BinCountOptions options_;
  std::size_t memo_limit_;
  // DBP_LINT_ALLOW(unordered-container): memo lookups by exact RLE key;
  // eviction keeps every entry with seq >= cutoff, so the surviving set is
  // determined by insertion sequence, not by iteration order.
  std::unordered_map<std::vector<SizeRun>, MemoEntry, SizeRunVectorHash,
                     SizeRunKeyEqual>
      memo_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dbp
