#include "opt/opt_total.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include <string>

#include "exec/parallel_map.hpp"
#include "core/arena.hpp"
#include "core/audit.hpp"
#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "exec/execution_policy.hpp"
#include "exec/worker_budget.hpp"
#include "obs/obs.hpp"
#include "opt/scratch.hpp"
#include "sim/event.hpp"

#if DBP_AUDIT_ENABLED
#include <set>
#endif

namespace dbp {

namespace {

/// Accumulated weight of one distinct snapshot: total segment width (in
/// chronological add order — deterministic) and how many segments share it.
struct SnapshotWeight {
  CompensatedSum width;
  std::size_t segment_count = 0;
};

/// Times the estimator's three phases when an observability context is
/// installed; zero clock reads otherwise. Phase durations land both in the
/// metrics registry (timer "opt_total.<phase>") and, as kOptPhase records
/// with an "ms" timing field, in the trace. The records themselves are
/// emitted from the sequential control path only, so traces are identical
/// across worker counts up to those timing fields. The clock itself lives
/// behind obs::PhaseStopwatch, so this TU never references a clock symbol
/// (dbp_symcheck `wall-clock` object policy).
class PhaseObserver {
 public:
  PhaseObserver() noexcept = default;

  void begin() noexcept { stopwatch_.begin(); }

  void end(const char* phase, std::uint64_t count) {
    if (!stopwatch_.active()) return;
    const double elapsed_ms = stopwatch_.elapsed_ms();
    if (obs::MetricsRegistry* metrics = obs::metrics()) {
      metrics->timer(std::string("opt_total.") + phase).record_ms(elapsed_ms);
    }
    if (obs::RunTracer* tracer = obs::tracer()) {
      obs::TraceRecord record;
      record.kind = obs::TraceKind::kOptPhase;
      record.count = count;
      record.ms = elapsed_ms;
      record.label = phase;
      tracer->record(std::move(record));
    }
  }

 private:
  obs::PhaseStopwatch stopwatch_;
};

}  // namespace

OptTotalResult estimate_opt_total(const Instance& instance, const CostModel& model,
                                  const OptTotalOptions& options) {
  model.validate();
  OptTotalResult result;
  result.exact = true;
  if (instance.empty()) return result;
  result.closed_form = compute_cost_bounds(instance, model);

  const std::vector<Event> events = build_event_sequence(instance);
  PhaseObserver observer;
  observer.begin();

  // ---- Phase 1: sequential sweep, RLE active set, snapshot dedup. ----
  // Active sizes run-length encoded in descending order (greater<>), so a
  // snapshot key is a straight copy of O(distinct sizes) runs. Distinct
  // snapshots live in a monotonic arena (stable addresses, one bump per
  // snapshot) and are referenced by span everywhere downstream; the dedup
  // map keys on those spans directly, so a duplicate segment costs a
  // provisional arena copy that marker/rewind takes right back.
  std::map<double, std::uint64_t, std::greater<>> active;
  MonotonicArena snapshot_arena;
  std::vector<std::span<const SizeRun>> snapshots;  // first-occurrence order
  std::vector<SnapshotWeight> weights;              // parallel to snapshots
  // DBP_LINT_ALLOW(unordered-container): dedup via try_emplace by exact
  // key; never iterated — snapshot order is first-occurrence order.
  std::unordered_map<std::span<const SizeRun>, std::size_t, SizeRunVectorHash,
                     SizeRunKeyEqual>
      index;
#if DBP_AUDIT_ENABLED
  // Audit shadow of `active`: a dense multiset maintained item-by-item. At
  // every snapshot the RLE key must describe exactly this multiset.
  std::multiset<double, std::greater<>> audit_active;
#endif

  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].time;
    // Apply the whole batch at time t (departures already sort first).
    for (; i < events.size() && events[i].time == t; ++i) {
      const Item& item = instance.item(events[i].item);
      if (events[i].kind == EventKind::kArrival) {
        ++active[item.size];
        DBP_AUDIT_ONLY(audit_active.insert(item.size);)
      } else {
        const auto it = active.find(item.size);
        DBP_CHECK(it != active.end(), "departure of an inactive size");
        if (--it->second == 0) active.erase(it);
#if DBP_AUDIT_ENABLED
        const auto audit_it = audit_active.find(item.size);
        DBP_AUDIT_CHECK(audit_it != audit_active.end(),
                        "dense shadow multiset missing a departing size");
        audit_active.erase(audit_it);
#endif
      }
    }
    if (i == events.size()) {
      DBP_CHECK(active.empty(), "items remain active after the last event");
      break;
    }
    const Time segment_end = events[i].time;
    const double width = segment_end - t;
    if (width <= 0.0 || active.empty()) continue;

    const MonotonicArena::Marker mark = snapshot_arena.marker();
    const std::span<SizeRun> key = snapshot_arena.allocate_array<SizeRun>(active.size());
    {
      std::size_t r = 0;
      for (const auto& [size, count] : active) key[r++] = SizeRun{size, count};
    }
#if DBP_AUDIT_ENABLED
    // RLE snapshot multiset == dense bookkeeping: identical total count and
    // per-size multiplicities, strictly decreasing run sizes.
    DBP_AUDIT_CHECK(rle_item_count(key) == audit_active.size(),
                    "RLE snapshot item count disagrees with the dense multiset");
    for (std::size_t r = 0; r < key.size(); ++r) {
      DBP_AUDIT_CHECK(r == 0 || key[r].size < key[r - 1].size,
                      "RLE snapshot runs are not strictly decreasing");
      DBP_AUDIT_CHECK(audit_active.count(key[r].size) == key[r].count,
                      "RLE run multiplicity disagrees with the dense multiset");
    }
#endif

    const auto [slot, inserted] =
        index.try_emplace(std::span<const SizeRun>(key), snapshots.size());
    if (inserted) {
      snapshots.push_back(key);
      weights.emplace_back();
    } else {
      // Duplicate snapshot: release the provisional arena copy.
      snapshot_arena.rewind(mark);
    }
    SnapshotWeight& weight = weights[slot->second];
    weight.width.add(width);
    ++weight.segment_count;
    ++result.segments;
  }

  observer.end("sweep", result.segments);
  observer.begin();

  // ---- Phase 2: evaluate the distinct snapshots. ----
  // Snapshots are already deduplicated, so a memo can only pay off when the
  // caller shares an oracle across calls; without one, every snapshot is a
  // structural miss and the memo machinery is skipped entirely.
  BinCountOracle* const oracle = options.oracle;
  const std::uint64_t hits_before = oracle != nullptr ? oracle->hits() : 0;
  const std::uint64_t evictions_before = oracle != nullptr ? oracle->evictions() : 0;

  std::vector<BinCountBounds> bounds(snapshots.size());
  std::vector<std::size_t> pending;
  pending.reserve(snapshots.size());
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    if (oracle != nullptr) {
      const auto cached = oracle->lookup_rle(snapshots[s]);
      if (obs::RunTracer* tracer = obs::tracer()) {
        obs::TraceRecord record;
        record.kind = cached.has_value() ? obs::TraceKind::kOracleHit
                                         : obs::TraceKind::kOracleMiss;
        record.count = s;
        tracer->record(std::move(record));
      }
      if (cached) {
        bounds[s] = *cached;
        continue;
      }
    }
    pending.push_back(s);
  }
  // The fan-out decision: the worker budget (1 worker, a held lease, or an
  // enclosing sweep-level parallel region all mean "no help available") and
  // the pending job mix (few or tiny snapshots cannot amortize the OpenMP
  // region + result-slot overhead) both have to justify parallel_map.
  // work_units = total RLE runs across pending snapshots, so a thousand
  // heavily-deduplicated two-run snapshots do not count as heavy work.
  exec::ParallelWorkEstimate work;
  work.jobs = pending.size();
  for (const std::size_t s : pending) work.work_units += snapshots[s].size();
  const int workers = exec::WorkerBudget::effective();
  const bool fan_out = exec::should_parallelize(options.policy, work, workers);
  result.evaluate_parallel = fan_out;
  result.evaluate_workers = fan_out ? workers : 1;
  // Each worker evaluates thousands of snapshots against one reusable
  // scratch (opt/scratch.hpp), so the whole phase performs a bounded number
  // of warm-up allocations instead of a dozen per snapshot. The scratch
  // path is bit-identical, so results stay independent of the worker count.
  if (fan_out) {
    // Pure evaluations; the oracle memo is written back sequentially below.
    // Scratches are indexed by OpenMP thread id; sizing by max_threads
    // covers any team parallel_map can start under the current budget.
#if defined(DBP_HAVE_OPENMP)
    std::vector<BinCountScratch> scratches(
        static_cast<std::size_t>(omp_get_max_threads()));
#else
    std::vector<BinCountScratch> scratches(1);
#endif
    const auto evaluate = [&](std::size_t s) {
#if defined(DBP_HAVE_OPENMP)
      BinCountScratch& scratch =
          scratches[static_cast<std::size_t>(omp_get_thread_num())];
#else
      BinCountScratch& scratch = scratches.front();
#endif
      return optimal_bin_count_rle(snapshots[s], model, options.bin_count, scratch);
    };
    const std::vector<BinCountBounds> computed = parallel_map(pending, evaluate);
    for (std::size_t p = 0; p < pending.size(); ++p) bounds[pending[p]] = computed[p];
  } else {
    BinCountScratch scratch;
    for (const std::size_t s : pending) {
      bounds[s] = optimal_bin_count_rle(snapshots[s], model, options.bin_count, scratch);
    }
  }
  if (oracle != nullptr) {
    for (const std::size_t s : pending) oracle->store_rle(snapshots[s], bounds[s]);
  }

  result.distinct_snapshots = snapshots.size();
  result.dedup_hits = result.segments - snapshots.size();
  result.oracle_hits = oracle != nullptr ? oracle->hits() - hits_before : 0;
  result.oracle_misses = pending.size();
  result.oracle_evictions =
      oracle != nullptr ? oracle->evictions() - evictions_before : 0;
  observer.end("evaluate", result.distinct_snapshots);
  observer.begin();

  // ---- Phase 3: sequential combine in first-occurrence order. ----
  CompensatedSum lower_integral;
  CompensatedSum upper_integral;
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    const BinCountBounds& b = bounds[s];
    const double width = weights[s].width.value();
    if (b.exact()) {
      result.exact_segments += weights[s].segment_count;
    } else {
      result.exact = false;
    }
    lower_integral.add(static_cast<double>(b.lower) * width);
    upper_integral.add(static_cast<double>(b.upper) * width);
    result.max_bins_lower = std::max(result.max_bins_lower, b.lower);
    result.max_bins_upper = std::max(result.max_bins_upper, b.upper);
  }

  result.lower_cost = lower_integral.value() * model.cost_rate;
  result.upper_cost = upper_integral.value() * model.cost_rate;

  // The integral lower bound dominates (b.1) and (b.2) pointwise, but keep
  // the max for numerical safety.
  result.lower_cost = std::max(result.lower_cost, result.closed_form.lower());
  DBP_CHECK(result.lower_cost <= result.upper_cost * (1.0 + 1e-9),
            "OPT_total bounds crossed");
  observer.end("combine", result.distinct_snapshots);
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("opt_total.calls").add();
    metrics->counter("opt_total.segments").add(result.segments);
    metrics->counter("opt_total.distinct_snapshots").add(result.distinct_snapshots);
    metrics->counter("opt_total.dedup_hits").add(result.dedup_hits);
    metrics->counter("opt_total.oracle_hits").add(result.oracle_hits);
    metrics->counter("opt_total.oracle_misses").add(result.oracle_misses);
    // Which path phase 2 took, so the execution-policy choice is observable
    // (tests/exec_test.cpp pins the 1-worker sequential fallback on these).
    metrics->counter(result.evaluate_parallel ? "opt_total.evaluate_parallel"
                                              : "opt_total.evaluate_sequential")
        .add();
    metrics->gauge("opt_total.evaluate_workers")
        .set(static_cast<double>(result.evaluate_workers));
  }
  return result;
}

RatioBounds competitive_ratio_bounds(double algorithm_cost, const OptTotalResult& opt) {
  DBP_REQUIRE(algorithm_cost >= 0.0, "negative algorithm cost");
  DBP_REQUIRE(opt.lower_cost > 0.0, "OPT lower bound must be positive");
  return RatioBounds{algorithm_cost / opt.upper_cost, algorithm_cost / opt.lower_cost};
}

}  // namespace dbp
