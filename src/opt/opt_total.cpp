#include "opt/opt_total.hpp"

#include <set>
#include <vector>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "sim/event.hpp"

namespace dbp {

OptTotalResult estimate_opt_total(const Instance& instance, const CostModel& model,
                                  const OptTotalOptions& options) {
  model.validate();
  OptTotalResult result;
  result.exact = true;
  if (instance.empty()) return result;
  result.closed_form = compute_cost_bounds(instance, model);

  const std::vector<Event> events = build_event_sequence(instance);
  BinCountOracle oracle(model, options.bin_count);

  // Active sizes in descending order (greater<> comparator), so the oracle
  // key is a straight copy.
  std::multiset<double, std::greater<>> active;
  std::vector<double> snapshot;

  CompensatedSum lower_integral;
  CompensatedSum upper_integral;

  std::size_t i = 0;
  while (i < events.size()) {
    const Time t = events[i].time;
    // Apply the whole batch at time t (departures already sort first).
    for (; i < events.size() && events[i].time == t; ++i) {
      const Item& item = instance.item(events[i].item);
      if (events[i].kind == EventKind::kArrival) {
        active.insert(item.size);
      } else {
        auto it = active.find(item.size);
        DBP_CHECK(it != active.end(), "departure of an inactive size");
        active.erase(it);
      }
    }
    if (i == events.size()) {
      DBP_CHECK(active.empty(), "items remain active after the last event");
      break;
    }
    const Time segment_end = events[i].time;
    const double width = segment_end - t;
    if (width <= 0.0 || active.empty()) continue;

    snapshot.assign(active.begin(), active.end());
    const BinCountBounds bounds = oracle.count_sorted(snapshot);
    ++result.segments;
    if (bounds.exact()) {
      ++result.exact_segments;
    } else {
      result.exact = false;
    }
    lower_integral.add(static_cast<double>(bounds.lower) * width);
    upper_integral.add(static_cast<double>(bounds.upper) * width);
    result.max_bins_lower = std::max(result.max_bins_lower, bounds.lower);
    result.max_bins_upper = std::max(result.max_bins_upper, bounds.upper);
  }

  result.lower_cost = lower_integral.value() * model.cost_rate;
  result.upper_cost = upper_integral.value() * model.cost_rate;

  // The integral lower bound dominates (b.1) and (b.2) pointwise, but keep
  // the max for numerical safety.
  result.lower_cost = std::max(result.lower_cost, result.closed_form.lower());
  DBP_CHECK(result.lower_cost <= result.upper_cost * (1.0 + 1e-9),
            "OPT_total bounds crossed");
  return result;
}

RatioBounds competitive_ratio_bounds(double algorithm_cost, const OptTotalResult& opt) {
  DBP_REQUIRE(algorithm_cost >= 0.0, "negative algorithm cost");
  DBP_REQUIRE(opt.lower_cost > 0.0, "OPT lower bound must be positive");
  return RatioBounds{algorithm_cost / opt.upper_cost, algorithm_cost / opt.lower_cost};
}

}  // namespace dbp
