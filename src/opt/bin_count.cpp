#include "opt/bin_count.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "opt/classical.hpp"
#include "opt/lower_bounds.hpp"

namespace dbp {

namespace {

/// Largest m such that m items of size `size` fit one bin under the
/// tolerance-based feasibility (m * size <= W + tol).
std::size_t per_bin_count(double size, const CostModel& model) {
  const double capacity = model.bin_capacity + model.fit_tolerance;
  auto m = static_cast<std::size_t>(std::floor(capacity / size * (1.0 + 1e-12)));
  return std::max<std::size_t>(m, 1);
}

BinCountBounds compute(std::span<const double> sorted_desc, const CostModel& model,
                       const BinCountOptions& options) {
  const std::size_t n = sorted_desc.size();
  if (n == 0) return {0, 0};

  CompensatedSum sum;
  for (double s : sorted_desc) sum.add(s);

  // Fast path: everything fits one bin.
  if (model.fits(sum.value(), model.bin_capacity)) return {1, 1};

  // Fast path: all sizes equal (within relative tolerance) => exact count.
  const double largest = sorted_desc.front();
  const double smallest = sorted_desc.back();
  if (largest - smallest <= options.equal_size_rel_tolerance * largest) {
    const std::size_t m = per_bin_count(largest, model);
    const auto bins = static_cast<std::size_t>((n + m - 1) / m);
    return {bins, bins};
  }

  const std::size_t lower = l2_lower_bound_sorted(sorted_desc, model);
  const std::size_t upper = std::min(first_fit_decreasing_sorted(sorted_desc, model),
                                     best_fit_decreasing_sorted(sorted_desc, model));
  DBP_CHECK(lower <= upper, "L2 exceeds the FFD/BFD bin count");
  if (lower == upper || !options.use_exact_solver) return {lower, upper};

  const ExactPackingResult exact = exact_bin_count(sorted_desc, model, options.exact);
  return {std::max(lower, exact.lower), std::min(upper, exact.upper)};
}

}  // namespace

BinCountBounds optimal_bin_count(std::span<const double> sizes, const CostModel& model,
                                 const BinCountOptions& options) {
  model.validate();
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  for (double s : sorted) {
    DBP_REQUIRE(s > 0.0 && model.fits(s, model.bin_capacity),
                "size must be in (0, bin capacity]");
  }
  return compute(sorted, model, options);
}

std::size_t BinCountOracle::VectorHash::operator()(
    const std::vector<double>& v) const noexcept {
  // FNV-1a over the raw byte representation; the key is the exact multiset.
  std::uint64_t h = 1469598103934665603ULL;
  for (double d : v) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (bits >> shift) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return static_cast<std::size_t>(h);
}

BinCountOracle::BinCountOracle(CostModel model, BinCountOptions options)
    : model_(model), options_(options) {
  model_.validate();
}

BinCountBounds BinCountOracle::count_sorted(std::span<const double> sorted_desc) {
  std::vector<double> key(sorted_desc.begin(), sorted_desc.end());
  if (auto it = memo_.find(key); it != memo_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const BinCountBounds bounds = compute(key, model_, options_);
  if (memo_.size() >= kMemoLimit) memo_.clear();
  memo_.emplace(std::move(key), bounds);
  return bounds;
}

}  // namespace dbp
