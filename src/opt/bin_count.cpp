#include "opt/bin_count.hpp"

#include <algorithm>
#include <cmath>

#include "core/arena.hpp"
#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "opt/classical.hpp"
#include "opt/lower_bounds.hpp"
#include "opt/scratch.hpp"

namespace dbp {

namespace {

/// Largest m such that m items of size `size` fit one bin under the same
/// tolerance rule CostModel::fits applies per placement: m * size <= W + tol.
///
/// The quotient floor(capacity / size) is only a seed — division rounding
/// can land it one off in either direction, and the old ad-hoc fudge factor
/// (floor(capacity / size * (1 + 1e-12))) could *admit* an m with
/// m * size > W + tol. Concretely, with W = 1, tol = 0, and
/// size = nextafter(0.5, 1.0): the quotient is 1.9999999999999996, the
/// 1e-12 fudge pushes it past 2, yet 2 * size = 1.0000000000000002 > 1 —
/// two such items do not share a bin under fits(), so FFD opens one bin
/// per item while the "exact" equal-size fast path certified half that,
/// an invalid lower bound (tests/bin_count_test.cpp pins this case). The
/// corrective loops below re-anchor the seed to the multiplication the
/// feasibility rule really performs; they run at most one step in practice
/// (division is correctly rounded, so the seed is off by at most one).
std::size_t per_bin_count(double size, const CostModel& model) {
  const double capacity = model.bin_capacity + model.fit_tolerance;
  auto m = static_cast<std::size_t>(std::floor(capacity / size));
  while (m > 1 && static_cast<double>(m) * size > capacity) --m;
  while (static_cast<double>(m + 1) * size <= capacity) ++m;
  return std::max<std::size_t>(m, 1);
}

/// The computation behind both entry points, on the compressed form. Every
/// step replays the flat algorithm's floating-point sequence (the `_rle`
/// heuristics are bit-identical by construction; the exact solver runs on a
/// transient expansion), so compute_rle(compress(S)) == compute_flat(S).
/// With a scratch, the identical computation runs on reused storage — the
/// scratch-taking kernel variants are documented value-identical to their
/// allocating twins, so both branches below return the same bounds.
BinCountBounds compute_rle(std::span<const SizeRun> runs, const CostModel& model,
                           const BinCountOptions& options, BinCountScratch* scratch) {
  const std::uint64_t n = rle_item_count(runs);
  if (n == 0) return {0, 0};

  // Same per-item compensated total the flat path accumulates.
  CompensatedSum sum;
  for (const SizeRun& run : runs) {
    for (std::uint64_t i = 0; i < run.count; ++i) sum.add(run.size);
  }

  // Fast path: everything fits one bin.
  if (model.fits(sum.value(), model.bin_capacity)) return {1, 1};

  // Fast path: all sizes equal (within relative tolerance) => exact count.
  const double largest = runs.front().size;
  const double smallest = runs.back().size;
  if (largest - smallest <= options.equal_size_rel_tolerance * largest) {
    const std::size_t m = per_bin_count(largest, model);
    const auto bins = static_cast<std::size_t>((n + m - 1) / m);
    return {bins, bins};
  }

  std::size_t lower;
  std::size_t upper;
  if (scratch != nullptr) {
    scratch->arena.reset();
    lower = l2_lower_bound_rle(runs, model, scratch->arena);
    upper = std::min(first_fit_decreasing_rle(runs, model, scratch->ffd_tree),
                     best_fit_decreasing_rle(runs, model, scratch->bfd_residuals));
  } else {
    lower = l2_lower_bound_rle(runs, model);
    upper = std::min(first_fit_decreasing_rle(runs, model),
                     best_fit_decreasing_rle(runs, model));
  }
  DBP_CHECK(lower <= upper, "L2 exceeds the FFD/BFD bin count");
  if (lower == upper || !options.use_exact_solver) return {lower, upper};

  if (scratch != nullptr) {
    // Arena-backed expansion (runs are strictly decreasing, so the expanded
    // multiset is born sorted), then the search-only solver entry: it takes
    // the bounds just computed — bit-identical to the ones exact_bin_count
    // would recompute from the expansion — instead of re-deriving them.
    const std::span<double> expanded =
        scratch->arena.allocate_array<double>(static_cast<std::size_t>(n));
    std::size_t at = 0;
    for (const SizeRun& run : runs) {
      for (std::uint64_t i = 0; i < run.count; ++i) expanded[at++] = run.size;
    }
    const ExactPackingResult exact = exact_bin_count_bounded(
        expanded, model, lower, upper, options.exact, scratch->arena);
    return {std::max(lower, exact.lower), std::min(upper, exact.upper)};
  }
  std::vector<double> expanded;
  rle_expand(runs, expanded);
  const ExactPackingResult exact = exact_bin_count(expanded, model, options.exact);
  return {std::max(lower, exact.lower), std::min(upper, exact.upper)};
}

}  // namespace

BinCountBounds optimal_bin_count(std::span<const double> sizes, const CostModel& model,
                                 const BinCountOptions& options) {
  model.validate();
  std::vector<double> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  for (double s : sorted) {
    DBP_REQUIRE(s > 0.0 && model.fits(s, model.bin_capacity),
                "size must be in (0, bin capacity]");
  }
  return compute_rle(rle_from_sorted(sorted), model, options, nullptr);
}

BinCountBounds optimal_bin_count_rle(std::span<const SizeRun> runs,
                                     const CostModel& model,
                                     const BinCountOptions& options) {
  model.validate();
  rle_validate(runs, model);
  return compute_rle(runs, model, options, nullptr);
}

BinCountBounds optimal_bin_count_rle(std::span<const SizeRun> runs,
                                     const CostModel& model,
                                     const BinCountOptions& options,
                                     BinCountScratch& scratch) {
  model.validate();
  rle_validate(runs, model);
  return compute_rle(runs, model, options, &scratch);
}

BinCountOracle::BinCountOracle(CostModel model, BinCountOptions options,
                               std::size_t memo_limit)
    : model_(model), options_(options), memo_limit_(std::max<std::size_t>(memo_limit, 2)) {
  model_.validate();
}

BinCountBounds BinCountOracle::count_sorted(std::span<const double> sorted_desc) {
  return count_rle(rle_from_sorted(sorted_desc));
}

BinCountBounds BinCountOracle::count_rle(std::span<const SizeRun> runs) {
  // Transparent probe first: only a miss pays for the owning key copy
  // (inside store_rle).
  if (const auto cached = lookup_rle(runs)) return *cached;
  const BinCountBounds bounds = compute_rle(runs, model_, options_, nullptr);
  store_rle(runs, bounds);
  return bounds;
}

std::optional<BinCountBounds> BinCountOracle::lookup_rle(
    std::span<const SizeRun> runs) {
  if (const auto it = memo_.find(runs); it != memo_.end()) {
    ++hits_;
    return it->second.bounds;
  }
  ++misses_;
  return std::nullopt;
}

void BinCountOracle::store_rle(std::span<const SizeRun> runs,
                               BinCountBounds bounds) {
  const auto existing = memo_.find(runs);
  if (existing != memo_.end()) {
    existing->second = MemoEntry{bounds, next_seq_++};
    return;
  }
  if (memo_.size() >= memo_limit_) {
    // Bounded FIFO eviction: drop the older half (by insertion sequence) so
    // the amortized cost per insert stays O(1) and recent snapshots — the
    // ones cyclic workloads are about to revisit — survive.
    const std::uint64_t cutoff = next_seq_ - static_cast<std::uint64_t>(memo_limit_) / 2;
    for (auto it = memo_.begin(); it != memo_.end();) {
      if (it->second.seq < cutoff) {
        it = memo_.erase(it);
        ++evictions_;
      } else {
        ++it;
      }
    }
  }
  memo_.emplace(std::vector<SizeRun>(runs.begin(), runs.end()),
                MemoEntry{bounds, next_seq_++});
}

}  // namespace dbp
