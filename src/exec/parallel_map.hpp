// OpenMP-parallel parameter sweeps.
//
// Experiment harnesses build a flat list of independent jobs (one per sweep
// cell / seed) and map them in parallel. Results land at the job's index, so
// output order is deterministic regardless of the schedule.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/worker_budget.hpp"

#if defined(DBP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace dbp {

/// Applies `fn(job)` to every element of `jobs` in parallel and returns the
/// results in order. `fn` must be safe to call concurrently on distinct
/// jobs. The first exception to be *captured* by any job is rethrown after
/// the loop; once one job has thrown, jobs that have not yet started are
/// skipped (a cancellation flag is checked at iteration start), so an
/// early failure does not pay for the rest of the sweep.
///
/// Contract on the result type: results are constructed in place inside
/// std::optional slots, so `Result` must be move-constructible but does
/// NOT need to be default-constructible (and no default-constructed
/// "ghost" values can leak out of a throwing sweep).
template <typename Job, typename Fn>
auto parallel_map(const std::vector<Job>& jobs, Fn&& fn)
    -> std::vector<decltype(fn(jobs.front()))> {
  using Result = decltype(fn(jobs.front()));
  static_assert(std::is_move_constructible_v<Result>,
                "parallel_map results are moved out of their slots; the "
                "result type must be move-constructible (it need not be "
                "default-constructible)");
  std::vector<Result> results;
  if (jobs.empty()) return results;
  std::vector<std::optional<Result>> slots(jobs.size());
  std::exception_ptr error;
  std::atomic<bool> cancelled{false};

  // One fan-out decision per map, delegated to the worker-budget layer: a
  // 1-worker budget, a held WorkerLease, or an enclosing active parallel
  // region (nested map) all serialize the loop instead of paying for an
  // OpenMP team that cannot help.
  const bool fan_out = jobs.size() > 1 && exec::WorkerBudget::effective() > 1;
  // Signed induction variable: unsigned ones break OpenMP 2.0 / MSVC builds.
  const auto job_count = static_cast<std::ptrdiff_t>(jobs.size());
#if defined(DBP_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic) if (fan_out)
#else
  (void)fan_out;
#endif
  for (std::ptrdiff_t i = 0; i < job_count; ++i) {  // NOLINT(modernize-loop-convert)
    if (cancelled.load(std::memory_order_relaxed)) continue;
    const auto index = static_cast<std::size_t>(i);
    try {
      slots[index].emplace(fn(jobs[index]));
    } catch (...) {
      cancelled.store(true, std::memory_order_relaxed);
#if defined(DBP_HAVE_OPENMP)
#pragma omp critical(dbp_parallel_map_error)
#endif
      {
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
  results.reserve(jobs.size());
  for (std::optional<Result>& slot : slots) results.push_back(std::move(*slot));
  return results;
}

/// Number of worker threads parallel_map will use from this thread. Thin
/// wrapper over exec::WorkerBudget::effective() kept for existing call
/// sites; new code should talk to the budget directly.
[[nodiscard]] inline int parallel_worker_count() {
  return exec::WorkerBudget::effective();
}

/// Caps the worker count for subsequent parallel_map calls (CLI --threads
/// plumbing). Delegates to the process-wide exec::WorkerBudget; `threads`
/// <= 0 restores the runtime default.
inline void set_parallel_worker_count(int threads) {
  exec::WorkerBudget::set(threads);
}

}  // namespace dbp
