#include "exec/worker_budget.hpp"

#include <algorithm>
#include <atomic>

#if defined(DBP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace dbp::exec {

namespace {

/// The runtime default, captured once before any budget override. Meyers
/// singleton so the capture races with nothing: set() reads it before the
/// first omp_set_num_threads.
int runtime_default() noexcept {
#if defined(DBP_HAVE_OPENMP)
  static const int initial = std::max(1, omp_get_max_threads());
  return initial;
#else
  return 1;
#endif
}

std::atomic<int> g_budget{0};  // 0 = runtime default

thread_local int t_lease_depth = 0;

}  // namespace

void WorkerBudget::set(int workers) noexcept {
  (void)runtime_default();  // capture the default before overriding it
  if (workers <= 0) workers = 0;
  workers = std::min(workers, kMaxWorkers);
  g_budget.store(workers, std::memory_order_relaxed);
#if defined(DBP_HAVE_OPENMP)
  omp_set_num_threads(workers > 0 ? workers : runtime_default());
#endif
}

int WorkerBudget::budget() noexcept {
  return g_budget.load(std::memory_order_relaxed);
}

int WorkerBudget::available() noexcept { return runtime_default(); }

int WorkerBudget::effective() noexcept {
  if (in_parallel_region() || WorkerLease::held()) return 1;
  const int configured = budget();
#if defined(DBP_HAVE_OPENMP)
  // omp_get_max_threads already reflects set()'s omp_set_num_threads, but
  // consulting the budget keeps the answer right even if third-party code
  // fiddled with the ICV behind our back.
  const int runtime = std::max(1, omp_get_max_threads());
  return configured > 0 ? std::min(configured, kMaxWorkers) : runtime;
#else
  (void)configured;
  return 1;
#endif
}

bool WorkerBudget::in_parallel_region() noexcept {
#if defined(DBP_HAVE_OPENMP)
  // omp_in_parallel is true only for *active* (multi-thread) regions; a
  // serialized `parallel for if(false)` does not count, which is exactly
  // right — a serialized outer sweep leaves the budget unclaimed.
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

WorkerLease::WorkerLease() noexcept { ++t_lease_depth; }

WorkerLease::~WorkerLease() { --t_lease_depth; }

bool WorkerLease::held() noexcept { return t_lease_depth > 0; }

}  // namespace dbp::exec
