// How a library fan-out decides between its sequential and parallel code
// paths. Both paths are required to be bit-identical; the policy only picks
// the faster one, so callers can default to kAdaptive without thinking.
//
// The adaptive cutoffs exist because parallel_map is not free even when it
// ends up running on one thread: the OpenMP region, the dynamic scheduler,
// and the per-job std::optional result slots cost ~18% on the OPT_total
// uniform-5000 workload (BENCH_perf.json recorded 1748 ms parallel vs
// 1474 ms sequential with a 1-worker budget — the regression this layer
// fixes). Sequential is therefore the right answer when the budget is one
// worker, when there are too few independent jobs to amortize the region
// startup, or when the jobs are so small (heavily deduplicated snapshots,
// few RLE runs each) that slot overhead dominates the work itself.
#pragma once

#include <cstddef>
#include <string>

namespace dbp::exec {

enum class ExecutionPolicy {
  kSequential,  ///< never fan out (reference behavior, nested contexts)
  kParallel,    ///< always fan out when >1 job (differential-test coverage)
  kAdaptive,    ///< fan out only when the budget and job mix can amortize it
};

/// What the caller knows about the fan-out it is about to run. `work_units`
/// is a caller-chosen proxy for total work — estimate_opt_total passes the
/// total RLE-run count across pending snapshots, so a thousand trivially
/// small snapshots do not look like a thousand heavyweight jobs.
struct ParallelWorkEstimate {
  std::size_t jobs = 0;
  std::size_t work_units = 0;
};

/// Measured on the bench container with bench_perf_micro (BM_OptTotal* on
/// 5000-item instances; docs/performance.md "Adaptive execution policy"):
/// below ~16 jobs the OpenMP region startup is visible against the work,
/// and below ~256 total work units the per-job slot overhead is. Both are
/// deliberately conservative — the sequential path is never wrong, only
/// occasionally a little slower on hardware we could have used.
inline constexpr std::size_t kMinParallelJobs = 16;
inline constexpr std::size_t kMinParallelWorkUnits = 256;

/// The decision: should this fan-out use parallel_map? Pure function of its
/// arguments so tests can pin the truth table.
[[nodiscard]] bool should_parallelize(ExecutionPolicy policy,
                                      const ParallelWorkEstimate& estimate,
                                      int workers) noexcept;

[[nodiscard]] const char* to_string(ExecutionPolicy policy) noexcept;

/// Parses "sequential" | "parallel" | "adaptive" (the CLI --policy values);
/// throws PreconditionError on anything else.
[[nodiscard]] ExecutionPolicy parse_execution_policy(const std::string& name);

}  // namespace dbp::exec
