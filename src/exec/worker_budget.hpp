// Process-wide worker-budget accounting: the single source of truth for
// "how many threads may the next fan-out use".
//
// Before this layer existed, thread counts were scattered ad-hoc calls to
// omp_set_num_threads / omp_get_max_threads (sweep.hpp, the CLI tools) and
// every parallel site made its own nesting assumptions. WorkerBudget
// centralizes three questions:
//
//   * budget()    — what cap did the operator configure (--threads)?
//   * available() — what would the runtime give us by default?
//   * effective() — how many workers will the *next* fan-out actually get,
//                   accounting for nesting: inside an active OpenMP region
//                   (or under a WorkerLease) the answer is 1, because the
//                   team's threads are already busy running the outer
//                   sweep. This is how sweep-level parallelism (dbp_sweep
//                   cells) and snapshot-level parallelism (estimate_opt_total
//                   phase 2) are arbitrated instead of oversubscribing.
//
// The budget itself never influences results — every consumer is required
// to be bit-identical across worker counts (tests/opt_total_differential_test,
// tests/trace_neutrality_test) — it only decides how fast they arrive.
#pragma once

namespace dbp::exec {

class WorkerBudget {
 public:
  /// Mirror of cli::Args::kMaxThreads: anything larger is a config error
  /// upstream, so the budget silently clamps as a last line of defense.
  static constexpr int kMaxWorkers = 512;

  /// Sets the process-wide budget. `workers` <= 0 restores the runtime
  /// default (the thread count the process started with). Values above
  /// kMaxWorkers are clamped. Forwards to omp_set_num_threads when OpenMP
  /// is compiled in, so legacy omp call sites observe the same cap.
  static void set(int workers) noexcept;

  /// The configured cap; 0 means "runtime default" (never explicitly set,
  /// or reset via set(0)).
  [[nodiscard]] static int budget() noexcept;

  /// The runtime's default parallelism, captured before any set() call
  /// (OpenMP's initial max-threads; 1 without OpenMP).
  [[nodiscard]] static int available() noexcept;

  /// Workers the next parallel fan-out on this thread will get: 1 inside an
  /// active parallel region or under a WorkerLease (nested fan-outs run
  /// sequentially instead of oversubscribing), otherwise the budgeted count.
  [[nodiscard]] static int effective() noexcept;

  /// True when the calling thread is part of an active (multi-thread)
  /// OpenMP team — i.e. an outer fan-out already owns the budget.
  [[nodiscard]] static bool in_parallel_region() noexcept;
};

/// RAII claim on the whole budget for an outer fan-out that OpenMP cannot
/// see (std::thread pools, external schedulers): while a lease is held on
/// this thread, effective() reports 1, so any library code called underneath
/// takes its sequential path. Leases nest; thread-local, so a lease on the
/// dispatching thread does not leak into unrelated threads.
class WorkerLease {
 public:
  WorkerLease() noexcept;
  ~WorkerLease();

  WorkerLease(const WorkerLease&) = delete;
  WorkerLease& operator=(const WorkerLease&) = delete;

  /// True when the calling thread holds at least one lease.
  [[nodiscard]] static bool held() noexcept;
};

}  // namespace dbp::exec
