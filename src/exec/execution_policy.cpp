#include "exec/execution_policy.hpp"

#include "core/error.hpp"

namespace dbp::exec {

bool should_parallelize(ExecutionPolicy policy,
                        const ParallelWorkEstimate& estimate,
                        int workers) noexcept {
  if (estimate.jobs < 2) return false;  // nothing to fan out
  switch (policy) {
    case ExecutionPolicy::kSequential:
      return false;
    case ExecutionPolicy::kParallel:
      // Unconditional by design: the differential suite uses this to drive
      // the parallel_map path even on a 1-worker budget.
      return true;
    case ExecutionPolicy::kAdaptive:
      return workers > 1 && estimate.jobs >= kMinParallelJobs &&
             estimate.work_units >= kMinParallelWorkUnits;
  }
  return false;
}

const char* to_string(ExecutionPolicy policy) noexcept {
  switch (policy) {
    case ExecutionPolicy::kSequential:
      return "sequential";
    case ExecutionPolicy::kParallel:
      return "parallel";
    case ExecutionPolicy::kAdaptive:
      return "adaptive";
  }
  return "unknown";
}

ExecutionPolicy parse_execution_policy(const std::string& name) {
  if (name == "sequential") return ExecutionPolicy::kSequential;
  if (name == "parallel") return ExecutionPolicy::kParallel;
  if (name == "adaptive") return ExecutionPolicy::kAdaptive;
  DBP_REQUIRE(false, "unknown execution policy '" + name +
                         "' (expected sequential, parallel, or adaptive)");
  return ExecutionPolicy::kAdaptive;  // unreachable
}

}  // namespace dbp::exec
