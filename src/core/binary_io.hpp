// Little-endian binary (de)serialization for the durability layer.
//
// Checkpoints must restore *bit-identical* state — a recovered run is proven
// equal to an uninterrupted one by exact field comparison — so doubles are
// written as their IEEE-754 bit patterns (never through text formatting) and
// integers in a fixed little-endian layout independent of host endianness.
// ByteReader bounds-checks every read and throws CorruptionError instead of
// walking past the buffer: framing errors surface as detected corruption,
// never as undefined behavior.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace dbp {

/// Append-only little-endian encoder over a growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(value); }

  void u32(std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFU));
    }
  }

  void u64(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      buffer_.push_back(static_cast<std::uint8_t>((value >> shift) & 0xFFU));
    }
  }

  /// IEEE-754 bit pattern: round-trips every double (including NaN payloads
  /// and signed zeros) exactly.
  void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

  void boolean(bool value) { u8(value ? 1 : 0); }

  /// u64 length prefix followed by the raw bytes.
  void str(const std::string& value) {
    u64(value.size());
    buffer_.insert(buffer_.end(), value.begin(), value.end());
  }

  void bytes(std::span<const std::uint8_t> data) {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buffer_);
  }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked decoder over a byte span; every overrun or malformed
/// length raises CorruptionError.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return data_[offset_++];
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      value |= static_cast<std::uint32_t>(data_[offset_++]) << shift;
    }
    return value;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      value |= static_cast<std::uint64_t>(data_[offset_++]) << shift;
    }
    return value;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] bool boolean() {
    const std::uint8_t value = u8();
    if (value > 1) throw CorruptionError("boolean byte out of range");
    return value == 1;
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t length = u64();
    need(length);
    std::string value(reinterpret_cast<const char*>(data_.data()) +
                          static_cast<std::ptrdiff_t>(offset_),
                      static_cast<std::size_t>(length));
    offset_ += static_cast<std::size_t>(length);
    return value;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] bool done() const noexcept { return offset_ == data_.size(); }

  /// Deserializers call this after the last field so trailing garbage in a
  /// CRC-valid payload is still rejected.
  void expect_done() const {
    if (!done()) throw CorruptionError("trailing bytes after payload");
  }

 private:
  void need(std::uint64_t count) const {
    if (count > data_.size() - offset_) {
      throw CorruptionError("payload truncated: read past end of buffer");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

}  // namespace dbp
