#include "core/fault.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dbp {

const char* to_string(CrashTarget target) noexcept {
  switch (target) {
    case CrashTarget::kFullest: return "fullest";
    case CrashTarget::kEmptiest: return "emptiest";
    case CrashTarget::kOldest: return "oldest";
    case CrashTarget::kNewest: return "newest";
    case CrashTarget::kRandom: return "random";
  }
  return "unknown";
}

const char* to_string(AnomalyKind kind) noexcept {
  switch (kind) {
    case AnomalyKind::kDuplicateStart: return "duplicate-start";
    case AnomalyKind::kUnknownSessionEnd: return "unknown-session-end";
    case AnomalyKind::kOutOfOrderTimestamp: return "out-of-order-timestamp";
    case AnomalyKind::kNaNSize: return "nan-size";
    case AnomalyKind::kNegativeSize: return "negative-size";
  }
  return "unknown";
}

void FaultPlan::validate() const {
  Time previous = -kTimeInfinity;
  for (const CrashFault& crash : crashes) {
    DBP_REQUIRE(std::isfinite(crash.time), "crash fault time must be finite");
    DBP_REQUIRE(crash.time >= previous, "crash faults must be sorted by time");
    previous = crash.time;
  }
  previous = -kTimeInfinity;
  for (const AnomalyFault& anomaly : anomalies) {
    DBP_REQUIRE(std::isfinite(anomaly.time), "anomaly fault time must be finite");
    DBP_REQUIRE(anomaly.time >= previous, "anomaly faults must be sorted by time");
    previous = anomaly.time;
  }
}

}  // namespace dbp
