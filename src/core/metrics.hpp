// Workload metrics from paper Table 1: span(R), u(R), the max/min interval
// length ratio mu, and the cost bounds (b.1)-(b.3) of Section 4.
#pragma once

#include <span>

#include "core/instance.hpp"
#include "core/interval_set.hpp"
#include "core/types.hpp"

namespace dbp {

/// span(R) = len(U_{r in R} I(r)): the measure of time during which at least
/// one item is active (paper Figure 1). 0 for an empty list.
[[nodiscard]] Time span_of(std::span<const Item> items);
[[nodiscard]] inline Time span_of(const Instance& instance) {
  return span_of(instance.items());
}

/// The interval union itself (useful for per-bin usage-period reasoning).
[[nodiscard]] IntervalSet interval_union_of(std::span<const Item> items);

/// u(R) = sum of s(r) * len(I(r)).
[[nodiscard]] double total_demand_of(std::span<const Item> items);
[[nodiscard]] inline double total_demand_of(const Instance& instance) {
  return total_demand_of(instance.items());
}

/// Summary statistics of an item list.
struct InstanceMetrics {
  std::size_t item_count = 0;
  Time min_interval_length = 0.0;  ///< Delta in the paper's notation
  Time max_interval_length = 0.0;  ///< mu * Delta
  double mu = 1.0;                 ///< max/min interval length ratio
  double min_size = 0.0;
  double max_size = 0.0;
  double total_demand = 0.0;  ///< u(R)
  Time span = 0.0;            ///< span(R)
  TimeInterval packing_period{};
};

/// Computes all metrics in one pass (plus an O(n log n) span). Requires a
/// non-empty list.
[[nodiscard]] InstanceMetrics compute_metrics(std::span<const Item> items);
[[nodiscard]] inline InstanceMetrics compute_metrics(const Instance& instance) {
  return compute_metrics(instance.items());
}

/// The paper's universal cost bounds for any packing algorithm A, scaled by
/// cost rate C and capacity W:
///   (b.1)  A_total(R) >= u(R) * C / W
///   (b.2)  A_total(R) >= span(R) * C
///   (b.3)  A_total(R) <= sum len(I(r)) * C
struct CostBounds {
  double demand_lower = 0.0;     ///< (b.1)
  double span_lower = 0.0;       ///< (b.2)
  double one_per_item_upper = 0.0;  ///< (b.3)

  /// max of (b.1) and (b.2): the standard lower bound on OPT_total.
  [[nodiscard]] double lower() const noexcept {
    return demand_lower > span_lower ? demand_lower : span_lower;
  }
};

[[nodiscard]] CostBounds compute_cost_bounds(std::span<const Item> items,
                                             const CostModel& model);
[[nodiscard]] inline CostBounds compute_cost_bounds(const Instance& instance,
                                                    const CostModel& model) {
  return compute_cost_bounds(instance.items(), model);
}

}  // namespace dbp
