// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) over byte spans.
//
// The durability layer stamps every journal record and checkpoint payload
// with a CRC so torn writes and bit rot are *detected* rather than replayed
// as silently wrong state. Software table lookup: the journal is written on
// the event path but hashed per flushed record, so throughput is dominated
// by the write() syscall, not the CRC.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace dbp {

namespace detail {

inline constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// CRC-32 of `data` (full-buffer convenience; standard init/final XOR).
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::uint8_t> data,
                                         std::uint32_t seed = 0) noexcept {
  std::uint32_t c = ~seed;
  for (const std::uint8_t byte : data) {
    c = detail::kCrc32Table[(c ^ byte) & 0xFFU] ^ (c >> 8);
  }
  return ~c;
}

}  // namespace dbp
