// Strict text -> number parsing shared by the CLI tools and the wire layer.
//
// std::stoull / std::stod are the wrong tool for untrusted input: "8abc"
// parses as 8, "-1" wraps to a huge uint64, and "abc" escapes as an uncaught
// std::invalid_argument. These helpers accept a value if and only if the
// *entire* token is a well-formed, in-range number, and report every failure
// as a PreconditionError naming the offending text — so a CLI flag and a
// wire-protocol field reject garbage identically (tools/cli.hpp and
// net/wire_protocol.cpp are the two consumers).
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <string>
#include <string_view>
#include <system_error>

#include "core/error.hpp"

namespace dbp {

/// Parses a non-negative integer: ASCII digits only — no sign, no
/// whitespace, no base prefix, no trailing garbage — and within uint64
/// range. `what` names the value in the error ("--events value", "field
/// 'id'").
[[nodiscard]] inline std::uint64_t parse_u64_strict(std::string_view text,
                                                    const std::string& what) {
  DBP_REQUIRE(!text.empty(), "invalid " + what + ": empty, expected a "
              "non-negative integer");
  const bool all_digits =
      text.find_first_not_of("0123456789") == std::string_view::npos;
  DBP_REQUIRE(all_digits, "invalid " + what + " '" + std::string(text) +
              "': expected a non-negative integer");
  std::uint64_t value = 0;
  const std::from_chars_result result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  DBP_REQUIRE(result.ec != std::errc::result_out_of_range,
              "invalid " + what + " '" + std::string(text) +
              "': out of range for a 64-bit unsigned integer");
  DBP_REQUIRE(result.ec == std::errc() && result.ptr == text.data() + text.size(),
              "invalid " + what + " '" + std::string(text) +
              "': expected a non-negative integer");
  return value;
}

/// Parses a finite double in decimal or scientific notation, optionally
/// negative. The whole token must be consumed ("1.5x" is rejected, so are
/// "nan"/"inf": values that escape ordinary arithmetic are never accepted
/// from text). A leading '+' is rejected like any other garbage.
[[nodiscard]] inline double parse_double_strict(std::string_view text,
                                                const std::string& what) {
  DBP_REQUIRE(!text.empty(),
              "invalid " + what + ": empty, expected a finite number");
  double value = 0.0;
  const std::from_chars_result result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  DBP_REQUIRE(result.ec != std::errc::result_out_of_range,
              "invalid " + what + " '" + std::string(text) +
              "': out of double range");
  DBP_REQUIRE(result.ec == std::errc() && result.ptr == text.data() + text.size(),
              "invalid " + what + " '" + std::string(text) +
              "': expected a finite number");
  DBP_REQUIRE(std::isfinite(value), "invalid " + what + " '" +
              std::string(text) + "': expected a finite number");
  return value;
}

}  // namespace dbp
