// Deterministic fault vocabulary for chaos experiments: seeded, reproducible
// schedules of bin crashes and event-stream anomalies (docs/fault_model.md).
//
// A FaultPlan is algorithm-independent: crash *targets* are selection
// policies ("the fullest open bin") resolved against the packer's live bin
// state at injection time, so one plan is comparable across algorithms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/types.hpp"

namespace dbp {

/// Which open bin a crash fault takes down, resolved at injection time.
/// Ties (equal levels) break toward the lowest BinId so selection is
/// deterministic for every policy.
enum class CrashTarget : std::uint8_t {
  kFullest,   ///< highest level — the adversarial choice (most re-dispatch)
  kEmptiest,  ///< lowest level among open bins
  kOldest,    ///< lowest BinId (earliest opened)
  kNewest,    ///< highest BinId (latest opened; hits MFF's fresh dedications)
  kRandom,    ///< uniform over open bins, drawn from the plan's seeded stream
};

[[nodiscard]] const char* to_string(CrashTarget target) noexcept;

/// A server/bin crash at `time`: the victim's cost accrual stops and its
/// live items are re-injected as fresh arrivals (re-dispatch, no migration).
struct CrashFault {
  Time time = 0.0;
  CrashTarget target = CrashTarget::kFullest;

  friend bool operator==(const CrashFault&, const CrashFault&) = default;
};

/// Event-stream anomalies: malformed events injected into the feed. A
/// correct consumer must reject every one of them without corrupting state.
enum class AnomalyKind : std::uint8_t {
  kDuplicateStart = 0,     ///< arrival of an already-active session id
  kUnknownSessionEnd = 1,  ///< departure of an id that was never started
  kOutOfOrderTimestamp = 2,///< event timestamped before the stream's clock
  kNaNSize = 3,            ///< arrival with a NaN size
  kNegativeSize = 4,       ///< arrival with a negative size
};

inline constexpr std::size_t kAnomalyKindCount = 5;

[[nodiscard]] const char* to_string(AnomalyKind kind) noexcept;

struct AnomalyFault {
  Time time = 0.0;
  AnomalyKind kind = AnomalyKind::kDuplicateStart;

  friend bool operator==(const AnomalyFault&, const AnomalyFault&) = default;
};

/// A reproducible fault schedule. Identical (plan, instance, algorithm)
/// triples replay bit-identically; `seed` drives every in-plan random
/// choice (kRandom victims, anomaly payloads).
///
/// Ordering contract: a fault at time t fires after *every* instance event
/// with time <= t (departures and arrivals at t included), so a crash
/// scheduled at an arrival's timestamp sees the just-placed item. Anomalies
/// fire before crashes scheduled at the same instant; within one kind,
/// vector order is preserved.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<CrashFault> crashes;      ///< non-decreasing in time
  std::vector<AnomalyFault> anomalies;  ///< non-decreasing in time

  [[nodiscard]] bool empty() const noexcept {
    return crashes.empty() && anomalies.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return crashes.size() + anomalies.size();
  }

  /// Throws PreconditionError unless times are finite and non-decreasing.
  void validate() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace dbp
