// Piecewise-constant integer-valued functions of time.
//
// The number of open bins n(t) is such a function; the total cost of a
// packing is `C * integral(n)` (paper Section 3.1), and `span(R)` is the
// measure of { t : n(t) > 0 } under an always-feasible packing.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/types.hpp"

namespace dbp {

/// An integer-valued step function assembled from +/- deltas at time points.
/// The function is 0 before the first breakpoint and after the last one
/// returns to whatever the accumulated deltas give (0 for balanced usage).
///
/// Build phase: `add_delta` in any order, then `finalize()` (idempotent);
/// query methods require a finalized object and throw otherwise.
class StepFunction {
 public:
  StepFunction() = default;

  /// Records that the function jumps by `delta` at time `t`.
  void add_delta(Time t, std::int64_t delta);

  /// Adds +1 over [begin, end): the indicator of one open bin / one active
  /// item. Empty intervals are ignored.
  void add_interval(TimeInterval interval);

  /// Sorts and coalesces breakpoints. Throws InvariantError when any prefix
  /// value would be negative (more departures than arrivals).
  void finalize();

  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  /// f(t). O(log n).
  [[nodiscard]] std::int64_t value_at(Time t) const;

  /// Maximum value attained (0 for the empty function).
  [[nodiscard]] std::int64_t max_value() const;

  /// Integral of f over (-inf, +inf); the function must have bounded support
  /// (value 0 after the last breakpoint), otherwise throws.
  [[nodiscard]] double integral() const;

  /// Integral of g(f(t)) dt over the support [first breakpoint, last
  /// breakpoint). `g(0)` is not charged outside the support.
  [[nodiscard]] double integral_of(const std::function<double(std::int64_t)>& g) const;

  /// Measure of { t : f(t) > 0 }.
  [[nodiscard]] double measure_positive() const;

  /// The breakpoints as (time, value-from-here) pairs, strictly increasing
  /// in time, consecutive values distinct.
  struct Breakpoint {
    Time time;
    std::int64_t value;
    friend bool operator==(const Breakpoint&, const Breakpoint&) = default;
  };
  [[nodiscard]] const std::vector<Breakpoint>& breakpoints() const;

 private:
  void require_finalized() const;

  std::vector<std::pair<Time, std::int64_t>> deltas_;
  std::vector<Breakpoint> breakpoints_;
  bool finalized_ = false;
};

}  // namespace dbp
