#include "core/metrics.hpp"

#include <algorithm>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"

namespace dbp {

IntervalSet interval_union_of(std::span<const Item> items) {
  std::vector<TimeInterval> intervals;
  intervals.reserve(items.size());
  for (const auto& item : items) intervals.push_back(item.interval());
  return IntervalSet(std::move(intervals));
}

Time span_of(std::span<const Item> items) {
  return interval_union_of(items).total_length();
}

double total_demand_of(std::span<const Item> items) {
  CompensatedSum sum;
  for (const auto& item : items) sum.add(item.resource_demand());
  return sum.value();
}

InstanceMetrics compute_metrics(std::span<const Item> items) {
  DBP_REQUIRE(!items.empty(), "metrics of an empty item list");
  InstanceMetrics m;
  m.item_count = items.size();
  m.min_interval_length = items.front().interval_length();
  m.max_interval_length = m.min_interval_length;
  m.min_size = items.front().size;
  m.max_size = m.min_size;
  Time begin = items.front().arrival;
  Time end = items.front().departure;
  CompensatedSum demand;
  for (const auto& item : items) {
    const Time len = item.interval_length();
    m.min_interval_length = std::min(m.min_interval_length, len);
    m.max_interval_length = std::max(m.max_interval_length, len);
    m.min_size = std::min(m.min_size, item.size);
    m.max_size = std::max(m.max_size, item.size);
    begin = std::min(begin, item.arrival);
    end = std::max(end, item.departure);
    demand.add(item.resource_demand());
  }
  m.mu = m.max_interval_length / m.min_interval_length;
  m.total_demand = demand.value();
  m.span = span_of(items);
  m.packing_period = {begin, end};
  return m;
}

CostBounds compute_cost_bounds(std::span<const Item> items, const CostModel& model) {
  model.validate();
  CostBounds bounds;
  if (items.empty()) return bounds;
  CompensatedSum demand;
  CompensatedSum lengths;
  for (const auto& item : items) {
    demand.add(item.resource_demand());
    lengths.add(item.interval_length());
  }
  bounds.demand_lower = demand.value() * model.cost_rate / model.bin_capacity;
  bounds.span_lower = span_of(items) * model.cost_rate;
  bounds.one_per_item_upper = lengths.value() * model.cost_rate;
  return bounds;
}

}  // namespace dbp
