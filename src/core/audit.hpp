// Compile-time invariant audits (the DBP_AUDIT build option).
//
// The paper's claims are exact inequalities, so silent state corruption in
// the packers would falsify bound checks rather than crash. Audit builds
// (cmake -DDBP_AUDIT=ON, and the sanitizer CI legs) compile deep structural
// assertions into BinManager, the Any-Fit/size-classed/adaptive-MFF packers
// and the OPT_total sweep: per-bin level == sum of resident sizes, level <=
// W, open-bin count == intrusive-list census, First Fit scan-order
// monotonicity, RLE snapshot multiset == dense bookkeeping.
//
// Audits are strictly additive: they read state and throw InvariantError on
// violation, never mutate. Default builds compile them out entirely so the
// packer event loop stays allocation- and branch-free.
#pragma once

#include "core/error.hpp"

#if defined(DBP_AUDIT)
#define DBP_AUDIT_ENABLED 1
/// Structural invariant check, compiled only into DBP_AUDIT builds.
#define DBP_AUDIT_CHECK(expr, msg) DBP_CHECK(expr, msg)
/// Declarations/statements that exist only in audit builds.
#define DBP_AUDIT_ONLY(...) __VA_ARGS__
#else
#define DBP_AUDIT_ENABLED 0
#define DBP_AUDIT_CHECK(expr, msg) \
  do {                             \
  } while (false)
#define DBP_AUDIT_ONLY(...)
#endif

namespace dbp {

/// True when invariant audits are compiled into this build.
[[nodiscard]] constexpr bool audit_enabled() noexcept {
  return DBP_AUDIT_ENABLED != 0;
}

}  // namespace dbp
