// Error-handling helpers shared across the library.
//
// The library reports precondition violations by throwing exceptions derived
// from std::logic_error / std::runtime_error (C++ Core Guidelines E.2/E.3:
// use exceptions for error handling only, design around invariants).
#pragma once

#include <stdexcept>
#include <string>

namespace dbp {

/// Thrown when a caller violates a documented precondition.
class PreconditionError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is found broken (a library bug or
/// memory corruption, never a caller error).
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an operating-system I/O operation fails (unwritable path,
/// short write, failed flush). Environmental, not a caller or library bug.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when persisted bytes fail validation (CRC mismatch, truncated
/// framing, version skew). Always a *detected* condition: durability readers
/// raise this instead of ever deserializing corrupt state.
class CorruptionError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const std::string& msg) {
  throw PreconditionError(std::string("precondition failed: ") + expr +
                          (msg.empty() ? "" : ": " + msg));
}

[[noreturn]] inline void throw_invariant(const char* expr, const std::string& msg) {
  throw InvariantError(std::string("invariant violated: ") + expr +
                       (msg.empty() ? "" : ": " + msg));
}

}  // namespace detail
}  // namespace dbp

/// Validate a documented precondition on a public API entry point.
#define DBP_REQUIRE(expr, msg)                              \
  do {                                                      \
    if (!(expr)) ::dbp::detail::throw_precondition(#expr, (msg)); \
  } while (false)

/// Validate an internal invariant. Kept on in all build types: the library
/// is a research artifact and silent corruption is worse than the check cost.
#define DBP_CHECK(expr, msg)                             \
  do {                                                   \
    if (!(expr)) ::dbp::detail::throw_invariant(#expr, (msg)); \
  } while (false)
