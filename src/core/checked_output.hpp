// Checked file-output helpers for everything the CLI tools write.
//
// std::ofstream reports failure through stream state, which is easy to
// ignore: a full disk or a vanished directory produces a partial (or empty)
// file and a successful-looking exit. These helpers turn both failure points
// into typed IoError throws — open failures immediately, write failures at
// the mandatory close_output_file() flush — so every tool exits non-zero
// instead of silently shipping a damaged report.
#pragma once

#include <fstream>
#include <string>

#include "core/error.hpp"

namespace dbp {

/// Opens `path` for writing (truncating); throws IoError when the stream
/// cannot open (missing directory, permissions, ...).
[[nodiscard]] inline std::ofstream open_output_file(const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    throw IoError("cannot open output file for writing: " + path);
  }
  return out;
}

/// Flushes `out` and throws IoError if any write into it failed (including
/// earlier, silently-latched failures). Every open_output_file() stream must
/// pass through here before success is reported.
inline void close_output_file(std::ofstream& out, const std::string& path) {
  out.flush();
  if (!out.good()) {
    throw IoError("write failed for output file: " + path);
  }
  out.close();
  if (out.fail()) {
    throw IoError("close failed for output file: " + path);
  }
}

}  // namespace dbp
