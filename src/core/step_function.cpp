#include "core/step_function.hpp"

#include <algorithm>
#include <cmath>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"

namespace dbp {

void StepFunction::add_delta(Time t, std::int64_t delta) {
  DBP_REQUIRE(std::isfinite(t), "breakpoint time must be finite");
  if (delta == 0) return;
  deltas_.emplace_back(t, delta);
  finalized_ = false;
  breakpoints_.clear();
}

void StepFunction::add_interval(TimeInterval interval) {
  if (interval.empty()) return;
  add_delta(interval.begin, +1);
  add_delta(interval.end, -1);
}

void StepFunction::finalize() {
  if (finalized_) return;
  std::sort(deltas_.begin(), deltas_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  breakpoints_.clear();
  std::int64_t value = 0;
  std::size_t i = 0;
  while (i < deltas_.size()) {
    const Time t = deltas_[i].first;
    std::int64_t jump = 0;
    for (; i < deltas_.size() && deltas_[i].first == t; ++i) jump += deltas_[i].second;
    if (jump == 0) continue;
    value += jump;
    DBP_CHECK(value >= 0, "step function value went negative");
    breakpoints_.push_back({t, value});
  }
  finalized_ = true;
}

void StepFunction::require_finalized() const {
  DBP_REQUIRE(finalized_, "StepFunction must be finalized before queries");
}

std::int64_t StepFunction::value_at(Time t) const {
  require_finalized();
  auto it = std::upper_bound(
      breakpoints_.begin(), breakpoints_.end(), t,
      [](Time value, const Breakpoint& bp) { return value < bp.time; });
  if (it == breakpoints_.begin()) return 0;
  return std::prev(it)->value;
}

std::int64_t StepFunction::max_value() const {
  require_finalized();
  std::int64_t best = 0;
  for (const auto& bp : breakpoints_) best = std::max(best, bp.value);
  return best;
}

double StepFunction::integral() const {
  return integral_of([](std::int64_t v) { return static_cast<double>(v); });
}

double StepFunction::integral_of(const std::function<double(std::int64_t)>& g) const {
  require_finalized();
  if (breakpoints_.empty()) return 0.0;
  DBP_REQUIRE(breakpoints_.back().value == 0 || g(breakpoints_.back().value) == 0.0,
              "integral of a step function with unbounded non-zero tail");
  CompensatedSum sum;
  for (std::size_t i = 0; i + 1 < breakpoints_.size(); ++i) {
    const double width = breakpoints_[i + 1].time - breakpoints_[i].time;
    const double height = g(breakpoints_[i].value);
    if (height != 0.0) sum.add(height * width);
  }
  return sum.value();
}

double StepFunction::measure_positive() const {
  return integral_of([](std::int64_t v) { return v > 0 ? 1.0 : 0.0; });
}

const std::vector<StepFunction::Breakpoint>& StepFunction::breakpoints() const {
  require_finalized();
  return breakpoints_;
}

}  // namespace dbp
