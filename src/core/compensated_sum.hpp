// Neumaier compensated summation.
//
// Bin levels are maintained incrementally across up to millions of item
// arrivals/departures; naive accumulation drifts by ~n ulps which is enough
// to flip fit decisions near capacity. Compensated summation keeps the error
// at O(1) ulps independent of the number of operations.
#pragma once

#include <cmath>

namespace dbp {

/// Running sum with Neumaier (improved Kahan) error compensation.
/// Supports subtraction via add(-x). `reset()` restores an exact zero, which
/// bin managers call whenever a bin empties so levels cannot drift across
/// bin reuse.
class CompensatedSum {
 public:
  constexpr CompensatedSum() = default;
  explicit constexpr CompensatedSum(double initial) : sum_(initial) {}

  void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      compensation_ += (sum_ - t) + x;
    } else {
      compensation_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  void subtract(double x) noexcept { add(-x); }

  void reset(double value = 0.0) noexcept {
    sum_ = value;
    compensation_ = 0.0;
  }

  [[nodiscard]] double value() const noexcept { return sum_ + compensation_; }

  /// Raw internal terms for bit-exact serialization. A checkpoint must
  /// persist (sum, compensation) separately — re-seeding from value() would
  /// fold the compensation away and diverge from an uninterrupted run on the
  /// very next add().
  [[nodiscard]] double raw_sum() const noexcept { return sum_; }
  [[nodiscard]] double raw_compensation() const noexcept { return compensation_; }

  /// Rebuilds the exact internal state captured by raw_sum()/raw_compensation().
  [[nodiscard]] static CompensatedSum from_raw(double sum,
                                               double compensation) noexcept {
    CompensatedSum result;
    result.sum_ = sum;
    result.compensation_ = compensation;
    return result;
  }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace dbp
