#include "core/instance.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace dbp {

ItemId Instance::add(Time arrival, Time departure, double size) {
  Item item{static_cast<ItemId>(items_.size()), arrival, departure, size};
  item.validate();
  items_.push_back(item);
  return item.id;
}

Instance Instance::from_items(std::vector<Item> items) {
  Instance instance;
  instance.items_ = std::move(items);
  for (std::size_t i = 0; i < instance.items_.size(); ++i) {
    instance.items_[i].id = static_cast<ItemId>(i);
    instance.items_[i].validate();
  }
  return instance;
}

const Item& Instance::item(ItemId id) const {
  DBP_REQUIRE(id < items_.size(), "item id out of range");
  return items_[static_cast<std::size_t>(id)];
}

std::vector<ItemId> Instance::arrival_order() const {
  std::vector<ItemId> order(items_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<ItemId>(i);
  std::stable_sort(order.begin(), order.end(), [this](ItemId a, ItemId b) {
    return items_[a].arrival < items_[b].arrival ||
           (items_[a].arrival == items_[b].arrival && a < b);
  });
  return order;
}

TimeInterval Instance::packing_period() const {
  DBP_REQUIRE(!items_.empty(), "packing period of an empty instance");
  Time lo = items_.front().arrival;
  Time hi = items_.front().departure;
  for (const auto& item : items_) {
    lo = std::min(lo, item.arrival);
    hi = std::max(hi, item.departure);
  }
  return {lo, hi};
}

void Instance::append(const Instance& other) {
  items_.reserve(items_.size() + other.items_.size());
  for (const auto& item : other.items_) {
    add(item.arrival, item.departure, item.size);
  }
}

}  // namespace dbp
