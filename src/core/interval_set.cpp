#include "core/interval_set.hpp"

#include <algorithm>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"

namespace dbp {

IntervalSet::IntervalSet(std::vector<TimeInterval> intervals)
    : pieces_(std::move(intervals)) {
  normalize();
}

void IntervalSet::normalize() {
  std::erase_if(pieces_, [](const TimeInterval& iv) { return iv.empty(); });
  std::sort(pieces_.begin(), pieces_.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.begin < b.begin || (a.begin == b.begin && a.end < b.end);
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    if (out > 0 && pieces_[i].begin <= pieces_[out - 1].end) {
      pieces_[out - 1].end = std::max(pieces_[out - 1].end, pieces_[i].end);
    } else {
      pieces_[out++] = pieces_[i];
    }
  }
  pieces_.resize(out);
}

void IntervalSet::insert(TimeInterval interval) {
  if (interval.empty()) return;
  pieces_.push_back(interval);
  normalize();
}

Time IntervalSet::total_length() const noexcept {
  CompensatedSum sum;
  for (const auto& iv : pieces_) sum.add(iv.length());
  return sum.value();
}

bool IntervalSet::contains(Time t) const noexcept {
  // First piece whose end is past t; it is the only candidate.
  auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), t,
      [](Time value, const TimeInterval& iv) { return value < iv.end; });
  return it != pieces_.end() && it->contains(t);
}

Time IntervalSet::min() const {
  DBP_REQUIRE(!pieces_.empty(), "min() of an empty IntervalSet");
  return pieces_.front().begin;
}

Time IntervalSet::max() const {
  DBP_REQUIRE(!pieces_.empty(), "max() of an empty IntervalSet");
  return pieces_.back().end;
}

Time IntervalSet::length_within(TimeInterval window) const noexcept {
  if (window.empty()) return 0.0;
  CompensatedSum sum;
  for (const auto& iv : pieces_) {
    const Time lo = std::max(iv.begin, window.begin);
    const Time hi = std::min(iv.end, window.end);
    if (hi > lo) sum.add(hi - lo);
  }
  return sum.value();
}

}  // namespace dbp
