// printf-style std::string formatting (GCC 12's libstdc++ lacks <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace dbp {

/// snprintf into a std::string. Formats are compile-time checked by the
/// attribute; output is never truncated.
[[nodiscard]] __attribute__((format(printf, 1, 2))) inline std::string strfmt(
    const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result;
  if (needed > 0) {
    result.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return result;
}

}  // namespace dbp
