// A MinTotal DBP problem instance: the item list R.
#pragma once

#include <span>
#include <vector>

#include "core/item.hpp"
#include "core/types.hpp"

namespace dbp {

/// An immutable-after-build list of items with dense ids (`items()[i].id == i`).
///
/// The Instance is the *offline* description of a workload (arrivals,
/// departures and sizes all known); the simulator reveals it to online
/// packers one event at a time.
class Instance {
 public:
  Instance() = default;

  /// Adds an item, assigning the next dense id. Throws PreconditionError for
  /// invalid items (d <= a, non-positive size, non-finite fields).
  ItemId add(Time arrival, Time departure, double size);

  /// Builds an instance from pre-existing items. Ids are reassigned densely
  /// in the given order; every item is validated.
  static Instance from_items(std::vector<Item> items);

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::span<const Item> items() const noexcept { return items_; }
  [[nodiscard]] const Item& item(ItemId id) const;

  /// Item ids ordered by (arrival, id). The id tiebreak makes simultaneous
  /// arrivals deterministic: the generator's emission order is the order
  /// the online algorithm sees.
  [[nodiscard]] std::vector<ItemId> arrival_order() const;

  /// [min arrival, max departure] — the packing period. Requires !empty().
  [[nodiscard]] TimeInterval packing_period() const;

  /// Reserves storage for `n` items.
  void reserve(std::size_t n) { items_.reserve(n); }

  /// Concatenates another instance's items after this one (ids reassigned).
  void append(const Instance& other);

 private:
  std::vector<Item> items_;
};

}  // namespace dbp
