// Discrete events of a dynamic bin packing run — the pure data half.
//
// The Event record lives in core (not sim) because the hot replay loop is a
// Packer method (Packer::replay devirtualizes it for the built-in
// strategies); building the sorted sequence from an Instance stays in
// sim/event.hpp.
#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace dbp {

/// What happens at an event point. Departures order before arrivals at equal
/// times: items occupy [a, d), so capacity frees before new placements
/// (DESIGN.md "Semantics"; the paper's constructions in Theorems 1-2 state
/// departures happen "before" subsequent arrivals).
enum class EventKind : std::uint8_t { kDeparture = 0, kArrival = 1 };

struct Event {
  Time time = 0.0;
  EventKind kind = EventKind::kArrival;
  ItemId item = 0;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Strict weak order: by time, then departures before arrivals, then by item
/// id (generator emission order breaks simultaneous-arrival ties). In fact a
/// strict *total* order — (time, kind, item) is unique per event — so any
/// correct sorting procedure produces the same sequence.
[[nodiscard]] inline bool event_before(const Event& a, const Event& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.item < b.item;
}

}  // namespace dbp
