// Monotonic (bump) arena allocation for hot-path scratch storage.
//
// The packer event loop and the OPT_total evaluate phase are O(1)-ish per
// step algorithmically, yet a general-purpose heap charges them node
// allocations, size-class locks and pointer chasing on every operation. A
// monotonic arena removes all of that: allocation is a pointer bump inside a
// chunk, deallocation does not exist, and reuse happens wholesale through
// reset(). The design follows the constant-cost discipline of o1heap-style
// allocators (see SNIPPETS.md) in the special case this library needs —
// scratch memory whose lifetime ends at a well-defined reset point.
//
// Rules of use (docs/performance.md "Memory architecture"):
//   * Addresses returned by allocate() are stable until reset(): chunks are
//     never reallocated or moved, so spans handed out earlier stay valid as
//     later allocations happen. Indices into those spans are therefore
//     stable too.
//   * reset() invalidates every span at once but *keeps* the chunks, so a
//     steady-state consumer (one reset per snapshot/evaluation) reaches a
//     high-water mark after the first few iterations and never touches the
//     heap again. That is the property the zero-allocation regression test
//     asserts via the counters below.
//   * rewind(marker()) releases only the allocations made after the marker —
//     used by dedup paths that provisionally copy a key into the arena and
//     drop it again when the key turns out to be a duplicate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "core/error.hpp"

namespace dbp {

/// Chunked bump allocator. Not thread-safe: one arena per worker.
class MonotonicArena {
 public:
  /// `first_chunk_bytes` seeds the geometric chunk schedule; subsequent
  /// chunks double so the total chunk count stays logarithmic in the
  /// high-water footprint.
  explicit MonotonicArena(std::size_t first_chunk_bytes = kDefaultFirstChunk)
      : next_chunk_bytes_(first_chunk_bytes == 0 ? kDefaultFirstChunk
                                                 : first_chunk_bytes) {}

  static constexpr std::size_t kDefaultFirstChunk = std::size_t{64} * 1024;

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;
  MonotonicArena(MonotonicArena&&) = default;
  MonotonicArena& operator=(MonotonicArena&&) = default;

  /// Raw allocation; `align` must be a power of two. Never returns null.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    DBP_REQUIRE(align != 0 && (align & (align - 1)) == 0,
                "arena alignment must be a power of two");
    std::size_t offset = (used_ + align - 1) & ~(align - 1);
    if (chunk_ >= chunks_.size() || offset + bytes > chunks_[chunk_].size) {
      advance_chunk(bytes + align);
      offset = (used_ + align - 1) & ~(align - 1);
    }
    std::byte* result = chunks_[chunk_].data.get() + offset;
    used_ = offset + bytes;
    ++allocation_count_;
    return result;
  }

  /// A typed uninitialized array. T must be trivially destructible — reset()
  /// drops storage without running destructors.
  template <typename T>
  [[nodiscard]] std::span<T> allocate_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena storage is reclaimed without destructor calls");
    if (count == 0) return {};
    T* data = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    return {data, count};
  }

  /// Releases every allocation while keeping the chunks, so the next cycle
  /// runs entirely inside already-owned memory.
  void reset() noexcept {
    chunk_ = 0;
    used_ = 0;
  }

  /// Position of the bump pointer; pass to rewind() to drop everything
  /// allocated after this point (chunks are kept). Only positions obtained
  /// from the *current* cycle (since the last reset) are valid.
  struct Marker {
    std::size_t chunk = 0;
    std::size_t used = 0;
  };

  [[nodiscard]] Marker marker() const noexcept { return {chunk_, used_}; }

  void rewind(Marker m) noexcept {
    chunk_ = m.chunk;
    used_ = m.used;
  }

  /// --- Counters (the test hook) -------------------------------------
  /// Allocations bumped since construction; monotone, not reset by reset().
  [[nodiscard]] std::uint64_t allocation_count() const noexcept {
    return allocation_count_;
  }
  /// Heap chunks ever acquired. A steady-state consumer's chunk_count()
  /// stops growing after warm-up; the zero-allocation test pins that.
  [[nodiscard]] std::size_t chunk_count() const noexcept { return chunks_.size(); }
  /// Total bytes owned across all chunks (the high-water footprint).
  [[nodiscard]] std::size_t owned_bytes() const noexcept {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// Moves to the next chunk that can hold `needed` bytes, acquiring a new
  /// one (doubling schedule) when no owned chunk is large enough.
  void advance_chunk(std::size_t needed) {
    const std::size_t start = chunks_.empty() ? 0 : chunk_ + 1;
    for (std::size_t c = start; c < chunks_.size(); ++c) {
      if (chunks_[c].size >= needed) {
        chunk_ = c;
        used_ = 0;
        return;
      }
    }
    while (next_chunk_bytes_ < needed) next_chunk_bytes_ *= 2;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(next_chunk_bytes_),
                            next_chunk_bytes_});
    next_chunk_bytes_ *= 2;
    chunk_ = chunks_.size() - 1;
    used_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;           // index of the chunk being bumped
  std::size_t used_ = 0;            // bytes consumed in that chunk
  std::size_t next_chunk_bytes_;    // size of the next chunk to acquire
  std::uint64_t allocation_count_ = 0;
};

/// A fixed-capacity vector view over arena storage: push_back/insert/erase
/// with memmove semantics and a hard capacity ceiling, for hot loops whose
/// element count is bounded by a value known at reset time (e.g. "at most
/// one open bin per item"). Trivial element types only.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "ArenaVec moves elements with memmove");

 public:
  ArenaVec() = default;
  ArenaVec(MonotonicArena& arena, std::size_t capacity)
      : storage_(arena.allocate_array<T>(capacity)) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return storage_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T* begin() noexcept { return storage_.data(); }
  [[nodiscard]] T* end() noexcept { return storage_.data() + size_; }
  [[nodiscard]] const T* begin() const noexcept { return storage_.data(); }
  [[nodiscard]] const T* end() const noexcept { return storage_.data() + size_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return storage_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return storage_[i];
  }
  [[nodiscard]] T& back() noexcept { return storage_[size_ - 1]; }

  void clear() noexcept { size_ = 0; }

  void push_back(T value) {
    DBP_CHECK(size_ < storage_.size(), "ArenaVec capacity exceeded");
    storage_[size_++] = value;
  }

  void pop_back() noexcept { --size_; }

  /// Insert before `pos`, shifting the tail right.
  void insert(T* pos, T value) {
    DBP_CHECK(size_ < storage_.size(), "ArenaVec capacity exceeded");
    std::memmove(pos + 1, pos, static_cast<std::size_t>(end() - pos) * sizeof(T));
    *pos = value;
    ++size_;
  }

  /// Remove the element at `pos`, shifting the tail left.
  void erase(T* pos) {
    std::memmove(pos, pos + 1,
                 static_cast<std::size_t>(end() - pos - 1) * sizeof(T));
    --size_;
  }

 private:
  std::span<T> storage_;
  std::size_t size_ = 0;
};

}  // namespace dbp
