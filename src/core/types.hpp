// Fundamental vocabulary types for the MinTotal Dynamic Bin Packing library.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "core/error.hpp"

namespace dbp {

/// Continuous simulation time, matching the paper's continuous-time model.
using Time = double;

/// Identifies an item within one Instance. Dense, assigned by the Instance.
using ItemId = std::uint64_t;

/// Identifies a bin within one packing run. Assigned in opening order by the
/// bin manager, i.e. `BinId` order *is* the temporal opening order the paper
/// relies on for First Fit ("earliest opened bin").
using BinId = std::uint64_t;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Sentinel ids for dense, vector-indexed bookkeeping ("no bin" / "no item").
inline constexpr BinId kNoBin = std::numeric_limits<BinId>::max();
inline constexpr ItemId kNoItem = std::numeric_limits<ItemId>::max();

/// Parameters of the bin economy: every bin has the same capacity `W` and
/// accrues cost at rate `C` per unit time while open (paper Section 3.1).
struct CostModel {
  /// Bin capacity W. Item sizes must satisfy 0 < s(r) <= W.
  double bin_capacity = 1.0;
  /// Cost rate C per bin per unit of open time.
  double cost_rate = 1.0;
  /// Absolute tolerance used in "does this item fit" tests. Item sizes are
  /// doubles; e.g. 1000 items of size 1/1000 sum to 1 + O(ulp), and a fit
  /// test without slack would spuriously reject the packing the paper's
  /// constructions require. The tolerance is far below any meaningful size.
  double fit_tolerance = 1e-9;

  /// Throws PreconditionError unless the model is usable.
  void validate() const {
    DBP_REQUIRE(std::isfinite(bin_capacity) && bin_capacity > 0.0,
                "bin capacity must be positive and finite");
    DBP_REQUIRE(std::isfinite(cost_rate) && cost_rate > 0.0,
                "cost rate must be positive and finite");
    DBP_REQUIRE(std::isfinite(fit_tolerance) && fit_tolerance >= 0.0 &&
                    fit_tolerance < bin_capacity,
                "fit tolerance must be in [0, bin_capacity)");
  }

  /// True when an item of size `size` fits into residual capacity `residual`.
  [[nodiscard]] bool fits(double size, double residual) const noexcept {
    return size <= residual + fit_tolerance;
  }
};

/// A closed-open time interval [begin, end). Items occupy [a(r), d(r)): at a
/// time point where one item departs and another arrives, the capacity is
/// released before the arrival is placed (see DESIGN.md "Semantics").
struct TimeInterval {
  Time begin = 0.0;
  Time end = 0.0;

  [[nodiscard]] Time length() const noexcept { return end - begin; }
  [[nodiscard]] bool empty() const noexcept { return end <= begin; }
  [[nodiscard]] bool contains(Time t) const noexcept { return begin <= t && t < end; }
  /// True when the intervals share a set of positive measure.
  [[nodiscard]] bool overlaps(const TimeInterval& o) const noexcept {
    return begin < o.end && o.begin < end;
  }
  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

}  // namespace dbp
