// Union-of-intervals arithmetic, used for span(R) (paper Figure 1) and for
// the usage-period bookkeeping of the First Fit analysis (Section 4.3).
#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"

namespace dbp {

/// A normalized union of disjoint, sorted, non-empty closed-open intervals.
///
/// `span(R) = len(U_{r in R} I(r))` is `IntervalSet(intervals).total_length()`.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds the normalized union of arbitrary (possibly overlapping,
  /// unsorted, empty) intervals. Empty intervals are dropped; touching
  /// intervals ([0,1) and [1,2)) are merged.
  explicit IntervalSet(std::vector<TimeInterval> intervals);

  /// Adds one interval, re-normalizing. O(n) worst case; prefer the bulk
  /// constructor for large inputs.
  void insert(TimeInterval interval);

  /// Total measure of the union.
  [[nodiscard]] Time total_length() const noexcept;

  /// Number of disjoint runs.
  [[nodiscard]] std::size_t piece_count() const noexcept { return pieces_.size(); }

  [[nodiscard]] bool empty() const noexcept { return pieces_.empty(); }

  /// True when t lies in the union.
  [[nodiscard]] bool contains(Time t) const noexcept;

  /// Earliest covered point; requires !empty().
  [[nodiscard]] Time min() const;
  /// Supremum of covered points; requires !empty().
  [[nodiscard]] Time max() const;

  /// The disjoint sorted runs.
  [[nodiscard]] std::span<const TimeInterval> pieces() const noexcept {
    return pieces_;
  }

  /// Measure of the intersection with `window`.
  [[nodiscard]] Time length_within(TimeInterval window) const noexcept;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void normalize();
  std::vector<TimeInterval> pieces_;  // disjoint, sorted, non-empty
};

}  // namespace dbp
