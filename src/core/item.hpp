// The item model of the MinTotal DBP problem (paper Section 3.1).
#pragma once

#include <cmath>

#include "core/error.hpp"
#include "core/types.hpp"

namespace dbp {

/// An item r = (a(r), d(r), s(r)): it arrives at `arrival`, departs at
/// `departure` and occupies `size` units of bin capacity while active.
/// An item is active over the closed-open interval [arrival, departure).
struct Item {
  ItemId id = 0;
  Time arrival = 0.0;
  Time departure = 0.0;
  double size = 0.0;

  /// len(I(r)) = d(r) - a(r).
  [[nodiscard]] Time interval_length() const noexcept { return departure - arrival; }

  /// I(r) as a TimeInterval.
  [[nodiscard]] TimeInterval interval() const noexcept { return {arrival, departure}; }

  /// Resource demand u(r) = s(r) * len(I(r)).
  [[nodiscard]] double resource_demand() const noexcept {
    return size * interval_length();
  }

  /// True when the item is active at time t (t in [arrival, departure)).
  [[nodiscard]] bool active_at(Time t) const noexcept {
    return arrival <= t && t < departure;
  }

  /// Throws PreconditionError unless the item satisfies the paper's model
  /// assumptions: d(r) > a(r) and s(r) > 0, all values finite.
  void validate() const {
    DBP_REQUIRE(std::isfinite(arrival) && std::isfinite(departure),
                "item times must be finite");
    DBP_REQUIRE(departure > arrival, "item must have d(r) > a(r)");
    DBP_REQUIRE(std::isfinite(size) && size > 0.0, "item size must be positive");
  }

  friend bool operator==(const Item&, const Item&) = default;
};

/// The slice of an Item visible to an *online* packer at arrival time:
/// the departure time is deliberately absent (paper Section 1: "the items
/// must be assigned to bins as they arrive without any knowledge of their
/// departure times").
struct ArrivingItem {
  ItemId id = 0;
  Time arrival = 0.0;
  double size = 0.0;
};

}  // namespace dbp
