// Unix-domain-socket front-end for the sharded dispatch engine.
//
// A WireServer listens on one AF_UNIX stream socket and accepts any number
// of client connections, each served by its own thread. The first byte of
// a connection picks its framing — '{' selects line-JSON, anything else
// the CRC'd binary frames of wire_protocol.hpp — and both deserialize into
// the same WireRequest vocabulary before touching the engine.
//
// Determinism is preserved by construction: the wire layer only *produces*
// engine::SessionEvents through the same submit() path every in-process
// producer uses; it never applies events, never reorders a connection's
// stream (per-connection FIFO == per-producer FIFO), and never invents
// timestamps. Epoch ticks come either from explicit `epoch` requests or
// from the optional timer thread, which advances to the high-water mark of
// event times seen so far — wall time paces *when* an epoch is cut, but
// the epoch's logical time is always derived from the event stream, so a
// wire-fed run replays bit-identically (tests/net_differential_test.cpp).
//
// Fault containment: every malformed frame is a typed WireError answered
// on the offending connection only. Recoverable errors (unknown verb, bad
// field) keep the connection; errors that desynchronize the byte stream
// (bad magic/CRC/length, truncation) close it after one final error
// response. Other connections and the engine are never affected.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/wire_protocol.hpp"
#include "obs/obs.hpp"

namespace dbp::net {

struct WireServerConfig {
  /// Filesystem path of the AF_UNIX listening socket.
  std::string socket_path;
  /// Per-frame payload cap for the binary framing.
  std::uint32_t max_frame_payload_bytes = kMaxFramePayloadBytes;
  /// Per-line cap for the JSON framing.
  std::size_t max_json_line_bytes = std::size_t{1} << 16;
  /// Timer-thread epoch cadence in milliseconds; 0 disables the timer and
  /// leaves epochs entirely to explicit `epoch` requests.
  std::uint64_t epoch_cadence_ms = 0;
  int listen_backlog = 64;
  /// Remove a stale socket file before binding (a previous server that
  /// died without stop() leaves one behind).
  bool unlink_existing = true;

  /// Throws PreconditionError unless the configuration is usable.
  void validate() const;
};

/// Monotonic serving counters; snapshot via WireServer::stats(). The same
/// values are mirrored into obs counters ("net.frames_received", ...) when
/// a MetricsRegistry is attached.
struct WireServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t frames_received = 0;  ///< frames or JSON lines parsed
  std::uint64_t frames_rejected = 0;  ///< typed rejections (any WireError)
  std::uint64_t bytes_in = 0;
  std::uint64_t events_submitted = 0;
  std::uint64_t epochs_advanced = 0;  ///< explicit requests + timer ticks
  std::uint64_t timer_ticks = 0;
};

class WireServer {
 public:
  /// The engine must outlive the server. `tracer`/`metrics` (optional) are
  /// installed as the observability context of every serving thread, so
  /// engine work triggered by wire requests emits trace records exactly
  /// like a direct driver would.
  WireServer(engine::ShardedDispatchEngine& eng, WireServerConfig config,
             obs::RunTracer* tracer = nullptr,
             obs::MetricsRegistry* metrics = nullptr);
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds, listens and starts the accept (and, if configured, timer)
  /// thread. Throws IoError when the socket cannot be created.
  void start();

  /// Graceful shutdown: stops accepting, wakes and joins every connection
  /// and the timer, then drains the engine's rings so no accepted event is
  /// lost. Idempotent; also runs from the destructor.
  void stop();

  /// Blocks until a `shutdown` request arrives (or stop() is called from
  /// another thread). Returns whether a shutdown request was the trigger.
  bool wait_until_stopped();

  /// Wakes wait_until_stopped() without tearing anything down — the signal
  /// half of a SIGINT handler; the caller then runs stop().
  void request_stop();

  /// Bounded wait: true when a stop was requested within `timeout_ms`.
  /// Lets a serving loop interleave signal-flag polling with blocking on
  /// the shutdown verb (tools/dbp_serve).
  [[nodiscard]] bool poll_stop_requested(std::uint64_t timeout_ms);

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  [[nodiscard]] WireServerStats stats() const noexcept;

  /// High-water mark of finite event/epoch times seen on the wire; the
  /// timer thread cuts its epochs here.
  [[nodiscard]] double watermark_minutes() const noexcept {
    return watermark_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const WireServerConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Connection;

  void accept_loop();
  void timer_loop();
  void serve_connection(Connection& conn);
  void serve_binary(Connection& conn);
  void serve_json(Connection& conn);

  /// Dispatches one decoded request. Returns true when the connection
  /// should close (shutdown verb). Success responses go out for query and
  /// shutdown only; submit/epoch are fire-and-forget unless rejected.
  bool handle_request(Connection& conn, std::uint64_t seq,
                      const WireRequest& request);
  void send_response(Connection& conn, const WireResponse& response);
  void reject(Connection& conn, std::uint64_t seq, WireError error,
              std::string detail);

  /// Advances the engine epoch under epoch_mutex_, enforcing that wire
  /// epoch times never regress (the engine would throw; the wire rejects
  /// first so the connection survives). Returns a rejection detail or
  /// empty on success.
  [[nodiscard]] std::string advance_epoch_checked(double t);

  void raise_watermark(double t) noexcept;
  [[nodiscard]] std::string build_query_body(double horizon);
  void reap_finished_connections();

  engine::ShardedDispatchEngine& engine_;
  WireServerConfig config_;
  obs::RunTracer* tracer_;
  obs::MetricsRegistry* metrics_;

  // Cached "net.*" obs counters (null when no registry is attached).
  obs::Counter* c_connections_ = nullptr;
  obs::Counter* c_frames_received_ = nullptr;
  obs::Counter* c_frames_rejected_ = nullptr;
  obs::Counter* c_bytes_in_ = nullptr;
  obs::Counter* c_events_ = nullptr;
  obs::Counter* c_epochs_ = nullptr;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::thread timer_thread_;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Serializes epoch advancement across connections and the timer;
  /// tracks the last epoch time actually sent to the engine.
  std::mutex epoch_mutex_;
  double last_epoch_sent_ = 0.0;
  bool any_epoch_sent_ = false;

  std::atomic<double> watermark_{0.0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool shutdown_verb_seen_ = false;

  // Serving counters (relaxed; exact totals read after stop()).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_open_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> frames_rejected_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> events_submitted_{0};
  std::atomic<std::uint64_t> epochs_advanced_{0};
  std::atomic<std::uint64_t> timer_ticks_{0};
};

}  // namespace dbp::net
