#include "net/wire_server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "core/crc32.hpp"
#include "core/error.hpp"
#include "core/strfmt.hpp"
#include "net/fd_io.hpp"

// DBP_LINT_ALLOW(symbol-wall-clock): the epoch timer thread paces its ticks
// with condition_variable::wait_for. Wall time decides only *when* an epoch
// is cut; the epoch's logical time is always max(event watermark, last
// epoch), so no clock reading ever reaches an engine result.

namespace dbp::net {

using detail::FdGuard;
using detail::read_exact;
using detail::write_all;

void WireServerConfig::validate() const {
  DBP_REQUIRE(!socket_path.empty(), "WireServerConfig.socket_path is empty");
  DBP_REQUIRE(max_frame_payload_bytes > 0 &&
                  max_frame_payload_bytes <= kMaxFramePayloadBytes,
              "WireServerConfig.max_frame_payload_bytes must be in (0, " +
                  std::to_string(kMaxFramePayloadBytes) + "]");
  DBP_REQUIRE(max_json_line_bytes > 0,
              "WireServerConfig.max_json_line_bytes must be positive");
  DBP_REQUIRE(listen_backlog > 0,
              "WireServerConfig.listen_backlog must be positive");
}

struct WireServer::Connection {
  FdGuard fd;
  std::thread thread;
  std::atomic<bool> done{false};
  bool json_mode = false;
};

namespace {

void bump(obs::Counter* counter, std::uint64_t n = 1) {
  if (counter != nullptr) counter->add(n);
}

}  // namespace

WireServer::WireServer(engine::ShardedDispatchEngine& eng,
                       WireServerConfig config, obs::RunTracer* tracer,
                       obs::MetricsRegistry* metrics)
    : engine_(eng),
      config_(std::move(config)),
      tracer_(tracer),
      metrics_(metrics) {
  config_.validate();
  if (metrics_ != nullptr) {
    c_connections_ = &metrics_->counter("net.connections");
    c_frames_received_ = &metrics_->counter("net.frames_received");
    c_frames_rejected_ = &metrics_->counter("net.frames_rejected");
    c_bytes_in_ = &metrics_->counter("net.bytes_in");
    c_events_ = &metrics_->counter("net.events_submitted");
    c_epochs_ = &metrics_->counter("net.epochs");
  }
}

WireServer::~WireServer() { stop(); }

void WireServer::start() {
  DBP_REQUIRE(!running_.load() && !stopping_.load(),
              "WireServer cannot be restarted; construct a fresh one");
  const sockaddr_un address = detail::make_unix_address(config_.socket_path);
  FdGuard sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw IoError("cannot create unix socket: " +
                  std::string(std::strerror(errno)));
  }
  if (config_.unlink_existing) ::unlink(config_.socket_path.c_str());
  if (::bind(sock.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw IoError("cannot bind '" + config_.socket_path +
                  "': " + std::string(std::strerror(errno)));
  }
  if (::listen(sock.get(), config_.listen_backlog) != 0) {
    throw IoError("cannot listen on '" + config_.socket_path +
                  "': " + std::string(std::strerror(errno)));
  }
  listen_fd_ = sock.release();
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&WireServer::accept_loop, this);
  if (config_.epoch_cadence_ms > 0) {
    timer_thread_ = std::thread(&WireServer::timer_loop, this);
  }
}

void WireServer::stop() {
  stopping_.store(true, std::memory_order_release);
  request_stop();
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (timer_thread_.joinable()) timer_thread_.join();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    // Wake every blocked read with EOF, then join; fds close in the joins'
    // wake order via each connection's own epilogue.
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (conn->fd.valid()) ::shutdown(conn->fd.get(), SHUT_RDWR);
    }
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    connections_.clear();
  }
  const bool was_running = running_.exchange(false);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(config_.socket_path.c_str());
  }
  // Graceful drain: every event accepted onto a ring is applied before the
  // server reports stopped — shutdown never loses acknowledged work.
  if (was_running) {
    obs::ObsScope scope(tracer_, metrics_);
    engine_.drain();
  }
}

bool WireServer::wait_until_stopped() {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
  return shutdown_verb_seen_;
}

bool WireServer::poll_stop_requested(std::uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(stop_mutex_);
  stop_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                    [this] { return stop_requested_; });
  return stop_requested_;
}

void WireServer::request_stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mutex_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

WireServerStats WireServer::stats() const noexcept {
  WireServerStats out;
  out.connections_accepted = connections_accepted_.load();
  out.connections_open = connections_open_.load();
  out.frames_received = frames_received_.load();
  out.frames_rejected = frames_rejected_.load();
  out.bytes_in = bytes_in_.load();
  out.events_submitted = events_submitted_.load();
  out.epochs_advanced = epochs_advanced_.load();
  out.timer_ticks = timer_ticks_.load();
  return out;
}

void WireServer::raise_watermark(double t) noexcept {
  if (!std::isfinite(t)) return;  // a NaN event time must not poison ticks
  double current = watermark_.load(std::memory_order_relaxed);
  while (t > current && !watermark_.compare_exchange_weak(
                            current, t, std::memory_order_relaxed)) {
  }
}

void WireServer::accept_loop() {
  obs::ObsScope scope(tracer_, metrics_);
  for (;;) {
    reap_finished_connections();
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket shut down by stop()
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = FdGuard(fd);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    bump(c_connections_);
    Connection* raw = conn.get();
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(conn));
    raw->thread = std::thread([this, raw] { serve_connection(*raw); });
  }
}

void WireServer::reap_finished_connections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) return false;
    if (conn->thread.joinable()) conn->thread.join();
    return true;
  });
}

void WireServer::timer_loop() {
  obs::ObsScope scope(tracer_, metrics_);
  const auto cadence = std::chrono::milliseconds(config_.epoch_cadence_ms);
  std::unique_lock<std::mutex> lock(stop_mutex_);
  while (!stopping_.load(std::memory_order_acquire)) {
    stop_cv_.wait_for(lock, cadence);
    if (stopping_.load(std::memory_order_acquire)) break;
    lock.unlock();
    // Tick at the event-time high-water mark. With no new events since the
    // last tick this is a zero-length epoch segment, which the engine
    // integrates as exactly zero dollars and zero segments
    // (EngineTest.ZeroLengthEpochSegmentsAreFree) — an idle server's timer
    // never distorts the OPT bounds.
    const std::string problem =
        advance_epoch_checked(watermark_.load(std::memory_order_relaxed));
    if (problem.empty()) {
      timer_ticks_.fetch_add(1, std::memory_order_relaxed);
    }
    lock.lock();
  }
}

std::string WireServer::advance_epoch_checked(double t) {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  if (!std::isfinite(t)) {
    // The engine's own monotonicity check would miss a NaN *first* epoch;
    // the wire screens non-finite times before they can poison state.
    return strfmt("epoch time %.17g is not finite", t);
  }
  if (any_epoch_sent_ && t < last_epoch_sent_) {
    return strfmt("epoch time %.17g regresses below the last epoch %.17g", t,
                  last_epoch_sent_);
  }
  try {
    engine_.advance_epoch(t);
  } catch (const PreconditionError& error) {
    return error.what();  // e.g. non-finite or pre-stream epoch time
  }
  any_epoch_sent_ = true;
  last_epoch_sent_ = t;
  raise_watermark(t);
  epochs_advanced_.fetch_add(1, std::memory_order_relaxed);
  bump(c_epochs_);
  return {};
}

void WireServer::serve_connection(Connection& conn) {
  obs::ObsScope scope(tracer_, metrics_);
  try {
    // First byte picks the framing: '{' is line-JSON, anything else binary.
    // MSG_PEEK leaves the byte for the real reader.
    std::uint8_t first = 0;
    ssize_t n;
    do {
      n = ::recv(conn.fd.get(), &first, 1, MSG_PEEK);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      conn.json_mode = first == static_cast<std::uint8_t>('{');
      if (conn.json_mode) {
        serve_json(conn);
      } else {
        serve_binary(conn);
      }
    }
  } catch (const IoError&) {
    // Peer vanished mid-read or mid-write: that connection's problem only.
  } catch (const std::exception&) {
    // Backstop — a serving defect must never take the process down; the
    // connection is dropped and every other connection keeps running.
  }
  conn.fd.reset();
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  conn.done.store(true, std::memory_order_release);
}

void WireServer::serve_binary(Connection& conn) {
  std::uint64_t seq = 0;
  std::array<std::uint8_t, kFrameHeaderBytes> header_bytes{};
  for (;;) {
    const std::size_t header_got =
        read_exact(conn.fd.get(), header_bytes.data(), header_bytes.size());
    if (header_got == 0) return;  // clean EOF on a frame boundary
    ++seq;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bump(c_frames_received_);
    bytes_in_.fetch_add(header_got, std::memory_order_relaxed);
    bump(c_bytes_in_, header_got);
    if (header_got < header_bytes.size()) {
      reject(conn, seq, WireError::kTruncatedFrame,
             "connection closed inside a frame header");
      return;
    }
    FrameHeader header;
    const WireError header_error = decode_frame_header(
        header_bytes, header, config_.max_frame_payload_bytes);
    if (header_error != WireError::kNone) {
      reject(conn, seq, header_error,
             header_error == WireError::kBadMagic
                 ? "frame header magic mismatch (expected \"DBPW\")"
                 : strfmt("frame length %u exceeds the %u-byte payload cap",
                          header.payload_len, config_.max_frame_payload_bytes));
      return;  // both header errors are fatal: the stream is unframed now
    }
    std::vector<std::uint8_t> payload(header.payload_len);
    const std::size_t payload_got =
        read_exact(conn.fd.get(), payload.data(), payload.size());
    bytes_in_.fetch_add(payload_got, std::memory_order_relaxed);
    bump(c_bytes_in_, payload_got);
    if (payload_got < payload.size()) {
      reject(conn, seq, WireError::kTruncatedFrame,
             "connection closed inside a frame payload");
      return;
    }
    if (crc32(payload) != header.payload_crc) {
      reject(conn, seq, WireError::kBadCrc, "frame payload CRC mismatch");
      return;
    }
    const DecodeResult decoded = decode_request(payload);
    if (decoded.error != WireError::kNone) {
      reject(conn, seq, decoded.error, decoded.detail);
      if (fatal(decoded.error)) return;
      continue;
    }
    if (handle_request(conn, seq, decoded.request)) return;
  }
}

void WireServer::serve_json(Connection& conn) {
  std::uint64_t seq = 0;
  std::string buffer;
  std::array<char, 4096> chunk{};

  const auto process_line = [&](std::string_view line) {
    ++seq;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    bump(c_frames_received_);
    if (line.size() > config_.max_json_line_bytes) {
      reject(conn, seq, WireError::kOversizedLine,
             strfmt("request line exceeds the %zu-byte cap",
                    config_.max_json_line_bytes));
      return true;  // close
    }
    const DecodeResult decoded = decode_json_request(line);
    if (decoded.error != WireError::kNone) {
      reject(conn, seq, decoded.error, decoded.detail);
      return fatal(decoded.error);
    }
    return handle_request(conn, seq, decoded.request);
  };

  for (;;) {
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;  // blank lines are interactive noise
      if (process_line(line)) return;
    }
    if (buffer.size() > config_.max_json_line_bytes) {
      ++seq;
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      bump(c_frames_received_);
      reject(conn, seq, WireError::kOversizedLine,
             strfmt("request line exceeds the %zu-byte cap",
                    config_.max_json_line_bytes));
      return;
    }
    ssize_t n;
    do {
      n = ::recv(conn.fd.get(), chunk.data(), chunk.size(), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      throw IoError("socket read failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;  // EOF
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    bump(c_bytes_in_, static_cast<std::uint64_t>(n));
    buffer.append(chunk.data(), static_cast<std::size_t>(n));
  }
  // A final line without its newline still counts (echo without -n).
  if (!buffer.empty()) process_line(buffer);
}

bool WireServer::handle_request(Connection& conn, std::uint64_t seq,
                                const WireRequest& request) {
  switch (request.verb) {
    case WireVerb::kSubmit:
      raise_watermark(request.event.time_minutes);
      engine_.submit(request.event);
      events_submitted_.fetch_add(1, std::memory_order_relaxed);
      bump(c_events_);
      return false;  // fire-and-forget: success sends no response
    case WireVerb::kEpoch: {
      const std::string problem = advance_epoch_checked(request.time_minutes);
      if (!problem.empty()) reject(conn, seq, WireError::kBadField, problem);
      return false;
    }
    case WireVerb::kQuery: {
      WireResponse response;
      response.request_seq = seq;
      response.body = build_query_body(request.time_minutes);
      send_response(conn, response);
      return false;
    }
    case WireVerb::kShutdown: {
      WireResponse response;
      response.request_seq = seq;
      response.body = "{\"stopping\":true}";
      send_response(conn, response);
      {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        stop_requested_ = true;
        shutdown_verb_seen_ = true;
      }
      stop_cv_.notify_all();
      return true;  // the requesting connection closes after the ack
    }
  }
  return false;
}

std::string WireServer::build_query_body(double horizon) {
  // Quiesce the rings first so the answer reflects every event accepted
  // before the query on this connection (per-connection FIFO).
  engine_.drain();
  const engine::StreamingOptBounds bounds = engine_.opt_bounds();
  const DispatcherFaultStats faults = engine_.merged_fault_stats();
  const auto u = [](std::uint64_t value) {
    return static_cast<unsigned long long>(value);
  };
  std::string body = strfmt(
      "{\"active_sessions\":%llu,\"active_servers\":%llu,"
      "\"events_applied\":%llu,\"bill_dollars\":%.17g,"
      "\"watermark_minutes\":%.17g,\"epochs_advanced\":%llu",
      u(engine_.active_sessions()), u(engine_.active_servers()),
      u(engine_.events_applied()), engine_.rental_cost_dollars(horizon),
      watermark_minutes(), u(epochs_advanced_.load()));
  body += strfmt(
      ",\"opt_bounds\":{\"lower_dollars\":%.17g,\"upper_dollars\":%.17g,"
      "\"segments\":%llu,\"exact_segments\":%llu}",
      bounds.lower_dollars, bounds.upper_dollars, u(bounds.segments),
      u(bounds.exact_segments));
  body += strfmt(
      ",\"fault_stats\":{\"duplicate_starts\":%llu,\"unknown_ends\":%llu,"
      "\"unknown_servers\":%llu,\"time_order_violations\":%llu,"
      "\"invalid_sizes\":%llu,\"rental_attempts_failed\":%llu,"
      "\"sessions_rejected_rental\":%llu,\"sessions_rejected_cap\":%llu,"
      "\"sessions_shed\":%llu,\"sessions_redispatched\":%llu,"
      "\"sessions_lost_on_crash\":%llu,\"servers_crashed\":%llu,"
      "\"backoff_minutes\":%.17g,\"total_dropped_events\":%llu}}",
      u(faults.duplicate_starts), u(faults.unknown_ends),
      u(faults.unknown_servers), u(faults.time_order_violations),
      u(faults.invalid_sizes), u(faults.rental_attempts_failed),
      u(faults.sessions_rejected_rental), u(faults.sessions_rejected_cap),
      u(faults.sessions_shed), u(faults.sessions_redispatched),
      u(faults.sessions_lost_on_crash), u(faults.servers_crashed),
      faults.backoff_minutes, u(faults.total_dropped_events()));
  return body;
}

void WireServer::send_response(Connection& conn,
                               const WireResponse& response) {
  if (conn.json_mode) {
    std::string line = encode_json_response(response);
    line += '\n';
    write_all(conn.fd.get(),
              std::span(reinterpret_cast<const std::uint8_t*>(line.data()),
                        line.size()));
  } else {
    const std::vector<std::uint8_t> frame = encode_response_frame(response);
    write_all(conn.fd.get(), frame);
  }
}

void WireServer::reject(Connection& conn, std::uint64_t seq, WireError error,
                        std::string detail) {
  frames_rejected_.fetch_add(1, std::memory_order_relaxed);
  bump(c_frames_rejected_);
  WireResponse response;
  response.request_seq = seq;
  response.error = error;
  response.detail = std::move(detail);
  try {
    send_response(conn, response);
  } catch (const IoError&) {
    // The offender hung up before reading its rejection; nothing owed.
  }
}

}  // namespace dbp::net
