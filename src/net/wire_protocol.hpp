// Wire protocol for the dispatch-engine front-end (docs/wire_protocol.md).
//
// Two framings over one request vocabulary:
//
//   binary   CRC'd length-prefixed frames reusing the core/binary_io
//            conventions of the durability layer:
//              u32 magic "DBPW" | u32 payload_len | u32 crc32(payload) | payload
//            payload = u8 verb | verb-specific little-endian fields.
//   json     one JSON object per '\n'-terminated line — a strict, flat
//            subset (string/number/bool values, no nesting) for
//            debuggability: `echo '{"verb":"query","t":0}' | nc -U ...`.
//
// Both deserialize into the same WireRequest and share field validation:
// numeric fields go through core/parse.hpp's strict parsers, so a wire
// field rejects "8abc" or "-1" exactly like a CLI flag does. Every decode
// failure is a *typed* WireError; fatal() says whether the connection's
// byte stream can still be trusted (a bad CRC cannot be resynchronized,
// an unknown verb in a CRC-valid frame can).
//
// The wire layer only ever *produces* engine::SessionEvents — it never
// applies them — so a wire-fed engine run is bit-identical to direct
// submit() of the same event sequence (tests/net_differential_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/binary_io.hpp"
#include "engine/engine.hpp"

namespace dbp::net {

inline constexpr std::uint32_t kWireMagic = 0x57504244U;  // "DBPW" LE
inline constexpr std::size_t kFrameHeaderBytes = 12;
/// Framing sanity bound, like the journal's kMaxRecordPayloadBytes: no
/// request payload is remotely this large, so a bigger length field is
/// garbage (or an attack), not a frame.
inline constexpr std::uint32_t kMaxFramePayloadBytes = 1U << 16;

enum class WireVerb : std::uint8_t {
  kSubmit = 1,    ///< one engine::SessionEvent
  kEpoch = 2,     ///< advance_epoch at an explicit time
  kQuery = 3,     ///< stats snapshot as JSON (drains first)
  kShutdown = 4,  ///< graceful server stop (drains rings before exit)
};

/// Typed per-connection rejection codes. Stable names (to_string) appear in
/// JSON error responses and docs/wire_protocol.md.
enum class WireError : std::uint8_t {
  kNone = 0,
  kBadMagic = 1,       ///< frame header magic mismatch (fatal)
  kOversizedFrame = 2, ///< length field > max payload (fatal)
  kBadCrc = 3,         ///< payload CRC mismatch (fatal)
  kTruncatedFrame = 4, ///< EOF mid-frame (fatal)
  kBadPayload = 5,     ///< CRC-valid payload under/overruns its fields
  kUnknownVerb = 6,    ///< verb byte / "verb" value not in the vocabulary
  kBadField = 7,       ///< field fails strict validation (bad number, kind,
                       ///< missing key, regressing epoch time)
  kBadJson = 8,        ///< line is not a flat JSON object
  kNotUtf8 = 9,        ///< line is not valid UTF-8
  kOversizedLine = 10, ///< JSON line exceeds the line cap (fatal)
};

/// Stable wire name ("bad_crc", "unknown_verb", ...).
[[nodiscard]] const char* to_string(WireError error) noexcept;

/// True when the connection's byte stream can no longer be trusted to be
/// frame-aligned: the server sends one last error response and closes.
/// Recoverable errors reject the one request and keep the stream.
[[nodiscard]] bool fatal(WireError error) noexcept;

/// One decoded request, framing-independent.
struct WireRequest {
  WireVerb verb = WireVerb::kSubmit;
  engine::SessionEvent event{};  ///< kSubmit only
  Time time_minutes = 0.0;       ///< kEpoch time / kQuery bill horizon
};

/// One decoded response. `body` is the JSON stats object for kQuery / the
/// ack object for kShutdown; `detail` is human-readable context on errors.
struct WireResponse {
  std::uint64_t request_seq = 0;  ///< 1-based frame/line number it answers
  WireError error = WireError::kNone;
  std::string detail;
  std::string body;
};

/// Decode outcome: error == kNone means `request` is valid.
struct DecodeResult {
  WireError error = WireError::kNone;
  std::string detail;
  WireRequest request{};
};

// ---- binary framing -----------------------------------------------------

/// Appends `magic | len | crc | payload` to `out`.
void append_frame(ByteWriter& out, std::span<const std::uint8_t> payload);

/// Parsed frame header; call after reading kFrameHeaderBytes.
struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint32_t payload_crc = 0;
};

/// Validates magic and length bound. On error, `header` is unspecified.
[[nodiscard]] WireError decode_frame_header(
    std::span<const std::uint8_t> bytes, FrameHeader& header,
    std::uint32_t max_payload_bytes = kMaxFramePayloadBytes);

/// Request payload encoders (payload only; append_frame adds the header).
[[nodiscard]] std::vector<std::uint8_t> encode_request(const WireRequest& request);
/// Whole-frame convenience: header + payload.
[[nodiscard]] std::vector<std::uint8_t> encode_request_frame(const WireRequest& request);

/// Decodes a CRC-checked request payload (the caller verified the CRC).
[[nodiscard]] DecodeResult decode_request(std::span<const std::uint8_t> payload);

/// Response payload: u64 request_seq | u8 error | str detail | str body.
[[nodiscard]] std::vector<std::uint8_t> encode_response_frame(const WireResponse& response);
/// Decodes a response payload; throws CorruptionError on framing damage
/// (the client treats that as a broken server, not a request error).
[[nodiscard]] WireResponse decode_response(std::span<const std::uint8_t> payload);

// ---- line-JSON framing --------------------------------------------------

/// Strict UTF-8 validation (rejects overlongs, surrogates, > U+10FFFF).
[[nodiscard]] bool is_valid_utf8(std::string_view text) noexcept;

/// Encodes a request as one JSON line (no trailing newline).
[[nodiscard]] std::string encode_json_request(const WireRequest& request);

/// Decodes one JSON line (newline already stripped). Validates UTF-8,
/// parses the flat-object subset, and runs every numeric field through the
/// strict core parsers.
[[nodiscard]] DecodeResult decode_json_request(std::string_view line);

/// Encodes a response as one JSON line (no trailing newline):
///   {"seq":N,"ok":true[,...body fields]}               on success
///   {"seq":N,"error":"bad_field","detail":"..."}       on rejection
[[nodiscard]] std::string encode_json_response(const WireResponse& response);

/// Decodes a response line produced by encode_json_response; throws
/// CorruptionError when the line is not a response object.
[[nodiscard]] WireResponse decode_json_response(std::string_view line);

/// JSON string escaping for the fields above (quotes included).
[[nodiscard]] std::string json_quote(std::string_view text);

}  // namespace dbp::net
