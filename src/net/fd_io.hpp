// Internal Unix-socket fd helpers shared by wire_server.cpp and
// wire_client.cpp. Not part of the public net API.
#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include "core/error.hpp"

namespace dbp::net::detail {

/// Owns one file descriptor; close-once and movable.
class FdGuard {
 public:
  FdGuard() = default;
  explicit FdGuard(int fd) noexcept : fd_(fd) {}
  ~FdGuard() { reset(); }

  FdGuard(FdGuard&& other) noexcept : fd_(other.release()) {}
  FdGuard& operator=(FdGuard&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void reset() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

/// Fills `sun_path` or throws: AF_UNIX paths have a hard kernel limit.
inline sockaddr_un make_unix_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  DBP_REQUIRE(!path.empty(), "unix socket path must not be empty");
  DBP_REQUIRE(path.size() < sizeof(address.sun_path),
              "unix socket path '" + path + "' exceeds the AF_UNIX limit of " +
                  std::to_string(sizeof(address.sun_path) - 1) + " bytes");
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

/// Writes the whole span (MSG_NOSIGNAL: a peer that vanished surfaces as
/// IoError, never SIGPIPE). Throws IoError on any socket error.
inline void write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("socket write failed: " + std::string(std::strerror(errno)));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `want` bytes unless the peer closes first; returns the
/// number actually read (== want, or less on EOF). Throws IoError on any
/// socket error. A shutdown() from another thread reads as EOF.
inline std::size_t read_exact(int fd, std::uint8_t* out, std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n = ::recv(fd, out + got, want - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("socket read failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;  // orderly EOF
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace dbp::net::detail
