// Blocking Unix-socket client for WireServer, used by tools/dbp_client and
// the differential tests.
//
// Submissions and epochs are fire-and-forget on the wire (the server only
// answers them when it rejects), so the client pipelines them through a
// write buffer and never waits; query/shutdown are round trips that flush
// the pipeline first. Error responses to earlier fire-and-forget requests
// arrive interleaved and are collected into async_errors() while waiting
// for a round trip's own sequence number.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "net/fd_io.hpp"
#include "net/wire_protocol.hpp"

namespace dbp::net {

class WireClient {
 public:
  enum class Framing { kBinary, kJson };

  /// Connects immediately; throws IoError when the socket is not there.
  WireClient(const std::string& socket_path, Framing framing);

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Fire-and-forget: buffered, no response expected unless rejected.
  void submit(const engine::SessionEvent& event);
  void epoch(double time_minutes);

  /// Round trips: flush the pipeline, then wait for the matching response.
  /// Rejections of earlier pipelined requests encountered while waiting go
  /// to async_errors(). Throws IoError when the server hangs up first.
  WireResponse query(double bill_horizon_minutes);
  WireResponse shutdown_server();

  /// Pushes every buffered byte to the socket.
  void flush();

  /// Flushes, then writes `bytes` verbatim — corpus injection for the
  /// malformed-frame tests and tools/dbp_client --malform.
  void send_raw(std::span<const std::uint8_t> bytes);

  /// Blocking read of one response in this client's framing. Throws
  /// IoError on EOF, CorruptionError on an unparseable response.
  WireResponse read_response();

  /// Half-closes the write side so the server sees EOF while responses can
  /// still be read (used to observe fatal-rejection closes).
  void finish_writes();

  [[nodiscard]] const std::vector<WireResponse>& async_errors() const noexcept {
    return async_errors_;
  }
  [[nodiscard]] std::uint64_t requests_sent() const noexcept { return seq_; }
  [[nodiscard]] Framing framing() const noexcept { return framing_; }

 private:
  void enqueue(const WireRequest& request);
  WireResponse await_seq(std::uint64_t seq);

  detail::FdGuard fd_;
  Framing framing_;
  std::vector<std::uint8_t> out_buffer_;
  std::string in_buffer_;  ///< JSON-framing read carry
  std::uint64_t seq_ = 0;  ///< requests sent; server seqs are 1-based
  std::vector<WireResponse> async_errors_;
};

}  // namespace dbp::net
