#include "net/wire_protocol.hpp"

#include <array>
#include <cstddef>

#include "core/crc32.hpp"
#include "core/error.hpp"
#include "core/parse.hpp"
#include "core/strfmt.hpp"

namespace dbp::net {
namespace {

constexpr std::uint8_t kKindStart = 1;
constexpr std::uint8_t kKindEnd = 2;

constexpr std::array<const char*, 11> kErrorNames = {
    "ok",            "bad_magic",    "oversized_frame", "bad_crc",
    "truncated_frame", "bad_payload", "unknown_verb",    "bad_field",
    "bad_json",      "not_utf8",     "oversized_line",
};

}  // namespace

const char* to_string(WireError error) noexcept {
  const auto index = static_cast<std::size_t>(error);
  return index < kErrorNames.size() ? kErrorNames[index] : "unknown_error";
}

bool fatal(WireError error) noexcept {
  switch (error) {
    case WireError::kBadMagic:
    case WireError::kOversizedFrame:
    case WireError::kBadCrc:
    case WireError::kTruncatedFrame:
    case WireError::kOversizedLine:
      return true;
    default:
      return false;
  }
}

// ---- binary framing -----------------------------------------------------

void append_frame(ByteWriter& out, std::span<const std::uint8_t> payload) {
  DBP_REQUIRE(payload.size() <= kMaxFramePayloadBytes,
              "wire frame payload exceeds kMaxFramePayloadBytes");
  out.u32(kWireMagic);
  out.u32(static_cast<std::uint32_t>(payload.size()));
  out.u32(crc32(payload));
  out.bytes(payload);
}

WireError decode_frame_header(std::span<const std::uint8_t> bytes,
                              FrameHeader& header,
                              std::uint32_t max_payload_bytes) {
  if (bytes.size() < kFrameHeaderBytes) return WireError::kTruncatedFrame;
  ByteReader reader(bytes.first(kFrameHeaderBytes));
  if (reader.u32() != kWireMagic) return WireError::kBadMagic;
  header.payload_len = reader.u32();
  header.payload_crc = reader.u32();
  if (header.payload_len > max_payload_bytes) return WireError::kOversizedFrame;
  return WireError::kNone;
}

std::vector<std::uint8_t> encode_request(const WireRequest& request) {
  ByteWriter out;
  out.u8(static_cast<std::uint8_t>(request.verb));
  switch (request.verb) {
    case WireVerb::kSubmit:
      out.u8(request.event.kind == engine::SessionEvent::Kind::kStart
                 ? kKindStart
                 : kKindEnd);
      out.u64(request.event.session_id);
      out.u64(request.event.route_key);
      out.f64(request.event.gpu_fraction);
      out.f64(request.event.time_minutes);
      break;
    case WireVerb::kEpoch:
    case WireVerb::kQuery:
      out.f64(request.time_minutes);
      break;
    case WireVerb::kShutdown:
      break;
  }
  return out.take();
}

std::vector<std::uint8_t> encode_request_frame(const WireRequest& request) {
  const std::vector<std::uint8_t> payload = encode_request(request);
  ByteWriter framed;
  append_frame(framed, payload);
  return framed.take();
}

DecodeResult decode_request(std::span<const std::uint8_t> payload) {
  DecodeResult result;
  try {
    ByteReader reader(payload);
    const std::uint8_t verb_byte = reader.u8();
    switch (verb_byte) {
      case static_cast<std::uint8_t>(WireVerb::kSubmit): {
        result.request.verb = WireVerb::kSubmit;
        const std::uint8_t kind = reader.u8();
        if (kind != kKindStart && kind != kKindEnd) {
          result.error = WireError::kBadField;
          result.detail =
              strfmt("invalid event kind byte %u: expected 1 (start) or 2 (end)",
                     static_cast<unsigned>(kind));
          return result;
        }
        result.request.event.kind = kind == kKindStart
                                        ? engine::SessionEvent::Kind::kStart
                                        : engine::SessionEvent::Kind::kEnd;
        result.request.event.session_id = reader.u64();
        result.request.event.route_key = reader.u64();
        result.request.event.gpu_fraction = reader.f64();
        result.request.event.time_minutes = reader.f64();
        break;
      }
      case static_cast<std::uint8_t>(WireVerb::kEpoch):
        result.request.verb = WireVerb::kEpoch;
        result.request.time_minutes = reader.f64();
        break;
      case static_cast<std::uint8_t>(WireVerb::kQuery):
        result.request.verb = WireVerb::kQuery;
        result.request.time_minutes = reader.f64();
        break;
      case static_cast<std::uint8_t>(WireVerb::kShutdown):
        result.request.verb = WireVerb::kShutdown;
        break;
      default:
        result.error = WireError::kUnknownVerb;
        result.detail = strfmt("unknown verb byte %u",
                               static_cast<unsigned>(verb_byte));
        return result;
    }
    reader.expect_done();
  } catch (const CorruptionError& error) {
    // Under/overrun of a CRC-valid payload: a codec mismatch, not line noise.
    result.error = WireError::kBadPayload;
    result.detail = error.what();
  }
  return result;
}

std::vector<std::uint8_t> encode_response_frame(const WireResponse& response) {
  ByteWriter payload;
  payload.u64(response.request_seq);
  payload.u8(static_cast<std::uint8_t>(response.error));
  payload.str(response.detail);
  payload.str(response.body);
  ByteWriter framed;
  append_frame(framed, payload.data());
  return framed.take();
}

WireResponse decode_response(std::span<const std::uint8_t> payload) {
  ByteReader reader(payload);
  WireResponse response;
  response.request_seq = reader.u64();
  const std::uint8_t code = reader.u8();
  if (code >= kErrorNames.size()) {
    throw CorruptionError("wire response carries unknown error code");
  }
  response.error = static_cast<WireError>(code);
  response.detail = reader.str();
  response.body = reader.str();
  reader.expect_done();
  return response;
}

// ---- line-JSON framing --------------------------------------------------

bool is_valid_utf8(std::string_view text) noexcept {
  std::size_t i = 0;
  while (i < text.size()) {
    const auto byte = static_cast<std::uint8_t>(text[i]);
    std::size_t extra = 0;
    std::uint32_t code_point = 0;
    std::uint32_t min_value = 0;
    if (byte < 0x80U) {
      ++i;
      continue;
    } else if ((byte & 0xE0U) == 0xC0U) {
      extra = 1;
      code_point = byte & 0x1FU;
      min_value = 0x80U;
    } else if ((byte & 0xF0U) == 0xE0U) {
      extra = 2;
      code_point = byte & 0x0FU;
      min_value = 0x800U;
    } else if ((byte & 0xF8U) == 0xF0U) {
      extra = 3;
      code_point = byte & 0x07U;
      min_value = 0x10000U;
    } else {
      return false;  // continuation byte or 0xF8+ lead byte
    }
    if (i + extra >= text.size()) return false;
    for (std::size_t k = 1; k <= extra; ++k) {
      const auto cont = static_cast<std::uint8_t>(text[i + k]);
      if ((cont & 0xC0U) != 0x80U) return false;
      code_point = (code_point << 6) | (cont & 0x3FU);
    }
    if (code_point < min_value) return false;                      // overlong
    if (code_point >= 0xD800U && code_point <= 0xDFFFU) return false;
    if (code_point > 0x10FFFFU) return false;
    i += extra + 1;
  }
  return true;
}

std::string json_quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20U) {
          out += strfmt("\\u%04x", static_cast<unsigned>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

/// %.17g round-trips every finite double through from_chars bit-exactly,
/// which the differential test depends on for sizes and times.
std::string json_number(double value) { return strfmt("%.17g", value); }

/// One value in the flat-object subset: either a JSON string (decoded) or
/// the raw token text of a number/bool/null, kept verbatim so numeric
/// fields run through the same strict parsers as CLI flags.
struct JsonValue {
  bool is_string = false;
  std::string text;
};

struct JsonField {
  std::string key;
  JsonValue value;
};

/// Strict parser for one-line flat JSON objects. Fails (returns false with
/// a detail message) on nesting, duplicate keys, unsupported escapes and
/// any structural deviation — the wire rejects what it does not fully
/// understand.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(std::string_view line) : line_(line) {}

  [[nodiscard]] bool parse(std::vector<JsonField>& fields, std::string& detail) {
    skip_ws();
    if (!consume('{')) return fail(detail, "expected '{'");
    skip_ws();
    if (consume('}')) return finish(detail);
    while (true) {
      skip_ws();
      JsonField field;
      if (!parse_string(field.key, detail)) return false;
      for (const JsonField& existing : fields) {
        if (existing.key == field.key) {
          return fail(detail, "duplicate key '" + field.key + "'");
        }
      }
      skip_ws();
      if (!consume(':')) return fail(detail, "expected ':' after key");
      skip_ws();
      if (!parse_value(field.value, detail)) return false;
      fields.push_back(std::move(field));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return finish(detail);
      return fail(detail, "expected ',' or '}' after value");
    }
  }

 private:
  [[nodiscard]] bool finish(std::string& detail) {
    skip_ws();
    if (pos_ != line_.size()) return fail(detail, "trailing bytes after '}'");
    return true;
  }

  [[nodiscard]] bool fail(std::string& detail, const std::string& what) const {
    detail = strfmt("malformed JSON at byte %zu: %s", pos_, what.c_str());
    return false;
  }

  void skip_ws() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t' || line_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char expected) {
    if (pos_ < line_.size() && line_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool parse_string(std::string& out, std::string& detail) {
    if (!consume('"')) return fail(detail, "expected '\"'");
    out.clear();
    while (pos_ < line_.size()) {
      const char c = line_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= line_.size()) return fail(detail, "dangling escape");
        const char esc = line_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default:
            return fail(detail,
                        strfmt("unsupported escape '\\%c'", esc));
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20U) {
        return fail(detail, "raw control byte inside string");
      }
      out.push_back(c);
    }
    return fail(detail, "unterminated string");
  }

  [[nodiscard]] bool parse_value(JsonValue& out, std::string& detail) {
    if (pos_ >= line_.size()) return fail(detail, "expected a value");
    const char head = line_[pos_];
    if (head == '"') {
      out.is_string = true;
      return parse_string(out.text, detail);
    }
    if (head == '{' || head == '[') {
      return fail(detail, "nested values are not supported (flat object only)");
    }
    out.is_string = false;
    out.text.clear();
    while (pos_ < line_.size()) {
      const char c = line_[pos_];
      if (c == ',' || c == '}' || c == ' ' || c == '\t' || c == '\r') break;
      out.text.push_back(c);
      ++pos_;
    }
    if (out.text.empty()) return fail(detail, "expected a value");
    return true;
  }

  std::string_view line_;
  std::size_t pos_ = 0;
};

[[nodiscard]] const JsonValue* find_field(const std::vector<JsonField>& fields,
                                          std::string_view key) {
  for (const JsonField& field : fields) {
    if (field.key == key) return &field.value;
  }
  return nullptr;
}

/// Marks `result` rejected with kBadField carrying `detail`.
DecodeResult bad_field(std::string detail) {
  DecodeResult result;
  result.error = WireError::kBadField;
  result.detail = std::move(detail);
  return result;
}

[[nodiscard]] bool require_raw(const JsonValue* value, const char* key,
                               DecodeResult& rejection) {
  if (value == nullptr) {
    rejection = bad_field(strfmt("missing field '%s'", key));
    return false;
  }
  if (value->is_string) {
    rejection = bad_field(strfmt("field '%s' must be a number, got a string", key));
    return false;
  }
  return true;
}

[[nodiscard]] bool parse_u64_field(const JsonValue* value, const char* key,
                                   std::uint64_t& out, DecodeResult& rejection) {
  if (!require_raw(value, key, rejection)) return false;
  try {
    out = parse_u64_strict(value->text, strfmt("field '%s'", key));
  } catch (const PreconditionError& error) {
    rejection = bad_field(error.what());
    return false;
  }
  return true;
}

[[nodiscard]] bool parse_double_field(const JsonValue* value, const char* key,
                                      double& out, DecodeResult& rejection) {
  if (!require_raw(value, key, rejection)) return false;
  try {
    out = parse_double_strict(value->text, strfmt("field '%s'", key));
  } catch (const PreconditionError& error) {
    rejection = bad_field(error.what());
    return false;
  }
  return true;
}

/// Rejects keys outside the verb's vocabulary so typos ("szie") surface as
/// errors instead of silently ignored fields.
[[nodiscard]] bool check_known_keys(const std::vector<JsonField>& fields,
                                    std::span<const std::string_view> allowed,
                                    DecodeResult& rejection) {
  for (const JsonField& field : fields) {
    bool known = false;
    for (const std::string_view key : allowed) {
      if (field.key == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      rejection = bad_field(
          strfmt("unexpected field '%s'", field.key.c_str()));
      return false;
    }
  }
  return true;
}

}  // namespace

std::string encode_json_request(const WireRequest& request) {
  switch (request.verb) {
    case WireVerb::kSubmit: {
      const engine::SessionEvent& event = request.event;
      if (event.kind == engine::SessionEvent::Kind::kStart) {
        return strfmt(
            "{\"verb\":\"submit\",\"kind\":\"start\",\"id\":%llu,"
            "\"route\":%llu,\"size\":%s,\"t\":%s}",
            static_cast<unsigned long long>(event.session_id),
            static_cast<unsigned long long>(event.route_key),
            json_number(event.gpu_fraction).c_str(),
            json_number(event.time_minutes).c_str());
      }
      return strfmt(
          "{\"verb\":\"submit\",\"kind\":\"end\",\"id\":%llu,"
          "\"route\":%llu,\"t\":%s}",
          static_cast<unsigned long long>(event.session_id),
          static_cast<unsigned long long>(event.route_key),
          json_number(event.time_minutes).c_str());
    }
    case WireVerb::kEpoch:
      return strfmt("{\"verb\":\"epoch\",\"t\":%s}",
                    json_number(request.time_minutes).c_str());
    case WireVerb::kQuery:
      return strfmt("{\"verb\":\"query\",\"t\":%s}",
                    json_number(request.time_minutes).c_str());
    case WireVerb::kShutdown:
      return "{\"verb\":\"shutdown\"}";
  }
  throw InvariantError("unreachable wire verb");
}

DecodeResult decode_json_request(std::string_view line) {
  DecodeResult result;
  if (!is_valid_utf8(line)) {
    result.error = WireError::kNotUtf8;
    result.detail = "request line is not valid UTF-8";
    return result;
  }
  std::vector<JsonField> fields;
  std::string detail;
  if (!FlatJsonParser(line).parse(fields, detail)) {
    result.error = WireError::kBadJson;
    result.detail = std::move(detail);
    return result;
  }

  const JsonValue* verb = find_field(fields, "verb");
  if (verb == nullptr || !verb->is_string) {
    result.error = WireError::kBadField;
    result.detail = "missing string field 'verb'";
    return result;
  }

  if (verb->text == "submit") {
    static constexpr std::string_view kKeys[] = {"verb", "kind", "id",
                                                 "route", "size", "t"};
    if (!check_known_keys(fields, kKeys, result)) return result;
    result.request.verb = WireVerb::kSubmit;
    const JsonValue* kind = find_field(fields, "kind");
    if (kind == nullptr || !kind->is_string ||
        (kind->text != "start" && kind->text != "end")) {
      return bad_field("field 'kind' must be \"start\" or \"end\"");
    }
    const bool is_start = kind->text == "start";
    result.request.event.kind = is_start ? engine::SessionEvent::Kind::kStart
                                         : engine::SessionEvent::Kind::kEnd;
    if (!parse_u64_field(find_field(fields, "id"), "id",
                         result.request.event.session_id, result)) {
      return result;
    }
    // Routing defaults to the session id, matching start_event/end_event.
    result.request.event.route_key = result.request.event.session_id;
    if (const JsonValue* route = find_field(fields, "route")) {
      if (!parse_u64_field(route, "route", result.request.event.route_key,
                           result)) {
        return result;
      }
    }
    if (is_start) {
      if (!parse_double_field(find_field(fields, "size"), "size",
                              result.request.event.gpu_fraction, result)) {
        return result;
      }
    } else if (find_field(fields, "size") != nullptr) {
      return bad_field("field 'size' is not allowed on kind \"end\"");
    }
    if (!parse_double_field(find_field(fields, "t"), "t",
                            result.request.event.time_minutes, result)) {
      return result;
    }
    return result;
  }

  if (verb->text == "epoch" || verb->text == "query") {
    static constexpr std::string_view kKeys[] = {"verb", "t"};
    if (!check_known_keys(fields, kKeys, result)) return result;
    result.request.verb =
        verb->text == "epoch" ? WireVerb::kEpoch : WireVerb::kQuery;
    if (!parse_double_field(find_field(fields, "t"), "t",
                            result.request.time_minutes, result)) {
      return result;
    }
    return result;
  }

  if (verb->text == "shutdown") {
    static constexpr std::string_view kKeys[] = {"verb"};
    if (!check_known_keys(fields, kKeys, result)) return result;
    result.request.verb = WireVerb::kShutdown;
    return result;
  }

  result.error = WireError::kUnknownVerb;
  result.detail = strfmt("unknown verb '%s'", verb->text.c_str());
  return result;
}

std::string encode_json_response(const WireResponse& response) {
  if (response.error == WireError::kNone) {
    std::string line = strfmt(
        "{\"seq\":%llu,\"ok\":true",
        static_cast<unsigned long long>(response.request_seq));
    if (!response.body.empty()) {
      line += ",\"result\":";
      line += response.body;
    }
    line += "}";
    return line;
  }
  return strfmt("{\"seq\":%llu,\"ok\":false,\"error\":\"%s\",\"detail\":%s}",
                static_cast<unsigned long long>(response.request_seq),
                to_string(response.error), json_quote(response.detail).c_str());
}

WireResponse decode_json_response(std::string_view line) {
  // Hand-rolled prefix match of exactly what encode_json_response emits —
  // the client only ever parses its own server's responses.
  const auto corrupt = [] {
    return CorruptionError("malformed wire response line");
  };
  const auto eat = [&](std::string_view prefix) {
    if (line.substr(0, prefix.size()) != prefix) throw corrupt();
    line.remove_prefix(prefix.size());
  };

  WireResponse response;
  eat("{\"seq\":");
  std::size_t digits = 0;
  while (digits < line.size() && line[digits] >= '0' && line[digits] <= '9') {
    ++digits;
  }
  if (digits == 0) throw corrupt();
  response.request_seq = parse_u64_strict(line.substr(0, digits), "seq");
  line.remove_prefix(digits);

  if (line.rfind(",\"ok\":true", 0) == 0) {
    line.remove_prefix(std::string_view(",\"ok\":true").size());
    if (line == "}") return response;
    eat(",\"result\":");
    if (line.empty() || line.back() != '}') throw corrupt();
    response.body = std::string(line.substr(0, line.size() - 1));
    return response;
  }

  eat(",\"ok\":false,\"error\":\"");
  const std::size_t name_end = line.find('"');
  if (name_end == std::string_view::npos) throw corrupt();
  const std::string_view name = line.substr(0, name_end);
  response.error = WireError::kNone;
  for (std::size_t code = 1; code < kErrorNames.size(); ++code) {
    if (name == kErrorNames[code]) {
      response.error = static_cast<WireError>(code);
      break;
    }
  }
  if (response.error == WireError::kNone) throw corrupt();
  line.remove_prefix(name_end + 1);

  eat(",\"detail\":");
  if (line.size() < 2 || line.back() != '}') throw corrupt();
  // Reverse json_quote: the detail string is the last field.
  std::string_view quoted = line.substr(0, line.size() - 1);
  if (quoted.size() < 2 || quoted.front() != '"' || quoted.back() != '"') {
    throw corrupt();
  }
  quoted = quoted.substr(1, quoted.size() - 2);
  for (std::size_t i = 0; i < quoted.size(); ++i) {
    if (quoted[i] != '\\') {
      response.detail.push_back(quoted[i]);
      continue;
    }
    if (++i >= quoted.size()) throw corrupt();
    switch (quoted[i]) {
      case '"': response.detail.push_back('"'); break;
      case '\\': response.detail.push_back('\\'); break;
      case 'n': response.detail.push_back('\n'); break;
      case 'r': response.detail.push_back('\r'); break;
      case 't': response.detail.push_back('\t'); break;
      case 'u': {
        if (i + 4 >= quoted.size()) throw corrupt();
        // Only \u00XX control escapes are ever emitted by json_quote.
        unsigned value = 0;
        for (std::size_t k = 1; k <= 4; ++k) {
          const char hex = quoted[i + k];
          unsigned digit = 0;
          if (hex >= '0' && hex <= '9') digit = static_cast<unsigned>(hex - '0');
          else if (hex >= 'a' && hex <= 'f') digit = static_cast<unsigned>(hex - 'a') + 10;
          else throw corrupt();
          value = (value << 4) | digit;
        }
        if (value > 0x1FU) throw corrupt();
        response.detail.push_back(static_cast<char>(value));
        i += 4;
        break;
      }
      default:
        throw corrupt();
    }
  }
  return response;
}

}  // namespace dbp::net
