#include "net/wire_client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "core/crc32.hpp"
#include "core/error.hpp"

namespace dbp::net {

namespace {

/// Flush threshold: large enough to amortize syscalls, small enough that a
/// replay never buffers an unbounded trace in memory.
constexpr std::size_t kFlushBytes = std::size_t{1} << 18;

}  // namespace

WireClient::WireClient(const std::string& socket_path, Framing framing)
    : framing_(framing) {
  const sockaddr_un address = detail::make_unix_address(socket_path);
  detail::FdGuard sock(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw IoError("cannot create unix socket: " +
                  std::string(std::strerror(errno)));
  }
  if (::connect(sock.get(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    throw IoError("cannot connect to '" + socket_path +
                  "': " + std::string(std::strerror(errno)));
  }
  fd_ = std::move(sock);
}

void WireClient::enqueue(const WireRequest& request) {
  ++seq_;
  if (framing_ == Framing::kBinary) {
    const std::vector<std::uint8_t> frame = encode_request_frame(request);
    out_buffer_.insert(out_buffer_.end(), frame.begin(), frame.end());
  } else {
    const std::string line = encode_json_request(request);
    out_buffer_.insert(out_buffer_.end(), line.begin(), line.end());
    out_buffer_.push_back(static_cast<std::uint8_t>('\n'));
  }
  if (out_buffer_.size() >= kFlushBytes) flush();
}

void WireClient::submit(const engine::SessionEvent& event) {
  WireRequest request;
  request.verb = WireVerb::kSubmit;
  request.event = event;
  enqueue(request);
}

void WireClient::epoch(double time_minutes) {
  WireRequest request;
  request.verb = WireVerb::kEpoch;
  request.time_minutes = time_minutes;
  enqueue(request);
}

WireResponse WireClient::query(double bill_horizon_minutes) {
  WireRequest request;
  request.verb = WireVerb::kQuery;
  request.time_minutes = bill_horizon_minutes;
  enqueue(request);
  flush();
  return await_seq(seq_);
}

WireResponse WireClient::shutdown_server() {
  WireRequest request;
  request.verb = WireVerb::kShutdown;
  enqueue(request);
  flush();
  return await_seq(seq_);
}

void WireClient::flush() {
  if (out_buffer_.empty()) return;
  detail::write_all(fd_.get(), out_buffer_);
  out_buffer_.clear();
}

void WireClient::send_raw(std::span<const std::uint8_t> bytes) {
  flush();
  ++seq_;  // the server will count whatever this parses as one frame/line
  detail::write_all(fd_.get(), bytes);
}

void WireClient::finish_writes() {
  flush();
  ::shutdown(fd_.get(), SHUT_WR);
}

WireResponse WireClient::await_seq(std::uint64_t seq) {
  for (;;) {
    WireResponse response = read_response();
    if (response.request_seq == seq) return response;
    // A rejection of an earlier pipelined submit/epoch; keep it for the
    // caller and keep waiting for our round trip.
    async_errors_.push_back(std::move(response));
  }
}

WireResponse WireClient::read_response() {
  if (framing_ == Framing::kBinary) {
    std::array<std::uint8_t, kFrameHeaderBytes> header_bytes{};
    if (detail::read_exact(fd_.get(), header_bytes.data(),
                           header_bytes.size()) < header_bytes.size()) {
      throw IoError("server closed the connection");
    }
    FrameHeader header;
    if (decode_frame_header(header_bytes, header) != WireError::kNone) {
      throw CorruptionError("malformed response frame header");
    }
    std::vector<std::uint8_t> payload(header.payload_len);
    if (detail::read_exact(fd_.get(), payload.data(), payload.size()) <
        payload.size()) {
      throw IoError("server closed the connection mid-response");
    }
    if (crc32(payload) != header.payload_crc) {
      throw CorruptionError("response frame CRC mismatch");
    }
    return decode_response(payload);
  }

  // JSON framing: one '\n'-terminated line per response.
  std::array<char, 4096> chunk{};
  for (;;) {
    const std::size_t newline = in_buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = in_buffer_.substr(0, newline);
      in_buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      return decode_json_response(line);
    }
    ssize_t n;
    do {
      n = ::recv(fd_.get(), chunk.data(), chunk.size(), 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      throw IoError("socket read failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) throw IoError("server closed the connection");
    in_buffer_.append(chunk.data(), static_cast<std::size_t>(n));
  }
}

}  // namespace dbp::net
