#include "analysis/ff_decomposition.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/strfmt.hpp"

namespace dbp {

namespace {

/// Items of each bin sorted by arrival time.
std::vector<std::vector<const Item*>> items_by_bin(const Instance& instance,
                                                   const SimulationResult& result) {
  std::vector<std::vector<const Item*>> by_bin(result.bins_opened);
  for (const Item& item : instance.items()) {
    by_bin[static_cast<std::size_t>(result.assignment[item.id])].push_back(&item);
  }
  for (auto& items : by_bin) {
    std::sort(items.begin(), items.end(), [](const Item* a, const Item* b) {
      return a->arrival < b->arrival || (a->arrival == b->arrival && a->id < b->id);
    });
  }
  return by_bin;
}

/// Earliest arrival into `bin_items` within [window.begin, window.end), or
/// nullopt.
std::optional<Time> earliest_arrival_in(const std::vector<const Item*>& bin_items,
                                        TimeInterval window) {
  auto it = std::lower_bound(
      bin_items.begin(), bin_items.end(), window.begin,
      [](const Item* item, Time t) { return item->arrival < t; });
  if (it == bin_items.end() || (*it)->arrival >= window.end) return std::nullopt;
  return (*it)->arrival;
}

/// u over `window` of the items resident in `bin` at time `t`
/// (arrival <= t < departure), i.e. the quantity of inequalities (8)/(14).
double demand_over_window(const std::vector<const Item*>& bin_items, Time t,
                          TimeInterval window) {
  CompensatedSum demand;
  for (const Item* item : bin_items) {
    if (item->arrival > t) break;  // sorted by arrival
    if (!item->active_at(t)) continue;
    const Time lo = std::max(item->arrival, window.begin);
    const Time hi = std::min(item->departure, window.end);
    if (hi > lo) demand.add(item->size * (hi - lo));
  }
  return demand.value();
}

}  // namespace

double FFDecomposition::cost_bound(double cost_rate) const {
  const double periods = static_cast<double>(joint_period_count) +
                         static_cast<double>(single_period_count) +
                         static_cast<double>(non_intersecting_count);
  return cost_rate * periods * (mu + 6.0) * delta + cost_rate * span;
}

FFDecomposition decompose_first_fit(const Instance& instance,
                                    const SimulationResult& result) {
  DBP_REQUIRE(!instance.empty(), "cannot decompose an empty instance");
  DBP_REQUIRE(result.bins_opened > 0 && result.assignment.size() == instance.size(),
              "simulation result does not match the instance");

  FFDecomposition d;
  const InstanceMetrics metrics = compute_metrics(instance);
  d.delta = metrics.min_interval_length;
  d.mu = metrics.mu;

  const std::size_t m = result.bins_opened;
  d.usage.reserve(m);
  for (const BinUsageRecord& record : result.bin_usage) {
    DBP_REQUIRE(record.is_closed(), "decomposition requires closed bins");
    d.usage.push_back({record.opened, record.closed});
  }
  // Bin ids are assigned in opening order by construction; verify.
  for (std::size_t i = 1; i < m; ++i) {
    DBP_CHECK(d.usage[i - 1].begin <= d.usage[i].begin,
              "bins not indexed in opening order");
  }

  // E_i and the I_i^L / I_i^R split (Figure 4).
  d.latest_prior_close.resize(m);
  d.left_part.resize(m);
  d.right_part.resize(m);
  Time running_max_close = metrics.packing_period.begin;  // E_1 = period start
  for (std::size_t i = 0; i < m; ++i) {
    const TimeInterval usage = d.usage[i];
    const Time e = running_max_close;
    d.latest_prior_close[i] = e;
    const Time left_end = std::min(usage.end, e);
    if (left_end > usage.begin) {
      d.left_part[i] = {usage.begin, left_end};
      d.right_part[i] = {left_end, usage.end};  // may be empty
    } else {
      d.left_part[i] = {usage.begin, usage.begin};  // empty
      d.right_part[i] = usage;
    }
    running_max_close = std::max(running_max_close, usage.end);
  }

  // Split & merge of each I_i^L into I_{i,1}, I_{i,2}, ... (Figure 5).
  const double piece = (d.mu + 2.0) * d.delta;
  const auto by_bin = items_by_bin(instance, result);
  for (std::size_t i = 0; i < m; ++i) {
    const TimeInterval left = d.left_part[i];
    if (left.empty()) continue;
    std::vector<TimeInterval> pieces;
    if (left.length() <= piece) {
      pieces.push_back(left);
    } else {
      const auto count =
          static_cast<std::size_t>(std::ceil(left.length() / piece * (1.0 - 1e-12)));
      // Splitters measured backwards from the end of I_i^L.
      Time begin = left.begin;
      for (std::size_t t = count; t-- > 0;) {
        const Time end =
            t == 0 ? left.end : left.end - static_cast<double>(t) * piece;
        pieces.push_back({begin, end});
        begin = end;
      }
      // Merge a too-short first piece into the second (keeps f.3).
      if (pieces.size() >= 2 && pieces.front().length() < 2.0 * d.delta) {
        pieces[1].begin = pieces[0].begin;
        pieces.erase(pieces.begin());
      }
    }
    for (std::size_t j = 0; j < pieces.size(); ++j) {
      SubPeriod sub;
      sub.bin = static_cast<BinId>(i);
      sub.index = j + 1;
      sub.interval = pieces[j];
      // Reference point t_{i,j}: earliest new arrival into b_i within the
      // sub-period. The paper proves existence for First Fit traces; the
      // verifier reports a violation if the trace disagrees.
      const auto arrival = earliest_arrival_in(by_bin[i], pieces[j]);
      sub.reference_point = arrival.value_or(pieces[j].begin);
      if (!arrival) {
        sub.reference_bin = static_cast<BinId>(i);  // marks "missing"
        d.sub_periods.push_back(sub);
        continue;
      }
      // Reference bin: the highest-index bin k < i with t_{i,j} < I_k^+.
      sub.reference_bin = static_cast<BinId>(i);  // sentinel: none found
      for (std::size_t k = i; k-- > 0;) {
        if (sub.reference_point < d.usage[k].end) {
          sub.reference_bin = static_cast<BinId>(k);
          break;
        }
      }
      d.sub_periods.push_back(sub);
    }
  }

  // Reference-period intersections: same reference bin and |t1 - t2| <
  // 2*Delta. Group by reference bin, sort by reference point.
  std::map<BinId, std::vector<std::size_t>> by_reference;
  for (std::size_t s = 0; s < d.sub_periods.size(); ++s) {
    const SubPeriod& sub = d.sub_periods[s];
    if (sub.reference_bin == sub.bin) continue;  // missing reference
    by_reference[sub.reference_bin].push_back(s);
  }
  for (auto& [bin, members] : by_reference) {
    std::sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
      return d.sub_periods[a].reference_point < d.sub_periods[b].reference_point;
    });
    for (std::size_t idx = 0; idx + 1 < members.size(); ++idx) {
      const SubPeriod& a = d.sub_periods[members[idx]];
      const SubPeriod& b = d.sub_periods[members[idx + 1]];
      if (b.reference_point - a.reference_point < 2.0 * d.delta) {
        d.sub_periods[members[idx]].intersecting = true;
        d.sub_periods[members[idx + 1]].intersecting = true;
      }
    }
  }

  // Pairing (Figure 7): walk intersecting periods in ascending home-bin
  // order; pair each unpaired period with its back-intersect partner.
  std::vector<std::size_t> intersecting;
  for (std::size_t s = 0; s < d.sub_periods.size(); ++s) {
    if (d.sub_periods[s].intersecting) intersecting.push_back(s);
  }
  std::sort(intersecting.begin(), intersecting.end(),
            [&](std::size_t a, std::size_t b) {
              return d.sub_periods[a].bin < d.sub_periods[b].bin ||
                     (d.sub_periods[a].bin == d.sub_periods[b].bin &&
                      d.sub_periods[a].index < d.sub_periods[b].index);
            });
  for (std::size_t s : intersecting) {
    SubPeriod& sub = d.sub_periods[s];
    if (sub.partner) continue;
    // Back-intersect: an intersecting period with a higher home-bin index
    // whose reference period overlaps this one's.
    for (std::size_t other : intersecting) {
      SubPeriod& cand = d.sub_periods[other];
      if (cand.bin <= sub.bin || cand.partner) continue;
      if (cand.reference_bin == sub.reference_bin &&
          std::abs(cand.reference_point - sub.reference_point) < 2.0 * d.delta) {
        sub.partner = other;
        cand.partner = s;
        ++d.joint_period_count;
        break;
      }
    }
  }
  for (std::size_t s : intersecting) {
    if (!d.sub_periods[s].partner) ++d.single_period_count;
  }
  d.non_intersecting_count = d.sub_periods.size() - intersecting.size();

  // Aggregates: equations (4), (5), (7).
  CompensatedSum left_sum;
  CompensatedSum right_sum;
  CompensatedSum total_sum;
  for (std::size_t i = 0; i < m; ++i) {
    left_sum.add(d.left_part[i].length());
    right_sum.add(d.right_part[i].length());
    total_sum.add(d.usage[i].length());
  }
  d.sum_left_lengths = left_sum.value();
  d.span = right_sum.value();
  d.ff_total = total_sum.value();
  return d;
}

DecompositionReport verify_ff_decomposition(const Instance& instance,
                                            const SimulationResult& result,
                                            const FFDecomposition& d,
                                            const CostModel& model,
                                            std::optional<double> small_item_k) {
  model.validate();
  DecompositionReport report;
  const double eps = 1e-9 * std::max(1.0, d.delta);
  const double two_delta = 2.0 * d.delta;
  auto violate = [&](std::string message) {
    report.violations.push_back(std::move(message));
  };

  // ---- Features (f.1)-(f.5) and reference existence.
  report.features_ok = true;
  std::map<BinId, std::size_t> subs_per_bin;
  for (const SubPeriod& sub : d.sub_periods) ++subs_per_bin[sub.bin];
  for (const SubPeriod& sub : d.sub_periods) {
    const double len = sub.interval.length();
    if (len > (d.mu + 4.0) * d.delta + eps) {
      report.features_ok = false;
      violate(strfmt("f.1: sub-period (%llu,%zu) has length %.9g > (mu+4)Delta",
                     static_cast<unsigned long long>(sub.bin), sub.index, len));
    }
    if (sub.index >= 2 &&
        std::abs(len - (d.mu + 2.0) * d.delta) > eps) {
      report.features_ok = false;
      violate(strfmt("f.2: sub-period (%llu,%zu) length %.9g != (mu+2)Delta",
                     static_cast<unsigned long long>(sub.bin), sub.index, len));
    }
    if (sub.index == 1 && subs_per_bin[sub.bin] >= 2 && len < two_delta - eps) {
      report.features_ok = false;
      violate(strfmt("f.3: first sub-period of bin %llu has length %.9g < 2Delta",
                     static_cast<unsigned long long>(sub.bin), len));
    }
    if (sub.index == 1 &&
        std::abs(sub.reference_point - sub.interval.begin) > eps) {
      report.features_ok = false;
      violate(strfmt("f.4: t_{%llu,1} = %.9g != left endpoint %.9g",
                     static_cast<unsigned long long>(sub.bin), sub.reference_point,
                     sub.interval.begin));
    }
    if (sub.reference_point < sub.interval.begin - eps ||
        sub.reference_point > sub.interval.begin + d.mu * d.delta + eps) {
      report.features_ok = false;
      violate(strfmt("f.5: t_{%llu,%zu} outside [begin, begin + mu*Delta]",
                     static_cast<unsigned long long>(sub.bin), sub.index));
    }
    if (sub.reference_bin == sub.bin) {
      report.features_ok = false;
      violate(strfmt("reference bin/point missing for sub-period (%llu,%zu)",
                     static_cast<unsigned long long>(sub.bin), sub.index));
    }
  }

  // ---- Lemmas 1-3 over all intersecting reference-period pairs.
  report.lemma1_ok = true;
  report.lemma2_ok = true;
  report.lemma3_ok = true;
  std::vector<std::size_t> front_count(d.sub_periods.size(), 0);
  std::vector<std::size_t> back_count(d.sub_periods.size(), 0);
  for (std::size_t a = 0; a < d.sub_periods.size(); ++a) {
    for (std::size_t b = a + 1; b < d.sub_periods.size(); ++b) {
      const SubPeriod& pa = d.sub_periods[a];
      const SubPeriod& pb = d.sub_periods[b];
      if (pa.reference_bin == pa.bin || pb.reference_bin == pb.bin) continue;
      const bool intersect =
          pa.reference_bin == pb.reference_bin &&
          std::abs(pa.reference_point - pb.reference_point) < two_delta - eps;
      if (!intersect) continue;
      const bool case_v = pa.bin != pb.bin && pa.index == 1 && pb.index == 1;
      if (!case_v) {
        report.lemma1_ok = false;
        violate(strfmt("lemma 1: non-Case-V intersection between (%llu,%zu) and "
                       "(%llu,%zu)",
                       static_cast<unsigned long long>(pa.bin), pa.index,
                       static_cast<unsigned long long>(pb.bin), pb.index));
        continue;
      }
      const SubPeriod& front = pa.bin < pb.bin ? pa : pb;
      const SubPeriod& back = pa.bin < pb.bin ? pb : pa;
      if (front.interval.length() >= two_delta - eps) {
        report.lemma2_ok = false;
        violate(strfmt("lemma 2: front period of bin %llu has length %.9g >= 2Delta",
                       static_cast<unsigned long long>(front.bin),
                       front.interval.length()));
      }
      const std::size_t front_idx = pa.bin < pb.bin ? a : b;
      const std::size_t back_idx = pa.bin < pb.bin ? b : a;
      if (++back_count[front_idx] > 1) {
        report.lemma3_ok = false;
        violate(strfmt("lemma 3: bin %llu has two back-intersect periods",
                       static_cast<unsigned long long>(front.bin)));
      }
      if (++front_count[back_idx] > 1) {
        report.lemma3_ok = false;
        violate(strfmt("lemma 3: bin %llu has two front-intersect periods",
                       static_cast<unsigned long long>(back.bin)));
      }
    }
  }

  // ---- Lemma 4: the reference periods of joint-periods (represented by
  // their lower-bin member), single periods and non-intersecting periods
  // are pairwise disjoint.
  report.lemma4_ok = true;
  {
    std::map<BinId, std::vector<Time>> counted;  // reference bin -> points
    for (std::size_t s = 0; s < d.sub_periods.size(); ++s) {
      const SubPeriod& sub = d.sub_periods[s];
      if (sub.reference_bin == sub.bin) continue;
      if (sub.partner && d.sub_periods[*sub.partner].bin < sub.bin) {
        continue;  // higher member of a joint-period: not counted
      }
      counted[sub.reference_bin].push_back(sub.reference_point);
    }
    for (auto& [bin, points] : counted) {
      std::sort(points.begin(), points.end());
      for (std::size_t idx = 0; idx + 1 < points.size(); ++idx) {
        if (points[idx + 1] - points[idx] < two_delta - eps) {
          report.lemma4_ok = false;
          violate(strfmt("lemma 4: counted reference periods overlap on bin %llu",
                         static_cast<unsigned long long>(bin)));
        }
      }
    }
  }

  // ---- Lemma 5: auxiliary periods (home bin, [t-Delta, t+Delta]) are
  // pairwise disjoint.
  report.lemma5_ok = true;
  {
    std::map<BinId, std::vector<Time>> aux;
    for (const SubPeriod& sub : d.sub_periods) aux[sub.bin].push_back(sub.reference_point);
    for (auto& [bin, points] : aux) {
      std::sort(points.begin(), points.end());
      for (std::size_t idx = 0; idx + 1 < points.size(); ++idx) {
        if (points[idx + 1] - points[idx] < two_delta - eps) {
          report.lemma5_ok = false;
          violate(strfmt("lemma 5: auxiliary periods overlap on bin %llu",
                         static_cast<unsigned long long>(bin)));
        }
      }
    }
  }

  // ---- Demand inequalities (8) / (14).
  report.demand_ok = true;
  {
    std::vector<std::vector<const Item*>> by_bin(result.bins_opened);
    for (const Item& item : instance.items()) {
      by_bin[static_cast<std::size_t>(result.assignment[item.id])].push_back(&item);
    }
    for (auto& items : by_bin) {
      std::sort(items.begin(), items.end(), [](const Item* a, const Item* b) {
        return a->arrival < b->arrival;
      });
    }
    const double w = model.bin_capacity;
    const double slack = 1e-6 * w * d.delta;
    for (const SubPeriod& sub : d.sub_periods) {
      if (sub.reference_bin == sub.bin) continue;
      const TimeInterval window{sub.reference_point - d.delta,
                                sub.reference_point + d.delta};
      const double ref_demand = demand_over_window(
          by_bin[static_cast<std::size_t>(sub.reference_bin)],
          sub.reference_point, window);
      if (small_item_k) {
        // Inequality (8): u(p-dagger) >= (W - W/k) * Delta.
        const double bound = (1.0 - 1.0 / *small_item_k) * w * d.delta;
        if (ref_demand < bound - slack) {
          report.demand_ok = false;
          violate(strfmt("ineq (8): u(ref period of (%llu,%zu)) = %.9g < "
                         "(1-1/k)*W*Delta = %.9g",
                         static_cast<unsigned long long>(sub.bin), sub.index,
                         ref_demand, bound));
        }
      } else {
        // Inequality (14): u(p-dagger) + u(p-double-dagger) >= W * Delta.
        const double aux_demand = demand_over_window(
            by_bin[static_cast<std::size_t>(sub.bin)], sub.reference_point,
            window);
        if (ref_demand + aux_demand < w * d.delta - slack) {
          report.demand_ok = false;
          violate(strfmt("ineq (14): u(ref)+u(aux) of (%llu,%zu) = %.9g < W*Delta",
                         static_cast<unsigned long long>(sub.bin), sub.index,
                         ref_demand + aux_demand));
        }
      }
    }
  }

  // ---- Inequality (10): FF_total <= (J+S+U)(mu+6)Delta + span (C = 1).
  report.cost_bound_ok = d.ff_total <= d.cost_bound(1.0) + 1e-6;
  if (!report.cost_bound_ok) {
    violate(strfmt("ineq (10): FF_total %.9g > bound %.9g", d.ff_total,
                   d.cost_bound(1.0)));
  }
  return report;
}

}  // namespace dbp
