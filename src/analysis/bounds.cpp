#include "analysis/bounds.hpp"

#include <algorithm>

namespace dbp {

std::optional<double> proven_bound_for(const std::string& algorithm, double mu,
                                       std::optional<double> small_k,
                                       std::optional<double> large_k) {
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  if (algorithm == "first-fit") {
    double bound = ff_general_bound(mu);
    if (small_k) bound = std::min(bound, ff_small_items_bound(*small_k, mu));
    if (large_k) bound = std::min(bound, ff_large_items_bound(*large_k));
    return bound;
  }
  if (algorithm == "modified-first-fit") return mff_bound(mu);
  if (algorithm == "modified-first-fit-known-mu") return mff_known_mu_bound(mu);
  // Best Fit is proven unbounded (Theorem 2); the other family members have
  // no bound in the paper.
  return std::nullopt;
}

}  // namespace dbp
