#include "analysis/table.hpp"

#include <algorithm>
#include <ostream>

#include "core/error.hpp"
#include "core/strfmt.hpp"

namespace dbp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DBP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DBP_REQUIRE(cells.size() == headers_.size(),
              strfmt("row has %zu cells, table has %zu columns", cells.size(),
                     headers_.size()));
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  return strfmt("%.*f", precision, value);
}

std::string Table::integer(long long value) { return strfmt("%lld", value); }

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << strfmt("%*s", static_cast<int>(widths[c]), row[c].c_str());
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& out) const {
  const auto escape = [](const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string quoted = "\"";
    for (char ch : field) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << escape(row[c]);
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace dbp
