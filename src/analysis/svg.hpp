// Standalone SVG rendering of packing runs — no external dependencies.
//
// Two views:
//   * bin Gantt: one horizontal band per bin (x = time, band height =
//     capacity), items drawn as rectangles stacked by a first-fit vertical
//     layout — the picture behind the paper's Figures 2-3;
//   * open-bins staircase: n(t) for one or more algorithms overlaid, i.e.
//     the cost integrand the MinTotal objective accumulates.
//
// Output is a self-contained <svg> document string; write it to a .svg file
// and open in any browser.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/step_function.hpp"
#include "sim/simulator.hpp"

namespace dbp {

struct SvgOptions {
  int width = 960;          ///< total canvas width, px
  int band_height = 48;     ///< per-bin band height (gantt), px
  int chart_height = 320;   ///< plot height (staircase), px
  std::string title;        ///< optional heading
  bool show_item_ids = true;  ///< label item rectangles (gantt)

  void validate() const;
};

/// Renders the per-bin item layout of a finished run.
[[nodiscard]] std::string render_bin_gantt_svg(const Instance& instance,
                                               const SimulationResult& result,
                                               const SvgOptions& options = {});

/// One labelled n(t) series.
struct TimelineSeries {
  std::string label;
  const StepFunction* function = nullptr;  ///< finalized; not owned
};

/// Renders one or more n(t) staircases over a shared time axis.
[[nodiscard]] std::string render_open_bins_svg(
    const std::vector<TimelineSeries>& series, const SvgOptions& options = {});

}  // namespace dbp
