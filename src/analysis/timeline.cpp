#include "analysis/timeline.hpp"

#include <ostream>

#include "core/error.hpp"
#include "core/strfmt.hpp"

namespace dbp {

void write_step_function_csv(const StepFunction& function, std::ostream& out) {
  out << "time,value\n";
  for (const StepFunction::Breakpoint& bp : function.breakpoints()) {
    out << strfmt("%.17g,%lld\n", bp.time, static_cast<long long>(bp.value));
  }
  DBP_REQUIRE(out.good(), "step function csv write failed");
}

void write_bin_usage_csv(const SimulationResult& result, std::ostream& out) {
  out << "bin,opened,closed,usage_length\n";
  for (const BinUsageRecord& record : result.bin_usage) {
    out << strfmt("%llu,%.17g,%.17g,%.17g\n",
                  static_cast<unsigned long long>(record.id), record.opened,
                  record.closed, record.usage_length());
  }
  DBP_REQUIRE(out.good(), "bin usage csv write failed");
}

void write_assignment_csv(const Instance& instance, const SimulationResult& result,
                          std::ostream& out) {
  DBP_REQUIRE(result.assignment.size() == instance.size(),
              "simulation result does not match the instance");
  out << "item,bin,arrival,departure,size\n";
  for (const Item& item : instance.items()) {
    out << strfmt("%llu,%llu,%.17g,%.17g,%.17g\n",
                  static_cast<unsigned long long>(item.id),
                  static_cast<unsigned long long>(
                      result.assignment[static_cast<std::size_t>(item.id)]),
                  item.arrival, item.departure, item.size);
  }
  DBP_REQUIRE(out.good(), "assignment csv write failed");
}

void write_sampled_open_bins_csv(const SimulationResult& result,
                                 std::size_t samples, std::ostream& out) {
  DBP_REQUIRE(samples >= 2, "need at least 2 samples");
  out << "time,open_bins\n";
  const TimeInterval period = result.packing_period;
  for (std::size_t s = 0; s < samples; ++s) {
    const Time t = period.begin + (period.end - period.begin) *
                                      static_cast<double>(s) /
                                      static_cast<double>(samples - 1);
    out << strfmt("%.17g,%lld\n", t,
                  static_cast<long long>(result.open_bins_over_time.value_at(t)));
  }
  DBP_REQUIRE(out.good(), "sampled open-bins csv write failed");
}

}  // namespace dbp
