// Fixed-width console tables and CSV emission for experiment reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dbp {

/// A simple right-aligned text table: every bench binary prints one of
/// these per reproduced paper artifact, paper-predicted columns next to
/// measured ones.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  [[nodiscard]] static std::string num(double value, int precision = 3);
  [[nodiscard]] static std::string integer(long long value);

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t column_count() const noexcept { return headers_.size(); }

  /// Prints with a header underline, columns padded to content width.
  void print(std::ostream& out) const;

  /// RFC-4180-lite CSV (fields containing commas/quotes are quoted).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dbp
