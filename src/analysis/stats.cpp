#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "core/compensated_sum.hpp"

namespace dbp {

double percentile(std::span<const double> values, double q) {
  DBP_REQUIRE(!values.empty(), "percentile of an empty sample");
  DBP_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0, 1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(position);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = position - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SummaryStats summarize(std::span<const double> values) {
  DBP_REQUIRE(!values.empty(), "summary of an empty sample");
  SummaryStats stats;
  stats.count = values.size();
  CompensatedSum sum;
  stats.min = values.front();
  stats.max = values.front();
  for (double v : values) {
    sum.add(v);
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum.value() / static_cast<double>(values.size());
  if (values.size() > 1) {
    CompensatedSum sq;
    for (double v : values) sq.add((v - stats.mean) * (v - stats.mean));
    stats.stddev = std::sqrt(sq.value() / static_cast<double>(values.size() - 1));
  }
  stats.p50 = percentile(values, 0.50);
  stats.p95 = percentile(values, 0.95);
  return stats;
}

}  // namespace dbp
