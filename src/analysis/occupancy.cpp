#include "analysis/occupancy.hpp"

#include <vector>

#include "core/compensated_sum.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"

namespace dbp {

OccupancyReport compute_occupancy(const Instance& instance,
                                  const SimulationResult& result,
                                  const CostModel& model) {
  model.validate();
  DBP_REQUIRE(!instance.empty() && result.bins_opened > 0,
              "occupancy of an empty run");
  DBP_REQUIRE(result.assignment.size() == instance.size(),
              "simulation result does not match the instance");

  OccupancyReport report;
  report.used_volume = total_demand_of(instance);

  CompensatedSum paid_time;
  std::vector<double> lifetimes;
  lifetimes.reserve(result.bins_opened);
  for (const BinUsageRecord& record : result.bin_usage) {
    paid_time.add(record.usage_length());
    lifetimes.push_back(record.usage_length());
  }
  report.paid_volume = paid_time.value() * model.bin_capacity;
  DBP_CHECK(report.paid_volume > 0.0, "paid volume must be positive");
  report.utilization = report.used_volume / report.paid_volume;
  report.mean_level = report.utilization * model.bin_capacity;
  report.bin_lifetime = summarize(lifetimes);

  std::vector<double> counts(result.bins_opened, 0.0);
  for (const BinId bin : result.assignment) {
    counts[static_cast<std::size_t>(bin)] += 1.0;
  }
  report.items_per_bin = summarize(counts);

  const double period = result.packing_period.length();
  report.busy_fraction =
      period > 0.0 ? result.open_bins_over_time.measure_positive() / period : 0.0;
  return report;
}

}  // namespace dbp
