// OpenMP-parallel parameter sweeps.
//
// Experiment harnesses build a flat list of independent jobs (one per sweep
// cell / seed) and map them in parallel. Results land at the job's index, so
// output order is deterministic regardless of the schedule.
#pragma once

#include <cstddef>
#include <exception>
#include <vector>

#if defined(DBP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace dbp {

/// Applies `fn(job)` to every element of `jobs` in parallel and returns the
/// results in order. `fn` must be safe to call concurrently on distinct
/// jobs. The first exception thrown by any job is rethrown after the loop.
template <typename Job, typename Fn>
auto parallel_map(const std::vector<Job>& jobs, Fn&& fn)
    -> std::vector<decltype(fn(jobs.front()))> {
  using Result = decltype(fn(jobs.front()));
  std::vector<Result> results(jobs.size());
  if (jobs.empty()) return results;
  std::exception_ptr error;

  // Signed induction variable: unsigned ones break OpenMP 2.0 / MSVC builds.
  const auto job_count = static_cast<std::ptrdiff_t>(jobs.size());
#if defined(DBP_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::ptrdiff_t i = 0; i < job_count; ++i) {  // NOLINT(modernize-loop-convert)
    const auto index = static_cast<std::size_t>(i);
    try {
      results[index] = fn(jobs[index]);
    } catch (...) {
#if defined(DBP_HAVE_OPENMP)
#pragma omp critical(dbp_parallel_map_error)
#endif
      {
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
  return results;
}

/// Number of worker threads parallel_map will use.
[[nodiscard]] inline int parallel_worker_count() {
#if defined(DBP_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Caps the worker count for subsequent parallel_map calls (CLI --threads
/// plumbing). `threads` <= 0 keeps the runtime default; a no-op without
/// OpenMP.
inline void set_parallel_worker_count(int threads) {
#if defined(DBP_HAVE_OPENMP)
  if (threads > 0) omp_set_num_threads(threads);
#else
  (void)threads;
#endif
}

}  // namespace dbp
