// OpenMP-parallel parameter sweeps.
//
// Experiment harnesses build a flat list of independent jobs (one per sweep
// cell / seed) and map them in parallel. Results land at the job's index, so
// output order is deterministic regardless of the schedule.
#pragma once

#include <cstddef>
#include <exception>
#include <vector>

#if defined(DBP_HAVE_OPENMP)
#include <omp.h>
#endif

namespace dbp {

/// Applies `fn(job)` to every element of `jobs` in parallel and returns the
/// results in order. `fn` must be safe to call concurrently on distinct
/// jobs. The first exception thrown by any job is rethrown after the loop.
template <typename Job, typename Fn>
auto parallel_map(const std::vector<Job>& jobs, Fn&& fn)
    -> std::vector<decltype(fn(jobs.front()))> {
  using Result = decltype(fn(jobs.front()));
  std::vector<Result> results(jobs.size());
  std::exception_ptr error;

#if defined(DBP_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (std::size_t i = 0; i < jobs.size(); ++i) {  // NOLINT(modernize-loop-convert)
    try {
      results[i] = fn(jobs[i]);
    } catch (...) {
#if defined(DBP_HAVE_OPENMP)
#pragma omp critical(dbp_parallel_map_error)
#endif
      {
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
  return results;
}

/// Number of worker threads parallel_map will use.
[[nodiscard]] inline int parallel_worker_count() {
#if defined(DBP_HAVE_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

}  // namespace dbp
