// The paper's competitive-ratio guarantees as callable formulas.
//
// One authoritative implementation for tests, benches and reports, instead
// of formula copies drifting apart. Every function returns the *proven
// upper bound* on A_total / OPT_total for the given workload parameters.
#pragma once

#include <optional>
#include <string>

#include "core/error.hpp"

namespace dbp {

/// Theorem 5: First Fit, general case — 2*mu + 13.
[[nodiscard]] inline double ff_general_bound(double mu) {
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  return 2.0 * mu + 13.0;
}

/// Theorem 4: First Fit when all sizes < W/k —
/// k/(k-1)*mu + 6k/(k-1) + 1, k > 1.
[[nodiscard]] inline double ff_small_items_bound(double k, double mu) {
  DBP_REQUIRE(k > 1.0, "k must be > 1");
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  return k / (k - 1.0) * mu + 6.0 * k / (k - 1.0) + 1.0;
}

/// Theorem 3: First Fit when all sizes >= W/k — k.
[[nodiscard]] inline double ff_large_items_bound(double k) {
  DBP_REQUIRE(k > 1.0, "k must be > 1");
  return k;
}

/// Section 4.4, mu unknown (split k = 8): 8/7*mu + 55/7.
[[nodiscard]] inline double mff_bound(double mu) {
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  return 8.0 / 7.0 * mu + 55.0 / 7.0;
}

/// Section 4.4, mu known (split k = mu + 7): mu + 8.
[[nodiscard]] inline double mff_known_mu_bound(double mu) {
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  return mu + 8.0;
}

/// Section 4.4 intermediate: the guarantee of MFF with an arbitrary split
/// parameter k — max{k, (mu+6)/(1-1/k)} + 1 (the "+1" is the span term).
[[nodiscard]] inline double mff_bound_for_split(double k, double mu) {
  DBP_REQUIRE(k > 1.0, "k must be > 1");
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  const double demand_term = std::max(k, (mu + 6.0) / (1.0 - 1.0 / k));
  return demand_term + 1.0;
}

/// Theorem 1: lower bound achieved by the construction with parameter k —
/// k*mu/(k + mu - 1); sup over k is mu.
[[nodiscard]] inline double anyfit_construction_ratio(double k, double mu) {
  DBP_REQUIRE(k >= 1.0, "k must be >= 1");
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  return k * mu / (k + mu - 1.0);
}

/// Theorem 1 (limit form): every Any Fit algorithm — and by the paper's
/// footnote, every online algorithm — has competitive ratio >= mu.
[[nodiscard]] inline double universal_lower_bound(double mu) {
  DBP_REQUIRE(mu >= 1.0, "mu must be >= 1");
  return mu;
}

/// The proven upper bound for a factory algorithm name, when one exists.
/// `small_k` / `large_k` communicate size restrictions of the workload
/// (all sizes < W/small_k, or all sizes >= W/large_k).
[[nodiscard]] std::optional<double> proven_bound_for(
    const std::string& algorithm, double mu,
    std::optional<double> small_k = std::nullopt,
    std::optional<double> large_k = std::nullopt);

}  // namespace dbp
