// The adaptive form of the Theorem 1 adversary.
//
// The paper's footnote to Theorem 1 observes that the construction lower-
// bounds *any* online algorithm, not just the Any Fit family. The static
// generator (adversary_anyfit.hpp) hardcodes the grouping that Any Fit
// algorithms produce; this adaptive engine instead *probes* the target
// algorithm: it feeds the k^2 equal-size items, inspects which bins the
// algorithm actually opened, and then schedules departures so that exactly
// one item survives per opened bin until mu*Delta. The resulting instance
// is tailored to that algorithm (and that seed, for randomized ones).
//
// For any online algorithm that opens m bins in phase one, the forced cost
// is >= m*Delta + (number of open bins)*(mu-1)*Delta while the optimum
// repacks the survivors into ceil(survivors * s / W) bins — the mu lower
// bound machinery, algorithm-independent.
#pragma once

#include <functional>
#include <memory>

#include "algo/packer.hpp"
#include "core/instance.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"

namespace dbp {

struct AdaptiveAdversaryConfig {
  std::size_t k = 10;  ///< k^2 items of size W/k
  double mu = 4.0;     ///< interval length ratio
  Time delta = 1.0;
  double bin_capacity = 1.0;

  void validate() const;
};

struct AdaptiveAdversaryOutcome {
  /// The instance the adversary constructed against this algorithm.
  Instance instance;
  /// Bins the algorithm opened in the probe phase (k for Any Fit members).
  std::size_t probe_bins = 0;
  /// Full replay of the constructed instance against a fresh packer.
  SimulationResult replay;
  /// Certified OPT bounds (exact: all sizes are equal).
  OptTotalResult opt;
  /// replay cost / OPT upper bound.
  double ratio = 0.0;
};

/// Builds a fresh packer of the targeted configuration; called twice (probe
/// + replay), so it must return identically-behaving packers (same seed for
/// randomized algorithms).
using PackerFactoryFn = std::function<std::unique_ptr<Packer>()>;

/// Runs the adaptive adversary. The target must be an *online* packer
/// (clairvoyant packers are rejected: the adversary decides departures
/// after placement, so promising them up front would be a different game).
[[nodiscard]] AdaptiveAdversaryOutcome run_adaptive_adversary(
    const PackerFactoryFn& make_packer, const AdaptiveAdversaryConfig& config);

}  // namespace dbp
