#include "analysis/svg.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.hpp"
#include "core/strfmt.hpp"

namespace dbp {

namespace {

constexpr int kMarginLeft = 56;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 34;
constexpr int kMarginBottom = 30;

std::string escape_xml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char ch : text) {
    switch (ch) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += ch;
    }
  }
  return out;
}

/// Deterministic pleasant color per index (golden-angle hue rotation).
std::string color_for(std::size_t index) {
  const int hue = static_cast<int>((static_cast<double>(index) * 137.508));
  return strfmt("hsl(%d,68%%,62%%)", hue % 360);
}

void open_svg(std::ostringstream& out, int width, int height,
              const std::string& title) {
  out << strfmt(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\" font-family=\"sans-serif\">\n",
      width, height, width, height);
  out << strfmt("<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n", width,
                height);
  if (!title.empty()) {
    out << strfmt(
        "<text x=\"%d\" y=\"22\" font-size=\"15\" font-weight=\"bold\">"
        "%s</text>\n",
        kMarginLeft, escape_xml(title).c_str());
  }
}

void draw_time_axis(std::ostringstream& out, int width, int axis_y,
                    TimeInterval period) {
  out << strfmt(
      "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#444\"/>\n",
      kMarginLeft, axis_y, width - kMarginRight, axis_y);
  const int ticks = 8;
  for (int t = 0; t <= ticks; ++t) {
    const double frac = static_cast<double>(t) / ticks;
    const int x = kMarginLeft + static_cast<int>(
                                    frac * (width - kMarginLeft - kMarginRight));
    const double value = period.begin + frac * period.length();
    out << strfmt(
        "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#444\"/>\n", x,
        axis_y, x, axis_y + 4);
    out << strfmt(
        "<text x=\"%d\" y=\"%d\" font-size=\"10\" text-anchor=\"middle\" "
        "fill=\"#333\">%.4g</text>\n",
        x, axis_y + 16, value);
  }
}

}  // namespace

void SvgOptions::validate() const {
  DBP_REQUIRE(width >= 200, "svg width must be >= 200");
  DBP_REQUIRE(band_height >= 16, "band height must be >= 16");
  DBP_REQUIRE(chart_height >= 80, "chart height must be >= 80");
}

std::string render_bin_gantt_svg(const Instance& instance,
                                 const SimulationResult& result,
                                 const SvgOptions& options) {
  options.validate();
  DBP_REQUIRE(!instance.empty() && result.bins_opened > 0,
              "cannot render an empty run");
  DBP_REQUIRE(result.assignment.size() == instance.size(),
              "simulation result does not match the instance");

  const TimeInterval period = result.packing_period;
  const int bands = static_cast<int>(result.bins_opened);
  const int height =
      kMarginTop + bands * (options.band_height + 6) + kMarginBottom;
  const int plot_width = options.width - kMarginLeft - kMarginRight;
  const auto x_of = [&](Time t) {
    return kMarginLeft +
           (t - period.begin) / period.length() * static_cast<double>(plot_width);
  };

  std::ostringstream out;
  open_svg(out, options.width, height, options.title);

  // First-fit vertical layout per bin: an item takes the lowest free
  // vertical slot over its whole lifetime. Continuous sizes can fragment
  // (no contiguous slot although capacity suffices); such items are drawn
  // at the lowest position regardless, with extra transparency.
  struct Placed {
    double y0, y1;
    TimeInterval interval;
  };
  std::vector<std::vector<Placed>> layout(result.bins_opened);

  for (std::size_t b = 0; b < result.bins_opened; ++b) {
    const BinUsageRecord& usage = result.bin_usage[b];
    const int band_top =
        kMarginTop + static_cast<int>(b) * (options.band_height + 6);
    out << strfmt(
        "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"#eee\" "
        "stroke=\"#999\"/>\n",
        x_of(usage.opened), band_top, x_of(usage.closed) - x_of(usage.opened),
        options.band_height);
    out << strfmt(
        "<text x=\"%d\" y=\"%d\" font-size=\"11\" fill=\"#333\">bin %zu"
        "</text>\n",
        6, band_top + options.band_height / 2 + 4, b);
  }

  const double capacity_px = static_cast<double>(options.band_height);
  for (const Item& item : instance.items()) {
    const auto b = static_cast<std::size_t>(result.assignment[item.id]);
    const int band_top =
        kMarginTop + static_cast<int>(b) * (options.band_height + 6);
    // Find the lowest y (fraction of capacity) free across the lifetime.
    double y = 0.0;
    bool clean = false;
    for (int attempt = 0; attempt < 64 && !clean; ++attempt) {
      clean = true;
      for (const Placed& placed : layout[b]) {
        if (!placed.interval.overlaps(item.interval())) continue;
        if (y < placed.y1 && placed.y0 < y + item.size) {
          y = placed.y1;  // bump above the conflict and rescan
          clean = false;
          break;
        }
      }
    }
    const bool overflow = y + item.size > 1.0 + 1e-9;
    if (overflow) y = 0.0;  // fragmented: draw translucent at the bottom
    layout[b].push_back({y, y + item.size, item.interval()});

    const double rect_y =
        band_top + capacity_px * (1.0 - y - item.size);
    out << strfmt(
        "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"%s\" fill-opacity=\"%.2f\" stroke=\"#555\" "
        "stroke-width=\"0.5\"><title>item %llu size %.3g [%.4g, %.4g)"
        "</title></rect>\n",
        x_of(item.arrival), rect_y, x_of(item.departure) - x_of(item.arrival),
        capacity_px * item.size, color_for(item.id).c_str(),
        overflow ? 0.45 : 0.85, static_cast<unsigned long long>(item.id),
        item.size, item.arrival, item.departure);
    if (options.show_item_ids && instance.size() <= 200) {
      out << strfmt(
          "<text x=\"%.1f\" y=\"%.1f\" font-size=\"9\" fill=\"#222\">%llu"
          "</text>\n",
          x_of(item.arrival) + 2.0, rect_y + capacity_px * item.size - 2.0,
          static_cast<unsigned long long>(item.id));
    }
  }

  draw_time_axis(out, options.width, height - kMarginBottom + 4, period);
  out << "</svg>\n";
  return out.str();
}

std::string render_open_bins_svg(const std::vector<TimelineSeries>& series,
                                 const SvgOptions& options) {
  options.validate();
  DBP_REQUIRE(!series.empty(), "need at least one series");
  TimeInterval period{0.0, 0.0};
  std::int64_t max_value = 1;
  bool first = true;
  for (const TimelineSeries& entry : series) {
    DBP_REQUIRE(entry.function != nullptr && entry.function->finalized(),
                "series must hold finalized step functions");
    const auto& breakpoints = entry.function->breakpoints();
    if (breakpoints.empty()) continue;
    const Time begin = breakpoints.front().time;
    const Time end = breakpoints.back().time;
    if (first) {
      period = {begin, end};
      first = false;
    } else {
      period.begin = std::min(period.begin, begin);
      period.end = std::max(period.end, end);
    }
    max_value = std::max(max_value, entry.function->max_value());
  }
  DBP_REQUIRE(!first && !period.empty(), "all series are empty");

  const int height = kMarginTop + options.chart_height + kMarginBottom;
  const int plot_width = options.width - kMarginLeft - kMarginRight;
  const auto x_of = [&](Time t) {
    return kMarginLeft +
           (t - period.begin) / period.length() * static_cast<double>(plot_width);
  };
  const auto y_of = [&](std::int64_t v) {
    return kMarginTop + options.chart_height *
                            (1.0 - static_cast<double>(v) /
                                       static_cast<double>(max_value));
  };

  std::ostringstream out;
  open_svg(out, options.width, height, options.title);

  // Horizontal grid lines + y labels.
  const int y_ticks = std::min<std::int64_t>(max_value, 8);
  for (int t = 0; t <= y_ticks; ++t) {
    const auto value = static_cast<std::int64_t>(
        std::llround(static_cast<double>(max_value) * t / y_ticks));
    out << strfmt(
        "<line x1=\"%d\" y1=\"%.1f\" x2=\"%d\" y2=\"%.1f\" stroke=\"#ddd\"/>\n",
        kMarginLeft, y_of(value), options.width - kMarginRight, y_of(value));
    out << strfmt(
        "<text x=\"%d\" y=\"%.1f\" font-size=\"10\" text-anchor=\"end\" "
        "fill=\"#333\">%lld</text>\n",
        kMarginLeft - 6, y_of(value) + 3, static_cast<long long>(value));
  }

  for (std::size_t s = 0; s < series.size(); ++s) {
    const auto& breakpoints = series[s].function->breakpoints();
    if (breakpoints.empty()) continue;
    std::ostringstream points;
    std::int64_t previous = 0;
    points << strfmt("%.1f,%.1f ", x_of(breakpoints.front().time),
                     y_of(previous));
    for (const StepFunction::Breakpoint& bp : breakpoints) {
      points << strfmt("%.1f,%.1f ", x_of(bp.time), y_of(previous));
      points << strfmt("%.1f,%.1f ", x_of(bp.time), y_of(bp.value));
      previous = bp.value;
    }
    out << strfmt(
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
        "stroke-width=\"1.8\"/>\n",
        points.str().c_str(), color_for(s * 5 + 1).c_str());
    out << strfmt(
        "<text x=\"%d\" y=\"%d\" font-size=\"11\" fill=\"%s\">%s</text>\n",
        kMarginLeft + 8 + static_cast<int>(s) * 150, kMarginTop + 12,
        color_for(s * 5 + 1).c_str(), escape_xml(series[s].label).c_str());
  }

  draw_time_axis(out, options.width, kMarginTop + options.chart_height + 4,
                 period);
  out << "</svg>\n";
  return out.str();
}

}  // namespace dbp
