#include "analysis/adaptive_adversary.hpp"

#include <algorithm>
#include <cmath>

#include "algo/clairvoyant.hpp"
#include "core/error.hpp"

namespace dbp {

void AdaptiveAdversaryConfig::validate() const {
  DBP_REQUIRE(k >= 1, "k must be >= 1");
  DBP_REQUIRE(std::isfinite(mu) && mu >= 1.0, "mu must be >= 1");
  DBP_REQUIRE(std::isfinite(delta) && delta > 0.0, "Delta must be positive");
  DBP_REQUIRE(std::isfinite(bin_capacity) && bin_capacity > 0.0,
              "bin capacity must be positive");
}

AdaptiveAdversaryOutcome run_adaptive_adversary(
    const PackerFactoryFn& make_packer, const AdaptiveAdversaryConfig& config) {
  config.validate();
  const std::size_t item_count = config.k * config.k;
  const double size = config.bin_capacity / static_cast<double>(config.k);
  const Time delta = config.delta;
  const Time mu_delta = config.mu * delta;

  // --- Probe phase: feed all arrivals, observe the packing.
  std::unique_ptr<Packer> probe = make_packer();
  DBP_REQUIRE(probe != nullptr, "packer factory returned null");
  DBP_REQUIRE(dynamic_cast<ClairvoyantPacker*>(probe.get()) == nullptr,
              "the adaptive adversary targets online packers only");
  for (ItemId id = 0; id < item_count; ++id) {
    probe->on_arrival(ArrivingItem{id, 0.0, size});
  }
  AdaptiveAdversaryOutcome outcome;
  outcome.probe_bins = probe->bins().total_bins_opened();

  // Survivor selection: the smallest item id in each open bin stays until
  // mu*Delta; everything else departs at Delta.
  std::vector<bool> survivor(item_count, false);
  for (BinId bin : probe->bins().open_bins()) {
    const std::vector<ItemId> residents = probe->bins().items_in(bin);
    DBP_CHECK(!residents.empty(), "open bin without residents");
    survivor[static_cast<std::size_t>(
        *std::min_element(residents.begin(), residents.end()))] = true;
  }

  outcome.instance.reserve(item_count);
  for (ItemId id = 0; id < item_count; ++id) {
    outcome.instance.add(0.0, survivor[static_cast<std::size_t>(id)] ? mu_delta : delta,
                         size);
  }

  // --- Replay against a fresh, identically-configured packer. Departures
  // happen after every t = 0 placement, so the replayed assignment matches
  // the probe for any deterministic (or identically-seeded) algorithm.
  std::unique_ptr<Packer> target = make_packer();
  outcome.replay = simulate(outcome.instance, *target);
  DBP_CHECK(outcome.replay.bins_opened == outcome.probe_bins,
            "replay diverged from the probe phase");

  outcome.opt = estimate_opt_total(outcome.instance, target->model());
  outcome.ratio = outcome.replay.total_cost / outcome.opt.upper_cost;
  return outcome;
}

}  // namespace dbp
