// Timeline exports: turn packing runs into CSV series for external plotting
// (the n(t) curves of Figures 2-3, per-bin Gantt charts, assignments).
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"
#include "core/step_function.hpp"
#include "sim/simulator.hpp"

namespace dbp {

/// "time,value" rows: one per breakpoint, i.e. the exact staircase. A
/// leading row at the first breakpoint's time with the pre-jump value is
/// omitted (the function is 0 before the first breakpoint).
void write_step_function_csv(const StepFunction& function, std::ostream& out);

/// "bin,opened,closed,usage_length" rows, one per bin, in opening order.
void write_bin_usage_csv(const SimulationResult& result, std::ostream& out);

/// "item,bin,arrival,departure,size" rows, one per item, in item-id order.
void write_assignment_csv(const Instance& instance, const SimulationResult& result,
                          std::ostream& out);

/// Uniformly samples n(t) over the packing period into `samples` rows of
/// "time,open_bins" (useful for quick plotting without staircase handling).
void write_sampled_open_bins_csv(const SimulationResult& result,
                                 std::size_t samples, std::ostream& out);

}  // namespace dbp
