// Competitive-ratio evaluation: run algorithms against an instance, compute
// certified OPT_total bounds once, and report per-algorithm ratio intervals.
#pragma once

#include <string>
#include <vector>

#include "algo/factory.hpp"
#include "core/instance.hpp"
#include "core/metrics.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"

namespace dbp {

/// One algorithm's outcome on one instance.
struct AlgorithmEvaluation {
  std::string algorithm;     ///< factory name the caller asked for
  std::string display_name;  ///< packer's self-description (with parameters)
  double total_cost = 0.0;
  std::int64_t max_open_bins = 0;
  std::size_t bins_opened = 0;
  RatioBounds ratio{};  ///< total_cost / OPT_total interval
};

/// Shared per-instance context plus all algorithm rows.
struct InstanceEvaluation {
  InstanceMetrics metrics{};
  OptTotalResult opt{};
  std::vector<AlgorithmEvaluation> algorithms;

  /// Row lookup by algorithm name; throws when absent.
  [[nodiscard]] const AlgorithmEvaluation& row(const std::string& algorithm) const;
};

struct EvaluateOptions {
  PackerOptions packer{};
  OptTotalOptions opt{};
  /// Auto-fill packer.known_mu from the instance metrics when the algorithm
  /// list contains modified-first-fit-known-mu.
  bool derive_known_mu = true;
};

/// Runs every named algorithm over the instance and computes OPT bounds
/// once. Algorithms see only the online view; the known-mu MFF variant gets
/// the realized mu (a scalar — still no departure times).
[[nodiscard]] InstanceEvaluation evaluate_algorithms(
    const Instance& instance, const std::vector<std::string>& algorithms,
    const CostModel& model, const EvaluateOptions& options = {});

}  // namespace dbp
