// The usage-period decomposition of the paper's First Fit analysis
// (Section 4.3, Figures 4-8, Table 2), implemented as executable
// instrumentation.
//
// Given a First Fit packing trace, this module reconstructs every object
// the proof of Theorems 4-5 manipulates:
//   * per-bin usage periods I_i, their left/right parts I_i^L / I_i^R
//     relative to E_i = max{ I_j^+ : j < i }               (Figure 4)
//   * the split of each I_i^L into sub-periods I_{i,j} of length
//     (mu+2)*Delta with first-piece mergence                (Figure 5)
//   * reference points t_{i,j}, reference bins b†(I_{i,j}) and reference
//     periods [t - Delta, t + Delta]                        (Figure 6)
//   * the joint/single pairing of intersecting Case-V periods (Figure 7)
//   * auxiliary periods on the home bin b_i                 (Figure 8)
//
// verify_ff_decomposition then checks Features (f.1)-(f.5), Lemmas 1-5 and
// the resource-demand inequalities (8), (14) on the *actual* packing —
// turning the proof's invariants into machine-checked properties.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "sim/simulator.hpp"

namespace dbp {

/// One I_{i,j} with everything the proof attaches to it.
struct SubPeriod {
  BinId bin = 0;          ///< i (home bin)
  std::size_t index = 0;  ///< j, 1-based within I_i^L
  TimeInterval interval{};
  Time reference_point = 0.0;  ///< t_{i,j}: earliest new arrival into b_i here
  BinId reference_bin = 0;     ///< b†(I_{i,j})
  bool intersecting = false;   ///< member of I_I^L (vs I_U^L)
  /// Index (into FFDecomposition::sub_periods) of the joint-period partner,
  /// if this period was paired.
  std::optional<std::size_t> partner{};
};

struct FFDecomposition {
  Time delta = 0.0;  ///< minimum interval length
  double mu = 1.0;   ///< max/min interval length ratio

  std::vector<TimeInterval> usage;       ///< I_i, by BinId
  std::vector<Time> latest_prior_close;  ///< E_i, by BinId
  std::vector<TimeInterval> left_part;   ///< I_i^L (empty() when none)
  std::vector<TimeInterval> right_part;  ///< I_i^R (suffix of I_i)
  std::vector<SubPeriod> sub_periods;    ///< all I_{i,j}, grouped by bin

  std::size_t joint_period_count = 0;   ///< |I_I^L(J)|
  std::size_t single_period_count = 0;  ///< |I_I^L(S)|
  std::size_t non_intersecting_count = 0;  ///< |I_U^L|

  double sum_left_lengths = 0.0;  ///< sum of len(I_i^L), equation (7)
  double span = 0.0;              ///< span(R) = sum of len(I_i^R), eq. (5)
  double ff_total = 0.0;          ///< C * sum len(I_i), equation (4)

  /// Right side of inequality (10):
  /// C*(|J|+|S|+|U|)*(mu+6)*Delta + C*span(R); always >= ff_total.
  [[nodiscard]] double cost_bound(double cost_rate) const;
};

/// Builds the decomposition from a First Fit run. `result` must come from
/// a packer whose bin ids are in opening order and which used First Fit
/// placement (this is asserted structurally where possible; feeding a
/// non-FF trace makes verification fail, which is itself a useful test).
[[nodiscard]] FFDecomposition decompose_first_fit(const Instance& instance,
                                                  const SimulationResult& result);

/// Outcome of checking the proof's invariants against a decomposition.
struct DecompositionReport {
  bool features_ok = false;      ///< (f.1)-(f.5)
  bool lemma1_ok = false;        ///< no Case I-IV intersections
  bool lemma2_ok = false;        ///< Case-V intersect => first period < 2*Delta
  bool lemma3_ok = false;        ///< <= 1 front- and <= 1 back-intersect
  bool lemma4_ok = false;        ///< joint/single reference periods disjoint
  bool lemma5_ok = false;        ///< auxiliary periods pairwise disjoint
  bool demand_ok = false;        ///< inequalities (8)/(14)
  bool cost_bound_ok = false;    ///< inequality (10)
  std::vector<std::string> violations;

  [[nodiscard]] bool all_ok() const {
    return features_ok && lemma1_ok && lemma2_ok && lemma3_ok && lemma4_ok &&
           lemma5_ok && demand_ok && cost_bound_ok;
  }
};

/// Verifies the proof invariants on a concrete packing. When
/// `small_item_k` is set (all sizes < W/k), inequality (8) is checked with
/// the (1 - 1/k)*W*Delta bound of Theorem 4; otherwise the general pairing
/// inequality (14) (reference + auxiliary demand >= W*Delta) is checked.
[[nodiscard]] DecompositionReport verify_ff_decomposition(
    const Instance& instance, const SimulationResult& result,
    const FFDecomposition& decomposition, const CostModel& model,
    std::optional<double> small_item_k = std::nullopt);

}  // namespace dbp
