// Small summary-statistics helpers for experiment reports.
#pragma once

#include <span>
#include <vector>

#include "core/error.hpp"

namespace dbp {

struct SummaryStats {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Computes summary statistics; requires a non-empty sample.
[[nodiscard]] SummaryStats summarize(std::span<const double> values);

/// Linear-interpolated percentile of a sample, q in [0, 1].
[[nodiscard]] double percentile(std::span<const double> values, double q);

}  // namespace dbp
