// Occupancy analytics: how well a packing uses the capacity it pays for.
//
// The MinTotal objective makes "wasted open-bin time" the resource being
// optimized; these metrics break a run's cost into used vs wasted
// GPU-time and summarize bin lifetimes, giving the per-algorithm texture
// behind the cost totals (utilization appears in the cloud-gaming study).
#pragma once

#include "analysis/stats.hpp"
#include "core/instance.hpp"
#include "sim/simulator.hpp"

namespace dbp {

struct OccupancyReport {
  /// Integral of active item sizes over time = u(R) (demanded volume).
  double used_volume = 0.0;
  /// Integral of open capacity: (sum of bin usage lengths) * W.
  double paid_volume = 0.0;
  /// used / paid in (0, 1]; 1 means every open bin was always full.
  double utilization = 0.0;
  /// Time-weighted mean level of open bins (same as utilization * W).
  double mean_level = 0.0;
  /// Bin usage-length statistics.
  SummaryStats bin_lifetime{};
  /// Items placed per bin.
  SummaryStats items_per_bin{};
  /// Fraction of the packing period with at least one open bin.
  double busy_fraction = 0.0;
};

/// Computes occupancy metrics for one run. O(n log n).
[[nodiscard]] OccupancyReport compute_occupancy(const Instance& instance,
                                                const SimulationResult& result,
                                                const CostModel& model);

}  // namespace dbp
