#include "analysis/ratio.hpp"

#include "core/error.hpp"

namespace dbp {

const AlgorithmEvaluation& InstanceEvaluation::row(const std::string& algorithm) const {
  for (const AlgorithmEvaluation& eval : algorithms) {
    if (eval.algorithm == algorithm) return eval;
  }
  DBP_REQUIRE(false, "no evaluation row for algorithm: " + algorithm);
  return algorithms.front();  // unreachable
}

InstanceEvaluation evaluate_algorithms(const Instance& instance,
                                       const std::vector<std::string>& algorithms,
                                       const CostModel& model,
                                       const EvaluateOptions& options) {
  DBP_REQUIRE(!instance.empty(), "cannot evaluate an empty instance");
  DBP_REQUIRE(!algorithms.empty(), "no algorithms given");

  InstanceEvaluation result;
  result.metrics = compute_metrics(instance);
  result.opt = estimate_opt_total(instance, model, options.opt);

  PackerOptions packer_options = options.packer;
  if (options.derive_known_mu && packer_options.known_mu < 1.0) {
    packer_options.known_mu = result.metrics.mu;
  }

  result.algorithms.reserve(algorithms.size());
  for (const std::string& name : algorithms) {
    const SimulationResult sim = simulate(instance, name, model, packer_options);
    AlgorithmEvaluation eval;
    eval.algorithm = name;
    eval.display_name = sim.algorithm;
    eval.total_cost = sim.total_cost;
    eval.max_open_bins = sim.max_open_bins;
    eval.bins_opened = sim.bins_opened;
    eval.ratio = competitive_ratio_bounds(sim.total_cost, result.opt);
    result.algorithms.push_back(std::move(eval));
  }
  return result;
}

}  // namespace dbp
