// Synthetic cloud-gaming session traces (the paper's motivating workload,
// Section 1).
//
// The paper has no public trace, so we substitute a parameterized generator
// that preserves the structure the theory addresses: sessions ("items")
// demand a game-specific fraction of a game server's GPU ("bin"), arrive by
// a diurnal Poisson process, and play for heavy-tailed but bounded times —
// so the max/min interval length ratio mu is finite and controllable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

/// One game title in the service catalog.
struct GameProfile {
  std::string name;
  double gpu_fraction = 0.25;   ///< of one server's GPU (the item size)
  double popularity = 1.0;      ///< relative arrival weight
  double mean_minutes = 45.0;   ///< mean session length
  double sigma = 0.6;           ///< log-normal shape of the session length
};

struct CloudGamingConfig {
  std::vector<GameProfile> catalog;  ///< empty = default_game_catalog()
  double horizon_hours = 24.0;
  /// Expected arrivals per minute at the diurnal peak.
  double peak_arrivals_per_minute = 2.0;
  /// Trough-to-peak arrival rate ratio in (0, 1].
  double diurnal_trough_ratio = 0.25;
  /// Hour of day (0-24) at which the arrival rate peaks.
  double peak_hour = 20.0;
  /// Session length clamps, minutes. mu = max/min.
  double min_session_minutes = 5.0;
  double max_session_minutes = 240.0;

  void validate() const;
};

/// A generated trace: the packing instance (time unit = minutes, bin
/// capacity = 1 server GPU) plus the per-session game labels.
struct CloudGamingTrace {
  Instance instance;
  std::vector<std::size_t> game_of_item;  ///< index into catalog, by ItemId
  std::vector<GameProfile> catalog;
  CloudGamingConfig config;
};

/// Eight-title catalog with dyadic GPU fractions (1/8 .. 1/2) spanning the
/// casual-to-AAA range.
[[nodiscard]] std::vector<GameProfile> default_game_catalog();

/// Generates a reproducible trace via a thinned non-homogeneous Poisson
/// process.
[[nodiscard]] CloudGamingTrace generate_cloud_gaming_trace(
    const CloudGamingConfig& config, std::uint64_t seed);

}  // namespace dbp
