// The Theorem 1 adversarial construction (paper Section 4.1, Figure 2).
//
// k^2 items of size W/k arrive at time 0: any Any Fit algorithm opens k
// bins. At time Delta all but one item per bin departs; the k survivors
// stay until mu*Delta. Any Fit then keeps k bins open for the whole
// [0, mu*Delta] while an optimal repacking needs k bins only during
// [0, Delta) and a single bin afterwards:
//
//   AF_total / OPT_total = k*mu / (k + mu - 1)  -->  mu as k -> infinity.
//
// The footnote of Theorem 1 notes the same instance lower-bounds *any*
// online algorithm, not just Any Fit.
#pragma once

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

struct AnyFitAdversaryConfig {
  std::size_t k = 10;    ///< bins forced open; k^2 items are emitted
  double mu = 4.0;       ///< max/min interval length ratio (>= 1)
  Time delta = 1.0;      ///< minimum interval length Delta
  double bin_capacity = 1.0;

  void validate() const;
};

struct AnyFitAdversaryInstance {
  Instance instance;
  AnyFitAdversaryConfig config;

  /// Paper-predicted Any Fit cost: k * mu * Delta * C (with C = cost rate 1).
  double predicted_anyfit_cost = 0.0;
  /// Paper-predicted optimum: (k + mu - 1) * Delta.
  double predicted_opt_cost = 0.0;
  /// k * mu / (k + mu - 1), equation (1) of the paper.
  double predicted_ratio = 0.0;
};

/// Builds the construction. The departure pattern assumes the packer
/// processes simultaneous arrivals in item-id order (our simulator's
/// documented tie-break), under which every deterministic Any Fit algorithm
/// fills bin g with items [g*k, (g+1)*k) — all items are the same size, so
/// each opened bin accepts exactly k of them in sequence.
[[nodiscard]] AnyFitAdversaryInstance build_anyfit_adversary(
    const AnyFitAdversaryConfig& config);

}  // namespace dbp
