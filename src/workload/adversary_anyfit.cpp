#include "workload/adversary_anyfit.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dbp {

void AnyFitAdversaryConfig::validate() const {
  DBP_REQUIRE(k >= 1, "k must be >= 1");
  DBP_REQUIRE(std::isfinite(mu) && mu >= 1.0, "mu must be >= 1");
  DBP_REQUIRE(std::isfinite(delta) && delta > 0.0, "Delta must be positive");
  DBP_REQUIRE(std::isfinite(bin_capacity) && bin_capacity > 0.0,
              "bin capacity must be positive");
}

AnyFitAdversaryInstance build_anyfit_adversary(const AnyFitAdversaryConfig& config) {
  config.validate();
  const std::size_t k = config.k;
  const double size = config.bin_capacity / static_cast<double>(k);
  const Time delta = config.delta;
  const Time mu_delta = config.mu * delta;

  AnyFitAdversaryInstance result;
  result.config = config;
  result.instance.reserve(k * k);

  // Ids in arrival-processing order: group g fills bin g. The *first* item
  // of each group is the survivor (departs at mu*Delta); the other k-1
  // depart at Delta, leaving one item per bin as in Figure 2.
  for (std::size_t g = 0; g < k; ++g) {
    for (std::size_t j = 0; j < k; ++j) {
      const Time departure = (j == 0) ? mu_delta : delta;
      result.instance.add(0.0, departure, size);
    }
  }

  result.predicted_anyfit_cost = static_cast<double>(k) * mu_delta;
  result.predicted_opt_cost =
      static_cast<double>(k) * delta + (config.mu - 1.0) * delta;
  result.predicted_ratio = result.predicted_anyfit_cost / result.predicted_opt_cost;
  return result;
}

}  // namespace dbp
