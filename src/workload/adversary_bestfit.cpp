#include "workload/adversary_bestfit.hpp"

#include <cmath>
#include <vector>

#include "core/error.hpp"

namespace dbp {

void BestFitAdversaryConfig::validate() const {
  DBP_REQUIRE(k >= 2, "k must be >= 2 (a single bin cannot exhibit the gap)");
  DBP_REQUIRE(std::isfinite(mu) && mu > 1.0, "mu must be > 1");
  DBP_REQUIRE(std::isfinite(delta) && delta > 0.0, "Delta must be positive");
  DBP_REQUIRE(std::isfinite(window) && window > 0.0, "window must be positive");
  // The schedule needs window + h <= (mu-1)*Delta with h = window/k;
  // window <= (mu-1)*Delta/2 is a safe sufficient condition for all k >= 2.
  DBP_REQUIRE(window <= (mu - 1.0) * delta / 2.0,
              "window must be <= (mu-1)*Delta/2 so all interval lengths stay "
              "in [Delta, mu*Delta]");
  DBP_REQUIRE(std::isfinite(bin_capacity) && bin_capacity > 0.0,
              "bin capacity must be positive");
}

std::size_t BestFitAdversaryConfig::effective_iterations() const {
  if (iterations > 0) return iterations;
  // Paper: n >= (k-1)*Delta / (mu*Delta - delta_w) makes the ratio >= k/2;
  // one extra iteration of margin absorbs the h-shift of the schedule.
  const double need =
      (static_cast<double>(k) - 1.0) * delta / (mu * delta - window);
  return static_cast<std::size_t>(std::ceil(need)) + 1;
}

std::size_t BestFitAdversaryConfig::slices_per_chunk() const {
  // q = 1/(k*eps). Group (j, m) holds q - (j*k + m) items; the last group
  // (j = n, m = k) must stay positive: q >= n*k + k + 1. q = (n+2)*k gives
  // a k-item margin.
  return (effective_iterations() + 2) * k;
}

BestFitAdversaryInstance build_bestfit_adversary(const BestFitAdversaryConfig& config) {
  config.validate();
  const std::size_t k = config.k;
  const std::size_t n = config.effective_iterations();
  const std::size_t q = config.slices_per_chunk();
  const double eps = config.bin_capacity / static_cast<double>(k * q);
  const Time delta = config.delta;

  // Intra-window slot width and the (slightly contracted) window period.
  // Group m of iteration j arrives at a(j, m) = j*T - window + (m-1)*h and
  // the *previous* generation in bin m departs at a(j, m+1) (at a batch
  // boundary, departures are processed before arrivals — exactly the
  // proof's "before the next group arrives"). T = mu*Delta - h makes every
  // group item's interval length exactly mu*Delta.
  const Time h = config.window / static_cast<double>(k);
  const Time T = config.mu * delta - h;
  DBP_CHECK(T - config.window >= delta,
            "schedule violates the minimum interval length");

  const auto arrival_of = [&](std::size_t j, std::size_t m) -> Time {
    // j in [1, n], m in [1, k].
    return static_cast<double>(j) * T - config.window +
           static_cast<double>(m - 1) * h;
  };
  const auto old_departure_of = [&](std::size_t j, std::size_t m) -> Time {
    return m < k ? arrival_of(j, m + 1) : static_cast<double>(j) * T;
  };

  BestFitAdversaryInstance result;
  result.config = config;
  result.epsilon = eps;
  result.iterations = n;

  Instance& inst = result.instance;

  // --- t = 0: k bins' worth of items. Best Fit fills bins in id order; in
  // bin i (1-based), the first q - i items are the survivors forming the
  // configuration <(1/k - i*eps)|eps> at time Delta; they depart as the
  // "old" items of iteration 1. The rest depart at Delta.
  for (std::size_t i = 1; i <= k; ++i) {
    const std::size_t survivors = q - i;
    const Time survivor_departure = old_departure_of(1, i);
    for (std::size_t item = 0; item < k * q; ++item) {
      const Time departure = item < survivors ? survivor_departure : delta;
      inst.add(0.0, departure, eps);
    }
  }

  // --- iterations: group (j, m) arrives together and departs together as
  // the old items of iteration j+1; the final generation departs after
  // exactly Delta (the minimum interval length).
  for (std::size_t j = 1; j <= n; ++j) {
    for (std::size_t m = 1; m <= k; ++m) {
      const std::size_t count = q - (j * k + m);
      DBP_CHECK(count >= 1, "group size underflow");
      const Time arrival = arrival_of(j, m);
      const Time departure =
          j < n ? old_departure_of(j + 1, m) : arrival + delta;
      for (std::size_t c = 0; c < count; ++c) {
        inst.add(arrival, departure, eps);
      }
    }
  }

  // Predictions for reports. Bin m stays open from 0 until its final
  // generation departs at a(n, m) + Delta.
  double bf_cost = 0.0;
  for (std::size_t m = 1; m <= k; ++m) bf_cost += arrival_of(n, m) + delta;
  result.predicted_bestfit_cost = bf_cost;
  const Time span = arrival_of(n, k) + delta;  // packing period length
  result.predicted_opt_upper = static_cast<double>(k) * delta + (span - delta) +
                               static_cast<double>(n) * config.window;
  result.predicted_ratio_lower =
      result.predicted_bestfit_cost / result.predicted_opt_upper;
  return result;
}

}  // namespace dbp
