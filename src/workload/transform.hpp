// Instance transformations for experiment design.
//
// The MinTotal DBP objective has clean covariances under these maps (scaling
// time scales every algorithm's cost linearly; scaling sizes together with
// W leaves packings unchanged), which the property tests exploit as strong
// end-to-end oracles.
#pragma once

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

/// t -> offset + factor * t on arrivals and departures (factor > 0).
/// Every algorithm's total cost scales by exactly `factor`; assignments are
/// unchanged.
[[nodiscard]] Instance scale_time(const Instance& instance, double factor,
                                  Time offset = 0.0);

/// s -> factor * s on item sizes (factor > 0). Pack against a capacity
/// scaled by the same factor to leave every decision unchanged.
[[nodiscard]] Instance scale_sizes(const Instance& instance, double factor);

/// Keeps items whose interval intersects [window.begin, window.end),
/// clamping their intervals to the window. Ids are re-densified.
[[nodiscard]] Instance crop(const Instance& instance, TimeInterval window);

/// Items of `a` followed by items of `b` shifted so that `b` starts `gap`
/// after `a`'s packing period ends (gap >= 0 keeps the pieces disjoint in
/// time; both pieces must be non-empty).
[[nodiscard]] Instance concatenate(const Instance& a, const Instance& b,
                                   Time gap = 0.0);

/// Interleaves two instances on a shared timeline (plain union of items).
[[nodiscard]] Instance overlay(const Instance& a, const Instance& b);

/// Reverses time: item [a, d) becomes [T - d, T - a) where T spans the
/// packing period. OPT_total is invariant (repacking is time-symmetric);
/// online algorithms generally are not — a useful asymmetry probe.
[[nodiscard]] Instance reverse_time(const Instance& instance);

}  // namespace dbp
