#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"

namespace dbp {

void DurationModel::validate() const {
  DBP_REQUIRE(std::isfinite(min_length) && min_length > 0.0,
              "minimum interval length must be positive");
  DBP_REQUIRE(std::isfinite(max_length) && max_length >= min_length,
              "maximum interval length must be >= minimum");
  switch (kind) {
    case Kind::kExponential:
      DBP_REQUIRE(exponential_rate > 0.0, "exponential rate must be positive");
      break;
    case Kind::kLogNormal:
      DBP_REQUIRE(log_sigma >= 0.0, "log-normal sigma must be non-negative");
      break;
    case Kind::kPareto:
      DBP_REQUIRE(pareto_shape > 0.0, "pareto shape must be positive");
      break;
    case Kind::kFixed:
    case Kind::kUniform:
      break;
  }
}

Time DurationModel::sample(Rng& rng) const {
  double raw;
  switch (kind) {
    case Kind::kFixed:
      return min_length;
    case Kind::kUniform:
      raw = rng.uniform(min_length, max_length);
      break;
    case Kind::kExponential:
      raw = min_length + rng.exponential(exponential_rate);
      break;
    case Kind::kLogNormal:
      raw = rng.lognormal(log_mean, log_sigma);
      break;
    case Kind::kPareto:
      raw = rng.pareto(min_length, pareto_shape);
      break;
    default:
      DBP_REQUIRE(false, "unknown duration kind");
      return min_length;
  }
  return std::clamp(raw, min_length, max_length);
}

void SizeModel::validate() const {
  switch (kind) {
    case Kind::kFixed:
      DBP_REQUIRE(fixed_fraction > 0.0 && fixed_fraction <= 1.0,
                  "fixed size fraction must be in (0, 1]");
      break;
    case Kind::kUniform:
      DBP_REQUIRE(min_fraction > 0.0 && min_fraction <= max_fraction &&
                      max_fraction <= 1.0,
                  "uniform size fractions must satisfy 0 < min <= max <= 1");
      break;
    case Kind::kDiscrete: {
      DBP_REQUIRE(!fractions.empty(), "discrete size model needs values");
      for (double f : fractions) {
        DBP_REQUIRE(f > 0.0 && f <= 1.0, "size fractions must be in (0, 1]");
      }
      if (!weights.empty()) {
        DBP_REQUIRE(weights.size() == fractions.size(),
                    "weights must match fractions");
        for (double w : weights) DBP_REQUIRE(w >= 0.0, "weights must be >= 0");
        DBP_REQUIRE(std::accumulate(weights.begin(), weights.end(), 0.0) > 0.0,
                    "weights must not all be zero");
      }
      break;
    }
    case Kind::kDyadic:
      DBP_REQUIRE(min_exponent >= 0 && min_exponent <= max_exponent &&
                      max_exponent <= 30,
                  "dyadic exponents must satisfy 0 <= min <= max <= 30");
      break;
  }
}

double SizeModel::sample_fraction(Rng& rng) const {
  switch (kind) {
    case Kind::kFixed:
      return fixed_fraction;
    case Kind::kUniform:
      return rng.uniform(min_fraction, max_fraction);
    case Kind::kDiscrete: {
      if (weights.empty()) {
        return fractions[static_cast<std::size_t>(
            rng.uniform_int(0, fractions.size() - 1))];
      }
      std::discrete_distribution<std::size_t> pick(weights.begin(), weights.end());
      return fractions[pick(rng.engine())];
    }
    case Kind::kDyadic: {
      const auto e = static_cast<int>(rng.uniform_int(
          static_cast<std::uint64_t>(min_exponent),
          static_cast<std::uint64_t>(max_exponent)));
      return std::ldexp(1.0, -e);
    }
  }
  DBP_REQUIRE(false, "unknown size kind");
  return 0.0;
}

}  // namespace dbp
