#include "workload/random_instance.hpp"

#include <cmath>

#include "core/error.hpp"

namespace dbp {

void ArrivalModel::validate() const {
  switch (kind) {
    case Kind::kPoisson:
      DBP_REQUIRE(std::isfinite(rate) && rate > 0.0,
                  "poisson arrival rate must be positive");
      break;
    case Kind::kBursts:
      DBP_REQUIRE(burst_size > 0, "burst size must be positive");
      DBP_REQUIRE(std::isfinite(burst_gap) && burst_gap > 0.0,
                  "burst gap must be positive");
      break;
  }
}

void RandomInstanceConfig::validate() const {
  DBP_REQUIRE(item_count > 0, "instance must contain items");
  DBP_REQUIRE(std::isfinite(bin_capacity) && bin_capacity > 0.0,
              "bin capacity must be positive");
  arrival.validate();
  duration.validate();
  size.validate();
}

Instance generate_random_instance(const RandomInstanceConfig& config,
                                  std::uint64_t seed) {
  config.validate();
  Rng rng(seed);
  Instance instance;
  instance.reserve(config.item_count);

  Time now = 0.0;
  for (std::size_t i = 0; i < config.item_count; ++i) {
    // Arrival time.
    if (config.arrival.kind == ArrivalModel::Kind::kPoisson) {
      now += rng.exponential(config.arrival.rate);
    } else if (i > 0 && i % config.arrival.burst_size == 0) {
      now += config.arrival.burst_gap;
    }
    // Duration: optionally pin the first two items to the extremes so the
    // realized mu matches the nominal one.
    Time length;
    if (config.pin_mu_extremes && i == 0) {
      length = config.duration.min_length;
    } else if (config.pin_mu_extremes && i == 1) {
      length = config.duration.max_length;
    } else {
      length = config.duration.sample(rng);
    }
    const double size = config.size.sample_fraction(rng) * config.bin_capacity;
    instance.add(now, now + length, size);
  }
  return instance;
}

}  // namespace dbp
