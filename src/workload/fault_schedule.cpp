#include "workload/fault_schedule.hpp"

#include <algorithm>

#include "core/error.hpp"
#include "workload/rng.hpp"

namespace dbp {

FaultPlan make_poisson_fault_plan(const TimeInterval& period, double crash_rate,
                                  double anomaly_rate, CrashTarget target,
                                  std::uint64_t seed) {
  DBP_REQUIRE(crash_rate >= 0.0, "crash rate must be non-negative");
  DBP_REQUIRE(anomaly_rate >= 0.0, "anomaly rate must be non-negative");
  DBP_REQUIRE(!period.empty(), "fault plan period must be non-empty");
  FaultPlan plan;
  plan.seed = seed;
  Rng rng(seed);
  Rng crash_stream = rng.fork(1);
  Rng anomaly_stream = rng.fork(2);
  if (crash_rate > 0.0) {
    for (Time t = period.begin + crash_stream.exponential(crash_rate);
         t < period.end; t += crash_stream.exponential(crash_rate)) {
      plan.crashes.push_back(CrashFault{t, target});
    }
  }
  if (anomaly_rate > 0.0) {
    for (Time t = period.begin + anomaly_stream.exponential(anomaly_rate);
         t < period.end; t += anomaly_stream.exponential(anomaly_rate)) {
      plan.anomalies.push_back(AnomalyFault{
          t, static_cast<AnomalyKind>(
                 anomaly_stream.uniform_int(0, kAnomalyKindCount - 1))});
    }
  }
  plan.validate();
  return plan;
}

FaultPlan make_fullest_bin_crash_plan(const TimeInterval& period,
                                      std::size_t crashes, std::uint64_t seed) {
  DBP_REQUIRE(!period.empty(), "fault plan period must be non-empty");
  FaultPlan plan;
  plan.seed = seed;
  plan.crashes.reserve(crashes);
  const Time step = period.length() / static_cast<double>(crashes + 1);
  for (std::size_t i = 0; i < crashes; ++i) {
    plan.crashes.push_back(CrashFault{
        period.begin + static_cast<double>(i + 1) * step, CrashTarget::kFullest});
  }
  plan.validate();
  return plan;
}

FaultPlan make_dedication_crash_plan(const Instance& instance,
                                     double dedication_threshold,
                                     std::size_t max_crashes,
                                     std::uint64_t seed) {
  DBP_REQUIRE(dedication_threshold > 0.0,
              "dedication threshold must be positive");
  FaultPlan plan;
  plan.seed = seed;
  std::vector<Time> arrivals;
  for (const Item& item : instance.items()) {
    if (item.size > dedication_threshold) arrivals.push_back(item.arrival);
  }
  std::sort(arrivals.begin(), arrivals.end());
  if (arrivals.size() > max_crashes) arrivals.resize(max_crashes);
  plan.crashes.reserve(arrivals.size());
  for (const Time t : arrivals) {
    plan.crashes.push_back(CrashFault{t, CrashTarget::kNewest});
  }
  plan.validate();
  return plan;
}

}  // namespace dbp
