// Random MinTotal DBP instance generation.
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "workload/distributions.hpp"

namespace dbp {

/// Arrival process for random instances.
struct ArrivalModel {
  enum class Kind {
    kPoisson,  ///< i.i.d. exponential inter-arrival times with `rate`
    kBursts,   ///< `burst_size` simultaneous arrivals every `burst_gap`
  };
  Kind kind = Kind::kPoisson;
  double rate = 1.0;        ///< kPoisson arrivals per unit time
  std::size_t burst_size = 8;
  Time burst_gap = 1.0;

  void validate() const;
};

struct RandomInstanceConfig {
  std::size_t item_count = 1000;
  ArrivalModel arrival{};
  DurationModel duration{};
  SizeModel size{};
  /// Bin capacity the size fractions are scaled by.
  double bin_capacity = 1.0;
  /// Force the first two items to take the min and max interval lengths so
  /// the realized mu equals duration.nominal_mu() exactly.
  bool pin_mu_extremes = true;

  void validate() const;
};

/// Generates a reproducible random instance. Identical (config, seed) pairs
/// produce identical instances.
[[nodiscard]] Instance generate_random_instance(const RandomInstanceConfig& config,
                                                std::uint64_t seed);

}  // namespace dbp
