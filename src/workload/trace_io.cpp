#include "workload/trace_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "core/checked_output.hpp"
#include "core/error.hpp"
#include "core/strfmt.hpp"

namespace dbp {

namespace {

double parse_double(std::string_view field, std::size_t line) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  DBP_REQUIRE(ec == std::errc{} && ptr == field.data() + field.size(),
              strfmt("trace csv line %zu: bad number '%.*s'", line,
                     static_cast<int>(field.size()), field.data()));
  // from_chars accepts "nan"/"inf" spellings; without this check they would
  // only surface later, in Item::validate, without the offending line.
  DBP_REQUIRE(std::isfinite(value),
              strfmt("trace csv line %zu: non-finite field '%.*s'", line,
                     static_cast<int>(field.size()), field.data()));
  return value;
}

constexpr std::string_view kHeader = "id,arrival,departure,size";

/// Strips one trailing '\r' so CRLF files parse like LF files.
std::string_view strip_cr(std::string_view line) {
  if (line.ends_with('\r')) line.remove_suffix(1);
  return line;
}

bool is_blank(std::string_view line) {
  return line.find_first_not_of(" \t") == std::string_view::npos;
}

}  // namespace

void write_instance_csv(const Instance& instance, std::ostream& out) {
  out << "id,arrival,departure,size\n";
  for (const Item& item : instance.items()) {
    out << strfmt("%llu,%.17g,%.17g,%.17g\n",
                  static_cast<unsigned long long>(item.id), item.arrival,
                  item.departure, item.size);
  }
  DBP_REQUIRE(out.good(), "trace csv write failed");
}

void write_instance_csv(const Instance& instance, const std::string& path) {
  std::ofstream out = open_output_file(path);
  write_instance_csv(instance, out);
  close_output_file(out, path);
}

Instance read_instance_csv(std::istream& in) {
  std::string line;
  DBP_REQUIRE(static_cast<bool>(std::getline(in, line)), "trace csv is empty");
  DBP_REQUIRE(strip_cr(line).substr(0, kHeader.size()) == kHeader,
              "trace csv header mismatch");
  std::vector<Item> items;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view view = strip_cr(line);
    if (is_blank(view)) continue;
    // Concatenated dumps repeat the header; skip the duplicates.
    if (view.substr(0, kHeader.size()) == kHeader) continue;
    std::vector<std::string_view> fields;
    while (!view.empty()) {
      const std::size_t comma = view.find(',');
      fields.push_back(view.substr(0, comma));
      if (comma == std::string_view::npos) break;
      view.remove_prefix(comma + 1);
    }
    DBP_REQUIRE(fields.size() == 4,
                strfmt("trace csv line %zu: expected 4 fields, got %zu", line_no,
                       fields.size()));
    Item item;
    item.arrival = parse_double(fields[1], line_no);
    item.departure = parse_double(fields[2], line_no);
    item.size = parse_double(fields[3], line_no);
    items.push_back(item);
  }
  return Instance::from_items(std::move(items));
}

Instance read_instance_csv(const std::string& path) {
  std::ifstream in(path);
  DBP_REQUIRE(in.is_open(), "cannot open trace csv for reading: " + path);
  return read_instance_csv(in);
}

}  // namespace dbp
