// CSV serialization of instances: interoperate with external trace tooling
// and freeze generated workloads for regression comparisons.
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"

namespace dbp {

/// Writes "id,arrival,departure,size" rows (with header) at full double
/// round-trip precision.
void write_instance_csv(const Instance& instance, std::ostream& out);
void write_instance_csv(const Instance& instance, const std::string& path);

/// Reads the format written by write_instance_csv. Ids are reassigned
/// densely in row order; malformed rows throw PreconditionError with the
/// line number.
[[nodiscard]] Instance read_instance_csv(std::istream& in);
[[nodiscard]] Instance read_instance_csv(const std::string& path);

}  // namespace dbp
