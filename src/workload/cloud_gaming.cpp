#include "workload/cloud_gaming.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/error.hpp"
#include "workload/rng.hpp"

namespace dbp {

void CloudGamingConfig::validate() const {
  DBP_REQUIRE(horizon_hours > 0.0, "horizon must be positive");
  DBP_REQUIRE(peak_arrivals_per_minute > 0.0, "peak arrival rate must be positive");
  DBP_REQUIRE(diurnal_trough_ratio > 0.0 && diurnal_trough_ratio <= 1.0,
              "trough ratio must be in (0, 1]");
  DBP_REQUIRE(peak_hour >= 0.0 && peak_hour < 24.0, "peak hour must be in [0, 24)");
  DBP_REQUIRE(min_session_minutes > 0.0 &&
                  max_session_minutes >= min_session_minutes,
              "session length bounds must satisfy 0 < min <= max");
  for (const GameProfile& game : catalog) {
    DBP_REQUIRE(game.gpu_fraction > 0.0 && game.gpu_fraction <= 1.0,
                "gpu fraction must be in (0, 1]");
    DBP_REQUIRE(game.popularity > 0.0, "popularity must be positive");
    DBP_REQUIRE(game.mean_minutes > 0.0, "mean session length must be positive");
    DBP_REQUIRE(game.sigma >= 0.0, "sigma must be non-negative");
  }
}

std::vector<GameProfile> default_game_catalog() {
  return {
      {"puzzle-casual", 1.0 / 8.0, 3.0, 20.0, 0.5},
      {"card-battler", 1.0 / 8.0, 2.0, 35.0, 0.5},
      {"indie-platformer", 1.0 / 4.0, 2.5, 40.0, 0.6},
      {"moba-arena", 1.0 / 4.0, 4.0, 45.0, 0.4},
      {"battle-royale", 3.0 / 8.0, 3.5, 60.0, 0.5},
      {"open-world-rpg", 1.0 / 2.0, 2.0, 90.0, 0.7},
      {"racing-sim", 3.0 / 8.0, 1.5, 50.0, 0.5},
      {"aaa-shooter", 1.0 / 2.0, 3.0, 55.0, 0.5},
  };
}

CloudGamingTrace generate_cloud_gaming_trace(const CloudGamingConfig& config,
                                             std::uint64_t seed) {
  config.validate();
  CloudGamingTrace trace;
  trace.config = config;
  trace.catalog = config.catalog.empty() ? default_game_catalog() : config.catalog;
  Rng rng(seed);

  std::vector<double> weights;
  weights.reserve(trace.catalog.size());
  for (const GameProfile& game : trace.catalog) weights.push_back(game.popularity);
  std::discrete_distribution<std::size_t> pick_game(weights.begin(), weights.end());

  const double horizon_min = config.horizon_hours * 60.0;
  const double peak_rate = config.peak_arrivals_per_minute;

  // Diurnal rate: sinusoid between trough and peak, peaking at peak_hour.
  const auto rate_at = [&](double minute) {
    const double hours = minute / 60.0;
    const double phase =
        2.0 * std::numbers::pi * (hours - config.peak_hour) / 24.0;
    const double mix = 0.5 + 0.5 * std::cos(phase);  // 1 at peak, 0 at trough
    return peak_rate * (config.diurnal_trough_ratio +
                        (1.0 - config.diurnal_trough_ratio) * mix);
  };

  // Thinning: candidate arrivals at the peak rate, accepted with
  // probability rate(t)/peak_rate.
  double t = 0.0;
  while (true) {
    t += rng.exponential(peak_rate);
    if (t >= horizon_min) break;
    if (!rng.bernoulli(rate_at(t) / peak_rate)) continue;

    const std::size_t game_index = pick_game(rng.engine());
    const GameProfile& game = trace.catalog[game_index];
    // Log-normal with the configured mean: E[X] = exp(m + s^2/2).
    const double log_mean =
        std::log(game.mean_minutes) - 0.5 * game.sigma * game.sigma;
    const double length = std::clamp(rng.lognormal(log_mean, game.sigma),
                                     config.min_session_minutes,
                                     config.max_session_minutes);
    trace.instance.add(t, t + length, game.gpu_fraction);
    trace.game_of_item.push_back(game_index);
  }
  DBP_REQUIRE(!trace.instance.empty(),
              "horizon/rate combination produced no sessions");
  return trace;
}

}  // namespace dbp
