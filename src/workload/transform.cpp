#include "workload/transform.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace dbp {

Instance scale_time(const Instance& instance, double factor, Time offset) {
  DBP_REQUIRE(std::isfinite(factor) && factor > 0.0,
              "time scale factor must be positive");
  DBP_REQUIRE(std::isfinite(offset), "time offset must be finite");
  Instance result;
  result.reserve(instance.size());
  for (const Item& item : instance.items()) {
    result.add(offset + factor * item.arrival, offset + factor * item.departure,
               item.size);
  }
  return result;
}

Instance scale_sizes(const Instance& instance, double factor) {
  DBP_REQUIRE(std::isfinite(factor) && factor > 0.0,
              "size scale factor must be positive");
  Instance result;
  result.reserve(instance.size());
  for (const Item& item : instance.items()) {
    result.add(item.arrival, item.departure, factor * item.size);
  }
  return result;
}

Instance crop(const Instance& instance, TimeInterval window) {
  DBP_REQUIRE(!window.empty(), "crop window must be non-empty");
  Instance result;
  for (const Item& item : instance.items()) {
    const Time begin = std::max(item.arrival, window.begin);
    const Time end = std::min(item.departure, window.end);
    if (end > begin) result.add(begin, end, item.size);
  }
  return result;
}

Instance concatenate(const Instance& a, const Instance& b, Time gap) {
  DBP_REQUIRE(!a.empty() && !b.empty(), "concatenate needs non-empty pieces");
  DBP_REQUIRE(std::isfinite(gap) && gap >= 0.0, "gap must be >= 0");
  const Time shift = a.packing_period().end + gap - b.packing_period().begin;
  Instance result;
  result.reserve(a.size() + b.size());
  for (const Item& item : a.items()) {
    result.add(item.arrival, item.departure, item.size);
  }
  for (const Item& item : b.items()) {
    result.add(item.arrival + shift, item.departure + shift, item.size);
  }
  return result;
}

Instance overlay(const Instance& a, const Instance& b) {
  Instance result;
  result.reserve(a.size() + b.size());
  for (const Item& item : a.items()) {
    result.add(item.arrival, item.departure, item.size);
  }
  for (const Item& item : b.items()) {
    result.add(item.arrival, item.departure, item.size);
  }
  return result;
}

Instance reverse_time(const Instance& instance) {
  DBP_REQUIRE(!instance.empty(), "reverse of an empty instance");
  const TimeInterval period = instance.packing_period();
  const Time total = period.begin + period.end;
  Instance result;
  result.reserve(instance.size());
  for (const Item& item : instance.items()) {
    result.add(total - item.departure, total - item.arrival, item.size);
  }
  return result;
}

}  // namespace dbp
