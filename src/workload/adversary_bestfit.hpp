// The Theorem 2 adversarial construction (paper Section 4.2, Figure 3):
// Best Fit has no bounded competitive ratio for any fixed mu.
//
// Construction (W = 1, all items have size eps = 1/(k*q)):
//   * t = 0:     k*q items per bin * k bins arrive; Best Fit fills bins
//                b_1..b_k to level exactly 1.
//   * t = Delta: departures leave bin b_i with q - i items, i.e. the
//                configuration <(1/k - i*eps)|eps> — levels strictly
//                decreasing in i, b_1 the fullest.
//   * iteration j = 1..n, inside the window [j*mu*Delta - delta_w, j*mu*Delta]:
//                group m (m = 1..k) of q - (j*k + m) items arrives; Best Fit
//                puts the whole group into b_m (the currently fullest bin);
//                immediately afterwards all "old" items of b_m depart,
//                leaving b_m at level (1/k - (j*k + m)*eps).
// Best Fit thus keeps k bins open for ~n*mu*Delta time while the optimum
// uses ~1 bin almost everywhere:  BF_total / OPT_total >= k/2 once
// n >= (k-1)*Delta / (mu*Delta - delta_w)  (inequality (2) of the paper).
#pragma once

#include "core/instance.hpp"
#include "core/types.hpp"

namespace dbp {

struct BestFitAdversaryConfig {
  std::size_t k = 6;     ///< bins kept open; the achieved ratio approaches k/2
  double mu = 4.0;       ///< max/min interval length ratio; must be > 1
  std::size_t iterations = 0;  ///< n; 0 = auto (smallest n with ratio >= k/2)
  Time delta = 1.0;      ///< minimum interval length Delta
  /// Width of each arrival window [j*mu*Delta - window, j*mu*Delta]
  /// (the paper's "very small" delta). Must satisfy window < (mu-1)*Delta.
  Time window = 1.0 / 64.0;
  double bin_capacity = 1.0;

  void validate() const;
  /// q = 1/(k*eps): items initially stacked per 1/k of capacity. Derived so
  /// every group in every iteration keeps a positive item count.
  [[nodiscard]] std::size_t slices_per_chunk() const;
  [[nodiscard]] std::size_t effective_iterations() const;
};

struct BestFitAdversaryInstance {
  Instance instance;
  BestFitAdversaryConfig config;
  double epsilon = 0.0;       ///< common item size
  std::size_t iterations = 0; ///< n actually used

  /// Paper-predicted Best Fit cost ~ k * n * mu * Delta.
  double predicted_bestfit_cost = 0.0;
  /// Paper upper bound on OPT_total:
  ///   k*Delta + (n*mu*Delta - Delta) + n*window.
  double predicted_opt_upper = 0.0;
  /// predicted_bestfit_cost / predicted_opt_upper (>= k/2 by construction).
  double predicted_ratio_lower = 0.0;
};

/// Builds the full deterministic arrival/departure schedule. Correct Best
/// Fit behaviour (groups landing in the intended bins) is asserted by the
/// test suite, which replays the instance against the Best Fit packer and
/// checks the bin evolution of Figure 3.
[[nodiscard]] BestFitAdversaryInstance build_bestfit_adversary(
    const BestFitAdversaryConfig& config);

}  // namespace dbp
