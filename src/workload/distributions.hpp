// Configurable duration and size models for synthetic workloads.
#pragma once

#include <vector>

#include "core/types.hpp"
#include "workload/rng.hpp"

namespace dbp {

/// Item interval-length model. All samples are clamped into
/// [min_length, max_length], so the realized max/min interval ratio mu never
/// exceeds max_length / min_length (generators can additionally pin the
/// extremes to make the realized mu exact; see RandomInstanceConfig).
struct DurationModel {
  enum class Kind {
    kFixed,        ///< always min_length (mu = 1)
    kUniform,      ///< uniform on [min_length, max_length]
    kExponential,  ///< min_length + Exp(rate), clamped
    kLogNormal,    ///< LogNormal(log_mean, log_sigma), clamped
    kPareto,       ///< Pareto(min_length, shape), clamped
  };

  Kind kind = Kind::kUniform;
  Time min_length = 1.0;  ///< Delta, the minimum interval length
  Time max_length = 4.0;  ///< mu * Delta, the maximum interval length

  double exponential_rate = 1.0;  ///< kExponential: rate of the shifted tail
  double log_mean = 0.0;          ///< kLogNormal
  double log_sigma = 1.0;         ///< kLogNormal
  double pareto_shape = 1.5;      ///< kPareto

  void validate() const;
  [[nodiscard]] Time sample(Rng& rng) const;
  [[nodiscard]] double nominal_mu() const noexcept { return max_length / min_length; }
};

/// Item size model. Sizes are expressed as fractions of the bin capacity W
/// and scaled by the generator.
struct SizeModel {
  enum class Kind {
    kFixed,           ///< always `fixed_fraction`
    kUniform,         ///< uniform on [min_fraction, max_fraction]
    kDiscrete,        ///< weighted choice from `fractions`
    kDyadic,          ///< 2^-e, e uniform on [min_exponent, max_exponent];
                      ///< exactly representable => numerically exact packings
  };

  Kind kind = Kind::kUniform;
  double fixed_fraction = 0.25;
  double min_fraction = 0.05;
  double max_fraction = 0.5;
  std::vector<double> fractions{};          ///< kDiscrete values (of W)
  std::vector<double> weights{};            ///< kDiscrete weights (optional)
  int min_exponent = 1;                     ///< kDyadic: largest size 2^-min
  int max_exponent = 5;                     ///< kDyadic: smallest size 2^-max

  void validate() const;
  [[nodiscard]] double sample_fraction(Rng& rng) const;
};

}  // namespace dbp
