// Fault-schedule generators: seeded FaultPlans for chaos experiments, from
// neutral Poisson crash arrivals to adversarial schedules aimed at the
// structural weak points of specific algorithms (docs/fault_model.md).
#pragma once

#include <cstdint>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "core/fault.hpp"

namespace dbp {

/// Neutral background chaos: crashes and event anomalies both arrive by
/// independent Poisson processes over `period` (rates are expected events
/// per unit time; either may be 0). Anomaly kinds are drawn uniformly.
/// Identical arguments produce identical plans.
[[nodiscard]] FaultPlan make_poisson_fault_plan(const TimeInterval& period,
                                                double crash_rate,
                                                double anomaly_rate,
                                                CrashTarget target,
                                                std::uint64_t seed);

/// Adversarial: `crashes` evenly spaced kFullest crashes across the
/// interior of `period`. Killing the fullest bin maximizes the re-dispatch
/// volume every time, which is the worst case for Any Fit packings whose
/// early bins carry most of the load.
[[nodiscard]] FaultPlan make_fullest_bin_crash_plan(const TimeInterval& period,
                                                    std::size_t crashes,
                                                    std::uint64_t seed);

/// Adversarial, aimed at Modified First Fit: schedules a kNewest crash at
/// the arrival time of every item larger than `dedication_threshold`
/// (default W/2 — the sizes MFF dedicates a fresh bin to). The fault
/// engine fires faults after same-time arrivals, so each crash lands right
/// after the dedication happens, forcing an immediate re-rent. At most
/// `max_crashes` are scheduled, earliest arrivals first.
[[nodiscard]] FaultPlan make_dedication_crash_plan(const Instance& instance,
                                                   double dedication_threshold,
                                                   std::size_t max_crashes,
                                                   std::uint64_t seed);

}  // namespace dbp
