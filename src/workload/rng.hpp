// Seeded random number generation for reproducible workloads.
#pragma once

#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "core/error.hpp"

namespace dbp {

/// A seeded mt19937_64 with the sampling helpers the generators need.
/// Every generator takes an explicit seed; identical seeds give identical
/// instances on every platform (we only use distributions with portable
/// algorithms or accept the libstdc++ implementation as the reference).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  [[nodiscard]] double lognormal(double log_mean, double log_sigma) {
    return std::lognormal_distribution<double>(log_mean, log_sigma)(engine_);
  }

  /// Pareto with scale x_m and shape alpha (heavy-tailed durations).
  [[nodiscard]] double pareto(double x_m, double alpha) {
    const double u = uniform(0.0, 1.0);
    return x_m / std::pow(1.0 - u, 1.0 / alpha);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exact engine state as text (the standard guarantees operator<</operator>>
  /// round-trip mt19937_64 bit-exactly). Used by checkpoints: restoring the
  /// *position* of the stream — not merely the seed — is what keeps a
  /// recovered run on the same random trajectory as an uninterrupted one.
  [[nodiscard]] std::string save_state() const {
    std::ostringstream out;
    out << engine_;
    return out.str();
  }

  void load_state(const std::string& text) {
    std::istringstream in(text);
    in >> engine_;
    if (in.fail()) throw CorruptionError("malformed RNG engine state");
  }

  /// Derives an independent child stream (e.g. one per sweep cell) without
  /// correlations between siblings.
  [[nodiscard]] Rng fork(std::uint64_t stream) {
    // SplitMix64 over (state, stream) — standard seed derivation.
    std::uint64_t z = engine_() + 0x9E3779B97F4A7C15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return Rng(z ^ (z >> 31));
  }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dbp
