// Front-end routing: which shard owns a session's events.
//
// Every event carries a `route_key` (defaulting to the session id); a
// ShardRouter maps the key to a shard index. Routing must be *stable* — a
// session's start and end must carry the same key, so they land on the
// same shard in FIFO order — and *pure*: the mapping may depend only on
// (key, shard_count), never on submission order or mutable state, so the
// shard assignment is bit-identical across runs, producers, and worker
// budgets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/error.hpp"

namespace dbp::engine {

class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  /// Shard index in [0, shard_count) for `route_key`. Pure.
  [[nodiscard]] virtual std::size_t shard_for(std::uint64_t route_key,
                                              std::size_t shard_count) const = 0;
};

/// Default router: a splitmix64-style finalizer over the key, reduced mod
/// shard_count. Spreads dense session ids uniformly; deterministic.
class HashShardRouter final : public ShardRouter {
 public:
  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::size_t shard_for(std::uint64_t route_key,
                                      std::size_t shard_count) const override {
    return static_cast<std::size_t>(mix(route_key) % shard_count);
  }
};

/// Region-aware router reusing RegionalDispatcher semantics: a shard is a
/// fleet, and every session of a region is pinned to that region's shard,
/// so region isolation holds whenever shard_count >= regions (Section 5's
/// constrained-DBP hook, docs/dispatch_engine.md). The region set is fixed
/// at construction; producers translate names to keys once via
/// route_key_for and stamp the key on every event of the session.
class RegionShardRouter final : public ShardRouter {
 public:
  explicit RegionShardRouter(std::vector<std::string> regions)
      : regions_(std::move(regions)) {
    DBP_REQUIRE(!regions_.empty(), "region router needs at least one region");
  }

  /// The route key of a region name (its index in the construction list).
  [[nodiscard]] std::uint64_t route_key_for(std::string_view region) const {
    for (std::size_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i] == region) return i;
    }
    throw PreconditionError("unknown region for the region-aware router");
  }

  [[nodiscard]] std::size_t shard_for(std::uint64_t route_key,
                                      std::size_t shard_count) const override {
    DBP_REQUIRE(route_key < regions_.size(),
                "route key is not a region index from route_key_for");
    return static_cast<std::size_t>(route_key % shard_count);
  }

  [[nodiscard]] const std::vector<std::string>& regions() const noexcept {
    return regions_;
  }

 private:
  std::vector<std::string> regions_;
};

}  // namespace dbp::engine
