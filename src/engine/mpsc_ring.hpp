// Bounded lock-free multi-producer ring for shard event submission.
//
// The classic Vyukov bounded MPMC queue: one atomic sequence number per
// cell arbitrates producers (CAS on the tail) and publishes completed
// writes to the consumer (release store of sequence = tail + 1). The engine
// uses it MPSC — any number of submitting threads, one pumping thread per
// shard at a time (the pump mutex enforces the single consumer) — but the
// implementation is safe for concurrent consumers too, so the stress tests
// can hammer it harder than the engine ever does.
//
// Bounded on purpose: a full ring applies backpressure to producers
// (ShardedDispatchEngine::submit self-pumps), so an overload can never
// grow an unbounded queue. Capacity must be a power of two — the sequence
// arithmetic uses `& (capacity - 1)` indexing.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "core/error.hpp"

namespace dbp::engine {

template <typename T>
class BoundedMpscRing {
 public:
  explicit BoundedMpscRing(std::size_t capacity)
      : capacity_(capacity), mask_(capacity - 1) {
    DBP_REQUIRE(capacity >= 2 && (capacity & (capacity - 1)) == 0,
                "ring capacity must be a power of two >= 2");
    cells_ = std::make_unique<Cell[]>(capacity_);
    for (std::size_t i = 0; i < capacity_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscRing(const BoundedMpscRing&) = delete;
  BoundedMpscRing& operator=(const BoundedMpscRing&) = delete;

  /// Attempts to enqueue; returns false when the ring is full. Safe to call
  /// from any number of threads concurrently.
  bool try_push(const T& value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff =
          static_cast<std::ptrdiff_t>(seq) - static_cast<std::ptrdiff_t>(pos);
      if (diff == 0) {
        // The cell is free for this ticket; claim it.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = value;
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // Lost the race; `pos` was reloaded by compare_exchange — retry.
      } else if (diff < 0) {
        return false;  // full: the consumer has not freed this cell yet
      } else {
        pos = tail_.load(std::memory_order_relaxed);  // another producer won
      }
    }
  }

  /// Attempts to dequeue into `out`; returns false when the ring is empty.
  bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::ptrdiff_t diff = static_cast<std::ptrdiff_t>(seq) -
                                  static_cast<std::ptrdiff_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = cell.value;
          // Free the cell for the producer one lap ahead.
          cell.sequence.store(pos + capacity_, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty: no completed write at the head
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Approximate — exact only when producers and consumer are quiescent.
  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  /// Destructive-interference distance; a fixed 64 keeps the layout (and
  /// the -Winterference-size noise) independent of compiler tuning.
  static constexpr std::size_t kCacheLine = 64;

  struct Cell {
    std::atomic<std::size_t> sequence;
    T value;
  };

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  // producers
  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  // consumer
};

}  // namespace dbp::engine
