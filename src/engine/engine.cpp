#include "engine/engine.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "core/arena.hpp"
#include "core/error.hpp"
#include "exec/worker_budget.hpp"
#include "obs/obs.hpp"

namespace dbp::engine {

void EngineConfig::validate() const {
  DBP_REQUIRE(shard_count >= 1 && shard_count <= 4096,
              "shard count must be in [1, 4096]");
  DBP_REQUIRE(ring_capacity >= 2 && (ring_capacity & (ring_capacity - 1)) == 0,
              "ring capacity must be a power of two >= 2");
  DBP_REQUIRE(!algorithm.empty(), "engine needs a packing algorithm name");
  spec.to_cost_model().validate();
  fault_policy.validate();
  DBP_REQUIRE(fault_policy.on_anomaly == FaultPolicy::AnomalyAction::kDropAndCount,
              "engine shards must use AnomalyAction::kDropAndCount — a "
              "DispatchError thrown on a shard worker cannot unwind into the "
              "producer that submitted the event");
}

struct ShardedDispatchEngine::Shard {
  explicit Shard(const EngineConfig& config)
      : ring(config.ring_capacity),
        dispatcher(config.spec, config.algorithm, config.packer_options,
                   config.fault_policy) {}

  BoundedMpscRing<SessionEvent> ring;
  GameServerDispatcher dispatcher;
  /// Per-shard scratch for epoch snapshots; reset every epoch, so the
  /// steady state allocates nothing (core/arena.hpp).
  MonotonicArena scratch;
  /// Last epoch's RLE snapshot (strictly decreasing sizes).
  std::vector<SizeRun> snapshot;
  std::uint64_t applied = 0;
};

ShardedDispatchEngine::ShardedDispatchEngine(EngineConfig config,
                                             std::unique_ptr<ShardRouter> router)
    : config_(std::move(config)),
      router_(router ? std::move(router) : std::make_unique<HashShardRouter>()),
      oracle_(config_.spec.to_cost_model(), config_.bin_count,
              config_.oracle_memo_limit) {
  config_.validate();
  shards_.reserve(config_.shard_count);
  for (std::size_t i = 0; i < config_.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(config_));
  }
}

ShardedDispatchEngine::~ShardedDispatchEngine() = default;

bool ShardedDispatchEngine::try_submit(const SessionEvent& event) {
  const std::size_t shard = router_->shard_for(event.route_key, shards_.size());
  DBP_REQUIRE(shard < shards_.size(), "router returned an out-of-range shard");
  return shards_[shard]->ring.try_push(event);
}

void ShardedDispatchEngine::submit(const SessionEvent& event) {
  std::uint32_t failed_rounds = 0;
  while (!try_submit(event)) {
    // The shard's ring is full: become the pump if nobody else is, so
    // backpressure drains the backlog instead of deadlocking producers.
    if (pump_mutex_.try_lock()) {
      pump_locked();
      pump_mutex_.unlock();
      failed_rounds = 0;
      continue;
    }
    // Another thread holds the pump — possibly a long advance_epoch. Yield
    // for a bounded number of rounds, then back off exponentially (capped)
    // so a producer stalls cheaply instead of burning a core until the
    // epoch finishes. Timing-only: the event still lands in its shard's
    // ring in this producer's program order.
    const std::chrono::microseconds delay = submit_backoff(++failed_rounds);
    if (delay == std::chrono::microseconds{0}) {
      std::this_thread::yield();
    } else {
      submit_backoffs_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(delay);
    }
  }
}

void ShardedDispatchEngine::drain() {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  pump_locked();
}

void ShardedDispatchEngine::drain_shard(Shard& shard) {
  SessionEvent event;
  while (shard.ring.try_pop(event)) {
    switch (event.kind) {
      case SessionEvent::Kind::kStart:
        (void)shard.dispatcher.start_session(event.session_id,
                                             event.gpu_fraction,
                                             event.time_minutes);
        break;
      case SessionEvent::Kind::kEnd:
        shard.dispatcher.end_session(event.session_id, event.time_minutes);
        break;
    }
    ++shard.applied;
  }
}

void ShardedDispatchEngine::pump_locked() {
  const int effective = exec::WorkerBudget::effective();
  const std::size_t workers = std::min(
      shards_.size(), static_cast<std::size_t>(std::max(1, effective)));
  if (workers <= 1) {
    // Inline: the caller thread applies every shard's FIFO in shard order.
    // Observability is suppressed exactly as on worker threads, so the
    // exported trace is byte-identical across budgets.
    const exec::WorkerLease lease;
    const obs::ObsScope quiet(nullptr, nullptr);
    for (const std::unique_ptr<Shard>& shard : shards_) drain_shard(*shard);
    return;
  }
  // Fork-join over contiguous shard blocks. Each worker owns its shards
  // exclusively for this pump, so per-shard application stays FIFO and the
  // partition never affects results — only which thread runs them.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = w * shards_.size() / workers;
    const std::size_t end = (w + 1) * shards_.size() / workers;
    threads.emplace_back([this, begin, end, &first_error, &error_mutex] {
      const exec::WorkerLease lease;
      const obs::ObsScope quiet(nullptr, nullptr);
      try {
        for (std::size_t s = begin; s < end; ++s) drain_shard(*shards_[s]);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ShardedDispatchEngine::snapshot_shards_locked() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    shard.scratch.reset();
    const std::size_t active = shard.dispatcher.active_sessions();
    const std::span<double> sizes = shard.scratch.allocate_array<double>(active);
    shard.dispatcher.active_sizes_desc(sizes);
    // rle_from_sorted, but into the shard's reused vector.
    shard.snapshot.clear();
    for (const double size : sizes) {
      if (!shard.snapshot.empty() && shard.snapshot.back().size == size) {
        ++shard.snapshot.back().count;
      } else {
        shard.snapshot.push_back(SizeRun{size, 1});
      }
    }
  }
}

void ShardedDispatchEngine::merge_snapshots_locked() {
  // K-way merge of the per-shard runs in decreasing size order; bitwise-
  // equal sizes sum their counts. Shard order never matters (addition of
  // uint64 counts is associative), so the merged multiset is partition-
  // invariant: the same active sessions yield the same runs for any shard
  // count — the property the cross-shard differential test pins.
  merged_runs_.clear();
  std::vector<std::size_t> next(shards_.size(), 0);
  for (;;) {
    bool any = false;
    double best = 0.0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::vector<SizeRun>& runs = shards_[s]->snapshot;
      if (next[s] >= runs.size()) continue;
      const double size = runs[next[s]].size;
      if (!any || size > best) {
        best = size;
        any = true;
      }
    }
    if (!any) break;
    std::uint64_t count = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::vector<SizeRun>& runs = shards_[s]->snapshot;
      if (next[s] < runs.size() && runs[next[s]].size == best) {
        count += runs[next[s]].count;
        ++next[s];
      }
    }
    merged_runs_.push_back(SizeRun{best, count});
  }
}

void ShardedDispatchEngine::advance_epoch(Time now_minutes) {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  DBP_REQUIRE(epochs_ == 0 || now_minutes >= last_epoch_time_,
              "epoch times must be non-decreasing");
  // 1. Close the segment [last_epoch, now): the active multiset over that
  // segment is the one captured at the *previous* epoch (events queued
  // since then carry timestamps >= the epoch they follow). A zero-length
  // segment (now == last epoch — the wire timer thread produces coincident
  // ticks under load) contributes exactly 0 dollars and must not inflate
  // segments/exact_segments; it still refreshes the snapshot below, which
  // is a no-op on bounds when no new events were queued
  // (EngineTest.ZeroLengthEpochSegmentsAreFree).
  if (have_snapshot_) {
    const double minutes = now_minutes - last_epoch_time_;
    if (minutes > 0.0) {
      const double rate = config_.spec.to_cost_model().cost_rate;
      lower_dollars_.add(static_cast<double>(last_bounds_.lower) * minutes * rate);
      upper_dollars_.add(static_cast<double>(last_bounds_.upper) * minutes * rate);
      ++segments_;
      if (last_bounds_.exact()) ++exact_segments_;
    }
  }
  // 2. Apply everything queued, then snapshot and merge.
  pump_locked();
  snapshot_shards_locked();
  merge_snapshots_locked();
  last_bounds_ = oracle_.count_rle(merged_runs_);
  have_snapshot_ = true;
  last_epoch_time_ = now_minutes;
  ++epochs_;
  // 3. Deterministic observability, emitted from the caller thread only —
  // worker threads never record, so traces are byte-identical across
  // worker budgets.
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord mark;
    mark.time = now_minutes;
    mark.kind = obs::TraceKind::kEpochMark;
    mark.count = events_applied_locked();
    tracer->record(std::move(mark));
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      obs::TraceRecord snap;
      snap.time = now_minutes;
      snap.kind = obs::TraceKind::kShardSnapshot;
      snap.shard = s;
      snap.count = shards_[s]->dispatcher.active_sessions();
      tracer->record(std::move(snap));
    }
  }
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("engine.epochs").add();
  }
}

StreamingOptBounds ShardedDispatchEngine::opt_bounds() const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  StreamingOptBounds bounds;
  bounds.lower_dollars = lower_dollars_.value();
  bounds.upper_dollars = upper_dollars_.value();
  bounds.segments = segments_;
  bounds.exact_segments = exact_segments_;
  return bounds;
}

double ShardedDispatchEngine::rental_cost_dollars(Time now_minutes) const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  double dollars = 0.0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    dollars += shard->dispatcher.rental_cost_dollars(now_minutes);
  }
  return dollars;
}

std::size_t ShardedDispatchEngine::active_sessions() const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->dispatcher.active_sessions();
  }
  return total;
}

std::size_t ShardedDispatchEngine::active_servers() const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    total += shard->dispatcher.active_servers();
  }
  return total;
}

std::uint64_t ShardedDispatchEngine::events_applied() const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  return events_applied_locked();
}

std::uint64_t ShardedDispatchEngine::events_applied_locked() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) total += shard->applied;
  return total;
}

DispatcherFaultStats ShardedDispatchEngine::merged_fault_stats() const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  DispatcherFaultStats merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const DispatcherFaultStats& stats = shard->dispatcher.fault_stats();
    merged.duplicate_starts += stats.duplicate_starts;
    merged.unknown_ends += stats.unknown_ends;
    merged.unknown_servers += stats.unknown_servers;
    merged.time_order_violations += stats.time_order_violations;
    merged.invalid_sizes += stats.invalid_sizes;
    merged.rental_attempts_failed += stats.rental_attempts_failed;
    merged.sessions_rejected_rental += stats.sessions_rejected_rental;
    merged.sessions_rejected_cap += stats.sessions_rejected_cap;
    merged.sessions_shed += stats.sessions_shed;
    merged.sessions_redispatched += stats.sessions_redispatched;
    merged.sessions_lost_on_crash += stats.sessions_lost_on_crash;
    merged.servers_crashed += stats.servers_crashed;
    merged.backoff_minutes += stats.backoff_minutes;
  }
  return merged;
}

const GameServerDispatcher& ShardedDispatchEngine::shard_dispatcher(
    std::size_t shard) const {
  DBP_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->dispatcher;
}

std::uint64_t ShardedDispatchEngine::oracle_hits() const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  return oracle_.hits();
}

std::uint64_t ShardedDispatchEngine::oracle_misses() const {
  const std::lock_guard<std::mutex> lock(pump_mutex_);
  return oracle_.misses();
}

}  // namespace dbp::engine
