// Sharded streaming dispatch engine (ROADMAP item 1).
//
// Promotes the batch-simulated GameServerDispatcher to a long-running
// service core: N shards, each owning a full dispatcher (BinManager +
// packer + per-shard MonotonicArena scratch), drain session start/end
// events from bounded MPSC rings filled by any number of producer threads.
// A ShardRouter (engine/router.hpp) pins each session to one shard, so
// per-shard event order is the submission order of that session's producer
// and the shard's packing run is an ordinary sequential dispatcher run.
//
// Determinism contract (tests/engine_differential_test.cpp): for a fixed
// shard count and router, every observable result — per-shard packing
// state, aggregate bill, fault statistics, OPT_total bounds, exported
// traces — is bit-identical under any worker budget, because worker
// threads only decide *which thread* applies a shard's FIFO, never the
// order within it, and all cross-shard reductions run on the caller thread
// in shard order. Across different shard counts the *merged* quantities
// that are partition-invariant (active sessions, merged RLE multiset,
// OPT_total bounds) are bit-identical too; the aggregate bill is not,
// because First Fit on a union is not the sum of First Fit on partitions
// (docs/dispatch_engine.md).
//
// Epoch batching: advance_epoch(t) closes the segment [prev_epoch, t) by
// integrating the previous merged snapshot's certified bin-count bounds
// (opt/bin_count.hpp, memoized per engine), then applies all queued
// events and takes fresh per-shard RLE size-multiset snapshots. With an
// epoch at every event boundary the integral equals estimate_opt_total's
// (within accumulation-order rounding); sparser epochs trade fidelity for
// throughput, exactly like a metrics scrape cadence.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/compensated_sum.hpp"
#include "engine/mpsc_ring.hpp"
#include "engine/router.hpp"
#include "gaming/dispatcher.hpp"
#include "opt/bin_count.hpp"

namespace dbp::engine {

/// One dispatch event as submitted by a producer. POD — ring cells copy it.
struct SessionEvent {
  enum class Kind : std::uint8_t { kStart, kEnd };

  std::uint64_t session_id = 0;
  double gpu_fraction = 0.0;  ///< ignored for kEnd
  Time time_minutes = 0.0;
  Kind kind = Kind::kStart;
  /// Routing key; must be identical for a session's start and end. 0 is a
  /// valid key. Producers using the default constructor-free helpers below
  /// get route_key = session_id.
  std::uint64_t route_key = 0;
};

[[nodiscard]] inline SessionEvent start_event(std::uint64_t session_id,
                                              double gpu_fraction,
                                              Time time_minutes) {
  return SessionEvent{session_id, gpu_fraction, time_minutes,
                      SessionEvent::Kind::kStart, session_id};
}

[[nodiscard]] inline SessionEvent end_event(std::uint64_t session_id,
                                            Time time_minutes) {
  return SessionEvent{session_id, 0.0, time_minutes, SessionEvent::Kind::kEnd,
                      session_id};
}

struct EngineConfig {
  std::size_t shard_count = 1;
  /// Per-shard ring capacity; power of two >= 2. A full ring backpressures
  /// submit() into self-pumping.
  std::size_t ring_capacity = std::size_t{1} << 12;
  std::string algorithm = "first-fit";
  ServerSpec spec{};
  PackerOptions packer_options{};
  /// Shard dispatchers must run kDropAndCount: a DispatchError raised on a
  /// worker thread cannot unwind into the submitting producer, so strict
  /// mode is rejected by validate(). Rejected events surface through
  /// fault_stats() exactly like the batch dispatcher's drop mode.
  FaultPolicy fault_policy = [] {
    FaultPolicy policy;
    policy.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
    return policy;
  }();
  /// Bin-count options for the epoch OPT_total bounds.
  BinCountOptions bin_count{};
  std::size_t oracle_memo_limit = BinCountOracle::kMemoLimit;

  /// Throws PreconditionError unless the configuration is usable.
  void validate() const;
};

/// Streaming OPT_total bounds accumulated by advance_epoch, in dollars.
struct StreamingOptBounds {
  double lower_dollars = 0.0;
  double upper_dollars = 0.0;
  /// Epoch segments integrated and how many had exact (lower == upper)
  /// bin counts.
  std::size_t segments = 0;
  std::size_t exact_segments = 0;
};

class ShardedDispatchEngine {
 public:
  /// `router` defaults to HashShardRouter. The router must outlive nothing —
  /// the engine owns it.
  explicit ShardedDispatchEngine(EngineConfig config,
                                 std::unique_ptr<ShardRouter> router = nullptr);
  ~ShardedDispatchEngine();

  ShardedDispatchEngine(const ShardedDispatchEngine&) = delete;
  ShardedDispatchEngine& operator=(const ShardedDispatchEngine&) = delete;

  /// Non-blocking enqueue; false when the owning shard's ring is full.
  /// Thread-safe (any number of producers).
  bool try_submit(const SessionEvent& event);

  /// Enqueue with backpressure: when the shard's ring is full the calling
  /// thread tries to become the pump (draining *all* shards) and retries.
  /// While another thread holds the pump (e.g. a long advance_epoch) the
  /// producer yields for kSpinYieldRounds rounds, then sleeps with bounded
  /// exponential backoff (submit_backoff below) instead of burning a core
  /// for the whole epoch. Thread-safe; timing-only — per-producer FIFO
  /// order and all results are unaffected by the backoff.
  void submit(const SessionEvent& event);

  /// Backoff schedule for submit() retry round `failed_rounds` (1-based,
  /// reset whenever the producer makes progress): zero (pure yield) through
  /// round kSpinYieldRounds, then sleeps doubling from 1us up to the
  /// 1us << kMaxBackoffShift cap. Pure so the stress suite can pin the
  /// schedule exactly.
  static constexpr std::uint32_t kSpinYieldRounds = 64;
  static constexpr std::uint32_t kMaxBackoffShift = 8;  // 256us cap

  [[nodiscard]] static constexpr std::chrono::microseconds submit_backoff(
      std::uint32_t failed_rounds) noexcept {
    if (failed_rounds <= kSpinYieldRounds) return std::chrono::microseconds{0};
    const std::uint32_t shift =
        std::min(failed_rounds - kSpinYieldRounds - 1, kMaxBackoffShift);
    return std::chrono::microseconds{std::uint32_t{1} << shift};
  }

  /// Times submit() entered a backoff sleep (not yields). Monotonic;
  /// nonzero proves producers stopped spinning under a held pump.
  [[nodiscard]] std::uint64_t submit_backoffs() const noexcept {
    return submit_backoffs_.load(std::memory_order_relaxed);
  }

  /// Test hook: acquires the pump lock and returns it, freezing pumping,
  /// epochs and queries until the lock is released — an arbitrarily slow
  /// epoch, idealized. Producers facing a full ring meanwhile take the
  /// submit_backoff() path. Not part of the serving API.
  [[nodiscard]] std::unique_lock<std::mutex> hold_pump_for_test() const {
    return std::unique_lock<std::mutex>(pump_mutex_);
  }

  /// Applies every queued event. Shards drain in parallel up to
  /// exec::WorkerBudget::effective() workers; results are bit-identical
  /// under any budget. Caller-thread observability is suppressed during
  /// application so traces stay byte-identical across budgets.
  void drain();

  /// Closes the epoch segment [previous epoch, now_minutes): integrates the
  /// previous merged snapshot's bin-count bounds over the segment, then
  /// drains all rings and takes fresh per-shard RLE snapshots (merged on
  /// the caller thread in shard order). Emits one kEpochMark plus one
  /// kShardSnapshot trace record per shard when a tracer is in scope.
  /// Epoch times must be non-decreasing.
  void advance_epoch(Time now_minutes);

  [[nodiscard]] StreamingOptBounds opt_bounds() const;

  /// Aggregate rental bill: shard-order sum of per-shard bills. Drained
  /// events only — call drain()/advance_epoch() first for a full view.
  [[nodiscard]] double rental_cost_dollars(Time now_minutes) const;

  [[nodiscard]] std::size_t active_sessions() const;
  [[nodiscard]] std::size_t active_servers() const;
  [[nodiscard]] std::uint64_t events_applied() const;
  /// Field-wise sum of per-shard fault statistics, in shard order.
  [[nodiscard]] DispatcherFaultStats merged_fault_stats() const;

  /// The merged active-size multiset of the last advance_epoch (RLE,
  /// strictly decreasing sizes). Partition-invariant: bit-identical for any
  /// shard count over the same event stream.
  [[nodiscard]] const std::vector<SizeRun>& merged_snapshot_rle() const noexcept {
    return merged_runs_;
  }

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  /// Read access to one shard's dispatcher (drained state).
  [[nodiscard]] const GameServerDispatcher& shard_dispatcher(std::size_t shard) const;
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] const ShardRouter& router() const noexcept { return *router_; }

  /// Oracle memo traffic across all epochs (hits grow on cyclic workloads).
  [[nodiscard]] std::uint64_t oracle_hits() const;
  [[nodiscard]] std::uint64_t oracle_misses() const;

 private:
  struct Shard;

  void pump_locked();
  void drain_shard(Shard& shard);
  void snapshot_shards_locked();
  void merge_snapshots_locked();
  [[nodiscard]] std::uint64_t events_applied_locked() const;

  EngineConfig config_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Serializes pumping, epochs and queries; producers only touch rings.
  mutable std::mutex pump_mutex_;
  std::atomic<std::uint64_t> submit_backoffs_{0};

  // Epoch state (guarded by pump_mutex_).
  BinCountOracle oracle_;
  std::vector<SizeRun> merged_runs_;
  BinCountBounds last_bounds_{};
  bool have_snapshot_ = false;
  Time last_epoch_time_ = 0.0;
  CompensatedSum lower_dollars_;
  CompensatedSum upper_dollars_;
  std::size_t segments_ = 0;
  std::size_t exact_segments_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace dbp::engine
