#include "gaming/dispatcher.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>

#include "core/error.hpp"
#include "core/strfmt.hpp"
#include "obs/obs.hpp"
#include "opt/rle.hpp"

namespace dbp {

CostModel ServerSpec::to_cost_model() const {
  // Trace time is in minutes; bill at the per-minute equivalent rate.
  return CostModel{gpu_capacity, price_per_hour / 60.0, 1e-9 * gpu_capacity};
}

GameServerDispatcher::GameServerDispatcher(ServerSpec spec,
                                           const std::string& algorithm,
                                           const PackerOptions& options,
                                           const FaultPolicy& policy)
    : spec_(spec), algorithm_(algorithm), policy_(policy),
      rental_rng_(policy.seed) {
  DBP_REQUIRE(spec.gpu_capacity > 0.0, "server GPU capacity must be positive");
  DBP_REQUIRE(spec.price_per_hour > 0.0, "server price must be positive");
  policy_.validate();
  packer_ = make_packer(algorithm, spec.to_cost_model(), options);
}

bool GameServerDispatcher::reject(DispatchErrorKind kind, std::uint64_t& counter,
                                  const std::string& message) {
  ++counter;
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = last_event_time_;
    record.kind = obs::TraceKind::kDispatchReject;
    record.label = to_string(kind);
    tracer->record(std::move(record));
  }
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter(std::string("dispatcher.rejected.") + to_string(kind)).add();
  }
  if (policy_.on_anomaly == FaultPolicy::AnomalyAction::kThrow) {
    throw DispatchError(kind, message);
  }
  return false;
}

bool GameServerDispatcher::fits_open_server(double gpu_fraction) const {
  const BinManager& bins = packer_->bins();
  for (const BinId bin : bins.open_bins()) {
    if (bins.fits(gpu_fraction, bin)) return true;
  }
  return false;
}

void GameServerDispatcher::shed_for(double gpu_fraction, Time now_minutes) {
  const BinManager& bins = packer_->bins();
  while (!fits_open_server(gpu_fraction) &&
         active_servers() >= policy_.max_fleet_servers) {
    // Lowest GPU fraction strictly below the arrival's, ties to the lowest
    // session id. Candidates come from the bins, never from orphans that
    // are mid-re-dispatch.
    bool found = false;
    std::uint64_t victim = 0;
    double victim_size = 0.0;
    for (const BinId bin : bins.open_bins()) {
      for (const ItemId session : bins.items_in(bin)) {
        const double size = sessions_.at(session);
        if (size >= gpu_fraction) continue;
        if (!found || size < victim_size ||
            (size == victim_size && session < victim)) {
          found = true;
          victim = session;
          victim_size = size;
        }
      }
    }
    if (!found) return;  // nothing smaller left to sacrifice
    packer_->on_departure(victim, now_minutes);
    sessions_.erase(victim);
    ++stats_.sessions_shed;
    if (obs::RunTracer* tracer = obs::tracer()) {
      obs::TraceRecord record;
      record.time = now_minutes;
      record.kind = obs::TraceKind::kSessionShed;
      record.item = victim;
      record.size = victim_size;
      tracer->record(std::move(record));
    }
    if (obs::MetricsRegistry* metrics = obs::metrics()) {
      metrics->counter("dispatcher.sessions_shed").add();
    }
  }
}

BinId GameServerDispatcher::place_session(std::uint64_t session_id,
                                          double gpu_fraction, Time now_minutes) {
  // Capacity gate only when a policy can actually refuse a rental: with no
  // fleet cap and a perfectly reliable provider every arrival is placed
  // unconditionally, and fits_open_server is an O(open servers) scan (with
  // an open_bins() allocation) that the packer's own fit search repeats.
  // Skipping it is behavior-preserving — the gate's two branches are dead
  // under this policy — and is what lets the streaming engine's dispatch
  // path run allocation-free per event.
  if (policy_.max_fleet_servers == 0 && policy_.rental_failure_rate <= 0.0) {
    const BinId server =
        packer_->on_arrival(ArrivingItem{session_id, now_minutes, gpu_fraction});
    sessions_[session_id] = gpu_fraction;
    if (obs::MetricsRegistry* metrics = obs::metrics()) {
      metrics->counter("dispatcher.sessions_placed").add();
    }
    return server;
  }
  if (!fits_open_server(gpu_fraction)) {
    // No open server can host the session: a new rental is needed.
    if (policy_.max_fleet_servers > 0 &&
        active_servers() >= policy_.max_fleet_servers) {
      shed_for(gpu_fraction, now_minutes);
      if (!fits_open_server(gpu_fraction) &&
          active_servers() >= policy_.max_fleet_servers) {
        reject(DispatchErrorKind::kFleetCapExceeded,
               stats_.sessions_rejected_cap,
               strfmt("session %llu rejected: fleet cap of %zu servers hit and "
                      "shedding could not make room",
                      static_cast<unsigned long long>(session_id),
                      policy_.max_fleet_servers));
        return kNoServer;
      }
    }
    if (!fits_open_server(gpu_fraction) && policy_.rental_failure_rate > 0.0) {
      // Bounded retry with exponential backoff against a flaky provider.
      bool rented = false;
      for (int attempt = 0; attempt <= policy_.max_rental_retries; ++attempt) {
        if (!rental_rng_.bernoulli(policy_.rental_failure_rate)) {
          rented = true;
          break;
        }
        ++stats_.rental_attempts_failed;
        if (attempt < policy_.max_rental_retries) {
          stats_.backoff_minutes +=
              policy_.backoff_base_minutes * std::pow(2.0, attempt);
        }
      }
      if (!rented) {
        reject(DispatchErrorKind::kRentalFailed,
               stats_.sessions_rejected_rental,
               strfmt("session %llu rejected: %d rental attempts failed",
                      static_cast<unsigned long long>(session_id),
                      policy_.max_rental_retries + 1));
        return kNoServer;
      }
    }
  }
  const BinId server =
      packer_->on_arrival(ArrivingItem{session_id, now_minutes, gpu_fraction});
  sessions_[session_id] = gpu_fraction;
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("dispatcher.sessions_placed").add();
  }
  return server;
}

BinId GameServerDispatcher::start_session(std::uint64_t session_id,
                                          double gpu_fraction, Time now_minutes) {
  if (!std::isfinite(now_minutes) || now_minutes < last_event_time_) {
    if (!reject(DispatchErrorKind::kTimeOrderViolation,
                stats_.time_order_violations,
                strfmt("session %llu: start at t=%g violates the "
                       "non-decreasing-time contract (clock at t=%g)",
                       static_cast<unsigned long long>(session_id), now_minutes,
                       last_event_time_))) {
      return kNoServer;
    }
  }
  if (!std::isfinite(gpu_fraction) || gpu_fraction <= 0.0 ||
      !packer_->model().fits(gpu_fraction, spec_.gpu_capacity)) {
    if (!reject(DispatchErrorKind::kInvalidSize, stats_.invalid_sizes,
                strfmt("session %llu: invalid GPU fraction %g (capacity %g)",
                       static_cast<unsigned long long>(session_id), gpu_fraction,
                       spec_.gpu_capacity))) {
      return kNoServer;
    }
  }
  if (sessions_.contains(session_id)) {
    if (!reject(DispatchErrorKind::kDuplicateStart, stats_.duplicate_starts,
                strfmt("session %llu is already active: duplicate start_session",
                       static_cast<unsigned long long>(session_id)))) {
      return kNoServer;
    }
  }
  last_event_time_ = now_minutes;
  return place_session(session_id, gpu_fraction, now_minutes);
}

void GameServerDispatcher::end_session(std::uint64_t session_id, Time now_minutes) {
  if (!std::isfinite(now_minutes) || now_minutes < last_event_time_) {
    if (!reject(DispatchErrorKind::kTimeOrderViolation,
                stats_.time_order_violations,
                strfmt("session %llu: end at t=%g violates the "
                       "non-decreasing-time contract (clock at t=%g)",
                       static_cast<unsigned long long>(session_id), now_minutes,
                       last_event_time_))) {
      return;
    }
  }
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    reject(DispatchErrorKind::kUnknownSession, stats_.unknown_ends,
           strfmt("session %llu is not active: unknown end_session",
                  static_cast<unsigned long long>(session_id)));
    return;
  }
  last_event_time_ = now_minutes;
  packer_->on_departure(session_id, now_minutes);
  sessions_.erase(it);
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("dispatcher.sessions_ended").add();
  }
}

std::size_t GameServerDispatcher::fail_server(BinId server, Time now_minutes) {
  if (!std::isfinite(now_minutes) || now_minutes < last_event_time_) {
    if (!reject(DispatchErrorKind::kTimeOrderViolation,
                stats_.time_order_violations,
                strfmt("fail_server(%llu) at t=%g violates the "
                       "non-decreasing-time contract (clock at t=%g)",
                       static_cast<unsigned long long>(server), now_minutes,
                       last_event_time_))) {
      return 0;
    }
  }
  const BinManager& bins = packer_->bins();
  if (server >= bins.total_bins_opened() || !bins.is_open(server)) {
    reject(DispatchErrorKind::kUnknownServer, stats_.unknown_servers,
           strfmt("server %llu is not an active server",
                  static_cast<unsigned long long>(server)));
    return 0;
  }
  last_event_time_ = now_minutes;
  // The crash ends the rental now: every resident session departs, which
  // closes the server's usage record at the crash time.
  const std::vector<ItemId> orphans = bins.items_in(server);
  if (obs::RunTracer* tracer = obs::tracer()) {
    obs::TraceRecord record;
    record.time = now_minutes;
    record.kind = obs::TraceKind::kServerFail;
    record.bin = server;
    record.count = orphans.size();
    tracer->record(std::move(record));
  }
  for (const ItemId session : orphans) {
    packer_->on_departure(session, now_minutes);
  }
  ++stats_.servers_crashed;
  if (obs::MetricsRegistry* metrics = obs::metrics()) {
    metrics->counter("dispatcher.servers_crashed").add();
  }
  // Re-dispatch the orphans as fresh arrivals (ascending session id — the
  // order is deterministic). Re-dispatch rejections never throw: the
  // orphan is dropped and counted instead, since the caller reporting the
  // crash is not at fault.
  const FaultPolicy::AnomalyAction saved = policy_.on_anomaly;
  policy_.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  std::size_t redispatched = 0;
  for (const ItemId session : orphans) {
    const double size = sessions_.at(session);
    if (place_session(session, size, now_minutes) != kNoServer) {
      ++redispatched;
      ++stats_.sessions_redispatched;
    } else {
      sessions_.erase(session);
      ++stats_.sessions_lost_on_crash;
    }
  }
  policy_.on_anomaly = saved;
  return redispatched;
}

void GameServerDispatcher::save_state(ByteWriter& out) const {
  out.str(algorithm_);
  out.f64(spec_.gpu_capacity);
  out.f64(spec_.price_per_hour);
  out.u8(static_cast<std::uint8_t>(policy_.on_anomaly));
  out.f64(policy_.rental_failure_rate);
  out.u64(static_cast<std::uint64_t>(policy_.max_rental_retries));
  out.f64(policy_.backoff_base_minutes);
  out.u64(policy_.max_fleet_servers);
  out.u64(policy_.seed);
  packer_->save_snapshot(out);
  std::vector<std::pair<std::uint64_t, double>> sessions(sessions_.begin(),
                                                         sessions_.end());
  std::sort(sessions.begin(), sessions.end());
  out.u64(sessions.size());
  for (const auto& [id, size] : sessions) {
    out.u64(id);
    out.f64(size);
  }
  // RLE size-multiset cross-check (opt/rle.hpp): a compact semantic summary
  // of the active load, validated independently of the packer bytes on
  // restore so a checkpoint whose halves disagree is rejected, not trusted.
  std::vector<double> sizes;
  sizes.reserve(sessions.size());
  for (const auto& [id, size] : sessions) sizes.push_back(size);
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const std::vector<SizeRun> runs = rle_from_sorted(sizes);
  out.u64(runs.size());
  for (const SizeRun& run : runs) {
    out.f64(run.size);
    out.u64(run.count);
  }
  out.u64(stats_.duplicate_starts);
  out.u64(stats_.unknown_ends);
  out.u64(stats_.unknown_servers);
  out.u64(stats_.time_order_violations);
  out.u64(stats_.invalid_sizes);
  out.u64(stats_.rental_attempts_failed);
  out.u64(stats_.sessions_rejected_rental);
  out.u64(stats_.sessions_rejected_cap);
  out.u64(stats_.sessions_shed);
  out.u64(stats_.sessions_redispatched);
  out.u64(stats_.sessions_lost_on_crash);
  out.u64(stats_.servers_crashed);
  out.f64(stats_.backoff_minutes);
  out.str(rental_rng_.save_state());
  out.f64(last_event_time_);
}

void GameServerDispatcher::restore_state(ByteReader& in) {
  if (in.str() != algorithm_) {
    throw CorruptionError("checkpoint algorithm differs from this dispatcher's");
  }
  if (in.f64() != spec_.gpu_capacity || in.f64() != spec_.price_per_hour) {
    throw CorruptionError("checkpoint server spec differs from this dispatcher's");
  }
  FaultPolicy persisted = policy_;
  persisted.on_anomaly = static_cast<FaultPolicy::AnomalyAction>(in.u8());
  persisted.rental_failure_rate = in.f64();
  persisted.max_rental_retries = static_cast<int>(in.u64());
  persisted.backoff_base_minutes = in.f64();
  persisted.max_fleet_servers = static_cast<std::size_t>(in.u64());
  persisted.seed = in.u64();
  if (!(persisted == policy_)) {
    throw CorruptionError("checkpoint fault policy differs from this dispatcher's");
  }
  packer_->restore_snapshot(in);
  sessions_.clear();
  const std::uint64_t session_count = in.u64();
  for (std::uint64_t i = 0; i < session_count; ++i) {
    const std::uint64_t id = in.u64();
    const double size = in.f64();
    if (!sessions_.emplace(id, size).second) {
      throw CorruptionError("checkpoint session table repeats an id");
    }
  }
  // The session table must exactly cover the packer's resident items.
  const BinManager& bins = packer_->bins();
  if (session_count != bins.active_item_count()) {
    throw CorruptionError("session census disagrees with the packer's residents");
  }
  std::vector<double> active_sizes;
  active_sizes.reserve(session_count);
  for (const BinId bin : bins.open_bins()) {
    for (const ItemId item : bins.items_in(bin)) {
      const auto it = sessions_.find(item);
      if (it == sessions_.end()) {
        throw CorruptionError("packer resident missing from the session table");
      }
      active_sizes.push_back(it->second);
    }
  }
  // Recompute the RLE active-size multiset from the restored state and
  // require it to match the persisted runs bit-for-bit.
  std::sort(active_sizes.begin(), active_sizes.end(), std::greater<>());
  const std::vector<SizeRun> recomputed = rle_from_sorted(active_sizes);
  rle_validate(recomputed, packer_->model());
  const std::uint64_t run_count = in.u64();
  if (run_count != recomputed.size()) {
    throw CorruptionError("RLE cross-check run count mismatch");
  }
  for (const SizeRun& run : recomputed) {
    if (in.f64() != run.size || in.u64() != run.count) {
      throw CorruptionError("RLE cross-check multiset mismatch");
    }
  }
  stats_.duplicate_starts = in.u64();
  stats_.unknown_ends = in.u64();
  stats_.unknown_servers = in.u64();
  stats_.time_order_violations = in.u64();
  stats_.invalid_sizes = in.u64();
  stats_.rental_attempts_failed = in.u64();
  stats_.sessions_rejected_rental = in.u64();
  stats_.sessions_rejected_cap = in.u64();
  stats_.sessions_shed = in.u64();
  stats_.sessions_redispatched = in.u64();
  stats_.sessions_lost_on_crash = in.u64();
  stats_.servers_crashed = in.u64();
  stats_.backoff_minutes = in.f64();
  rental_rng_.load_state(in.str());
  last_event_time_ = in.f64();
}

std::size_t GameServerDispatcher::active_servers() const {
  return packer_->bins().open_count();
}

std::size_t GameServerDispatcher::servers_ever_rented() const {
  return packer_->bins().total_bins_opened();
}

std::size_t GameServerDispatcher::active_sessions() const {
  return packer_->bins().active_item_count();
}

void GameServerDispatcher::active_sizes_desc(std::span<double> out) const {
  DBP_REQUIRE(out.size() == sessions_.size(),
              "active_sizes_desc span must cover exactly the active sessions");
  std::size_t i = 0;
  // Collection order is the map's (arbitrary); the sort below makes the
  // result independent of it.
  for (const auto& [id, size] : sessions_) out[i++] = size;
  std::sort(out.begin(), out.end(), std::greater<>());
}

double GameServerDispatcher::rental_cost_dollars(Time now_minutes) const {
  // "Bill accrued by `now_minutes`": each rental contributes its overlap
  // with (-inf, now]. The probe time is allowed to be earlier than the
  // event clock (read-only probes between events), so two clamps are
  // load-bearing: a rental that opens after the probe contributes zero —
  // never negative minutes — and a closed rental probed mid-life is
  // truncated at the probe time instead of billing its full length.
  double minutes = 0.0;
  for (const BinUsageRecord& record : packer_->bins().usage_records()) {
    const Time end = std::min(record.closed, now_minutes);  // closed = +inf while open
    minutes += std::max(0.0, end - record.opened);
  }
  return minutes * spec_.price_per_hour / 60.0;
}

DispatchComparison compare_dispatch_algorithms(
    const CloudGamingTrace& trace, const std::vector<std::string>& algorithms,
    const ServerSpec& spec) {
  const CostModel model = spec.to_cost_model();
  const InstanceEvaluation evaluation =
      evaluate_algorithms(trace.instance, algorithms, model);

  DispatchComparison comparison;
  comparison.metrics = evaluation.metrics;
  comparison.optimal_dollars_lower = evaluation.opt.lower_cost;
  comparison.optimal_dollars_upper = evaluation.opt.upper_cost;
  comparison.reports.reserve(evaluation.algorithms.size());
  for (const AlgorithmEvaluation& eval : evaluation.algorithms) {
    DispatchReport report;
    report.algorithm = eval.algorithm;
    report.total_dollars = eval.total_cost;
    report.server_hours = eval.total_cost / spec.price_per_hour;
    report.servers_rented = eval.bins_opened;
    report.peak_servers = eval.max_open_bins;
    const double gpu_minutes_rented =
        report.server_hours * 60.0 * spec.gpu_capacity;
    report.utilization = evaluation.metrics.total_demand / gpu_minutes_rented;
    report.overspend = eval.ratio;
    comparison.reports.push_back(std::move(report));
  }
  return comparison;
}

RegionalDispatcher::RegionalDispatcher(ServerSpec spec, std::string algorithm,
                                       PackerOptions options)
    : spec_(spec), algorithm_(std::move(algorithm)), options_(options) {}

BinId RegionalDispatcher::start_session(const std::string& region,
                                        std::uint64_t session_id,
                                        double gpu_fraction, Time now_minutes) {
  // Validate before any state mutation, and reject with the same typed
  // DispatchError contract GameServerDispatcher documents. The historical
  // order — create the fleet, record the session->fleet mapping, then
  // dispatch — leaked an empty fleet on a duplicate start and left a stale
  // session_fleet_ entry behind when the inner dispatch threw (invalid
  // size, time travel), after which end_session on the never-started id
  // would corrupt the bookkeeping instead of rejecting it.
  if (session_fleet_.contains(session_id)) {
    throw DispatchError(
        DispatchErrorKind::kDuplicateStart,
        strfmt("session %llu is already active in a regional fleet: "
               "duplicate start_session",
               static_cast<unsigned long long>(session_id)));
  }
  const auto it = fleets_.find(region);
  std::unique_ptr<GameServerDispatcher> created;
  GameServerDispatcher* fleet;
  if (it == fleets_.end()) {
    created = std::make_unique<GameServerDispatcher>(spec_, algorithm_, options_);
    fleet = created.get();
  } else {
    fleet = it->second.get();
  }
  // May throw; a freshly created fleet is then discarded untouched and no
  // mapping has been recorded yet.
  const BinId server = fleet->start_session(session_id, gpu_fraction, now_minutes);
  if (server == kNoServer) return kNoServer;  // dropped under kDropAndCount
  if (created) fleets_.emplace(region, std::move(created));
  session_fleet_[session_id] = fleet;
  return server;
}

void RegionalDispatcher::end_session(std::uint64_t session_id, Time now_minutes) {
  auto it = session_fleet_.find(session_id);
  if (it == session_fleet_.end()) {
    throw DispatchError(
        DispatchErrorKind::kUnknownSession,
        strfmt("session %llu is not active in any regional fleet: "
               "unknown end_session",
               static_cast<unsigned long long>(session_id)));
  }
  // A throwing end (time-order violation) leaves the mapping in place: the
  // session is still active in its fleet.
  it->second->end_session(session_id, now_minutes);
  session_fleet_.erase(it);
}

std::size_t RegionalDispatcher::active_servers() const {
  std::size_t total = 0;
  // DBP_LINT_ALLOW(unordered-container): integer sum, order-independent.
  for (const auto& [region, fleet] : fleets_) total += fleet->active_servers();
  return total;
}

double RegionalDispatcher::rental_cost_dollars(Time now_minutes) const {
  // Sum fleets in sorted region order: the bill is a floating-point
  // accumulation, and hash-map iteration order would make it vary across
  // standard-library implementations.
  double total = 0.0;
  for (const std::string& region : regions()) {
    total += fleets_.at(region)->rental_cost_dollars(now_minutes);
  }
  return total;
}

std::vector<std::string> RegionalDispatcher::regions() const {
  std::vector<std::string> names;
  names.reserve(fleets_.size());
  for (const auto& [region, fleet] : fleets_) names.push_back(region);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dbp
