#include "gaming/dispatcher.hpp"

#include "core/error.hpp"

namespace dbp {

CostModel ServerSpec::to_cost_model() const {
  // Trace time is in minutes; bill at the per-minute equivalent rate.
  return CostModel{gpu_capacity, price_per_hour / 60.0, 1e-9 * gpu_capacity};
}

GameServerDispatcher::GameServerDispatcher(ServerSpec spec,
                                           const std::string& algorithm,
                                           const PackerOptions& options)
    : spec_(spec), algorithm_(algorithm) {
  DBP_REQUIRE(spec.gpu_capacity > 0.0, "server GPU capacity must be positive");
  DBP_REQUIRE(spec.price_per_hour > 0.0, "server price must be positive");
  packer_ = make_packer(algorithm, spec.to_cost_model(), options);
}

BinId GameServerDispatcher::start_session(std::uint64_t session_id,
                                          double gpu_fraction, Time now_minutes) {
  DBP_REQUIRE(now_minutes >= last_event_time_,
              "dispatch events must be fed in time order");
  last_event_time_ = now_minutes;
  return packer_->on_arrival(ArrivingItem{session_id, now_minutes, gpu_fraction});
}

void GameServerDispatcher::end_session(std::uint64_t session_id, Time now_minutes) {
  DBP_REQUIRE(now_minutes >= last_event_time_,
              "dispatch events must be fed in time order");
  last_event_time_ = now_minutes;
  packer_->on_departure(session_id, now_minutes);
}

std::size_t GameServerDispatcher::active_servers() const {
  return packer_->bins().open_count();
}

std::size_t GameServerDispatcher::servers_ever_rented() const {
  return packer_->bins().total_bins_opened();
}

std::size_t GameServerDispatcher::active_sessions() const {
  return packer_->bins().active_item_count();
}

double GameServerDispatcher::rental_cost_dollars(Time now_minutes) const {
  double minutes = 0.0;
  for (const BinUsageRecord& record : packer_->bins().usage_records()) {
    const Time end = record.is_closed() ? record.closed : now_minutes;
    if (end > record.opened) minutes += end - record.opened;
  }
  return minutes * spec_.price_per_hour / 60.0;
}

DispatchComparison compare_dispatch_algorithms(
    const CloudGamingTrace& trace, const std::vector<std::string>& algorithms,
    const ServerSpec& spec) {
  const CostModel model = spec.to_cost_model();
  const InstanceEvaluation evaluation =
      evaluate_algorithms(trace.instance, algorithms, model);

  DispatchComparison comparison;
  comparison.metrics = evaluation.metrics;
  comparison.optimal_dollars_lower = evaluation.opt.lower_cost;
  comparison.optimal_dollars_upper = evaluation.opt.upper_cost;
  comparison.reports.reserve(evaluation.algorithms.size());
  for (const AlgorithmEvaluation& eval : evaluation.algorithms) {
    DispatchReport report;
    report.algorithm = eval.algorithm;
    report.total_dollars = eval.total_cost;
    report.server_hours = eval.total_cost / spec.price_per_hour;
    report.servers_rented = eval.bins_opened;
    report.peak_servers = eval.max_open_bins;
    const double gpu_minutes_rented =
        report.server_hours * 60.0 * spec.gpu_capacity;
    report.utilization = evaluation.metrics.total_demand / gpu_minutes_rented;
    report.overspend = eval.ratio;
    comparison.reports.push_back(std::move(report));
  }
  return comparison;
}

RegionalDispatcher::RegionalDispatcher(ServerSpec spec, std::string algorithm,
                                       PackerOptions options)
    : spec_(spec), algorithm_(std::move(algorithm)), options_(options) {}

BinId RegionalDispatcher::start_session(const std::string& region,
                                        std::uint64_t session_id,
                                        double gpu_fraction, Time now_minutes) {
  auto& fleet = fleets_[region];
  if (!fleet) {
    fleet = std::make_unique<GameServerDispatcher>(spec_, algorithm_, options_);
  }
  DBP_REQUIRE(!session_fleet_.contains(session_id), "session id already active");
  session_fleet_[session_id] = fleet.get();
  return fleet->start_session(session_id, gpu_fraction, now_minutes);
}

void RegionalDispatcher::end_session(std::uint64_t session_id, Time now_minutes) {
  auto it = session_fleet_.find(session_id);
  DBP_REQUIRE(it != session_fleet_.end(), "unknown session id");
  it->second->end_session(session_id, now_minutes);
  session_fleet_.erase(it);
}

std::size_t RegionalDispatcher::active_servers() const {
  std::size_t total = 0;
  for (const auto& [region, fleet] : fleets_) total += fleet->active_servers();
  return total;
}

double RegionalDispatcher::rental_cost_dollars(Time now_minutes) const {
  double total = 0.0;
  for (const auto& [region, fleet] : fleets_) {
    total += fleet->rental_cost_dollars(now_minutes);
  }
  return total;
}

std::vector<std::string> RegionalDispatcher::regions() const {
  std::vector<std::string> names;
  names.reserve(fleets_.size());
  for (const auto& [region, fleet] : fleets_) names.push_back(region);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dbp
