// The cloud-gaming request dispatcher: the application the paper's
// MinTotal DBP model was built for (Section 1).
//
// Game servers are rented virtual machines billed per unit of running time
// (the bins, cost rate = hourly price); play sessions are the items (size =
// the game's GPU fraction); dispatch decisions are online and sessions
// never migrate.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "algo/factory.hpp"
#include "algo/packer.hpp"
#include "analysis/ratio.hpp"
#include "core/types.hpp"
#include "gaming/fault_policy.hpp"
#include "workload/cloud_gaming.hpp"
#include "workload/rng.hpp"

namespace dbp {

/// The rented server type. All servers are identical, mirroring the paper's
/// uniform-bin assumption.
struct ServerSpec {
  double gpu_capacity = 1.0;     ///< bin capacity W (1.0 = one full GPU)
  double price_per_hour = 1.0;   ///< rental price (cost rate C), $/hour

  [[nodiscard]] CostModel to_cost_model() const;
};

/// Online dispatcher facade: feed it session starts/ends in time order and
/// it maintains the rented server fleet via the chosen packing algorithm.
///
/// Anomalous events (duplicate starts, unknown ends, time travel, invalid
/// sizes) are rejected up front with a typed DispatchError — before any
/// packing state changes — or counted and dropped, per the FaultPolicy.
class GameServerDispatcher {
 public:
  /// `algorithm` is any algo/factory.hpp name; "first-fit" and
  /// "modified-first-fit" are the theoretically safe choices (Theorems 4-5;
  /// Best Fit is provably unbounded, Theorem 2).
  GameServerDispatcher(ServerSpec spec, const std::string& algorithm,
                       const PackerOptions& options = {},
                       const FaultPolicy& policy = {});

  /// Dispatches a session needing `gpu_fraction` of a server at time
  /// `now_minutes`; returns the server id (a fresh id when a new server is
  /// rented). Times must be non-decreasing across calls. Under
  /// AnomalyAction::kDropAndCount a rejected event returns kNoServer
  /// instead of throwing.
  BinId start_session(std::uint64_t session_id, double gpu_fraction,
                      Time now_minutes);

  /// Ends a session; its server is released (and returned to the provider)
  /// when its last session ends.
  void end_session(std::uint64_t session_id, Time now_minutes);

  /// Simulates a crash of `server` at `now_minutes`: the server's rental
  /// ends immediately and its orphaned sessions are re-dispatched as fresh
  /// arrivals (no migration — they may land on newly rented servers).
  /// Returns the number of sessions successfully re-dispatched; orphans
  /// whose re-dispatch is rejected (cap/rental failure) are dropped and
  /// counted in fault_stats().sessions_lost_on_crash.
  std::size_t fail_server(BinId server, Time now_minutes);

  [[nodiscard]] std::size_t active_servers() const;
  [[nodiscard]] std::size_t servers_ever_rented() const;
  [[nodiscard]] std::size_t active_sessions() const;

  /// The dispatcher's event clock: the time of the last accepted event
  /// (-inf before any event). Read-only probes may use earlier times.
  [[nodiscard]] Time last_event_time() const noexcept { return last_event_time_; }

  /// Writes the active sessions' GPU fractions into `out` in non-increasing
  /// order. `out.size()` must equal active_sessions(). Deterministic (the
  /// values are collected, then sorted), so engine::ShardedDispatchEngine
  /// can build RLE size-multiset snapshots from it (opt/rle.hpp) into
  /// arena-backed buffers without touching dispatcher internals.
  void active_sizes_desc(std::span<double> out) const;

  /// Total rental bill accrued by time `now_minutes` (includes the open
  /// tails of still-running servers). Probing earlier than the event clock
  /// is legal: rentals are clipped to (-inf, now_minutes], so a server that
  /// opened after the probe contributes exactly zero dollars — never a
  /// negative tail — and closed rentals bill only the part before the probe.
  [[nodiscard]] double rental_cost_dollars(Time now_minutes) const;

  [[nodiscard]] const std::string& algorithm() const noexcept { return algorithm_; }
  [[nodiscard]] const ServerSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const FaultPolicy& fault_policy() const noexcept { return policy_; }
  [[nodiscard]] const DispatcherFaultStats& fault_stats() const noexcept {
    return stats_;
  }

  /// Read access to the underlying packer's bin state (servers = bins).
  [[nodiscard]] const BinManager& bins() const noexcept { return packer_->bins(); }

  /// True when the configured algorithm's packer can checkpoint bit-exactly.
  [[nodiscard]] bool snapshot_supported() const {
    return packer_->snapshot_supported();
  }

  /// Serializes the complete dispatcher state: packer snapshot, active
  /// session table, fault statistics (including the retry/backoff
  /// accumulators), the rental RNG *position*, and the event clock — plus an
  /// RLE size-multiset cross-check of the active sessions. Requires
  /// snapshot_supported().
  void save_state(ByteWriter& out) const;

  /// Restores save_state() bytes into a dispatcher freshly constructed with
  /// the same (spec, algorithm, options, policy). Mismatched construction or
  /// inconsistent state throws CorruptionError; afterwards the dispatcher
  /// continues the interrupted run bit-identically.
  void restore_state(ByteReader& in);

 private:
  /// Validation failure: throws DispatchError (kThrow) or bumps `counter`
  /// and returns false (kDropAndCount).
  bool reject(DispatchErrorKind kind, std::uint64_t& counter,
              const std::string& message);
  /// Capacity gate + placement shared by start_session and fail_server
  /// re-dispatch. Returns the server, or kNoServer when rejected.
  BinId place_session(std::uint64_t session_id, double gpu_fraction,
                      Time now_minutes);
  /// True when any open server can host a session of `gpu_fraction`.
  [[nodiscard]] bool fits_open_server(double gpu_fraction) const;
  /// Degraded mode: sheds active sessions strictly smaller than
  /// `gpu_fraction` (lowest first) until it fits or candidates run out.
  void shed_for(double gpu_fraction, Time now_minutes);

  ServerSpec spec_;
  std::string algorithm_;
  FaultPolicy policy_;
  DispatcherFaultStats stats_;
  std::unique_ptr<Packer> packer_;
  /// Active session sizes — needed for crash re-dispatch and shedding.
  // DBP_LINT_ALLOW(unordered-container): point lookups by session id only;
  // crash re-dispatch and shedding candidates come from the BinManager's
  // sorted items_in()/open_bins(), never from iterating this map.
  std::unordered_map<std::uint64_t, double> sessions_;
  Rng rental_rng_;
  Time last_event_time_ = -kTimeInfinity;
};

/// Offline comparison over a full trace: every algorithm's rental bill next
/// to the certified minimum-possible bill.
struct DispatchReport {
  std::string algorithm;
  double total_dollars = 0.0;
  double server_hours = 0.0;
  std::size_t servers_rented = 0;
  std::int64_t peak_servers = 0;
  /// GPU-hours demanded / GPU-hours rented: fleet utilization in (0, 1].
  double utilization = 0.0;
  /// total bill / optimal-bill interval.
  RatioBounds overspend{};
};

struct DispatchComparison {
  std::vector<DispatchReport> reports;
  double optimal_dollars_lower = 0.0;
  double optimal_dollars_upper = 0.0;
  InstanceMetrics metrics{};
};

[[nodiscard]] DispatchComparison compare_dispatch_algorithms(
    const CloudGamingTrace& trace, const std::vector<std::string>& algorithms,
    const ServerSpec& spec);

/// Section 5 future-work hook (constrained DBP): sessions carry a region
/// tag and may only be dispatched to servers of that region. Implemented as
/// independent per-region fleets.
class RegionalDispatcher {
 public:
  RegionalDispatcher(ServerSpec spec, std::string algorithm,
                     PackerOptions options = {});

  BinId start_session(const std::string& region, std::uint64_t session_id,
                      double gpu_fraction, Time now_minutes);
  void end_session(std::uint64_t session_id, Time now_minutes);

  [[nodiscard]] std::size_t active_servers() const;
  [[nodiscard]] double rental_cost_dollars(Time now_minutes) const;
  [[nodiscard]] std::vector<std::string> regions() const;

 private:
  ServerSpec spec_;
  std::string algorithm_;
  PackerOptions options_;
  // DBP_LINT_ALLOW(unordered-container): every float-accumulating traversal
  // goes through regions() (sorted); the remaining iterations are
  // order-independent integer sums or name collection followed by a sort.
  std::unordered_map<std::string, std::unique_ptr<GameServerDispatcher>> fleets_;
  // DBP_LINT_ALLOW(unordered-container): point lookups by session id only.
  std::unordered_map<std::uint64_t, GameServerDispatcher*> session_fleet_;
};

}  // namespace dbp
