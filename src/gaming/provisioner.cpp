#include "gaming/provisioner.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/error.hpp"

namespace dbp {

void ProvisioningPolicy::validate() const {
  DBP_REQUIRE(std::isfinite(boot_minutes) && boot_minutes >= 0.0,
              "boot time must be >= 0");
}

ProvisioningReport analyze_provisioning(const Instance& instance,
                                        const SimulationResult& result,
                                        const ServerSpec& spec,
                                        const ProvisioningPolicy& policy) {
  policy.validate();
  DBP_REQUIRE(!instance.empty() && result.assignment.size() == instance.size(),
              "simulation result does not match the instance");

  ProvisioningReport report;
  report.rental_dollars =
      [&] {
        double minutes = 0.0;
        for (const BinUsageRecord& record : result.bin_usage) {
          minutes += record.usage_length();
        }
        return minutes * spec.price_per_hour / 60.0;
      }();

  // The warm pool holds `warm_target` slots for the whole packing period
  // (idle or booting, they are billed like any other server).
  const TimeInterval period = result.packing_period;
  report.warm_pool_dollars = static_cast<double>(policy.warm_target) *
                             period.length() * spec.price_per_hour / 60.0;

  // New-server ("bin open") events: the first-arriving session of each bin
  // triggered it. Ties broken by item id, matching the simulator. Every
  // open starts from the bin's own usage record with a sentinel trigger
  // (`instance.size()` is never a real item id): a faulted run's crash
  // re-dispatch can open a server whose residents *all* arrived before the
  // open, so no item attributes it — the boot still happened at the
  // recorded open time and must be simulated against the pool.
  struct OpenEvent {
    Time time;
    ItemId trigger;
  };
  DBP_REQUIRE(result.bin_usage.size() == result.bins_opened,
              "simulation result bin bookkeeping is inconsistent");
  std::vector<OpenEvent> opens;
  opens.reserve(result.bins_opened);
  for (const BinUsageRecord& record : result.bin_usage) {
    opens.push_back(OpenEvent{record.opened, instance.size()});
  }
  for (const Item& item : instance.items()) {
    const BinId assigned = result.assignment[item.id];
    if (assigned == kNoBin) continue;  // item the faulted run dropped
    // Bounds-check the mapping instead of indexing blind: a sparse or
    // mismatched result (assignment ids outside bin_usage) used to read —
    // and via the sentinel, write — out of bounds.
    DBP_REQUIRE(assigned < result.bin_usage.size(),
                "assignment references a bin id with no usage record "
                "(sparse or mismatched simulation result)");
    const auto bin = static_cast<std::size_t>(assigned);
    if (item.arrival < result.bin_usage[bin].opened) continue;
    OpenEvent& event = opens[bin];
    if (event.trigger == instance.size() || item.arrival < event.time ||
        (item.arrival == event.time && item.id < event.trigger)) {
      event = {item.arrival, item.id};
    }
  }
  std::sort(opens.begin(), opens.end(), [](const OpenEvent& a, const OpenEvent& b) {
    return a.time < b.time || (a.time == b.time && a.trigger < b.trigger);
  });

  // Pool simulation. The pool starts pre-filled at the period begin.
  std::size_t available = policy.warm_target;
  report.boots = policy.warm_target;
  std::priority_queue<Time, std::vector<Time>, std::greater<>> pending;

  std::vector<double> waits(instance.size(), 0.0);
  for (const OpenEvent& event : opens) {
    while (!pending.empty() && pending.top() <= event.time) {
      pending.pop();
      ++available;
    }
    double wait = 0.0;
    if (available > 0) {
      --available;
    } else if (!pending.empty() &&
               pending.top() - event.time < policy.boot_minutes) {
      wait = pending.top() - event.time;  // grab the replacement in flight
      pending.pop();
    } else {
      wait = policy.boot_minutes;  // cold boot for this session
      ++report.boots;
    }
    if (wait > 0.0) {
      ++report.cold_starts;
      // Sentinel triggers (crash re-dispatch opens with no attributable
      // session) count as cold starts but have no session to charge the
      // wait to; indexing the sentinel was the out-of-bounds write.
      if (event.trigger < instance.size()) {
        waits[static_cast<std::size_t>(event.trigger)] = wait;
      }
    }
    // Restock toward the target.
    while (available + pending.size() < policy.warm_target) {
      pending.push(event.time + policy.boot_minutes);
      ++report.boots;
    }
  }
  report.wait_minutes = summarize(waits);
  return report;
}

}  // namespace dbp
