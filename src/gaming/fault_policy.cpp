#include "gaming/fault_policy.hpp"

#include <cmath>

namespace dbp {

const char* to_string(DispatchErrorKind kind) noexcept {
  switch (kind) {
    case DispatchErrorKind::kDuplicateStart: return "duplicate-start";
    case DispatchErrorKind::kUnknownSession: return "unknown-session";
    case DispatchErrorKind::kTimeOrderViolation: return "time-order-violation";
    case DispatchErrorKind::kInvalidSize: return "invalid-size";
    case DispatchErrorKind::kUnknownServer: return "unknown-server";
    case DispatchErrorKind::kRentalFailed: return "rental-failed";
    case DispatchErrorKind::kFleetCapExceeded: return "fleet-cap-exceeded";
  }
  return "unknown";
}

void FaultPolicy::validate() const {
  DBP_REQUIRE(std::isfinite(rental_failure_rate) && rental_failure_rate >= 0.0 &&
                  rental_failure_rate <= 1.0,
              "rental failure rate must be a probability");
  DBP_REQUIRE(max_rental_retries >= 0, "rental retry budget must be >= 0");
  DBP_REQUIRE(std::isfinite(backoff_base_minutes) && backoff_base_minutes >= 0.0,
              "backoff base must be non-negative and finite");
}

}  // namespace dbp
