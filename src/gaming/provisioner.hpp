// Server provisioning analysis: boot delays and warm spare pools.
//
// The paper's model (and Section 1 motivation) treats server rental as
// instantaneous; real clouds boot VMs in minutes, and "the provisioning of
// game servers [is] a challenging issue". This layer quantifies the
// latency/cost tradeoff on top of any dispatch algorithm:
//
//   * on-demand (warm_target = 0): every new server incurs the boot delay
//     as player waiting time;
//   * warm pool (warm_target = N): N idle booted spares absorb new-server
//     demand instantly; each consumed spare triggers a replacement boot;
//     spares are billed while idle.
//
// First-order model: waits are accounted per session but do not shift the
// packing timeline (players buffer at the loading screen; the session slot
// is reserved at request time). This keeps the analysis composable with any
// SimulationResult.
#pragma once

#include "analysis/stats.hpp"
#include "core/instance.hpp"
#include "gaming/dispatcher.hpp"
#include "sim/simulator.hpp"

namespace dbp {

struct ProvisioningPolicy {
  double boot_minutes = 3.0;    ///< VM boot time
  std::size_t warm_target = 0;  ///< idle spares to maintain (0 = on-demand)

  void validate() const;
};

struct ProvisioningReport {
  /// Rental bill of the working fleet (same as the dispatch bill).
  double rental_dollars = 0.0;
  /// Extra bill for warm spares (idle + booting time, billed like servers).
  double warm_pool_dollars = 0.0;
  [[nodiscard]] double total_dollars() const noexcept {
    return rental_dollars + warm_pool_dollars;
  }
  /// Boots triggered (initial fill + replacements).
  std::size_t boots = 0;
  /// Sessions that had to wait for a boot (cold starts).
  std::size_t cold_starts = 0;
  /// Waiting time over *all* sessions (non-waiters contribute 0).
  SummaryStats wait_minutes{};
};

/// Evaluates a provisioning policy against a finished dispatch run.
/// `result` must come from simulating `instance`; `spec` prices the
/// servers; time unit is minutes throughout (as in CloudGamingTrace).
[[nodiscard]] ProvisioningReport analyze_provisioning(
    const Instance& instance, const SimulationResult& result,
    const ServerSpec& spec, const ProvisioningPolicy& policy);

}  // namespace dbp
