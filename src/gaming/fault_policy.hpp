// Failure handling for the cloud-gaming dispatcher: typed rejection of
// anomalous events, bounded rental retry with exponential backoff, and
// degraded-mode load shedding under a fleet cap (docs/fault_model.md).
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "core/error.hpp"
#include "core/types.hpp"

namespace dbp {

/// Why the dispatcher rejected an event or a session.
enum class DispatchErrorKind : std::uint8_t {
  kDuplicateStart,     ///< start_session with an already-active session id
  kUnknownSession,     ///< end_session with an id that was never started
  kTimeOrderViolation, ///< event timestamped before an earlier event
  kInvalidSize,        ///< NaN / non-positive / over-capacity GPU fraction
  kUnknownServer,      ///< fail_server on an id that is not an active server
  kRentalFailed,       ///< every rental attempt failed (provider outage)
  kFleetCapExceeded,   ///< fleet cap hit and shedding could not make room
};

[[nodiscard]] const char* to_string(DispatchErrorKind kind) noexcept;

/// Typed dispatcher rejection. Derives from PreconditionError so existing
/// callers that catch the library's precondition failures keep working,
/// while new callers can switch on kind() instead of parsing messages.
class DispatchError : public PreconditionError {
 public:
  DispatchError(DispatchErrorKind kind, const std::string& what)
      : PreconditionError(what), kind_(kind) {}

  [[nodiscard]] DispatchErrorKind kind() const noexcept { return kind_; }

 private:
  DispatchErrorKind kind_;
};

/// Sentinel returned by start_session when the event was dropped under
/// FaultPolicy::AnomalyAction::kDropAndCount (never a real server id).
inline constexpr BinId kNoServer = std::numeric_limits<BinId>::max();

/// How the dispatcher reacts to anomalies and infrastructure failures.
/// The default policy reproduces the strict historical behavior: throw on
/// every anomaly, never fail a rental, no fleet cap.
struct FaultPolicy {
  enum class AnomalyAction : std::uint8_t {
    kThrow,         ///< raise DispatchError (strict mode)
    kDropAndCount,  ///< swallow the event, bump the per-category counter
  };

  AnomalyAction on_anomaly = AnomalyAction::kThrow;

  /// Simulated probability that one rental attempt fails (provider-side
  /// error). Drawn from a stream seeded by `seed`, so runs are reproducible.
  double rental_failure_rate = 0.0;
  /// Retries after the first failed attempt; the session is rejected with
  /// kRentalFailed once 1 + max_rental_retries attempts have failed.
  int max_rental_retries = 3;
  /// Backoff before retry i (0-based) is backoff_base_minutes * 2^i; the
  /// total wait is recorded in DispatcherFaultStats::backoff_minutes.
  double backoff_base_minutes = 0.5;

  /// Degraded mode: when > 0, renting beyond this many concurrently-active
  /// servers is forbidden. An arrival that needs a new server with the cap
  /// hit sheds strictly smaller active sessions (lowest GPU fraction
  /// first) until it fits or is rejected with kFleetCapExceeded. 0 = no cap.
  std::size_t max_fleet_servers = 0;

  std::uint64_t seed = 0x51ED2706C2BA7A6DULL;

  /// Throws PreconditionError unless the policy is usable.
  void validate() const;

  /// Exact equality — checkpoint restore refuses a dispatcher constructed
  /// with a different policy.
  friend bool operator==(const FaultPolicy&, const FaultPolicy&) = default;
};

/// Per-category counters of everything the fault policy absorbed. Counters
/// advance in both kThrow and kDropAndCount modes (a thrown anomaly is
/// still an observed anomaly).
struct DispatcherFaultStats {
  std::uint64_t duplicate_starts = 0;
  std::uint64_t unknown_ends = 0;
  std::uint64_t unknown_servers = 0;
  std::uint64_t time_order_violations = 0;
  std::uint64_t invalid_sizes = 0;
  /// Individual rental attempts that failed (includes retried ones).
  std::uint64_t rental_attempts_failed = 0;
  /// Sessions rejected after the retry budget was exhausted.
  std::uint64_t sessions_rejected_rental = 0;
  /// Sessions rejected because shedding could not make room under the cap.
  std::uint64_t sessions_rejected_cap = 0;
  /// Sessions forcibly ended by degraded-mode shedding.
  std::uint64_t sessions_shed = 0;
  /// Orphans successfully re-dispatched after fail_server.
  std::uint64_t sessions_redispatched = 0;
  /// Orphans lost because re-dispatch was itself rejected.
  std::uint64_t sessions_lost_on_crash = 0;
  std::uint64_t servers_crashed = 0;
  /// Total simulated exponential-backoff wait across all rentals.
  double backoff_minutes = 0.0;

  [[nodiscard]] std::uint64_t total_dropped_events() const noexcept {
    return duplicate_starts + unknown_ends + time_order_violations +
           invalid_sizes;
  }

  /// Exact field equality, including the accumulated backoff_minutes double
  /// bit-for-bit — the recovery differential asserts a restored dispatcher's
  /// stats equal an uninterrupted run's.
  friend bool operator==(const DispatcherFaultStats&,
                         const DispatcherFaultStats&) = default;
};

}  // namespace dbp
