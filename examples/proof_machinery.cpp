// A guided walkthrough of the Section 4.3 proof machinery on a small
// instance — the executable companion to Figures 4-8 of the paper.
//
//   $ ./proof_machinery
//
// Runs First Fit on a hand-crafted workload, then prints every object the
// Theorem 4/5 proofs build: usage periods I_i, the left/right split against
// E_i, the (mu+2)*Delta sub-period grid, reference points/bins, and the
// machine-checked verdict on Features (f.1)-(f.5), Lemmas 1-5 and
// inequalities (8)/(10)/(14).
#include <iostream>

#include "analysis/ff_decomposition.hpp"
#include "core/strfmt.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace dbp;
  const CostModel model{1.0, 1.0, 1e-9};

  // Two overlapping keep-alive chains (all intervals length 4 => Delta = 4,
  // mu = 1): bin 0 stays 90% full, so the odd-time arrivals spill into
  // bin 1, whose whole usage lies in bin 0's shadow — a long I^L to split.
  Instance instance;
  for (int i = 0; i < 15; ++i) instance.add(2.0 * i, 2.0 * i + 4.0, 0.45);
  for (int i = 0; i < 9; ++i) {
    instance.add(3.0 + 2.0 * i, 7.0 + 2.0 * i, 0.45);
  }

  const SimulationResult result = simulate(instance, "first-fit", model);
  const FFDecomposition d = decompose_first_fit(instance, result);

  std::cout << strfmt("Delta = %g, mu = %g, (mu+2)*Delta = %g\n\n", d.delta,
                      d.mu, (d.mu + 2.0) * d.delta);
  std::cout << "bin   usage I_i         E_i     I_i^L           I_i^R\n";
  for (std::size_t i = 0; i < d.usage.size(); ++i) {
    const auto fmt_interval = [](TimeInterval iv) {
      return iv.empty() ? std::string("      --      ")
                        : strfmt("[%5.1f, %5.1f)", iv.begin, iv.end);
    };
    std::cout << strfmt("%3zu   %s  %5.1f  %s  %s\n", i,
                        fmt_interval(d.usage[i]).c_str(),
                        d.latest_prior_close[i],
                        fmt_interval(d.left_part[i]).c_str(),
                        fmt_interval(d.right_part[i]).c_str());
  }

  std::cout << "\nsub-periods I_{i,j} (Figure 5) with reference data "
               "(Figure 6):\n";
  std::cout << "bin  j   interval          t_{i,j}  ref bin  intersecting\n";
  for (const SubPeriod& sub : d.sub_periods) {
    std::cout << strfmt("%3llu  %zu   [%5.1f, %5.1f)   %7.1f  %7llu  %s\n",
                        static_cast<unsigned long long>(sub.bin), sub.index,
                        sub.interval.begin, sub.interval.end,
                        sub.reference_point,
                        static_cast<unsigned long long>(sub.reference_bin),
                        sub.intersecting ? "yes" : "no");
  }

  std::cout << strfmt(
      "\nequation (6): FF_total %.1f = sum len(I^L) %.1f + span(R) %.1f\n"
      "inequality (10): FF_total %.1f <= (|J|+|S|+|U|)(mu+6)Delta + span = "
      "%.1f\n",
      d.ff_total, d.sum_left_lengths, d.span, d.ff_total, d.cost_bound(1.0));

  const DecompositionReport report =
      verify_ff_decomposition(instance, result, d, model);
  std::cout << strfmt(
      "\nmachine verification: features %s, lemmas 1-5 %s%s%s%s%s, "
      "demand (14) %s, cost bound (10) %s => %s\n",
      report.features_ok ? "ok" : "FAIL", report.lemma1_ok ? "ok" : "FAIL",
      report.lemma2_ok ? "/ok" : "/FAIL", report.lemma3_ok ? "/ok" : "/FAIL",
      report.lemma4_ok ? "/ok" : "/FAIL", report.lemma5_ok ? "/ok" : "/FAIL",
      report.demand_ok ? "ok" : "FAIL", report.cost_bound_ok ? "ok" : "FAIL",
      report.all_ok() ? "ALL INVARIANTS HOLD" : "VIOLATIONS FOUND");
  for (const std::string& violation : report.violations) {
    std::cout << "  " << violation << "\n";
  }
  return report.all_ok() ? 0 : 1;
}
