// A day in a cloud gaming service: the paper's motivating scenario end to
// end, using the live dispatcher API (not the offline comparison harness).
//
//   $ ./cloud_gaming_day [algorithm]      (default: modified-first-fit)
//
// Generates a 24h synthetic session trace (diurnal arrivals, 8-game
// catalog), feeds it to a GameServerDispatcher event by event — exactly as
// a production dispatcher would see it — and prints an hourly fleet/billing
// log plus the final bill vs the certified minimum.
#include <iostream>

#include "core/strfmt.hpp"
#include <string>

#include "gaming/dispatcher.hpp"
#include "sim/event.hpp"
#include "workload/cloud_gaming.hpp"

int main(int argc, char** argv) {
  using namespace dbp;
  const std::string algorithm = argc > 1 ? argv[1] : "modified-first-fit";

  CloudGamingConfig config;
  config.horizon_hours = 24.0;
  config.peak_arrivals_per_minute = 2.0;
  config.diurnal_trough_ratio = 0.2;
  config.peak_hour = 20.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 424242);
  std::cout << "generated " << trace.instance.size()
            << " play sessions over 24h across " << trace.catalog.size()
            << " games\n\n";

  const ServerSpec spec{1.0, 1.2};  // $1.2 per server-hour
  GameServerDispatcher dispatcher(spec, algorithm);

  // Feed the trace in event order, logging once per simulated hour.
  const auto events = build_event_sequence(trace.instance);
  double next_log_minute = 60.0;
  std::cout << "hour  active sessions  rented servers  bill so far\n";
  for (const Event& event : events) {
    while (event.time >= next_log_minute) {
      std::cout << strfmt("%4.0f  %15zu  %14zu  $%10.2f\n",
                          next_log_minute / 60.0, dispatcher.active_sessions(),
                          dispatcher.active_servers(),
                          dispatcher.rental_cost_dollars(next_log_minute));
      next_log_minute += 60.0;
    }
    const Item& item = trace.instance.item(event.item);
    if (event.kind == EventKind::kArrival) {
      dispatcher.start_session(item.id, item.size, item.arrival);
    } else {
      dispatcher.end_session(item.id, item.departure);
    }
  }
  const Time end = trace.instance.packing_period().end;
  std::cout << strfmt("\nfinal bill with %s: $%.2f (%zu servers rented in total, "
                      "%zu still running)\n",
                      dispatcher.algorithm().c_str(),
                      dispatcher.rental_cost_dollars(end),
                      dispatcher.servers_ever_rented(),
                      dispatcher.active_servers());

  // What would the other policies have paid? And the floor?
  const DispatchComparison comparison = compare_dispatch_algorithms(
      trace, {"first-fit", "best-fit", "next-fit", "modified-first-fit"}, spec);
  std::cout << strfmt("certified minimum possible bill: $%.2f .. $%.2f\n\n",
                      comparison.optimal_dollars_lower,
                      comparison.optimal_dollars_upper);
  for (const DispatchReport& report : comparison.reports) {
    std::cout << strfmt("  %-22s $%9.2f  (%.1f%% over the optimum floor)\n",
                        report.algorithm.c_str(), report.total_dollars,
                        (report.overspend.upper - 1.0) * 100.0);
  }
  return 0;
}
