// The two adversarial constructions from the paper, visualized.
//
//   $ ./adversarial_showdown
//
// Builds the Theorem 1 (Any Fit) and Theorem 2 (Best Fit) instances, runs
// the algorithms they target, and draws ASCII timelines of the number of
// open bins — the pictures behind Figures 2 and 3.
#include <algorithm>
#include <iostream>

#include "core/strfmt.hpp"
#include <string>

#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/adversary_bestfit.hpp"

namespace {

using namespace dbp;

/// ASCII sparkline of n(t) over the packing period.
void draw_timeline(const std::string& label, const StepFunction& bins,
                   TimeInterval period, std::int64_t peak) {
  constexpr int kColumns = 72;
  std::string line;
  for (int c = 0; c < kColumns; ++c) {
    const Time t = period.begin +
                   (period.end - period.begin) *
                       (static_cast<double>(c) + 0.5) / kColumns;
    const std::int64_t value = bins.value_at(t);
    const char* glyphs = " .:-=+*#%@";
    const int level =
        value <= 0 ? 0
                   : 1 + static_cast<int>(8.0 * static_cast<double>(value - 1) /
                                          std::max<std::int64_t>(peak - 1, 1));
    line += glyphs[std::min(level, 9)];
  }
  std::cout << "  " << label << " |" << line << "| peak " << peak << "\n";
}

}  // namespace

int main() {
  const CostModel model{1.0, 1.0, 1e-9};

  std::cout << "=== Theorem 1: the mu floor for ANY Any Fit algorithm ===\n\n"
            << "k^2 items of size 1/k arrive together; after Delta all but one\n"
            << "per bin depart, yet no Any Fit algorithm may consolidate:\n\n";
  {
    const auto built = build_anyfit_adversary({.k = 12, .mu = 8.0});
    const OptTotalResult opt = estimate_opt_total(built.instance, model);
    for (const std::string name : {"first-fit", "best-fit", "worst-fit"}) {
      const SimulationResult result = simulate(built.instance, name, model);
      draw_timeline(strfmt("%-10s", name.c_str()), result.open_bins_over_time,
                    built.instance.packing_period(), result.max_open_bins);
      std::cout << strfmt("             cost %.1f  ratio %.3f  (predicted %.3f, "
                          "-> mu = %g as k grows)\n",
                          result.total_cost, result.total_cost / opt.upper_cost,
                          built.predicted_ratio, built.config.mu);
    }
    std::cout << strfmt("\n  OPT repacks to one bin after Delta: OPT_total = "
                        "%.1f (exact)\n\n",
                        opt.upper_cost);
  }

  std::cout << "=== Theorem 2: Best Fit walks into a k/2 trap, First Fit "
               "doesn't ===\n\n"
            << "Each window refreshes the *fullest* bin with a slightly\n"
            << "smaller group, so Best Fit keeps all k bins alive forever:\n\n";
  {
    BestFitAdversaryConfig config;
    config.k = 8;
    config.mu = 4.0;
    const auto built = build_bestfit_adversary(config);
    const OptTotalResult opt = estimate_opt_total(built.instance, model);
    for (const std::string name : {"best-fit", "first-fit"}) {
      const SimulationResult result = simulate(built.instance, name, model);
      draw_timeline(strfmt("%-10s", name.c_str()), result.open_bins_over_time,
                    built.instance.packing_period(), result.max_open_bins);
      std::cout << strfmt("             cost %.1f  ratio %.3f\n",
                          result.total_cost, result.total_cost / opt.upper_cost);
    }
    std::cout << strfmt(
        "\n  k/2 target ratio: %.1f — grows without bound in k while mu "
        "stays %g\n",
        static_cast<double>(config.k) / 2.0, config.mu);
  }
  return 0;
}
