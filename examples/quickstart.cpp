// Quickstart: pack a handful of items online with First Fit, inspect the
// result, and compare against the certified optimum.
//
//   $ ./quickstart
//
// Walks through the core API: Instance -> make_packer -> simulate ->
// estimate_opt_total, plus the span example of paper Figure 1.
#include <iostream>

#include "core/metrics.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace dbp;

  // 1. Describe the workload: items (arrival, departure, size). This is the
  //    *offline* description; algorithms only ever see arrivals online.
  Instance instance;
  instance.add(0.0, 6.0, 0.5);   // long-lived half-bin item
  instance.add(1.0, 3.0, 0.6);   // forces a second bin at t = 1
  instance.add(2.0, 4.0, 0.3);   // fits next to the first item
  instance.add(5.0, 9.0, 0.8);   // arrives as things quiet down
  instance.add(7.0, 9.0, 0.2);   // shares the last bin

  // Figure 1 of the paper: span(R) = measure of time where something is
  // active; u(R) = total size x time demanded.
  const InstanceMetrics metrics = compute_metrics(instance);
  std::cout << "items:        " << metrics.item_count << "\n"
            << "span(R):      " << metrics.span << "\n"
            << "u(R):         " << metrics.total_demand << "\n"
            << "mu (max/min interval ratio): " << metrics.mu << "\n\n";

  // 2. Pick a bin economy (capacity W, cost rate C) and an algorithm.
  const CostModel model{1.0, 1.0, 1e-9};
  auto packer = make_packer("first-fit", model);

  // 3. Replay the workload online. The packer sees each item only at its
  //    arrival (id, size, time) — departure times stay hidden, as required
  //    by the online MinTotal DBP model.
  const SimulationResult result = simulate(instance, *packer);
  std::cout << "algorithm:    " << result.algorithm << "\n"
            << "total cost:   " << result.total_cost << "\n"
            << "bins opened:  " << result.bins_opened << "\n"
            << "peak open:    " << result.max_open_bins << "\n";
  for (std::size_t i = 0; i < instance.size(); ++i) {
    std::cout << "  item " << i << " -> bin " << result.assignment[i] << "\n";
  }

  // 4. How good was that? Certified bounds on the offline optimum
  //    OPT_total(R) (repacking allowed at every instant).
  const OptTotalResult opt = estimate_opt_total(instance, model);
  const RatioBounds ratio = competitive_ratio_bounds(result.total_cost, opt);
  std::cout << "\nOPT_total in [" << opt.lower_cost << ", " << opt.upper_cost
            << "]" << (opt.exact ? " (exact)" : "") << "\n"
            << "competitive ratio in [" << ratio.lower << ", " << ratio.upper
            << "]\n"
            << "Theorem 5 guarantees FF <= " << 2.0 * metrics.mu + 13.0
            << " x OPT on this workload.\n";
  return 0;
}
