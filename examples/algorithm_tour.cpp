// A guided tour of every packing algorithm in the library on one workload.
//
//   $ ./algorithm_tour [items] [mu] [seed]
//
// Generates a random workload, runs all ten algorithms, and prints a ranked
// comparison with certified competitive-ratio intervals — the one-stop demo
// of the analysis API.
#include <algorithm>
#include <iostream>

#include "core/strfmt.hpp"
#include <string>

#include "analysis/ratio.hpp"
#include "analysis/table.hpp"
#include "workload/random_instance.hpp"

int main(int argc, char** argv) {
  using namespace dbp;
  const std::size_t items = argc > 1 ? std::stoul(argv[1]) : 2000;
  const double mu = argc > 2 ? std::stod(argv[2]) : 6.0;
  const std::uint64_t seed = argc > 3 ? std::stoull(argv[3]) : 7;

  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 12.0;
  config.duration.kind = DurationModel::Kind::kLogNormal;
  config.duration.min_length = 1.0;
  config.duration.max_length = mu;
  config.duration.log_mean = 0.5;
  config.duration.log_sigma = 0.8;
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 0.8;
  const Instance instance = generate_random_instance(config, seed);

  const CostModel model{1.0, 1.0, 1e-9};
  const InstanceEvaluation evaluation =
      evaluate_algorithms(instance, all_algorithm_names(), model);

  std::cout << "workload: " << items << " items, mu = " << evaluation.metrics.mu
            << ", span = " << evaluation.metrics.span
            << ", demand = " << evaluation.metrics.total_demand << "\n"
            << "OPT_total in [" << evaluation.opt.lower_cost << ", "
            << evaluation.opt.upper_cost << "]"
            << (evaluation.opt.exact ? " (exact)" : "") << "\n\n";

  // Rank by measured cost.
  std::vector<const AlgorithmEvaluation*> ranked;
  for (const AlgorithmEvaluation& eval : evaluation.algorithms) {
    ranked.push_back(&eval);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const AlgorithmEvaluation* a, const AlgorithmEvaluation* b) {
              return a->total_cost < b->total_cost;
            });

  Table table({"rank", "algorithm", "cost", "ratio vs OPT", "bins opened",
               "peak open"});
  int rank = 1;
  for (const AlgorithmEvaluation* eval : ranked) {
    table.add_row({Table::integer(rank++), eval->display_name,
                   Table::num(eval->total_cost, 1),
                   strfmt("[%.3f, %.3f]", eval->ratio.lower, eval->ratio.upper),
                   Table::integer((long long)eval->bins_opened),
                   Table::integer(eval->max_open_bins)});
  }
  table.print(std::cout);

  std::cout << "\nGuarantees from the paper for this workload (mu = "
            << evaluation.metrics.mu << "):\n"
            << "  first-fit                <= " << 2.0 * evaluation.metrics.mu + 13.0
            << " x OPT   (Theorem 5)\n"
            << "  modified-first-fit       <= "
            << 8.0 / 7.0 * evaluation.metrics.mu + 55.0 / 7.0
            << " x OPT   (Section 4.4, mu unknown)\n"
            << "  modified-first-fit-known <= " << evaluation.metrics.mu + 8.0
            << " x OPT   (Section 4.4, mu known)\n"
            << "  best-fit                 unbounded in the worst case "
               "(Theorem 2)\n";
  return 0;
}
