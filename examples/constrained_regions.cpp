// Constrained dispatch across regions: the paper's Section 5 future-work
// direction ("each item is allowed to be assigned to only a subset of bins
// to cater for the interactivity constraints of dispatching playing
// requests among distributed clouds").
//
//   $ ./constrained_regions
//
// Players are latency-bound to their nearest region, so each region runs an
// isolated fleet. The example quantifies the fragmentation cost of the
// constraint: per-region fleets vs one hypothetical global fleet.
#include <iostream>
#include <vector>

#include "core/strfmt.hpp"
#include "gaming/dispatcher.hpp"
#include "sim/event.hpp"
#include "workload/cloud_gaming.hpp"

int main() {
  using namespace dbp;
  const ServerSpec spec{1.0, 1.2};

  // Three regions with different peak hours (time zones) and demand.
  struct Region {
    const char* name;
    double peak_hour;
    double peak_rate;
    std::uint64_t seed;
  };
  const std::vector<Region> regions{
      {"us-east", 20.0, 1.2, 101},
      {"eu-west", 14.0, 0.9, 202},
      {"ap-south", 6.0, 0.7, 303},
  };

  RegionalDispatcher constrained(spec, "modified-first-fit");
  GameServerDispatcher global(spec, "modified-first-fit");

  // Merge all regions' traces into one event stream.
  struct Tagged {
    const char* region;
    Item item;
  };
  Instance merged;
  std::vector<const char*> region_of;
  for (const Region& region : regions) {
    CloudGamingConfig config;
    config.horizon_hours = 24.0;
    config.peak_hour = region.peak_hour;
    config.peak_arrivals_per_minute = region.peak_rate;
    const CloudGamingTrace trace = generate_cloud_gaming_trace(config, region.seed);
    for (const Item& item : trace.instance.items()) {
      merged.add(item.arrival, item.departure, item.size);
      region_of.push_back(region.name);
    }
    std::cout << strfmt("%-9s %5zu sessions (peak hour %.0f)\n", region.name,
                        trace.instance.size(), region.peak_hour);
  }

  for (const Event& event : build_event_sequence(merged)) {
    const Item& item = merged.item(event.item);
    const char* region = region_of[static_cast<std::size_t>(item.id)];
    if (event.kind == EventKind::kArrival) {
      constrained.start_session(region, item.id, item.size, item.arrival);
      global.start_session(item.id, item.size, item.arrival);
    } else {
      constrained.end_session(item.id, item.departure);
      global.end_session(item.id, item.departure);
    }
  }

  const Time end = merged.packing_period().end;
  const double constrained_bill = constrained.rental_cost_dollars(end);
  const double global_bill = global.rental_cost_dollars(end);
  std::cout << strfmt(
      "\nper-region fleets (constrained DBP):  $%9.2f\n"
      "single global fleet (hypothetical):   $%9.2f\n"
      "fragmentation premium:                 %8.1f%%\n",
      constrained_bill, global_bill,
      (constrained_bill / global_bill - 1.0) * 100.0);
  std::cout << "\nThe premium is the price of the placement constraint the\n"
               "paper's future work proposes to analyze; staggered peak hours\n"
               "keep it moderate because regional fleets idle at different\n"
               "times.\n";
  return 0;
}
