// dbp_fuzz — seeded randomized stress harness.
//
// Usage:
//   dbp_fuzz [--rounds=N] [--seed=S] [--items=MAX] [--no-chaos]
//
// Each round draws a random workload configuration and seed, runs every
// algorithm with paranoid Any Fit checking where applicable, recomputes the
// accounting independently, validates the paper's closed-form bounds and
// the OPT sandwich, and (for First Fit) the Section 4.3 invariants. Unless
// --no-chaos is given, each round then replays the instance under a random
// FaultPlan (crashes + anomalous events) and checks that the cost
// accounting invariants survive recovery. Each round also fuzzes the
// durability journal codec: a journal encoded by the real JournalWriter is
// truncated, bit-flipped, spliced and garbage-extended, and the scanner
// must return exactly the intact record prefix or a typed CorruptionError —
// it must never crash and never accept a damaged record. On any violation
// it prints the offending (round, seed) so the failure is reproducible, and
// exits non-zero. Used as a long-running robustness soak beyond what the
// unit-test sweeps cover.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <iostream>
#include <vector>

#include "algo/any_fit_packer.hpp"
#include "algo/strategies.hpp"
#include "analysis/ff_decomposition.hpp"
#include "cli.hpp"
#include "durability/journal.hpp"
#include "exec/worker_budget.hpp"
#include "core/metrics.hpp"
#include "core/strfmt.hpp"
#include "opt/opt_total.hpp"
#include "sim/fault_sim.hpp"
#include "sim/simulator.hpp"
#include "workload/fault_schedule.hpp"
#include "workload/random_instance.hpp"
#include "workload/rng.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dbp_fuzz [--rounds=N] [--seed=S] [--items=MAX] [--threads=N]\n"
    "                [--no-chaos]\n";

using namespace dbp;

RandomInstanceConfig random_config(Rng& rng, std::size_t max_items) {
  RandomInstanceConfig config;
  config.item_count = 20 + rng.uniform_int(0, max_items - 20);
  config.duration.kind = static_cast<DurationModel::Kind>(rng.uniform_int(0, 4));
  config.duration.min_length = rng.uniform(0.1, 2.0);
  config.duration.max_length =
      config.duration.min_length * rng.uniform(1.0, 20.0);
  config.duration.log_mean = rng.uniform(-1.0, 1.0);
  if (rng.bernoulli(0.4)) {
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 2 + rng.uniform_int(0, 30);
    config.arrival.burst_gap = rng.uniform(0.05, 4.0);
  } else {
    config.arrival.rate = rng.uniform(0.5, 50.0);
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      const double lo = rng.uniform(0.005, 0.4);
      config.size.kind = SizeModel::Kind::kUniform;
      config.size.min_fraction = lo;
      config.size.max_fraction = rng.uniform(lo, 1.0);
      break;
    }
    case 1:
      config.size.kind = SizeModel::Kind::kDyadic;
      config.size.min_exponent = 1;
      config.size.max_exponent = 1 + static_cast<int>(rng.uniform_int(0, 7));
      break;
    default:
      config.size.kind = SizeModel::Kind::kDiscrete;
      config.size.fractions = {0.1, 1.0 / 3.0, 0.5, 0.7};
      break;
  }
  config.pin_mu_extremes = rng.bernoulli(0.5);
  return config;
}

/// Replays the instance under a random FaultPlan for every online
/// algorithm and checks that the accounting invariants — the per-bin vs
/// integral agreement and the closed-form lower bounds, both of which
/// survive crash re-dispatch — still hold after recovery.
bool run_chaos_round(std::uint64_t round, std::uint64_t seed,
                     const Instance& instance, const CostModel& model,
                     const CostBounds& closed, const InstanceMetrics& metrics,
                     Rng& rng) {
  const double crash_rate = rng.uniform(0.01, 0.15);
  const double anomaly_rate = rng.uniform(0.0, 0.05);
  const auto target = static_cast<CrashTarget>(rng.uniform_int(0, 4));
  const FaultPlan plan = make_poisson_fault_plan(
      instance.packing_period(), crash_rate, anomaly_rate, target,
      seed ^ 0xC4A05);

  bool ok = true;
  const auto fail = [&](const std::string& what) {
    std::cerr << strfmt("FUZZ CHAOS FAILURE round=%llu seed=%llu: %s\n",
                        static_cast<unsigned long long>(round),
                        static_cast<unsigned long long>(seed), what.c_str());
    ok = false;
  };

  PackerOptions options;
  options.known_mu = metrics.mu;
  options.seed = seed;
  for (const std::string& name : all_algorithm_names()) {
    const FaultSimulationResult cell =
        simulate_with_faults(instance, name, model, plan, options);
    const double scale =
        std::max({std::abs(cell.faulted.total_cost),
                  std::abs(cell.faulted.total_cost_from_bins), 1.0});
    if (std::abs(cell.faulted.total_cost - cell.faulted.total_cost_from_bins) >
        1e-9 * scale) {
      fail(name + " accounting invariant broken after fault recovery");
    }
    // Every session is still served over its full interval (re-dispatch is
    // instantaneous), so the demand and span lower bounds still apply.
    if (cell.faulted.total_cost < closed.demand_lower * (1.0 - 1e-9)) {
      fail(name + " beat the demand bound (b.1) under faults");
    }
    if (cell.faulted.total_cost < closed.span_lower * (1.0 - 1e-9)) {
      fail(name + " beat the span bound (b.2) under faults");
    }
    if (!(cell.cost_inflation_ratio > 0.0) ||
        !std::isfinite(cell.cost_inflation_ratio)) {
      fail(name + " produced a non-finite cost inflation ratio");
    }
    if (cell.stats.total_dropped() != cell.stats.anomalies_injected) {
      fail(name + " guard dropped a different count than was injected");
    }
  }
  return ok;
}

/// Fuzzes the journal decoder: encode a random event stream through the
/// real JournalWriter, then mutate the bytes and require scan_journal_bytes
/// to return exactly the intact record prefix or throw CorruptionError —
/// never crash, never accept a record the writer did not produce intact.
bool run_journal_fuzz_round(std::uint64_t round, std::uint64_t seed) {
  namespace dur = durability;
  Rng rng(seed ^ 0x70511F1EDULL);
  bool ok = true;
  const auto fail = [&](const std::string& what) {
    std::cerr << strfmt("FUZZ JOURNAL FAILURE round=%llu seed=%llu: %s\n",
                        static_cast<unsigned long long>(round),
                        static_cast<unsigned long long>(seed), what.c_str());
    ok = false;
  };

  // Ground truth: a dense event stream encoded by the production writer.
  const std::uint64_t stream_id = rng.uniform_int(0, ~std::uint64_t{0});
  const std::size_t count = 1 + rng.uniform_int(0, 39);
  const std::uint64_t base_seq = rng.bernoulli(0.5) ? 0 : rng.uniform_int(1, 500);
  std::vector<dur::JournalEvent> truth(count);
  for (std::size_t i = 0; i < count; ++i) {
    truth[i].seq = base_seq + i;
    truth[i].kind = static_cast<dur::JournalEventKind>(rng.uniform_int(1, 5));
    truth[i].time = rng.uniform(0.0, 1000.0);
    truth[i].subject = rng.uniform_int(0, 1'000'000);
    truth[i].size = rng.uniform(0.0, 1.0);
  }
  const std::string path =
      (std::filesystem::temp_directory_path() /
       strfmt("dbp_fuzz_journal.%llu.%llu.dbpj",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(round)))
          .string();
  std::filesystem::remove(path);
  {
    dur::JournalWriter writer(path, stream_id);
    for (const dur::JournalEvent& event : truth) writer.append(event);
    writer.flush();
  }
  const std::vector<std::uint8_t> bytes = dur::detail::read_file(path);
  std::filesystem::remove(path);
  DBP_REQUIRE((bytes.size() - dur::kJournalHeaderBytes) % count == 0,
              "journal records are not fixed-size");
  const std::size_t record_size =
      (bytes.size() - dur::kJournalHeaderBytes) / count;

  // Clean decode must round-trip exactly.
  {
    const dur::JournalScan scan = dur::scan_journal_bytes(bytes);
    if (scan.stream_id != stream_id) fail("clean scan lost the stream id");
    if (scan.events != truth) fail("clean scan did not round-trip");
    if (scan.torn_tail || scan.valid_bytes != bytes.size()) {
      fail("clean scan reported damage");
    }
  }

  /// Expect exactly the first `prefix` ground-truth records, with damage.
  const auto expect_prefix = [&](const std::vector<std::uint8_t>& mutated,
                                 std::size_t prefix, const char* what) {
    try {
      const dur::JournalScan scan = dur::scan_journal_bytes(mutated);
      if (scan.events.size() != prefix ||
          !std::equal(scan.events.begin(), scan.events.end(), truth.begin())) {
        fail(std::string(what) + ": accepted records beyond the intact prefix");
        return;
      }
      if (scan.valid_bytes !=
          dur::kJournalHeaderBytes + prefix * record_size) {
        fail(std::string(what) + ": wrong valid-prefix length");
      }
      if (!scan.torn_tail && mutated.size() != scan.valid_bytes) {
        fail(std::string(what) + ": damage not reported as a torn tail");
      }
    } catch (const CorruptionError&) {
      fail(std::string(what) + ": intact-prefix damage escalated to "
                               "CorruptionError");
    }
  };
  const auto expect_refusal = [&](const std::vector<std::uint8_t>& mutated,
                                  const char* what) {
    try {
      (void)dur::scan_journal_bytes(mutated);
      fail(std::string(what) + ": decoder accepted unrecoverable bytes");
    } catch (const CorruptionError&) {
      // expected: typed refusal, not a crash and not a fabricated scan
    }
  };

  // Truncation at any byte: crashes can only shorten the file.
  for (int i = 0; i < 4; ++i) {
    const std::size_t cut = rng.uniform_int(0, bytes.size());
    std::vector<std::uint8_t> mutated(bytes.begin(),
                                      bytes.begin() + static_cast<long>(cut));
    if (cut < dur::kJournalHeaderBytes) {
      expect_refusal(mutated, "truncation inside header");
    } else {
      expect_prefix(mutated, (cut - dur::kJournalHeaderBytes) / record_size,
                    "truncation");
    }
  }

  // Single bit flips: damage inside record r ends the valid prefix at r.
  for (int i = 0; i < 4; ++i) {
    const std::size_t at = rng.uniform_int(0, bytes.size() - 1);
    std::vector<std::uint8_t> mutated = bytes;
    mutated[at] ^= static_cast<std::uint8_t>(1U << rng.uniform_int(0, 7));
    if (at < dur::kJournalHeaderBytes) {
      expect_refusal(mutated, "header bit flip");
    } else {
      expect_prefix(mutated, (at - dur::kJournalHeaderBytes) / record_size,
                    "record bit flip");
    }
  }

  // Garbage appended past the last record: a torn tail, nothing accepted.
  {
    std::vector<std::uint8_t> mutated = bytes;
    const std::size_t extra = 1 + rng.uniform_int(0, 63);
    for (std::size_t i = 0; i < extra; ++i) {
      mutated.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    expect_prefix(mutated, count, "garbage tail");
  }

  // Splicing out a middle record leaves CRC-valid records with a sequence
  // break — impossible as a crash artifact, so the file must be refused.
  if (count >= 3) {
    const std::size_t victim = 1 + rng.uniform_int(0, count - 3);
    std::vector<std::uint8_t> mutated = bytes;
    const auto start = static_cast<long>(dur::kJournalHeaderBytes +
                                         victim * record_size);
    mutated.erase(mutated.begin() + start,
                  mutated.begin() + start + static_cast<long>(record_size));
    expect_refusal(mutated, "spliced-out record");
  }

  // Arbitrary garbage is never a journal.
  {
    std::vector<std::uint8_t> garbage(rng.uniform_int(0, 200));
    for (std::uint8_t& byte : garbage) {
      byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    expect_refusal(garbage, "random garbage");
  }
  return ok;
}

bool run_round(std::uint64_t round, std::uint64_t seed, std::size_t max_items,
               bool chaos) {
  Rng rng(seed);
  const RandomInstanceConfig config = random_config(rng, max_items);
  const Instance instance = generate_random_instance(config, seed ^ 0xABCDEF);
  const CostModel model{1.0, 1.0, 1e-9};
  const CostBounds closed = compute_cost_bounds(instance, model);
  const InstanceMetrics metrics = compute_metrics(instance);

  OptTotalOptions opt_options;
  opt_options.bin_count.exact.node_budget = 2'000;
  const OptTotalResult opt = estimate_opt_total(instance, model, opt_options);

  bool ok = true;
  const auto fail = [&](const std::string& what) {
    std::cerr << strfmt("FUZZ FAILURE round=%llu seed=%llu: %s\n",
                        static_cast<unsigned long long>(round),
                        static_cast<unsigned long long>(seed), what.c_str());
    ok = false;
  };

  if (opt.lower_cost > opt.upper_cost * (1.0 + 1e-9)) fail("OPT bounds crossed");
  if (opt.lower_cost < closed.lower() - 1e-9) fail("OPT below closed-form bound");

  PackerOptions packer_options;
  packer_options.known_mu = metrics.mu;
  packer_options.seed = seed;
  for (const std::string& name : all_algorithm_names()) {
    SimulationResult result;
    if (name == "first-fit" || name == "best-fit" || name == "worst-fit" ||
        name == "last-fit" || name == "move-to-front-fit") {
      // Paranoid variant proves the Any Fit contract per placement.
      std::unique_ptr<FitStrategy> strategy;
      if (name == "first-fit") strategy = std::make_unique<FirstFitStrategy>(model);
      if (name == "best-fit") strategy = std::make_unique<BestFitStrategy>(model);
      if (name == "worst-fit") strategy = std::make_unique<WorstFitStrategy>(model);
      if (name == "last-fit") strategy = std::make_unique<LastFitStrategy>(model);
      if (name == "move-to-front-fit") {
        strategy = std::make_unique<MoveToFrontStrategy>(model);
      }
      AnyFitPacker packer(model, std::move(strategy));
      packer.set_paranoid(true);
      result = simulate(instance, packer);
    } else {
      result = simulate(instance, name, model, packer_options);
    }
    if (result.total_cost < closed.demand_lower * (1.0 - 1e-9)) {
      fail(name + " beat the demand bound (b.1)");
    }
    if (result.total_cost < closed.span_lower * (1.0 - 1e-9)) {
      fail(name + " beat the span bound (b.2)");
    }
    if (result.total_cost > closed.one_per_item_upper * (1.0 + 1e-9)) {
      fail(name + " exceeded the one-bin-per-item bound (b.3)");
    }
    if (result.total_cost < opt.lower_cost * (1.0 - 1e-9)) {
      fail(name + " beat OPT");
    }
    if (name == "first-fit") {
      if (result.total_cost >
          (2.0 * metrics.mu + 13.0) * opt.upper_cost * (1.0 + 1e-9)) {
        fail("first-fit exceeded the Theorem 5 bound");
      }
      const FFDecomposition d = decompose_first_fit(instance, result);
      const DecompositionReport report =
          verify_ff_decomposition(instance, result, d, model);
      if (!report.all_ok()) {
        fail("FF decomposition invariant: " + report.violations.front());
      }
    }
  }
  if (chaos &&
      !run_chaos_round(round, seed, instance, model, closed, metrics, rng)) {
    ok = false;
  }
  if (!run_journal_fuzz_round(round, seed)) ok = false;
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const dbp::cli::Args args(argc, argv,
                              {"rounds", "seed", "items", "threads", "no-chaos"},
                              kUsage);
    // Strict --threads (shared cli.hpp parsing): a pinned budget makes fuzz
    // wall-clock and scheduling comparable across machines with different
    // core counts; results are bit-identical either way.
    dbp::exec::WorkerBudget::set(args.get_thread_count());
    const std::uint64_t rounds = args.get_u64("rounds", 25);
    const std::uint64_t base_seed = args.get_u64("seed", 1);
    const std::size_t max_items = args.get_u64("items", 600);
    const bool chaos = !args.has("no-chaos");

    std::size_t failures = 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      if (!run_round(round, base_seed + round * 0x9E3779B9ULL, max_items,
                     chaos)) {
        ++failures;
      }
    }
    std::cout << dbp::strfmt("dbp_fuzz: %llu rounds, %zu failures\n",
                             static_cast<unsigned long long>(rounds), failures);
    return failures == 0 ? 0 : 2;
  } catch (const std::exception& error) {
    std::cerr << "dbp_fuzz: " << error.what() << "\n";
    return 1;
  }
}
