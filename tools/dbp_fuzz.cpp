// dbp_fuzz — seeded randomized stress harness.
//
// Usage:
//   dbp_fuzz [--rounds=N] [--seed=S] [--items=MAX] [--no-chaos]
//
// Each round draws a random workload configuration and seed, runs every
// algorithm with paranoid Any Fit checking where applicable, recomputes the
// accounting independently, validates the paper's closed-form bounds and
// the OPT sandwich, and (for First Fit) the Section 4.3 invariants. Unless
// --no-chaos is given, each round then replays the instance under a random
// FaultPlan (crashes + anomalous events) and checks that the cost
// accounting invariants survive recovery. On any violation it prints the
// offending (round, seed) so the failure is reproducible, and exits
// non-zero. Used as a long-running robustness soak beyond what the
// unit-test sweeps cover.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "algo/any_fit_packer.hpp"
#include "algo/strategies.hpp"
#include "analysis/ff_decomposition.hpp"
#include "cli.hpp"
#include "exec/worker_budget.hpp"
#include "core/metrics.hpp"
#include "core/strfmt.hpp"
#include "opt/opt_total.hpp"
#include "sim/fault_sim.hpp"
#include "sim/simulator.hpp"
#include "workload/fault_schedule.hpp"
#include "workload/random_instance.hpp"
#include "workload/rng.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dbp_fuzz [--rounds=N] [--seed=S] [--items=MAX] [--threads=N]\n"
    "                [--no-chaos]\n";

using namespace dbp;

RandomInstanceConfig random_config(Rng& rng, std::size_t max_items) {
  RandomInstanceConfig config;
  config.item_count = 20 + rng.uniform_int(0, max_items - 20);
  config.duration.kind = static_cast<DurationModel::Kind>(rng.uniform_int(0, 4));
  config.duration.min_length = rng.uniform(0.1, 2.0);
  config.duration.max_length =
      config.duration.min_length * rng.uniform(1.0, 20.0);
  config.duration.log_mean = rng.uniform(-1.0, 1.0);
  if (rng.bernoulli(0.4)) {
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 2 + rng.uniform_int(0, 30);
    config.arrival.burst_gap = rng.uniform(0.05, 4.0);
  } else {
    config.arrival.rate = rng.uniform(0.5, 50.0);
  }
  switch (rng.uniform_int(0, 2)) {
    case 0: {
      const double lo = rng.uniform(0.005, 0.4);
      config.size.kind = SizeModel::Kind::kUniform;
      config.size.min_fraction = lo;
      config.size.max_fraction = rng.uniform(lo, 1.0);
      break;
    }
    case 1:
      config.size.kind = SizeModel::Kind::kDyadic;
      config.size.min_exponent = 1;
      config.size.max_exponent = 1 + static_cast<int>(rng.uniform_int(0, 7));
      break;
    default:
      config.size.kind = SizeModel::Kind::kDiscrete;
      config.size.fractions = {0.1, 1.0 / 3.0, 0.5, 0.7};
      break;
  }
  config.pin_mu_extremes = rng.bernoulli(0.5);
  return config;
}

/// Replays the instance under a random FaultPlan for every online
/// algorithm and checks that the accounting invariants — the per-bin vs
/// integral agreement and the closed-form lower bounds, both of which
/// survive crash re-dispatch — still hold after recovery.
bool run_chaos_round(std::uint64_t round, std::uint64_t seed,
                     const Instance& instance, const CostModel& model,
                     const CostBounds& closed, const InstanceMetrics& metrics,
                     Rng& rng) {
  const double crash_rate = rng.uniform(0.01, 0.15);
  const double anomaly_rate = rng.uniform(0.0, 0.05);
  const auto target = static_cast<CrashTarget>(rng.uniform_int(0, 4));
  const FaultPlan plan = make_poisson_fault_plan(
      instance.packing_period(), crash_rate, anomaly_rate, target,
      seed ^ 0xC4A05);

  bool ok = true;
  const auto fail = [&](const std::string& what) {
    std::cerr << strfmt("FUZZ CHAOS FAILURE round=%llu seed=%llu: %s\n",
                        static_cast<unsigned long long>(round),
                        static_cast<unsigned long long>(seed), what.c_str());
    ok = false;
  };

  PackerOptions options;
  options.known_mu = metrics.mu;
  options.seed = seed;
  for (const std::string& name : all_algorithm_names()) {
    const FaultSimulationResult cell =
        simulate_with_faults(instance, name, model, plan, options);
    const double scale =
        std::max({std::abs(cell.faulted.total_cost),
                  std::abs(cell.faulted.total_cost_from_bins), 1.0});
    if (std::abs(cell.faulted.total_cost - cell.faulted.total_cost_from_bins) >
        1e-9 * scale) {
      fail(name + " accounting invariant broken after fault recovery");
    }
    // Every session is still served over its full interval (re-dispatch is
    // instantaneous), so the demand and span lower bounds still apply.
    if (cell.faulted.total_cost < closed.demand_lower * (1.0 - 1e-9)) {
      fail(name + " beat the demand bound (b.1) under faults");
    }
    if (cell.faulted.total_cost < closed.span_lower * (1.0 - 1e-9)) {
      fail(name + " beat the span bound (b.2) under faults");
    }
    if (!(cell.cost_inflation_ratio > 0.0) ||
        !std::isfinite(cell.cost_inflation_ratio)) {
      fail(name + " produced a non-finite cost inflation ratio");
    }
    if (cell.stats.total_dropped() != cell.stats.anomalies_injected) {
      fail(name + " guard dropped a different count than was injected");
    }
  }
  return ok;
}

bool run_round(std::uint64_t round, std::uint64_t seed, std::size_t max_items,
               bool chaos) {
  Rng rng(seed);
  const RandomInstanceConfig config = random_config(rng, max_items);
  const Instance instance = generate_random_instance(config, seed ^ 0xABCDEF);
  const CostModel model{1.0, 1.0, 1e-9};
  const CostBounds closed = compute_cost_bounds(instance, model);
  const InstanceMetrics metrics = compute_metrics(instance);

  OptTotalOptions opt_options;
  opt_options.bin_count.exact.node_budget = 2'000;
  const OptTotalResult opt = estimate_opt_total(instance, model, opt_options);

  bool ok = true;
  const auto fail = [&](const std::string& what) {
    std::cerr << strfmt("FUZZ FAILURE round=%llu seed=%llu: %s\n",
                        static_cast<unsigned long long>(round),
                        static_cast<unsigned long long>(seed), what.c_str());
    ok = false;
  };

  if (opt.lower_cost > opt.upper_cost * (1.0 + 1e-9)) fail("OPT bounds crossed");
  if (opt.lower_cost < closed.lower() - 1e-9) fail("OPT below closed-form bound");

  PackerOptions packer_options;
  packer_options.known_mu = metrics.mu;
  packer_options.seed = seed;
  for (const std::string& name : all_algorithm_names()) {
    SimulationResult result;
    if (name == "first-fit" || name == "best-fit" || name == "worst-fit" ||
        name == "last-fit" || name == "move-to-front-fit") {
      // Paranoid variant proves the Any Fit contract per placement.
      std::unique_ptr<FitStrategy> strategy;
      if (name == "first-fit") strategy = std::make_unique<FirstFitStrategy>(model);
      if (name == "best-fit") strategy = std::make_unique<BestFitStrategy>(model);
      if (name == "worst-fit") strategy = std::make_unique<WorstFitStrategy>(model);
      if (name == "last-fit") strategy = std::make_unique<LastFitStrategy>(model);
      if (name == "move-to-front-fit") {
        strategy = std::make_unique<MoveToFrontStrategy>(model);
      }
      AnyFitPacker packer(model, std::move(strategy));
      packer.set_paranoid(true);
      result = simulate(instance, packer);
    } else {
      result = simulate(instance, name, model, packer_options);
    }
    if (result.total_cost < closed.demand_lower * (1.0 - 1e-9)) {
      fail(name + " beat the demand bound (b.1)");
    }
    if (result.total_cost < closed.span_lower * (1.0 - 1e-9)) {
      fail(name + " beat the span bound (b.2)");
    }
    if (result.total_cost > closed.one_per_item_upper * (1.0 + 1e-9)) {
      fail(name + " exceeded the one-bin-per-item bound (b.3)");
    }
    if (result.total_cost < opt.lower_cost * (1.0 - 1e-9)) {
      fail(name + " beat OPT");
    }
    if (name == "first-fit") {
      if (result.total_cost >
          (2.0 * metrics.mu + 13.0) * opt.upper_cost * (1.0 + 1e-9)) {
        fail("first-fit exceeded the Theorem 5 bound");
      }
      const FFDecomposition d = decompose_first_fit(instance, result);
      const DecompositionReport report =
          verify_ff_decomposition(instance, result, d, model);
      if (!report.all_ok()) {
        fail("FF decomposition invariant: " + report.violations.front());
      }
    }
  }
  if (chaos &&
      !run_chaos_round(round, seed, instance, model, closed, metrics, rng)) {
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const dbp::cli::Args args(argc, argv,
                              {"rounds", "seed", "items", "threads", "no-chaos"},
                              kUsage);
    // Strict --threads (shared cli.hpp parsing): a pinned budget makes fuzz
    // wall-clock and scheduling comparable across machines with different
    // core counts; results are bit-identical either way.
    dbp::exec::WorkerBudget::set(args.get_thread_count());
    const std::uint64_t rounds = args.get_u64("rounds", 25);
    const std::uint64_t base_seed = args.get_u64("seed", 1);
    const std::size_t max_items = args.get_u64("items", 600);
    const bool chaos = !args.has("no-chaos");

    std::size_t failures = 0;
    for (std::uint64_t round = 0; round < rounds; ++round) {
      if (!run_round(round, base_seed + round * 0x9E3779B9ULL, max_items,
                     chaos)) {
        ++failures;
      }
    }
    std::cout << dbp::strfmt("dbp_fuzz: %llu rounds, %zu failures\n",
                             static_cast<unsigned long long>(rounds), failures);
    return failures == 0 ? 0 : 2;
  } catch (const std::exception& error) {
    std::cerr << "dbp_fuzz: " << error.what() << "\n";
    return 1;
  }
}
