#!/usr/bin/env python3
"""Object-symbol policy checker: nm over the build tree enforces per-layer
forbidden-symbol policies on the compiled src/ objects.

The determinism lint (lint_determinism.py) bans *spellings*; this tool
checks what actually compiled. A hot-path TU that picks up an allocating
or clock-touching inline function from a header it includes is invisible
to a text lint — but the reference shows up in the object file. Policies
(docs/static_analysis.md):

  symbol-wall-clock   no clock symbol referenced outside src/obs. Together
                      with obs::PhaseStopwatch's out-of-line clock reads,
                      this makes "timing cannot leak into results"
                      structural: no non-obs object can even name a clock.

  symbol-rng          no rand()/random()/std::random_device entropy source
                      outside src/workload (seeded mt19937 streams are the
                      contract and are header-only, so they never show up
                      as undefined references).

  symbol-stdio-core   src/core stays free of stdio/iostream/locale: the
                      vocabulary layer must not print, read, or touch
                      locale state (formatting lives in core/strfmt.hpp
                      consumers, I/O in the layers that own it).

  symbol-alloc-kernel the allocation-free kernel TUs (KERNEL_TUS below —
                      the devirtualized replay driver) must not reference
                      malloc/operator new at all. This turns
                      tests/zero_alloc_test.cpp's runtime guarantee into a
                      link-time one: the object cannot allocate on *any*
                      path, not just the paths the test replays.

Objects are discovered under <build>/src/**/CMakeFiles and mapped back to
their TUs; the mapping is cross-checked against the source tree, so a
source that never produced an object (stale build, file dropped from its
CMakeLists) is itself a finding rather than a silent gap in coverage.

Allowlist (shared convention, see dbp_lint_common.py): symbol policies
attach to whole objects, so the justification-mandatory marker may sit
anywhere in the TU's source file:

    // DBP_LINT_ALLOW(symbol-wall-clock): <why this reference is sound>

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.
"""

from __future__ import annotations

import argparse
import dataclasses
import re
import subprocess
import sys
from pathlib import Path

import dbp_lint_common as common

TOOL = "dbp_symcheck"

# TUs whose objects must carry zero allocation references: the batched
# replay driver (Packer::replay + StaticAnyFitPacker devirtualized loop).
# Scratch-arena kernels (opt/scratch.hpp) are header-only and instantiate
# into their consumers, so they are covered at runtime by zero_alloc_test;
# a kernel extracted into its own TU gets added here.
KERNEL_TUS = {
    Path("src/algo/packer.cpp"),
}


@dataclasses.dataclass(frozen=True)
class SymbolRule:
    name: str
    pattern: re.Pattern[str]
    explanation: str

    def applies_to(self, rel: Path) -> bool:
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class LayerExemptRule(SymbolRule):
    """Applies to every TU except those under the exempt layer."""
    exempt_layer: str = ""

    def applies_to(self, rel: Path) -> bool:
        return rel.parts[:2] != ("src", self.exempt_layer)


@dataclasses.dataclass(frozen=True)
class LayerOnlyRule(SymbolRule):
    """Applies only to TUs under one layer."""
    only_layer: str = ""

    def applies_to(self, rel: Path) -> bool:
        return rel.parts[:2] == ("src", self.only_layer)


@dataclasses.dataclass(frozen=True)
class KernelRule(SymbolRule):
    """Applies only to the declared allocation-free kernel TUs."""

    def applies_to(self, rel: Path) -> bool:
        return rel in KERNEL_TUS


# Patterns match *demangled* undefined symbol names. Anchors matter: plain
# "time" must not match "runtime_error", so C names are matched whole.
RULES: list[SymbolRule] = [
    LayerExemptRule(
        "symbol-wall-clock",
        re.compile(r"std::chrono::.*(?:steady|system|high_resolution)_clock"
                   r"|^(?:clock_gettime|gettimeofday|timespec_get|time"
                   r"|clock|localtime(?:_r)?|gmtime(?:_r)?)(?:@|$)"),
        "clock symbol referenced outside src/obs (timing could leak into "
        "results; route elapsed time through obs::PhaseStopwatch)",
        exempt_layer="obs",
    ),
    LayerExemptRule(
        "symbol-rng",
        re.compile(r"std::random_device"
                   r"|^(?:rand|srand|random|srandom|rand_r|arc4random"
                   r"|getentropy|getrandom)(?:@|$)"),
        "entropy source referenced outside src/workload (all randomness "
        "must flow through the seeded generators in workload/rng.hpp)",
        exempt_layer="workload",
    ),
    LayerOnlyRule(
        "symbol-stdio-core",
        re.compile(r"std::basic_[io]stream|std::basic_filebuf|std::locale"
                   r"|std::ios_base::Init|std::(?:cout|cerr|cin)"
                   r"|^(?:printf|fprintf|sprintf|vprintf|vfprintf|puts"
                   r"|putchar|fputs|fputc|fopen|fclose|fread|fwrite|fgets"
                   r"|fscanf|scanf|getline|getchar|setlocale)(?:@|$)"),
        "stdio/iostream/locale referenced from src/core (the vocabulary "
        "layer neither prints nor reads; move the I/O up a layer)",
        only_layer="core",
    ),
    KernelRule(
        "symbol-alloc-kernel",
        re.compile(r"^operator new|^(?:malloc|calloc|realloc|aligned_alloc"
                   r"|posix_memalign|strdup|strndup)(?:@|$)"),
        "allocation referenced from an allocation-free kernel TU (the "
        "replay driver must be allocation-free on every path — "
        "tests/zero_alloc_test.cpp is the runtime half of this contract)",
    ),
]


def discover_objects(build_src: Path) -> dict[Path, Path]:
    """Maps TU-relative source path (e.g. src/algo/packer.cpp) -> object.

    CMake lays objects out as <build>/src/<layer>/CMakeFiles/<target>.dir/
    <source>.o with <source> relative to the layer directory. Objects whose
    reconstructed source no longer exists are ignored (stale build litter
    cannot affect the link once the file left its CMakeLists)."""
    objects: dict[Path, Path] = {}
    for obj in sorted(build_src.rglob("*.o")):
        rel = obj.relative_to(build_src.parent)  # src/<layer>/CMakeFiles/...
        parts = list(rel.parts)
        try:
            cmakefiles = parts.index("CMakeFiles")
        except ValueError:
            continue
        # Drop "CMakeFiles/<target>.dir" and the trailing ".o".
        source_rel = Path(*parts[:cmakefiles], *parts[cmakefiles + 2:])
        source_rel = source_rel.with_suffix("")  # strip .o, keeps .cpp
        objects.setdefault(source_rel, obj)
    return objects


def undefined_symbols(obj: Path, nm: str) -> list[str]:
    """Demangled undefined symbol names of one object, via nm + c++filt."""
    nm_out = subprocess.run(
        [nm, "--undefined-only", "--format=posix", str(obj)],
        check=True, capture_output=True, text=True).stdout
    mangled = [line.split()[0] for line in nm_out.splitlines() if line.split()]
    if not mangled:
        return []
    filt = subprocess.run(
        ["c++filt"], input="\n".join(mangled) + "\n",
        check=True, capture_output=True, text=True).stdout
    return filt.splitlines()


def check_object(root: Path, rel: Path, obj: Path, nm: str) -> list[common.Finding]:
    applicable = [rule for rule in RULES if rule.applies_to(rel)]
    if not applicable:
        return []
    try:
        symbols = undefined_symbols(obj, nm)
    except (OSError, subprocess.CalledProcessError) as err:
        return [common.Finding(str(root / rel), 1, "nm",
                               f"nm failed on {obj}: {err}")]
    hits: dict[str, list[str]] = {}
    for rule in applicable:
        matched = sorted({s for s in symbols if rule.pattern.search(s)})
        if matched:
            hits[rule.name] = matched

    if not hits:
        return []
    source = root / rel
    lines = source.read_text(encoding="utf-8", errors="replace").splitlines() \
        if source.is_file() else []
    allowed = common.file_allow_rules(lines)
    findings: list[common.Finding] = []
    for rule in applicable:
        if rule.name not in hits:
            continue
        if rule.name in allowed:
            marker_line, why = allowed[rule.name]
            if not why:
                findings.append(common.missing_justification(
                    str(source), marker_line, rule.name))
            continue
        shown = ", ".join(f"'{s}'" for s in hits[rule.name][:3])
        extra = len(hits[rule.name]) - 3
        if extra > 0:
            shown += f" (+{extra} more)"
        findings.append(common.Finding(
            str(source), 1, rule.name,
            f"{rule.explanation}; object {obj.name} references {shown}"))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", required=True,
                        help="CMake build directory (objects under src/)")
    parser.add_argument("--root", default=None,
                        help="repo root the src/ tree lives under "
                             "(default: the checker's parent directory)")
    parser.add_argument("--nm", default="nm", help="nm binary (binutils)")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent
    build_src = Path(args.build_dir) / "src"
    if not build_src.is_dir():
        return common.usage_error(
            TOOL, f"{build_src} does not exist — build the tree first "
            "(cmake --build <build-dir>)")

    objects = discover_objects(build_src)
    findings: list[common.Finding] = []

    # Coverage cross-check: every src/ TU must have produced an object;
    # a missing one means the policy never saw it (stale or partial build).
    sources = sorted(p.relative_to(root) for p in (root / "src").rglob("*.cpp"))
    for rel in sources:
        if rel not in objects:
            findings.append(common.Finding(
                str(root / rel), 1, "coverage",
                f"no object for this TU under {build_src} — stale or "
                "partial build (cmake --build), or the file is missing "
                "from its layer's CMakeLists.txt"))

    checked = 0
    for rel, obj in sorted(objects.items()):
        if rel not in sources:
            continue  # stale object of a deleted/moved source
        checked += 1
        findings.extend(check_object(root, rel, obj, args.nm))

    return common.report(TOOL, findings, checked, unit="object")


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
