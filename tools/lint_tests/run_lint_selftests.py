#!/usr/bin/env python3
"""Fixture self-tests for the static-analysis gates (ctest -L lint).

Proves the analyzers *catch* what they claim to catch — seeded include
cycles, undeclared layer edges, forbidden symbols, empty-justification
allowlist markers — and that justified markers and exempt layers are
accepted. A gate whose failure mode is "silently passes everything" is
worse than no gate; this is the test for that failure mode.

Fixture sources live next to this script under fixtures/ with a
`.fixture` suffix so the repo-wide lint/tidy sweeps never mistake them
for real sources; each run materializes them (suffix stripped) into a
temp tree. Symbol fixtures are *compiled* with the project compiler at
test time and dbp_symcheck runs against the resulting objects laid out
the way CMake lays out a build tree.

Exit status: 0 = all self-tests pass, 1 = a self-test failed,
2 = environment problem (no compiler).
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
TOOLS = HERE.parent
FIXTURES = HERE / "fixtures"

failures: list[str] = []


def materialize(fixture_root: Path, dest: Path) -> None:
    """Copies a fixture tree into dest, stripping the .fixture suffix."""
    for path in sorted(fixture_root.rglob("*.fixture")):
        rel = path.relative_to(fixture_root).with_suffix("")
        target = dest / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(path, target)


def run_tool(script: str, *args: str) -> subprocess.CompletedProcess[str]:
    return subprocess.run(
        [sys.executable, str(TOOLS / script), *args],
        capture_output=True, text=True, check=False)


def expect(name: str, proc: subprocess.CompletedProcess[str],
           exit_code: int, *needles: str) -> None:
    output = proc.stdout + proc.stderr
    problems = []
    if proc.returncode != exit_code:
        problems.append(f"exit {proc.returncode}, expected {exit_code}")
    for needle in needles:
        if needle not in output:
            problems.append(f"missing expected output {needle!r}")
    if problems:
        failures.append(f"{name}: " + "; ".join(problems) + "\n--- output ---\n"
                        + output.rstrip())
        print(f"FAIL {name}")
    else:
        print(f"ok   {name}")


def layercheck_selftests(tmp: Path) -> None:
    bad = tmp / "layering_bad"
    materialize(FIXTURES / "layering_bad", bad)
    proc = run_tool("dbp_layercheck.py", "--root", str(bad / "src"))
    expect("layercheck.seeded-violations", proc, 1,
           "[include-cycle]",
           "core/ring.hpp",
           "[layering]",
           "undeclared layer dependency core -> algo",
           "DBP_LINT_ALLOW(layering) needs a justification",
           "[unresolved-include]")
    output = proc.stdout + proc.stderr
    if "justified_allow" in output:
        failures.append("layercheck.justified-marker: justified_allow.cpp "
                        "was reported despite its justification\n" + output)
        print("FAIL layercheck.justified-marker")
    else:
        print("ok   layercheck.justified-marker")

    clean = tmp / "layering_clean"
    materialize(FIXTURES / "layering_clean", clean)
    expect("layercheck.clean-tree", run_tool(
        "dbp_layercheck.py", "--root", str(clean / "src")), 0, "clean")


def compile_fixture(cxx: str, source: Path, obj: Path) -> bool:
    obj.parent.mkdir(parents=True, exist_ok=True)
    proc = subprocess.run(
        [cxx, "-std=c++20", "-O0", "-c", str(source), "-o", str(obj)],
        capture_output=True, text=True, check=False)
    if proc.returncode != 0:
        failures.append(f"symcheck fixture compile failed: {source}\n"
                        + proc.stderr)
        return False
    return True


def symcheck_selftests(tmp: Path, cxx: str) -> None:
    root = tmp / "symbols"
    materialize(FIXTURES / "symbols", root)
    build = root / "build"
    compiled = True
    for source in sorted((root / "src").rglob("*.cpp")):
        rel = source.relative_to(root)  # src/<layer>/<name>.cpp
        obj = build / rel.parent / "CMakeFiles" / "fixture.dir" / (rel.name + ".o")
        compiled &= compile_fixture(cxx, source, obj)
    if not compiled:
        print("FAIL symcheck.fixture-compile")
        return
    print("ok   symcheck.fixture-compile")

    proc = run_tool("dbp_symcheck.py", "--build-dir", str(build),
                    "--root", str(root))
    expect("symcheck.seeded-violations", proc, 1,
           "[symbol-wall-clock]",
           "algo/bad_clock.cpp",
           "[symbol-rng]",
           "opt/bad_rng.cpp",
           "[symbol-stdio-core]",
           "core/bad_stdio.cpp",
           "[symbol-alloc-kernel]",
           "algo/packer.cpp",
           "DBP_LINT_ALLOW(symbol-wall-clock) needs a justification")
    output = proc.stdout + proc.stderr
    for exempt in ("obs/ok_clock.cpp", "workload/ok_rng.cpp",
                   "sim/justified_clock.cpp"):
        if exempt in output:
            failures.append(f"symcheck.exemptions: {exempt} was reported "
                            "despite exemption/justification\n" + output)
            print("FAIL symcheck.exemptions")
            break
    else:
        print("ok   symcheck.exemptions")

    # Coverage cross-check: a TU with no object must be a finding.
    orphan = root / "src" / "algo" / "uncompiled.cpp"
    orphan.write_text("// never compiled\n", encoding="utf-8")
    expect("symcheck.coverage-gap", run_tool(
        "dbp_symcheck.py", "--build-dir", str(build), "--root", str(root)),
        1, "[coverage]", "uncompiled.cpp")


def determinism_selftests(tmp: Path) -> None:
    root = tmp / "determinism"
    materialize(FIXTURES / "determinism", root)
    bad = root / "bad.cpp"
    expect("determinism.seeded-violations", run_tool(
        "lint_determinism.py", "--root", str(root), str(bad)), 1,
        "[rng]",
        "DBP_LINT_ALLOW(unordered-container) needs a justification")


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cxx", default="c++",
                        help="C++ compiler for the symbol fixtures "
                             "(default: c++)")
    args = parser.parse_args(argv)

    if shutil.which(args.cxx) is None:
        print(f"run_lint_selftests: compiler not found: {args.cxx}",
              file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="dbp_lint_selftest.") as tmpdir:
        tmp = Path(tmpdir)
        layercheck_selftests(tmp)
        symcheck_selftests(tmp, args.cxx)
        determinism_selftests(tmp)

    if failures:
        print(f"\nrun_lint_selftests: {len(failures)} self-test(s) failed",
              file=sys.stderr)
        for failure in failures:
            print("\n" + failure, file=sys.stderr)
        return 1
    print("\nrun_lint_selftests: all self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
