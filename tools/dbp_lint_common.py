"""Shared framework for the repo's static-analysis gates.

Three analyzers report through this module (docs/static_analysis.md):

  lint_determinism.py   line-pattern bans (RNG / wall-clock / hash-order)
  dbp_layercheck.py     #include-graph layering gate over src/
  dbp_symcheck.py       per-object forbidden-symbol policies (binutils nm)

They share one finding format, one exit-code convention, and one allowlist
syntax, so a violation always reads the same way regardless of which layer
caught it:

    path:line: [rule] explanation
        offending line or symbol

Exit status: 0 = clean, 1 = findings, 2 = usage/environment error.

Allowlist convention — a finding is suppressed by a justification-mandatory
marker. For line-scoped rules the marker sits on the offending line or in
the contiguous block of // comments directly above it; for TU-scoped rules
(symbol policies attach to whole objects) the marker may sit anywhere in
the translation unit's source:

    // DBP_LINT_ALLOW(<rule>): <justification>

An empty justification is itself a finding: the marker exists to record
*why* the exception is sound, not to silence the tool.
"""

from __future__ import annotations

import dataclasses
import json
import re
import sys
from pathlib import Path
from typing import Iterable

ALLOW_MARKER = re.compile(r"DBP_LINT_ALLOW\((?P<rule>[a-z-]+)\):\s*(?P<why>\S.*)?")

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


@dataclasses.dataclass
class Finding:
    """One violation: `path:line: [rule] message` plus an optional snippet."""

    path: str
    line: int
    rule: str
    message: str
    snippet: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.snippet:
            text += f"\n    {self.snippet}"
        return text


def missing_justification(path: str, line: int, rule: str) -> Finding:
    """The canonical finding for an empty-justification allowlist marker."""
    return Finding(path, line, rule,
                   f"DBP_LINT_ALLOW({rule}) needs a justification after the colon")


def is_comment_line(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def allow_rules_for(lines: list[str], idx: int) -> dict[str, str]:
    """Allowlist markers that apply to lines[idx]: same line, or the
    contiguous comment block directly above. Returns rule -> justification
    ('' when the justification is missing)."""
    allowed: dict[str, str] = {}
    scan = [lines[idx]]
    j = idx - 1
    while j >= 0 and is_comment_line(lines[j]):
        scan.append(lines[j])
        j -= 1
    for line in scan:
        for match in ALLOW_MARKER.finditer(line):
            rule = match.group("rule")
            why = (match.group("why") or "").strip()
            # A continuation comment line directly below the marker line
            # extends the justification; presence is what we enforce.
            allowed[rule] = allowed.get(rule) or why
    return allowed


def file_allow_rules(lines: list[str]) -> dict[str, tuple[int, str]]:
    """TU-scoped allowlist markers: every marker in the file, regardless of
    position. Returns rule -> (1-based line, justification)."""
    allowed: dict[str, tuple[int, str]] = {}
    for idx, line in enumerate(lines):
        for match in ALLOW_MARKER.finditer(line):
            rule = match.group("rule")
            why = (match.group("why") or "").strip()
            if rule not in allowed or (not allowed[rule][1] and why):
                allowed[rule] = (idx + 1, why)
    return allowed


def iter_source_files(paths: Iterable[str | Path]) -> tuple[list[Path], list[str]]:
    """Expands files/directories into a sorted source-file list. Returns
    (files, errors); errors are nonexistent paths."""
    files: list[Path] = []
    errors: list[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*")
                                if p.suffix in SOURCE_SUFFIXES))
        elif path.is_file():
            files.append(path)
        else:
            errors.append(str(path))
    return files, errors


def load_compile_commands(path: Path) -> list[dict]:
    """Loads a CMAKE_EXPORT_COMPILE_COMMANDS database. Raises ValueError on
    malformed content (caller maps that to EXIT_USAGE)."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise ValueError(f"{path}: unreadable compile database: {err}") from err
    if not isinstance(entries, list):
        raise ValueError(f"{path}: compile database is not a JSON array")
    for entry in entries:
        if not isinstance(entry, dict) or "file" not in entry:
            raise ValueError(f"{path}: malformed compile-database entry: {entry!r}")
    return entries


def report(tool: str, findings: list[Finding], checked: int,
           *, unit: str = "file") -> int:
    """Prints findings in the shared format and returns the exit code."""
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"\n{tool}: {len(findings)} finding(s) in {checked} {unit}(s)",
              file=sys.stderr)
        return EXIT_FINDINGS
    print(f"{tool}: clean ({checked} {unit}(s))")
    return EXIT_CLEAN


def usage_error(tool: str, message: str) -> int:
    print(f"{tool}: {message}", file=sys.stderr)
    return EXIT_USAGE
