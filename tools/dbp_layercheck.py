#!/usr/bin/env python3
"""Include-graph layering gate: enforces the declared layer DAG over src/.

The library is layered bottom-up (DESIGN.md has the diagram):

    core                         the domain vocabulary; depends on nothing
    exec, obs                    cross-cutting leaves over core
    algo, workload               packers / generators over the vocabulary
    sim, opt, analysis           simulation, optimum, experiment harnesses
    gaming, engine, durability   the top: dispatchers, sharding, WAL
    net                          wire front-end over the engine

Every `#include "..."` edge between two layers must be declared in
LAYER_DEPS below; an undeclared edge, an include cycle, or an include that
does not resolve inside the tree is a finding with a clickable file:line.
The declared graph itself is checked for acyclicity on every run, so the
policy cannot rot into something unenforceable.

File list: by default the checker walks the source tree (no build needed —
CI's no-compiler lint leg runs this mode). Pass --compile-commands to
drive the .cpp list off CMAKE_EXPORT_COMPILE_COMMANDS instead and
cross-check it against the walk, so the build's file list and the checked
file list cannot drift apart: a source that exists but is not compiled
(or vice versa) is itself a finding.

Allowlist (shared convention, see dbp_lint_common.py): a deliberate
one-off edge carries a justification-mandatory marker on the include line
or in the comment block above it:

    // DBP_LINT_ALLOW(layering): <why this edge is sound>
    #include "other_layer/header.hpp"

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

import dbp_lint_common as common

TOOL = "dbp_layercheck"

# The declared layer DAG: layer -> layers its files may #include from.
# Same-layer includes are always allowed and never listed. Order matters
# only for readability (bottom-up). To add an edge, declare it here *with
# a line comment saying why* — the checker rejects anything undeclared.
LAYER_DEPS: dict[str, set[str]] = {
    # The domain vocabulary (types, instances, metrics, fault vocabulary,
    # arenas, binary codecs). Depends on nothing — including obs: core must
    # stay instrumentation-free so every layer can build on it without
    # dragging the observability surface along.
    "core": set(),
    # Cross-cutting leaves. exec arbitrates worker budgets and owns
    # parallel_map; obs owns tracer/metrics and the only clock reads in the
    # library (dbp_symcheck enforces that half of the contract).
    "exec": {"core"},
    "obs": {"core"},
    # Packers. obs: packer event loops emit arrival/departure records
    # through the thread-local observability context (result-neutral).
    "algo": {"core", "obs"},
    # Workload generators construct instances from the core vocabulary
    # alone. Adversarial *evaluation* against live packers (the adaptive
    # adversary) lives in analysis/, which may depend on algo/sim/opt.
    "workload": {"core"},
    # Simulation replays instances through packers; instrumented.
    "sim": {"core", "algo", "obs"},
    # OPT machinery. sim: the event sweep shares sim's event sequence;
    # exec: snapshot evaluation fans out through parallel_map under the
    # worker budget; obs: phase timers/records.
    "opt": {"core", "algo", "sim", "exec", "obs"},
    # Experiment harnesses (ratio tables, decompositions, adversary
    # evaluation) sit above everything they measure.
    "analysis": {"core", "algo", "sim", "opt", "exec"},
    # The cloud-gaming dispatcher consumes workloads, packs with algo,
    # reports through analysis, and is instrumented.
    "gaming": {"core", "algo", "sim", "opt", "analysis", "workload", "obs"},
    # The sharded engine drives per-shard dispatchers and streams OPT
    # bounds; fan-out goes through exec under the worker budget.
    "engine": {"core", "exec", "obs", "opt", "gaming"},
    # Durability journals/checkpoints dispatcher and packer state.
    "durability": {"core", "algo", "opt", "gaming", "obs"},
    # The wire front-end frames/validates requests (core codecs + strict
    # parsers) and feeds the engine; gaming only for the ServerSpec/fault
    # vocabulary surfaced in query responses; obs for net.* counters.
    "net": {"core", "engine", "gaming", "obs"},
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"(?P<path>[^"]+)"')


def declared_graph_cycle() -> list[str] | None:
    """Returns a cycle in LAYER_DEPS itself, or None. Keeps the policy
    honest: a cyclic declaration would make 'enforce the DAG' meaningless."""
    state: dict[str, int] = {}  # 0 = visiting, 1 = done
    stack: list[str] = []

    def visit(layer: str) -> list[str] | None:
        state[layer] = 0
        stack.append(layer)
        for dep in sorted(LAYER_DEPS.get(layer, ())):
            if state.get(dep) == 0:
                return stack[stack.index(dep):] + [dep]
            if dep not in state:
                cycle = visit(dep)
                if cycle:
                    return cycle
        stack.pop()
        state[layer] = 1
        return None

    for layer in sorted(LAYER_DEPS):
        if layer not in state:
            cycle = visit(layer)
            if cycle:
                return cycle
    return None


def parse_includes(path: Path) -> list[tuple[int, str]]:
    """(1-based line, quoted include path) for every project include."""
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return []
    out: list[tuple[int, str]] = []
    for idx, line in enumerate(text.splitlines()):
        match = INCLUDE_RE.match(line)
        if match:
            out.append((idx + 1, match.group("path")))
    return out


def layer_of(rel: Path) -> str:
    return rel.parts[0] if len(rel.parts) > 1 else ""


def check_tree(root: Path, files: list[Path]) -> list[common.Finding]:
    findings: list[common.Finding] = []

    cycle = declared_graph_cycle()
    if cycle:
        findings.append(common.Finding(
            __file__, 1, "layer-dag",
            "the declared LAYER_DEPS graph is itself cyclic: "
            + " -> ".join(cycle)))
        return findings

    rels = {path.resolve().relative_to(root.resolve()) for path in files}
    edges: dict[Path, list[tuple[int, Path]]] = {}

    for path in sorted(files):
        rel = path.resolve().relative_to(root.resolve())
        layer = layer_of(rel)
        if layer not in LAYER_DEPS:
            findings.append(common.Finding(
                str(path), 1, "unknown-layer",
                f"directory '{layer}' is not a declared layer — add it to "
                f"LAYER_DEPS in tools/dbp_layercheck.py with its allowed "
                "dependencies"))
            continue
        lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        for line_no, include in parse_includes(path):
            target = Path(include)
            if target not in rels:
                # Quoted include that is not a file of this tree: either a
                # typo or a path not rooted at src/ (both break the graph).
                findings.append(common.Finding(
                    str(path), line_no, "unresolved-include",
                    f'"{include}" does not resolve inside {root} '
                    "(project includes are rooted at src/)",
                    lines[line_no - 1].strip()))
                continue
            edges.setdefault(rel, []).append((line_no, target))
            target_layer = layer_of(target)
            if target_layer == layer or target_layer in LAYER_DEPS[layer]:
                continue
            allowed = common.allow_rules_for(lines, line_no - 1)
            if "layering" in allowed:
                if not allowed["layering"]:
                    findings.append(common.missing_justification(
                        str(path), line_no, "layering"))
                continue
            findings.append(common.Finding(
                str(path), line_no, "layering",
                f"undeclared layer dependency {layer} -> {target_layer} "
                f"(declared: {', '.join(sorted(LAYER_DEPS[layer])) or 'none'})",
                lines[line_no - 1].strip()))

    findings.extend(find_include_cycles(root, edges))
    return findings


def find_include_cycles(root: Path,
                        edges: dict[Path, list[tuple[int, Path]]]
                        ) -> list[common.Finding]:
    """File-level include cycles via iterative DFS. A cycle is reported
    once, anchored at its lexicographically first file."""
    findings: list[common.Finding] = []
    state: dict[Path, int] = {}  # 0 = visiting, 1 = done
    reported: set[frozenset[Path]] = set()

    def visit(start: Path) -> None:
        stack: list[tuple[Path, int]] = [(start, 0)]
        path_stack: list[Path] = []
        while stack:
            node, child_idx = stack.pop()
            if child_idx == 0:
                state[node] = 0
                path_stack.append(node)
            children = edges.get(node, [])
            advanced = False
            for i in range(child_idx, len(children)):
                line_no, target = children[i]
                if state.get(target) == 0:
                    members = path_stack[path_stack.index(target):]
                    key = frozenset(members)
                    if key not in reported:
                        reported.add(key)
                        chain = " -> ".join(str(m) for m in members + [target])
                        findings.append(common.Finding(
                            str(root / node), line_no, "include-cycle",
                            f"#include cycle: {chain}"))
                    continue
                if target not in state:
                    stack.append((node, i + 1))
                    stack.append((target, 0))
                    advanced = True
                    break
            if not advanced:
                state[node] = 1
                path_stack.pop()

    for node in sorted(edges):
        if node not in state:
            visit(node)
    return findings


def drift_findings(root: Path, files: list[Path],
                   compile_commands: Path) -> list[common.Finding]:
    """Cross-checks the walked .cpp list against the compile database."""
    findings: list[common.Finding] = []
    try:
        entries = common.load_compile_commands(compile_commands)
    except ValueError as err:
        findings.append(common.Finding(str(compile_commands), 1,
                                       "compile-db", str(err)))
        return findings
    resolved_root = root.resolve()
    compiled: set[Path] = set()
    for entry in entries:
        file_path = Path(entry["file"])
        if not file_path.is_absolute():
            file_path = Path(entry.get("directory", ".")) / file_path
        try:
            compiled.add(file_path.resolve().relative_to(resolved_root))
        except ValueError:
            continue  # a TU outside the checked tree (tests, tools, bench)
    walked = {path.resolve().relative_to(resolved_root)
              for path in files if path.suffix == ".cpp"}
    for rel in sorted(walked - compiled):
        findings.append(common.Finding(
            str(root / rel), 1, "build-drift",
            "source exists but is absent from the compile database — "
            "add it to its layer's CMakeLists.txt (or delete it)"))
    for rel in sorted(compiled - walked):
        findings.append(common.Finding(
            str(root / rel), 1, "build-drift",
            "compile database lists a source the tree walk did not find "
            "(stale compile_commands.json? re-run cmake)"))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="layered source root (default: <repo>/src)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json to cross-check the file "
                             "list against (CMAKE_EXPORT_COMPILE_COMMANDS)")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root \
        else Path(__file__).resolve().parent.parent / "src"
    if not root.is_dir():
        return common.usage_error(TOOL, f"no such directory: {root}")

    files, missing = common.iter_source_files([root])
    if missing:
        return common.usage_error(TOOL, f"no such path: {', '.join(missing)}")

    findings = check_tree(root, files)
    if args.compile_commands:
        findings.extend(drift_findings(root, files, Path(args.compile_commands)))

    return common.report(TOOL, findings, len(files))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
