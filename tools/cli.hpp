// Minimal --key=value argument parsing shared by the CLI tools.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/parse.hpp"
#include "exec/execution_policy.hpp"

namespace dbp::cli {

/// Parses `--key=value`, `--key value` and `--flag` arguments; positional
/// arguments and unknown keys raise PreconditionError with a usage hint.
class Args {
 public:
  Args(int argc, char** argv, std::vector<std::string> allowed_keys,
       std::string usage)
      : usage_(std::move(usage)) {
    for (const std::string& key : allowed_keys) allowed_.insert(key);
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      DBP_REQUIRE(arg.rfind("--", 0) == 0,
                  "expected --key=value argument, got '" + arg + "'\n" + usage_);
      const std::size_t eq = arg.find('=');
      const std::string key = arg.substr(2, eq == std::string::npos
                                                ? std::string::npos
                                                : eq - 2);
      DBP_REQUIRE(allowed_.contains(key),
                  "unknown option --" + key + "\n" + usage_);
      if (eq != std::string::npos) {
        values_[key] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];  // space-separated form: --key value
      } else {
        values_[key] = "";  // bare flag
      }
    }
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    auto it = values_.find(key);
    DBP_REQUIRE(it != values_.end() && !it->second.empty(),
                "missing required option --" + key + "\n" + usage_);
    return it->second;
  }

  /// Strict parse (core/parse.hpp): the whole value must be a finite number
  /// — "1.5x", "nan" and "abc" are CLI errors with the usage hint, never a
  /// silently truncated or non-finite value.
  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return parse_double_strict(it->second, "--" + key + " value");
    } catch (const PreconditionError& error) {
      throw PreconditionError(std::string(error.what()) + "\n" + usage_);
    }
  }

  /// Strict parse (core/parse.hpp): digits only, no sign/whitespace/suffix,
  /// in uint64 range. std::stoull would silently accept "8abc" as 8 and
  /// wrap "-1" into a huge count; here both are CLI errors with the usage
  /// hint.
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return parse_u64_strict(it->second, "--" + key + " value");
    } catch (const PreconditionError& error) {
      throw PreconditionError(std::string(error.what()) + "\n" + usage_);
    }
  }

  /// get_u64 additionally capped at kMaxThreads for --threads. Returns 0
  /// (runtime default) when the option is absent or empty.
  static constexpr std::uint64_t kMaxThreads = 512;

  [[nodiscard]] int get_thread_count(const std::string& key = "threads") const {
    auto it = values_.find(key);
    if (it == values_.end() || it->second.empty()) return 0;
    const std::uint64_t parsed = get_u64(key, 0);
    DBP_REQUIRE(parsed <= kMaxThreads,
                "--" + key + " value '" + it->second + "' is out of range (max " +
                    std::to_string(kMaxThreads) + ")\n" + usage_);
    return static_cast<int>(parsed);
  }

  /// Strict parse for --policy: sequential | parallel | adaptive, mapped to
  /// exec::ExecutionPolicy (anything else is a CLI error with the usage
  /// hint). Returns `fallback` when the option is absent.
  [[nodiscard]] exec::ExecutionPolicy get_execution_policy(
      exec::ExecutionPolicy fallback = exec::ExecutionPolicy::kAdaptive,
      const std::string& key = "policy") const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return exec::parse_execution_policy(it->second);
    } catch (const PreconditionError& error) {
      // Re-throw with the usage block appended; the parse error already
      // carries the DBP_REQUIRE prefix, so don't wrap it in another one.
      throw PreconditionError(std::string(error.what()) + "\n" + usage_);
    }
  }

  /// Splits a comma-separated value ("a,b,c").
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& key, const std::vector<std::string>& fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::vector<std::string> result;
    std::stringstream stream(it->second);
    std::string part;
    while (std::getline(stream, part, ',')) {
      if (!part.empty()) result.push_back(part);
    }
    return result;
  }

  [[nodiscard]] const std::string& usage() const noexcept { return usage_; }

 private:
  std::string usage_;
  std::set<std::string> allowed_;
  std::map<std::string, std::string> values_;
};

}  // namespace dbp::cli
