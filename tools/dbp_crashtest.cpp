// dbp_crashtest — crash-consistency harness for the durability subsystem.
//
// For every workload class it runs a reference (uninterrupted) packing run,
// then forks children that replay the same event stream through a
// DurableRun/DurableDispatcher and SIGKILL themselves at a randomized byte
// offset inside the journal/checkpoint write path (durability::WriteCrashHook).
// The parent recovers each crashed directory, re-feeds the not-yet-durable
// suffix of the input, and requires the final state to be bit-identical to
// the reference — exact == on every SimulationResult field, and exact
// save_state byte equality for the dispatcher.
//
// A second battery injects deliberate corruption (journal bit flips and
// truncation, checkpoint bit flips, stale checkpoint names, corrupt
// headers): every case must end in either a typed CorruptionError or a
// bit-identical recovery — a silently wrong result is the only failure.
//
// Usage:
//   dbp_crashtest [--quick] [--trials=N] [--items=N] [--seed=S]
//                 [--workloads=uniform,dyadic,discrete,bursts]
//                 [--algorithm=first-fit] [--checkpoint-every=N]
//                 [--dir=BASE] [--trace-out=FILE] [--metrics]
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli.hpp"
#include "core/binary_io.hpp"
#include "core/error.hpp"
#include "core/strfmt.hpp"
#include "durability/crash_hook.hpp"
#include "durability/checkpoint.hpp"
#include "durability/file_io.hpp"
#include "durability/journal.hpp"
#include "durability/recovery.hpp"
#include "gaming/dispatcher.hpp"
#include "obs_cli.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"
#include "workload/rng.hpp"

namespace {

using namespace dbp;

constexpr const char* kUsage =
    "usage: dbp_crashtest [--quick] [--trials=N] [--items=N] [--seed=S]\n"
    "                     [--workloads=uniform,dyadic,discrete,bursts]\n"
    "                     [--algorithm=NAME] [--checkpoint-every=N]\n"
    "                     [--dir=BASE] [--trace-out=FILE] [--metrics]\n";

RandomInstanceConfig workload_config(const std::string& name,
                                     std::size_t items) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  if (name == "uniform") {
    config.size.min_fraction = 0.02;
    config.size.max_fraction = 0.5;
  } else if (name == "dyadic") {
    config.size.kind = SizeModel::Kind::kDyadic;
    config.size.min_exponent = 1;
    config.size.max_exponent = 6;
  } else if (name == "discrete") {
    config.size.kind = SizeModel::Kind::kDiscrete;
    config.size.fractions = {0.125, 0.25, 0.375, 0.5};
    config.size.weights = {4.0, 3.0, 2.0, 1.0};
  } else if (name == "bursts") {
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 16;
    config.arrival.burst_gap = 0.5;
    config.size.min_fraction = 0.05;
    config.size.max_fraction = 0.4;
  } else {
    DBP_REQUIRE(false, "unknown workload '" + name +
                           "' (expected uniform, dyadic, discrete, or "
                           "bursts)\n" +
                           std::string(kUsage));
  }
  return config;
}

// --------------------------------------------------------------------------
// Bit-exact comparison. Every double is compared with ==: a recovered run
// must be indistinguishable from one that never crashed, not merely close.

std::optional<std::string> diff_results(const SimulationResult& ref,
                                        const SimulationResult& got) {
  if (got.algorithm != ref.algorithm) return "algorithm name differs";
  if (got.total_cost != ref.total_cost) {
    return strfmt("total_cost %.17g != %.17g", got.total_cost, ref.total_cost);
  }
  if (got.total_cost_from_bins != ref.total_cost_from_bins) {
    return strfmt("total_cost_from_bins %.17g != %.17g",
                  got.total_cost_from_bins, ref.total_cost_from_bins);
  }
  if (got.max_open_bins != ref.max_open_bins) return "max_open_bins differs";
  if (got.bins_opened != ref.bins_opened) return "bins_opened differs";
  if (!(got.packing_period == ref.packing_period)) {
    return "packing_period differs";
  }
  if (got.bin_usage.size() != ref.bin_usage.size()) {
    return "bin_usage length differs";
  }
  for (std::size_t i = 0; i < ref.bin_usage.size(); ++i) {
    if (got.bin_usage[i].id != ref.bin_usage[i].id ||
        got.bin_usage[i].opened != ref.bin_usage[i].opened ||
        got.bin_usage[i].closed != ref.bin_usage[i].closed) {
      return strfmt("bin_usage[%zu] differs", i);
    }
  }
  if (got.assignment != ref.assignment) return "assignment differs";
  return std::nullopt;
}

// --------------------------------------------------------------------------
// Simulation-mode plumbing.

void feed_run(durability::DurableRun& run, const Instance& instance,
              const std::vector<Event>& events, std::uint64_t from_seq) {
  for (std::uint64_t i = from_seq; i < events.size(); ++i) {
    const Item& item = instance.item(events[i].item);
    if (events[i].kind == EventKind::kArrival) {
      (void)run.apply_arrival(ArrivingItem{item.id, item.arrival, item.size});
    } else {
      run.apply_departure(item.id, item.departure);
    }
  }
}

SimulationResult finalize_run(const durability::DurableRun& run,
                              const Instance& instance) {
  DBP_CHECK(run.packer().bins().open_count() == 0,
            "bins remain open after the last departure");
  SimulationResult result;
  result.algorithm = run.packer().name();
  result.packing_period = instance.packing_period();
  detail::finalize_accounting(result, instance, run.packer().bins());
  return result;
}

/// Runs the full stream durably with a byte-counting hook; verifies the
/// clean durable path against the plain simulator and returns the total
/// number of bytes the durability layer writes (the kill-offset range).
std::uint64_t measure_clean_run(const durability::DurabilityConfig& config,
                                const Instance& instance,
                                const std::vector<Event>& events,
                                const CostModel& model,
                                const std::string& algorithm,
                                const PackerOptions& options,
                                const SimulationResult& reference) {
  std::uint64_t total = 0;
  durability::set_write_crash_hook(
      [&total](std::string_view, std::uint64_t, std::size_t length) {
        total += length;
        return std::optional<std::size_t>{};
      });
  durability::DurableRun run(config, model, algorithm, options);
  feed_run(run, instance, events, 0);
  run.flush();
  durability::set_write_crash_hook({});
  const SimulationResult clean = finalize_run(run, instance);
  if (auto why = diff_results(reference, clean)) {
    throw InvariantError("clean durable run diverged from simulate(): " + *why);
  }
  return total;
}

/// Installs the SIGKILL-at-threshold hook (child side).
void install_kill_hook(std::uint64_t threshold) {
  // Owned by the hook: the child process dies inside it, never returns.
  auto written = std::make_shared<std::uint64_t>(0);
  durability::set_write_crash_hook(
      [written, threshold](std::string_view, std::uint64_t,
                           std::size_t length) -> std::optional<std::size_t> {
        if (*written + length <= threshold) {
          *written += length;
          return std::nullopt;
        }
        return static_cast<std::size_t>(threshold - *written);
      });
}

/// Forks a child that feeds the whole stream and dies at `threshold` bytes
/// of durable writes. Returns true when the child exited 0 or was SIGKILLed.
bool run_crashing_child(const durability::DurabilityConfig& config,
                        const Instance& instance,
                        const std::vector<Event>& events,
                        const CostModel& model, const std::string& algorithm,
                        const PackerOptions& options, std::uint64_t threshold) {
  const pid_t pid = ::fork();
  DBP_REQUIRE(pid >= 0, "fork failed");
  if (pid == 0) {
    try {
      durability::DurableRun run(config, model, algorithm, options);
      install_kill_hook(threshold);
      feed_run(run, instance, events, 0);
      run.flush();
    } catch (...) {
      std::_Exit(3);
    }
    std::_Exit(0);
  }
  int status = 0;
  DBP_REQUIRE(::waitpid(pid, &status, 0) == pid, "waitpid failed");
  const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  const bool sigkilled = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  return clean_exit || sigkilled;
}

struct TrialTally {
  std::size_t trials = 0;
  std::size_t crashed = 0;     ///< child died mid-stream (vs ran to the end)
  std::size_t torn_tails = 0;  ///< recoveries that truncated a torn tail
  std::uint64_t replayed = 0;  ///< journal events replayed across recoveries
  std::uint64_t refed = 0;     ///< input events re-fed after recovery
};

/// One randomized SIGKILL trial: crash a child, recover in the parent,
/// re-feed the lost suffix and demand a bit-identical result. Returns an
/// error description on mismatch.
std::optional<std::string> sim_trial(const durability::DurabilityConfig& config,
                                     const Instance& instance,
                                     const std::vector<Event>& events,
                                     const CostModel& model,
                                     const std::string& algorithm,
                                     const PackerOptions& options,
                                     const SimulationResult& reference,
                                     std::uint64_t threshold,
                                     TrialTally& tally) {
  ++tally.trials;
  if (!run_crashing_child(config, instance, events, model, algorithm, options,
                          threshold)) {
    return "child failed with an unexpected status";
  }
  durability::RecoveryManager manager(config);
  durability::RecoveredState state = manager.recover();
  if (state.mode != durability::DurableMode::kSimulation ||
      state.run == nullptr) {
    return "recovered the wrong durable mode";
  }
  if (state.report.next_seq > events.size()) {
    return "recovered next_seq beyond the input stream";
  }
  if (state.report.next_seq < events.size()) ++tally.crashed;
  if (state.report.torn_tail) ++tally.torn_tails;
  tally.replayed += state.report.replayed_events;
  tally.refed += events.size() - state.report.next_seq;
  feed_run(*state.run, instance, events, state.report.next_seq);
  state.run->flush();
  const SimulationResult got = finalize_run(*state.run, instance);
  if (auto why = diff_results(reference, got)) return why;
  return std::nullopt;
}

// --------------------------------------------------------------------------
// Dispatcher-mode plumbing: session starts/ends from the same instances,
// plus periodic server-failure injections, under a fault policy with a
// nonzero rental failure rate — so the retry/backoff accumulators and the
// rental RNG position are all exercised across the crash boundary.

struct DispatchOp {
  enum class Kind : std::uint8_t { kStart, kEnd, kFail };
  Kind kind = Kind::kStart;
  std::uint64_t session = 0;
  double size = 0.0;
  Time time = 0.0;
};

std::vector<DispatchOp> build_script(const Instance& instance,
                                     std::size_t fail_every) {
  std::vector<DispatchOp> ops;
  std::size_t counter = 0;
  for (const Event& event : build_event_sequence(instance)) {
    const Item& item = instance.item(event.item);
    DispatchOp op;
    op.session = item.id;
    if (event.kind == EventKind::kArrival) {
      op.kind = DispatchOp::Kind::kStart;
      op.size = item.size;
      op.time = item.arrival;
    } else {
      op.kind = DispatchOp::Kind::kEnd;
      op.time = item.departure;
    }
    ops.push_back(op);
    if (++counter % fail_every == 0) {
      DispatchOp fail;
      fail.kind = DispatchOp::Kind::kFail;
      fail.time = op.time;
      ops.push_back(fail);
    }
  }
  return ops;
}

const BinManager& bins_of(const GameServerDispatcher& d) { return d.bins(); }
const BinManager& bins_of(const durability::DurableDispatcher& d) {
  return d.dispatcher().bins();
}

/// Applies script ops [from, end). The kFail target is computed from live
/// state (lowest open server, or a bogus id when the fleet is empty) — the
/// same deterministic rule in the reference, the child, and the re-feed.
template <typename Dispatcher>
void apply_ops(Dispatcher& dispatcher, const std::vector<DispatchOp>& ops,
               std::size_t from) {
  constexpr BinId kBogusServer = 1'000'000'007ULL;
  for (std::size_t i = from; i < ops.size(); ++i) {
    const DispatchOp& op = ops[i];
    switch (op.kind) {
      case DispatchOp::Kind::kStart:
        (void)dispatcher.start_session(op.session, op.size, op.time);
        break;
      case DispatchOp::Kind::kEnd:
        dispatcher.end_session(op.session, op.time);
        break;
      case DispatchOp::Kind::kFail: {
        const std::vector<BinId> open = bins_of(dispatcher).open_bins();
        (void)dispatcher.fail_server(open.empty() ? kBogusServer : open.front(),
                                     op.time);
        break;
      }
    }
  }
}

std::vector<std::uint8_t> dispatcher_state_bytes(
    const GameServerDispatcher& dispatcher) {
  ByteWriter out;
  dispatcher.save_state(out);
  return out.take();
}

std::optional<std::string> dispatch_trial(
    const durability::DurabilityConfig& config, const ServerSpec& spec,
    const std::string& algorithm, const PackerOptions& options,
    const FaultPolicy& policy, const std::vector<DispatchOp>& ops,
    const std::vector<std::uint8_t>& reference_state,
    const DispatcherFaultStats& reference_stats, std::uint64_t threshold,
    TrialTally& tally) {
  ++tally.trials;
  const pid_t pid = ::fork();
  DBP_REQUIRE(pid >= 0, "fork failed");
  if (pid == 0) {
    try {
      durability::DurableDispatcher durable(config, spec, algorithm, options,
                                            policy);
      install_kill_hook(threshold);
      apply_ops(durable, ops, 0);
      durable.flush();
    } catch (...) {
      std::_Exit(3);
    }
    std::_Exit(0);
  }
  int status = 0;
  DBP_REQUIRE(::waitpid(pid, &status, 0) == pid, "waitpid failed");
  const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  const bool sigkilled = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  if (!clean_exit && !sigkilled) {
    return "child failed with an unexpected status";
  }

  durability::RecoveryManager manager(config);
  durability::RecoveredState state = manager.recover();
  if (state.mode != durability::DurableMode::kDispatcher ||
      state.dispatcher == nullptr) {
    return "recovered the wrong durable mode";
  }
  if (state.report.next_seq > ops.size()) {
    return "recovered next_seq beyond the script";
  }
  if (state.report.next_seq < ops.size()) ++tally.crashed;
  if (state.report.torn_tail) ++tally.torn_tails;
  tally.replayed += state.report.replayed_events;
  tally.refed += ops.size() - state.report.next_seq;
  apply_ops(*state.dispatcher, ops,
            static_cast<std::size_t>(state.report.next_seq));
  state.dispatcher->flush();
  if (!(state.dispatcher->dispatcher().fault_stats() == reference_stats)) {
    return "dispatcher fault stats diverged (retry/backoff state)";
  }
  if (dispatcher_state_bytes(state.dispatcher->dispatcher()) !=
      reference_state) {
    return "dispatcher state bytes diverged";
  }
  return std::nullopt;
}

// --------------------------------------------------------------------------
// Corruption injection. Every scenario must end in a typed CorruptionError
// or a bit-identical recovery; anything else is a silent-wrong-answer bug.

void flip_bit(const std::string& path, std::uint64_t byte, unsigned bit) {
  std::vector<std::uint8_t> bytes = durability::detail::read_file(path);
  DBP_REQUIRE(byte < bytes.size(), "flip offset out of range");
  bytes[static_cast<std::size_t>(byte)] ^=
      static_cast<std::uint8_t>(1U << (bit & 7U));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DBP_REQUIRE(out.is_open(), "cannot rewrite " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  DBP_REQUIRE(out.good(), "rewrite failed for " + path);
}

/// Populates `dir` with a full durable run of the stream (several
/// checkpoints plus the complete journal).
void populate_dir(const durability::DurabilityConfig& config,
                  const Instance& instance, const std::vector<Event>& events,
                  const CostModel& model, const std::string& algorithm,
                  const PackerOptions& options) {
  durability::DurableRun run(config, model, algorithm, options);
  feed_run(run, instance, events, 0);
  run.flush();
}

/// Attempts recovery of a (possibly corrupted) directory. Returns nullopt
/// on a graceful outcome — CorruptionError, or a recovery whose re-fed
/// result is bit-identical — and a description of any silent mismatch.
std::optional<std::string> recover_and_check(
    const durability::DurabilityConfig& config, const Instance& instance,
    const std::vector<Event>& events, const SimulationResult& reference,
    bool* out_recovered = nullptr, std::size_t* out_skipped = nullptr) {
  try {
    durability::RecoveryManager manager(config);
    durability::RecoveredState state = manager.recover();
    if (state.mode != durability::DurableMode::kSimulation ||
        state.run == nullptr) {
      return "recovered the wrong durable mode";
    }
    if (state.report.next_seq > events.size()) {
      return "recovered next_seq beyond the input stream";
    }
    if (out_recovered != nullptr) *out_recovered = true;
    if (out_skipped != nullptr) *out_skipped = state.report.checkpoints_skipped;
    feed_run(*state.run, instance, events, state.report.next_seq);
    state.run->flush();
    const SimulationResult got = finalize_run(*state.run, instance);
    if (auto why = diff_results(reference, got)) {
      return "silent corruption: " + *why;
    }
  } catch (const CorruptionError&) {
    if (out_recovered != nullptr) *out_recovered = false;
  }
  return std::nullopt;
}

struct CorruptionOutcome {
  std::size_t cases = 0;
  std::size_t recovered = 0;
  std::size_t refused = 0;
};

std::optional<std::string> corruption_battery(
    const std::string& base_dir, const Instance& instance,
    const std::vector<Event>& events, const CostModel& model,
    const std::string& algorithm, const PackerOptions& options,
    const SimulationResult& reference, Rng& rng, CorruptionOutcome& outcome) {
  std::size_t case_id = 0;
  const auto fresh_config = [&](const std::string& label) {
    durability::DurabilityConfig config;
    config.dir = base_dir + "/corrupt-" + label + "-" + std::to_string(case_id);
    config.checkpoint_every = 32;
    config.keep_checkpoints = 2;
    return config;
  };
  const auto finish_case = [&](const std::optional<std::string>& error,
                               bool recovered) -> std::optional<std::string> {
    if (error) return error;
    ++outcome.cases;
    if (recovered) {
      ++outcome.recovered;
    } else {
      ++outcome.refused;
    }
    return std::nullopt;
  };

  // 1. Journal bit flips past the header: torn tail or checkpoint fallback.
  for (int i = 0; i < 4; ++i) {
    ++case_id;
    const durability::DurabilityConfig config = fresh_config("jflip");
    populate_dir(config, instance, events, model, algorithm, options);
    const std::string journal =
        config.dir + "/" + durability::kJournalFileName;
    const std::uint64_t size = durability::detail::file_size(journal);
    DBP_REQUIRE(size > durability::kJournalHeaderBytes, "journal too small");
    const std::uint64_t byte = rng.uniform_int(
        durability::kJournalHeaderBytes, size - 1);
    flip_bit(journal, byte, static_cast<unsigned>(rng.uniform_int(0, 7)));
    bool recovered = false;
    if (auto err = finish_case(
            recover_and_check(config, instance, events, reference, &recovered),
            recovered)) {
      return "journal bit flip: " + *err;
    }
  }

  // 2. Journal truncation at a random byte (including mid-record).
  for (int i = 0; i < 4; ++i) {
    ++case_id;
    const durability::DurabilityConfig config = fresh_config("jtrunc");
    populate_dir(config, instance, events, model, algorithm, options);
    const std::string journal =
        config.dir + "/" + durability::kJournalFileName;
    const std::uint64_t size = durability::detail::file_size(journal);
    durability::detail::truncate_file(
        journal, rng.uniform_int(durability::kJournalHeaderBytes, size));
    bool recovered = false;
    if (auto err = finish_case(
            recover_and_check(config, instance, events, reference, &recovered),
            recovered)) {
      return "journal truncation: " + *err;
    }
  }

  // 3. Stale checkpoint name: a copied checkpoint impersonating another seq
  //    must be detected (name/header disagreement) and skipped.
  {
    ++case_id;
    const durability::DurabilityConfig config = fresh_config("stale");
    populate_dir(config, instance, events, model, algorithm, options);
    const auto entries = durability::list_checkpoints(config.dir);
    DBP_REQUIRE(!entries.empty(), "populate left no checkpoints");
    const std::vector<std::uint8_t> bytes =
        durability::detail::read_file(entries.front().path);
    const std::string impostor =
        config.dir + "/" +
        durability::checkpoint_file_name(entries.front().next_seq + 1);
    std::ofstream out(impostor, std::ios::binary);
    DBP_REQUIRE(out.is_open(), "cannot write impostor checkpoint");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.close();
    bool recovered = false;
    std::size_t skipped = 0;
    auto err = recover_and_check(config, instance, events, reference,
                                 &recovered, &skipped);
    if (!err && recovered && skipped == 0) {
      err = "impostor checkpoint was not skipped";
    }
    if (!err && !recovered) err = "stale name refused instead of falling back";
    if (auto final_err = finish_case(err, recovered)) {
      return "stale checkpoint name: " + *final_err;
    }
  }

  // 4. Newest checkpoint corrupted: CRC must reject it and recovery must
  //    fall back to the previous checkpoint, then replay further.
  for (int i = 0; i < 4; ++i) {
    ++case_id;
    const durability::DurabilityConfig config = fresh_config("cflip");
    populate_dir(config, instance, events, model, algorithm, options);
    const auto entries = durability::list_checkpoints(config.dir);
    DBP_REQUIRE(entries.size() >= 2, "need two checkpoints for fallback");
    const std::uint64_t size =
        durability::detail::file_size(entries.front().path);
    flip_bit(entries.front().path, rng.uniform_int(0, size - 1),
             static_cast<unsigned>(rng.uniform_int(0, 7)));
    bool recovered = false;
    std::size_t skipped = 0;
    auto err = recover_and_check(config, instance, events, reference,
                                 &recovered, &skipped);
    if (!err && recovered && skipped == 0) {
      err = "corrupt newest checkpoint was not skipped";
    }
    if (!err && !recovered) {
      err = "no fallback to the previous checkpoint";
    }
    if (auto final_err = finish_case(err, recovered)) {
      return "checkpoint bit flip: " + *final_err;
    }
  }

  // 5. Every checkpoint corrupted: recovery must refuse with
  //    CorruptionError, never fabricate a state.
  {
    ++case_id;
    const durability::DurabilityConfig config = fresh_config("allbad");
    populate_dir(config, instance, events, model, algorithm, options);
    for (const auto& entry : durability::list_checkpoints(config.dir)) {
      const std::uint64_t size = durability::detail::file_size(entry.path);
      flip_bit(entry.path, rng.uniform_int(0, size - 1),
               static_cast<unsigned>(rng.uniform_int(0, 7)));
    }
    bool recovered = false;
    auto err =
        recover_and_check(config, instance, events, reference, &recovered);
    if (!err && recovered) {
      err = "recovery accepted a directory with only corrupt checkpoints";
    }
    if (auto final_err = finish_case(err, recovered)) {
      return "all checkpoints corrupt: " + *final_err;
    }
  }

  // 6. Corrupt journal header: no safe prefix exists; refuse.
  {
    ++case_id;
    const durability::DurabilityConfig config = fresh_config("jheader");
    populate_dir(config, instance, events, model, algorithm, options);
    const std::string journal =
        config.dir + "/" + durability::kJournalFileName;
    flip_bit(journal, rng.uniform_int(0, durability::kJournalHeaderBytes - 1),
             static_cast<unsigned>(rng.uniform_int(0, 7)));
    bool recovered = false;
    auto err =
        recover_and_check(config, instance, events, reference, &recovered);
    if (!err && recovered) {
      err = "recovery accepted a journal with a corrupt header";
    }
    if (auto final_err = finish_case(err, recovered)) {
      return "journal header flip: " + *final_err;
    }
  }

  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"quick", "trials", "items", "seed", "workloads",
                          "algorithm", "checkpoint-every", "dir", "trace-out",
                          "metrics"},
                         kUsage);
    cli::ObsSession obs_session(args);
    const bool quick = args.has("quick");
    const std::uint64_t trials =
        args.get_u64("trials", quick ? 12 : 120);
    const std::size_t items = args.get_u64("items", quick ? 120 : 240);
    const std::uint64_t seed = args.get_u64("seed", 1);
    const std::vector<std::string> workloads = args.get_list(
        "workloads", {"uniform", "dyadic", "discrete", "bursts"});
    const std::string algorithm = args.get("algorithm", "first-fit");
    const std::uint64_t checkpoint_every = args.get_u64("checkpoint-every", 64);

    const std::string base_dir = args.get(
        "dir", (std::filesystem::temp_directory_path() /
                ("dbp_crashtest." + std::to_string(::getpid())))
                   .string());
    std::filesystem::create_directories(base_dir);

    const CostModel model{1.0, 1.0, 1e-9};
    Rng rng(seed ^ 0xC4A5585ULL);
    std::size_t failures = 0;

    // ---- Simulation-mode SIGKILL battery, per workload class.
    for (const std::string& workload : workloads) {
      const Instance instance =
          generate_random_instance(workload_config(workload, items), seed);
      const std::vector<Event> events = build_event_sequence(instance);
      PackerOptions options;
      options.seed = seed;
      const SimulationResult reference =
          simulate(instance, algorithm, model, options);

      durability::DurabilityConfig probe;
      probe.dir = base_dir + "/probe-" + workload;
      probe.checkpoint_every = checkpoint_every;
      const std::uint64_t total_bytes = measure_clean_run(
          probe, instance, events, model, algorithm, options, reference);
      std::filesystem::remove_all(probe.dir);

      TrialTally tally;
      for (std::uint64_t t = 0; t < trials; ++t) {
        durability::DurabilityConfig config;
        config.dir = base_dir + "/" + workload + "-" + std::to_string(t);
        config.checkpoint_every = checkpoint_every;
        // +5% headroom so some children run to completion (clean-exit path).
        const std::uint64_t threshold =
            rng.uniform_int(0, total_bytes + total_bytes / 20);
        if (auto why = sim_trial(config, instance, events, model, algorithm,
                                 options, reference, threshold, tally)) {
          std::cerr << strfmt("FAIL [%s trial %llu threshold %llu]: %s\n",
                              workload.c_str(),
                              static_cast<unsigned long long>(t),
                              static_cast<unsigned long long>(threshold),
                              why->c_str());
          ++failures;
        }
        std::filesystem::remove_all(config.dir);
      }
      std::cout << strfmt(
          "%-8s %4zu kill points | crashed %4zu | torn tails %3zu | "
          "replayed %6llu | re-fed %6llu | %s\n",
          workload.c_str(), tally.trials, tally.crashed, tally.torn_tails,
          static_cast<unsigned long long>(tally.replayed),
          static_cast<unsigned long long>(tally.refed),
          failures == 0 ? "all bit-identical" : "FAILURES");
    }

    // ---- Dispatcher-mode SIGKILL battery (retry/backoff + rental RNG).
    {
      const Instance instance =
          generate_random_instance(workload_config("uniform", items), seed + 7);
      const std::vector<DispatchOp> ops = build_script(instance, 53);
      const ServerSpec spec{1.0, 1.0};
      PackerOptions options;
      options.seed = seed;
      FaultPolicy policy;
      policy.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
      policy.rental_failure_rate = 0.05;
      policy.max_rental_retries = 3;

      GameServerDispatcher reference(spec, algorithm, options, policy);
      apply_ops(reference, ops, 0);
      const std::vector<std::uint8_t> reference_state =
          dispatcher_state_bytes(reference);
      const DispatcherFaultStats reference_stats = reference.fault_stats();

      // Clean durable differential + byte budget measurement.
      std::uint64_t total_bytes = 0;
      durability::set_write_crash_hook(
          [&total_bytes](std::string_view, std::uint64_t, std::size_t length) {
            total_bytes += length;
            return std::optional<std::size_t>{};
          });
      {
        durability::DurabilityConfig probe;
        probe.dir = base_dir + "/probe-dispatch";
        probe.checkpoint_every = checkpoint_every;
        durability::DurableDispatcher durable(probe, spec, algorithm, options,
                                              policy);
        apply_ops(durable, ops, 0);
        durable.flush();
        durability::set_write_crash_hook({});
        DBP_CHECK(dispatcher_state_bytes(durable.dispatcher()) ==
                      reference_state,
                  "clean durable dispatcher diverged from the plain one");
        std::filesystem::remove_all(probe.dir);
      }

      TrialTally tally;
      for (std::uint64_t t = 0; t < trials; ++t) {
        durability::DurabilityConfig config;
        config.dir = base_dir + "/dispatch-" + std::to_string(t);
        config.checkpoint_every = checkpoint_every;
        const std::uint64_t threshold =
            rng.uniform_int(0, total_bytes + total_bytes / 20);
        if (auto why = dispatch_trial(config, spec, algorithm, options, policy,
                                      ops, reference_state, reference_stats,
                                      threshold, tally)) {
          std::cerr << strfmt("FAIL [dispatch trial %llu threshold %llu]: %s\n",
                              static_cast<unsigned long long>(t),
                              static_cast<unsigned long long>(threshold),
                              why->c_str());
          ++failures;
        }
        std::filesystem::remove_all(config.dir);
      }
      std::cout << strfmt(
          "%-8s %4zu kill points | crashed %4zu | torn tails %3zu | "
          "replayed %6llu | re-fed %6llu | %s\n",
          "dispatch", tally.trials, tally.crashed, tally.torn_tails,
          static_cast<unsigned long long>(tally.replayed),
          static_cast<unsigned long long>(tally.refed),
          failures == 0 ? "all bit-identical" : "FAILURES");
    }

    // ---- Corruption-injection battery.
    {
      const Instance instance =
          generate_random_instance(workload_config("uniform", items), seed + 3);
      const std::vector<Event> events = build_event_sequence(instance);
      PackerOptions options;
      options.seed = seed;
      const SimulationResult reference =
          simulate(instance, algorithm, model, options);
      CorruptionOutcome outcome;
      if (auto why =
              corruption_battery(base_dir, instance, events, model, algorithm,
                                 options, reference, rng, outcome)) {
        std::cerr << "FAIL [corruption]: " << *why << "\n";
        ++failures;
      }
      std::cout << strfmt(
          "corrupt  %4zu injections  | recovered %2zu | refused (typed) %2zu "
          "| %s\n",
          outcome.cases, outcome.recovered, outcome.refused,
          failures == 0 ? "no silent wrong answers" : "FAILURES");
    }

    std::filesystem::remove_all(base_dir);
    obs_session.finish();
    if (failures != 0) {
      std::cerr << "dbp_crashtest: " << failures << " failure(s)\n";
      return 2;
    }
    std::cout << "dbp_crashtest: OK\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_crashtest: " << error.what() << "\n";
    return 1;
  }
}
