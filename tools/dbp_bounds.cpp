// dbp_bounds — certified OPT_total bounds and the paper's closed-form
// bounds for a CSV trace, plus the repacking (with-migration) baseline.
//
// Usage:
//   dbp_bounds --trace=trace.csv [--capacity=W] [--rate=C] [--no-exact]
//              [--threads=N] [--sequential]
#include <iostream>

#include "exec/parallel_map.hpp"
#include "cli.hpp"
#include "core/metrics.hpp"
#include "core/strfmt.hpp"
#include "exec/worker_budget.hpp"
#include "opt/opt_total.hpp"
#include "opt/repack_baseline.hpp"
#include "workload/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dbp_bounds --trace=FILE [--capacity=W] [--rate=C] [--no-exact]\n"
    "                  [--threads=N] [--policy=sequential|parallel|adaptive]\n"
    "                  [--sequential]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(
        argc, argv,
        {"trace", "capacity", "rate", "no-exact", "threads", "policy",
         "sequential"},
        kUsage);
    exec::WorkerBudget::set(args.get_thread_count());
    const Instance instance = read_instance_csv(args.require("trace"));
    DBP_REQUIRE(!instance.empty(), "trace is empty");
    const CostModel model{args.get_double("capacity", 1.0),
                          args.get_double("rate", 1.0), 1e-9};

    const InstanceMetrics metrics = compute_metrics(instance);
    std::cout << strfmt(
        "%zu items | mu = %.3f | Delta = %.3f | sizes [%.4f, %.4f] | %d "
        "worker(s)\n",
        metrics.item_count, metrics.mu, metrics.min_interval_length,
        metrics.min_size, metrics.max_size, parallel_worker_count());

    const CostBounds closed = compute_cost_bounds(instance, model);
    std::cout << strfmt("closed-form bounds:  (b.1) demand %.4f | (b.2) span "
                        "%.4f | (b.3) one-bin-per-item %.4f\n",
                        closed.demand_lower, closed.span_lower,
                        closed.one_per_item_upper);

    OptTotalOptions options;
    options.bin_count.use_exact_solver = !args.has("no-exact");
    // --sequential is the legacy spelling of --policy=sequential.
    options.policy = args.has("sequential") ? exec::ExecutionPolicy::kSequential
                                            : args.get_execution_policy();
    const OptTotalResult opt = estimate_opt_total(instance, model, options);
    std::cout << strfmt(
        "OPT_total in [%.6f, %.6f]%s  (%zu/%zu segments proven exact)\n",
        opt.lower_cost, opt.upper_cost, opt.exact ? " (exact)" : "",
        opt.exact_segments, opt.segments);
    std::cout << strfmt(
        "snapshots: %zu distinct / %zu segments (%llu dedup hits)\n",
        opt.distinct_snapshots, opt.segments,
        static_cast<unsigned long long>(opt.dedup_hits));

    const RepackBaselineResult repack = run_repack_baseline(instance, model);
    std::cout << strfmt(
        "FFD-repack baseline (migration allowed): cost %.6f, peak %zu bins, "
        "%llu migrations (volume %.3f)\n",
        repack.total_cost, repack.max_bins,
        static_cast<unsigned long long>(repack.migrations),
        repack.migrated_volume);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_bounds: " << error.what() << "\n";
    return 1;
  }
}
