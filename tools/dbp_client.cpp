// dbp_client — drive a dbp_serve instance over its Unix socket.
//
// Three modes, combinable left to right:
//
//   replay    stream a trace CSV (--trace=FILE) or a generated workload
//             (--events/--seed/--workload) through submit; with
//             --epoch-every=N it also drives epochs: one every N events
//             plus one at the end of the stream (omit it when the server's
//             timer owns the epoch cadence).
//   query     after the replay (or alone), round-trip the `query` verb and
//             print the server's stats JSON to stdout.
//   malform   (--malform=KIND) send one corrupted frame/line from the
//             malformed-input corpus and verify the server answers the
//             expected typed rejection, closes the connection only for
//             framing-fatal errors, and keeps serving other connections.
//
// Usage:
//   dbp_client --socket=PATH [--framing=binary|json]
//              [--trace=FILE | --events=2000 --seed=17
//               --workload=uniform|dyadic|bursts]
//              [--epoch-every=0] [--query-at=T] [--shutdown]
//              [--malform=truncated|bad-crc|oversized|garbage|unknown-verb|
//                         bad-json|non-utf8] [--expect-reject]
//              [--connect-retries=50]
//
// Exit status: 0 = success (with --expect-reject: the expected rejection
// arrived and the server survived), 1 = any failure.
#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "core/binary_io.hpp"
#include "core/crc32.hpp"
#include "core/error.hpp"
#include "engine/engine.hpp"
#include "net/wire_client.hpp"
#include "net/wire_protocol.hpp"
#include "sim/event.hpp"
#include "workload/random_instance.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace dbp;

constexpr const char* kUsage =
    "usage: dbp_client --socket=PATH [--framing=binary|json]\n"
    "                  [--trace=FILE | --events=2000 --seed=17\n"
    "                   --workload=uniform|dyadic|bursts]\n"
    "                  [--epoch-every=0] [--query-at=T] [--shutdown]\n"
    "                  [--malform=truncated|bad-crc|oversized|garbage|\n"
    "                             unknown-verb|bad-json|non-utf8]\n"
    "                  [--expect-reject] [--connect-retries=50]\n";

/// Maps an instance to the engine event stream, chronologically.
std::vector<engine::SessionEvent> stream_from_instance(const Instance& instance) {
  std::vector<engine::SessionEvent> stream;
  stream.reserve(2 * instance.size());
  for (const Event& event : build_event_sequence(instance)) {
    if (event.kind == EventKind::kArrival) {
      stream.push_back(engine::start_event(
          event.item, instance.item(event.item).size, event.time));
    } else {
      stream.push_back(engine::end_event(event.item, event.time));
    }
  }
  return stream;
}

/// Generated workloads mirror the dispatch bench's shape; --workload picks
/// the size distribution / arrival process the wire differential exercises.
std::vector<engine::SessionEvent> make_stream(std::size_t events,
                                              std::uint64_t seed,
                                              const std::string& workload,
                                              const std::string& usage) {
  RandomInstanceConfig config;
  config.item_count = std::max<std::size_t>(1, events / 2);
  config.arrival.rate = 50.0;
  config.duration.max_length = 6.0;
  config.size.min_fraction = 0.05;
  config.size.max_fraction = 0.5;
  if (workload == "uniform") {
    // defaults
  } else if (workload == "dyadic") {
    config.size.kind = SizeModel::Kind::kDyadic;
  } else if (workload == "bursts") {
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 16;
    config.arrival.burst_gap = 0.5;
  } else {
    throw PreconditionError("unknown --workload '" + workload + "'\n" + usage);
  }
  return stream_from_instance(generate_random_instance(config, seed));
}

net::WireClient::Framing parse_framing(const std::string& name,
                                       const std::string& usage) {
  if (name == "binary") return net::WireClient::Framing::kBinary;
  if (name == "json") return net::WireClient::Framing::kJson;
  throw PreconditionError("unknown --framing '" + name + "'\n" + usage);
}

/// Connects with retries so a smoke script can start dbp_serve and
/// dbp_client back to back without racing the bind.
net::WireClient connect(const std::string& socket_path,
                        net::WireClient::Framing framing,
                        std::uint64_t retries) {
  for (std::uint64_t attempt = 0;; ++attempt) {
    try {
      return net::WireClient(socket_path, framing);
    } catch (const IoError&) {
      if (attempt >= retries) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

/// One corpus entry: the bytes to inject, what the server must answer, and
/// whether the rejection is framing-fatal (connection must close after it).
struct MalformCase {
  std::string name;
  std::vector<std::uint8_t> bytes;
  net::WireError expected = net::WireError::kNone;
  bool json_mode = false;
  bool fatal = false;
};

MalformCase build_malform(const std::string& kind,
                          net::WireClient::Framing framing,
                          const std::string& usage) {
  const auto from_string = [](const std::string& text) {
    return std::vector<std::uint8_t>(text.begin(), text.end());
  };
  MalformCase out;
  out.name = kind;
  if (kind == "truncated") {
    // Valid header promising 32 payload bytes; only 8 arrive before EOF.
    const std::vector<std::uint8_t> payload(32, 0);
    ByteWriter frame;
    net::append_frame(frame, payload);
    std::vector<std::uint8_t> bytes = frame.take();
    bytes.resize(net::kFrameHeaderBytes + 8);
    out.bytes = std::move(bytes);
    out.expected = net::WireError::kTruncatedFrame;
    out.fatal = true;
  } else if (kind == "bad-crc") {
    net::WireRequest request;
    request.verb = net::WireVerb::kQuery;
    std::vector<std::uint8_t> bytes = net::encode_request_frame(request);
    bytes.back() ^= 0xFFU;  // flip a payload byte; the header CRC is stale
    out.bytes = std::move(bytes);
    out.expected = net::WireError::kBadCrc;
    out.fatal = true;
  } else if (kind == "oversized") {
    ByteWriter header;
    header.u32(net::kWireMagic);
    header.u32(net::kMaxFramePayloadBytes + 1);
    header.u32(0);
    out.bytes = header.take();
    out.expected = net::WireError::kOversizedFrame;
    out.fatal = true;
  } else if (kind == "garbage") {
    out.bytes = from_string("GARBAGE-NOT-A-FRAME\n");
    out.expected = net::WireError::kBadMagic;
    out.fatal = true;
  } else if (kind == "unknown-verb") {
    // The only framing-dependent entry: exercised in both framings.
    if (framing == net::WireClient::Framing::kJson) {
      out.bytes = from_string("{\"verb\":\"frobnicate\"}\n");
      out.json_mode = true;
    } else {
      const std::vector<std::uint8_t> payload = {0x63};
      ByteWriter frame;
      net::append_frame(frame, payload);
      out.bytes = frame.take();
    }
    out.expected = net::WireError::kUnknownVerb;
  } else if (kind == "bad-json") {
    out.bytes = from_string("{not json\n");
    out.expected = net::WireError::kBadJson;
    out.json_mode = true;
  } else if (kind == "non-utf8") {
    std::vector<std::uint8_t> bytes = from_string("{\"verb\":\"query\",\"t\":");
    bytes.push_back(0xFFU);  // bare continuation byte: invalid UTF-8
    bytes.push_back(0xFEU);
    bytes.push_back(static_cast<std::uint8_t>('}'));
    bytes.push_back(static_cast<std::uint8_t>('\n'));
    out.bytes = std::move(bytes);
    out.expected = net::WireError::kNotUtf8;
    out.json_mode = true;
  } else {
    throw PreconditionError("unknown --malform '" + kind + "'\n" + usage);
  }
  return out;
}

/// Runs one corpus entry end to end. Returns true when the server behaved
/// exactly as specified: typed rejection, correct close behaviour, and a
/// fresh connection still served afterwards.
bool run_malform(const std::string& socket_path, const MalformCase& entry,
                 std::uint64_t retries) {
  const net::WireClient::Framing framing =
      entry.json_mode ? net::WireClient::Framing::kJson
                      : net::WireClient::Framing::kBinary;
  net::WireClient client = connect(socket_path, framing, retries);
  client.send_raw(entry.bytes);
  if (entry.fatal) client.finish_writes();

  net::WireResponse response;
  try {
    response = client.read_response();
  } catch (const std::exception& error) {
    std::cerr << "dbp_client: no rejection for '" << entry.name
              << "': " << error.what() << "\n";
    return false;
  }
  if (response.error != entry.expected) {
    std::cerr << "dbp_client: '" << entry.name << "' expected error '"
              << net::to_string(entry.expected) << "', got '"
              << net::to_string(response.error) << "' (" << response.detail
              << ")\n";
    return false;
  }

  if (entry.fatal) {
    // A framing-fatal rejection must be the connection's last breath.
    try {
      (void)client.read_response();
      std::cerr << "dbp_client: connection survived fatal '" << entry.name
                << "'\n";
      return false;
    } catch (const IoError&) {
      // expected: server closed after the error response
    }
  } else {
    // A recoverable rejection must leave the same stream usable.
    const net::WireResponse after = client.query(0.0);
    if (after.error != net::WireError::kNone) {
      std::cerr << "dbp_client: stream unusable after recoverable '"
                << entry.name << "'\n";
      return false;
    }
  }

  // Either way the *server* must keep serving new connections.
  net::WireClient probe =
      connect(socket_path, net::WireClient::Framing::kBinary, retries);
  const net::WireResponse alive = probe.query(0.0);
  if (alive.error != net::WireError::kNone) {
    std::cerr << "dbp_client: server unhealthy after '" << entry.name << "'\n";
    return false;
  }
  std::cout << "{\"malform\":\"" << entry.name << "\",\"error\":\""
            << net::to_string(response.error) << "\",\"fatal\":"
            << (entry.fatal ? "true" : "false") << ",\"server_alive\":true}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"socket", "framing", "trace", "events", "seed",
                          "workload", "epoch-every", "query-at", "shutdown",
                          "malform", "expect-reject", "connect-retries"},
                         kUsage);
    const std::string socket_path = args.require("socket");
    const net::WireClient::Framing framing =
        parse_framing(args.get("framing", "binary"), kUsage);
    const std::uint64_t retries = args.get_u64("connect-retries", 50);

    if (args.has("malform")) {
      const MalformCase entry =
          build_malform(args.require("malform"), framing, kUsage);
      const bool ok = run_malform(socket_path, entry, retries);
      if (args.has("expect-reject")) return ok ? 0 : 1;
      return ok ? 0 : 1;
    }

    std::vector<engine::SessionEvent> stream;
    if (args.has("trace")) {
      stream = stream_from_instance(read_instance_csv(args.require("trace")));
    } else {
      stream = make_stream(args.get_u64("events", 2000),
                           args.get_u64("seed", 17),
                           args.get("workload", "uniform"), kUsage);
    }

    net::WireClient client = connect(socket_path, framing, retries);
    const std::uint64_t epoch_every = args.get_u64("epoch-every", 0);
    std::uint64_t since_epoch = 0;
    for (const engine::SessionEvent& event : stream) {
      client.submit(event);
      if (epoch_every != 0 && ++since_epoch == epoch_every) {
        client.epoch(event.time_minutes);
        since_epoch = 0;
      }
    }
    const double end_time =
        stream.empty() ? 0.0 : stream.back().time_minutes;
    // Only an epoch-driving client (--epoch-every) cuts the final epoch.
    // When the server's timer (or another client) owns the cadence, the
    // global watermark can already be past this stream's end, and an
    // unconditional epoch here would be rejected as regressing.
    if (epoch_every != 0) client.epoch(end_time);

    const double horizon = args.get_double("query-at", end_time);
    const net::WireResponse answer = client.query(horizon);
    if (answer.error != net::WireError::kNone) {
      std::cerr << "dbp_client: query rejected: " << answer.detail << "\n";
      return 1;
    }
    std::cout << "{\"schema\":\"dbp-client/1\",\"events_sent\":"
              << stream.size() << ",\"query\":" << answer.body << "}\n";

    if (args.has("shutdown")) {
      const net::WireResponse ack = client.shutdown_server();
      if (ack.error != net::WireError::kNone) {
        std::cerr << "dbp_client: shutdown rejected: " << ack.detail << "\n";
        return 1;
      }
      std::cerr << "dbp_client: server acknowledged shutdown\n";
    }

    for (const net::WireResponse& stray : client.async_errors()) {
      std::cerr << "dbp_client: request " << stray.request_seq
                << " rejected: " << net::to_string(stray.error) << " ("
                << stray.detail << ")\n";
    }
    return client.async_errors().empty() ? 0 : 1;
  } catch (const std::exception& error) {
    std::cerr << "dbp_client: " << error.what() << "\n";
    return 1;
  }
}
