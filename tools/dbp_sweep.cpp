// dbp_sweep — sharded fleet driver: batch (algorithm x workload x seed)
// cells through parallel_map under the shared worker budget.
//
// Usage:
//   dbp_sweep [--workloads=uniform,dyadic,bursts] [--algorithms=a,b,c]
//             [--seeds=N] [--seed-base=S] [--items=N] [--opt]
//             [--threads=N] [--policy=sequential|parallel|adaptive]
//             [--out=FILE.json] [--trace-dir=PREFIX]
//
// Nested-parallelism arbitration: the sweep owns the fan-out. Every cell
// takes an exec::WorkerLease before doing any work, so the work inside a
// cell (packer simulation, OPT_total estimation) always runs sequentially
// — whether the cell landed on an OpenMP worker or on the main thread
// because the budget was 1. The alternative (cells racing to spawn their
// own teams) would oversubscribe the budget and make per-cell timings
// meaningless. One consequence worth knowing: with fewer cells than
// workers the surplus workers idle rather than accelerate a single cell.
//
// Observability attribution is per cell: each cell installs its own
// ObsScope with a private MetricsRegistry (and, under --trace-dir, a
// private RunTracer), so counters and traces from concurrent cells never
// interleave. The scope is thread-local, which is what makes this safe
// inside an OpenMP team. --trace-dir=PREFIX writes
// PREFIX.<workload>.<algo>.<seed>.jsonl per cell.
//
// Cell order in the output is the job-list order (workload-major, then
// algorithm, then seed) regardless of the parallel schedule, and every
// per-cell number except wall-clock is bit-identical across budgets.
#include <chrono>
#include <fstream>
#include <iostream>
#include <locale>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "cli.hpp"
#include "core/checked_output.hpp"
#include "core/error.hpp"
#include "core/metrics.hpp"
#include "core/strfmt.hpp"
#include "exec/execution_policy.hpp"
#include "exec/worker_budget.hpp"
#include "obs/obs.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace dbp;

constexpr const char* kUsage =
    "usage: dbp_sweep [--workloads=uniform,dyadic,bursts]\n"
    "                 [--algorithms=a,b,c] [--seeds=N] [--seed-base=S]\n"
    "                 [--items=N] [--opt] [--threads=N]\n"
    "                 [--policy=sequential|parallel|adaptive]\n"
    "                 [--out=FILE.json] [--trace-dir=PREFIX]\n";

// DBP_LINT_ALLOW(wall-clock): per-cell wall time is a reported measurement
// of this driver; it never feeds back into any packing decision.
using Clock = std::chrono::steady_clock;

/// One sweep cell: everything needed to run it is by value, so cells are
/// safe to evaluate concurrently.
struct Cell {
  std::string workload;
  std::string algorithm;
  std::uint64_t seed = 0;
  std::size_t items = 0;
};

/// Everything measured about one cell. All fields except `ms` are
/// deterministic functions of the cell.
struct CellOutcome {
  Cell cell;
  double total_cost = 0.0;
  std::size_t bins_opened = 0;
  std::int64_t max_open_bins = 0;
  double mu = 0.0;
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
  double ms = 0.0;
  // Present only under --opt.
  std::optional<OptTotalResult> opt;
  // Per-cell trace JSONL, exported inside the cell; written to disk by the
  // main thread after the sweep so file creation order is deterministic.
  std::string trace_jsonl;
};

RandomInstanceConfig workload_config(const std::string& name,
                                     std::size_t items) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  if (name == "uniform") {
    config.size.min_fraction = 0.02;
    config.size.max_fraction = 0.5;
  } else if (name == "dyadic") {
    config.size.kind = SizeModel::Kind::kDyadic;
    config.size.min_exponent = 1;
    config.size.max_exponent = 6;
  } else if (name == "bursts") {
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 16;
    config.arrival.burst_gap = 0.5;
    config.size.min_fraction = 0.05;
    config.size.max_fraction = 0.4;
  } else {
    DBP_REQUIRE(false, "unknown workload '" + name +
                           "' (expected uniform, dyadic, or bursts)\n" +
                           std::string(kUsage));
  }
  return config;
}

CellOutcome run_cell(const Cell& cell, bool want_opt,
                     exec::ExecutionPolicy policy, bool want_trace) {
  // The sweep owns the fan-out: everything below is sequential by lease,
  // so per-cell metrics and results do not depend on where the cell ran.
  const exec::WorkerLease lease;

  obs::MetricsRegistry registry;
  std::optional<obs::RunTracer> tracer;
  if (want_trace) tracer.emplace();
  const obs::ObsScope scope(tracer ? &*tracer : nullptr, &registry);

  const auto start = Clock::now();
  const Instance instance =
      generate_random_instance(workload_config(cell.workload, cell.items),
                               cell.seed);
  const InstanceMetrics metrics = compute_metrics(instance);

  PackerOptions options;
  options.known_mu = metrics.mu;
  options.seed = cell.seed;
  const SimulationResult result =
      simulate(instance, cell.algorithm, CostModel{1.0, 1.0, 1e-9}, options);

  CellOutcome outcome;
  outcome.cell = cell;
  outcome.total_cost = result.total_cost;
  outcome.bins_opened = result.bins_opened;
  outcome.max_open_bins = result.max_open_bins;
  outcome.mu = metrics.mu;

  if (want_opt) {
    OptTotalOptions opt_options;
    opt_options.bin_count.exact.node_budget = 5'000;
    // The policy flag is honored, but under the lease effective() == 1, so
    // even kParallel serializes — recorded in evaluate_workers below.
    opt_options.policy = policy;
    outcome.opt =
        estimate_opt_total(instance, CostModel{1.0, 1.0, 1e-9}, opt_options);
  }

  const std::chrono::duration<double, std::milli> elapsed =
      Clock::now() - start;
  outcome.ms = elapsed.count();
  outcome.arrivals = registry.counter_value("packer.arrivals").value_or(0);
  outcome.departures = registry.counter_value("packer.departures").value_or(0);
  if (tracer) {
    std::ostringstream jsonl;
    tracer->export_jsonl(jsonl, /*include_timings=*/false);
    outcome.trace_jsonl = jsonl.str();
  }
  return outcome;
}

std::string json_number(double value) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(17);
  out << value;
  return out.str();
}

void write_json(const std::vector<CellOutcome>& outcomes,
                const std::string& path) {
  std::ostringstream json;
  json << "{\n  \"schema\": \"dbp-sweep/1\",\n";
  json << "  \"workers\": " << exec::WorkerBudget::effective() << ",\n";
  json << "  \"cells\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const CellOutcome& o = outcomes[i];
    json << "    {\"workload\": \"" << o.cell.workload << "\", \"algorithm\": \""
         << o.cell.algorithm << "\", \"seed\": " << o.cell.seed
         << ", \"items\": " << o.cell.items
         << ", \"total_cost\": " << json_number(o.total_cost)
         << ", \"bins_opened\": " << o.bins_opened
         << ", \"max_open_bins\": " << o.max_open_bins
         << ", \"mu\": " << json_number(o.mu)
         << ", \"arrivals\": " << o.arrivals
         << ", \"departures\": " << o.departures
         << ", \"ms\": " << json_number(o.ms);
    if (o.opt) {
      json << ", \"opt_lower\": " << json_number(o.opt->lower_cost)
           << ", \"opt_upper\": " << json_number(o.opt->upper_cost)
           << ", \"opt_exact\": " << (o.opt->exact ? "true" : "false")
           << ", \"evaluate_workers\": " << o.opt->evaluate_workers;
    }
    json << "}" << (i + 1 < outcomes.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::ofstream out = open_output_file(path);
  out << json.str();
  close_output_file(out, path);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"workloads", "algorithms", "seeds", "seed-base",
                          "items", "opt", "threads", "policy", "out",
                          "trace-dir"},
                         kUsage);
    exec::WorkerBudget::set(args.get_thread_count());
    const exec::ExecutionPolicy policy = args.get_execution_policy();
    const std::vector<std::string> workloads =
        args.get_list("workloads", {"uniform", "dyadic", "bursts"});
    const std::vector<std::string> algorithms =
        args.get_list("algorithms", paper_algorithm_names());
    const std::uint64_t seeds = args.get_u64("seeds", 3);
    DBP_REQUIRE(seeds > 0, "--seeds must be positive\n" + std::string(kUsage));
    const std::uint64_t seed_base = args.get_u64("seed-base", 1);
    const std::size_t items = args.get_u64("items", 1'000);
    const bool want_opt = args.has("opt");
    const bool want_trace = args.has("trace-dir");

    // Workload-major, then algorithm, then seed: the output order contract.
    std::vector<Cell> cells;
    for (const std::string& workload : workloads) {
      (void)workload_config(workload, items);  // validate names up front
      for (const std::string& algorithm : algorithms) {
        for (std::uint64_t s = 0; s < seeds; ++s) {
          cells.push_back({workload, algorithm, seed_base + s, items});
        }
      }
    }

    std::cout << strfmt(
        "dbp_sweep: %zu cells (%zu workloads x %zu algorithms x %llu seeds), "
        "%d worker(s), policy=%s\n\n",
        cells.size(), workloads.size(), algorithms.size(),
        static_cast<unsigned long long>(seeds), exec::WorkerBudget::effective(),
        exec::to_string(policy));

    const std::vector<CellOutcome> outcomes =
        parallel_map(cells, [&](const Cell& cell) {
          return run_cell(cell, want_opt, policy, want_trace);
        });

    Table table({"workload", "algorithm", "seed", "total cost", "bins",
                 "peak", "ratio vs OPT", "ms"});
    for (const CellOutcome& o : outcomes) {
      std::string ratio = "-";
      if (o.opt && o.opt->lower_cost > 0.0) {
        ratio = strfmt("[%.3f, %.3f]", o.total_cost / o.opt->upper_cost,
                       o.total_cost / o.opt->lower_cost);
      }
      table.add_row({o.cell.workload, o.cell.algorithm,
                     Table::integer(static_cast<long long>(o.cell.seed)),
                     Table::num(o.total_cost, 3),
                     Table::integer(static_cast<long long>(o.bins_opened)),
                     Table::integer(o.max_open_bins), ratio,
                     Table::num(o.ms, 2)});
    }
    table.print(std::cout);

    if (want_trace) {
      const std::string prefix = args.require("trace-dir");
      for (const CellOutcome& o : outcomes) {
        const std::string path =
            prefix + "." + o.cell.workload + "." + o.cell.algorithm + "." +
            std::to_string(o.cell.seed) + ".jsonl";
        std::ofstream out = open_output_file(path);
        out << o.trace_jsonl;
        close_output_file(out, path);
      }
      std::cout << "\nper-cell traces written to " << prefix << ".*.jsonl\n";
    }
    if (args.has("out")) write_json(outcomes, args.require("out"));
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_sweep: " << error.what() << "\n";
    return 1;
  }
}
