// Shared --trace-out / --metrics plumbing for the CLI tools.
#pragma once

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "cli.hpp"
#include "core/checked_output.hpp"
#include "core/error.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "obs/run_tracer.hpp"

namespace dbp::cli {

/// Owns the tool-wide tracer/registry selected by --trace-out=FILE and
/// --metrics, installs them as the calling thread's observability context for
/// the object's lifetime, and writes both out in finish(). When neither flag
/// is present nothing is allocated and instrumentation stays disabled.
class ObsSession {
 public:
  explicit ObsSession(const Args& args) {
    if (args.has("trace-out")) {
      trace_path_ = args.require("trace-out");
      tracer_ = std::make_unique<obs::RunTracer>();
    }
    if (args.has("metrics")) {
      metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    scope_.emplace(tracer_.get(), metrics_.get());
  }

  /// Writes the trace JSONL (if requested) and prints the metrics summary to
  /// stderr, so neither ever mixes with a tool's stdout tables.
  void finish() {
    scope_.reset();  // detach before export so export itself is not traced
    if (tracer_ != nullptr) {
      std::ofstream out = open_output_file(trace_path_);
      tracer_->export_jsonl(out);
      close_output_file(out, trace_path_);
      std::cerr << "trace: " << tracer_->total_recorded() << " record(s) -> "
                << trace_path_ << "\n";
    }
    if (metrics_ != nullptr) {
      std::cerr << "-- metrics --\n";
      metrics_->write_text(std::cerr);
    }
  }

  [[nodiscard]] obs::RunTracer* tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] obs::MetricsRegistry* metrics() noexcept {
    return metrics_.get();
  }

 private:
  std::string trace_path_;
  std::unique_ptr<obs::RunTracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::optional<obs::ObsScope> scope_;
};

}  // namespace dbp::cli
