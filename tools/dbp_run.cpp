// dbp_run — run packing algorithms over a CSV trace and report costs and
// certified competitive ratios.
//
// Usage:
//   dbp_run --trace=trace.csv [--algorithms=first-fit,best-fit,...]
//           [--capacity=W] [--rate=C] [--no-opt] [--threads=N]
//           [--timeline=PREFIX]
//
// --timeline=PREFIX additionally writes PREFIX.<algo>.bins.csv (n(t)
// staircase) and PREFIX.<algo>.assign.csv for plotting.
#include <fstream>
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/svg.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "analysis/timeline.hpp"
#include "cli.hpp"
#include "core/checked_output.hpp"
#include "core/strfmt.hpp"
#include "exec/worker_budget.hpp"
#include "obs_cli.hpp"
#include "workload/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dbp_run --trace=FILE [--algorithms=a,b,c] [--capacity=W]\n"
    "               [--rate=C] [--no-opt] [--threads=N] [--timeline=PREFIX]\n"
    "               [--svg=PREFIX] [--trace-out=FILE] [--metrics]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(
        argc, argv,
        {"trace", "algorithms", "capacity", "rate", "no-opt", "threads",
         "timeline", "svg", "trace-out", "metrics"},
        kUsage);
    exec::WorkerBudget::set(args.get_thread_count());
    cli::ObsSession obs_session(args);
    const Instance instance = read_instance_csv(args.require("trace"));
    DBP_REQUIRE(!instance.empty(), "trace is empty");
    const CostModel model{args.get_double("capacity", 1.0),
                          args.get_double("rate", 1.0), 1e-9};
    std::vector<std::string> algorithms =
        args.get_list("algorithms", all_algorithm_names());

    const InstanceMetrics metrics = compute_metrics(instance);
    std::cout << strfmt(
        "%zu items, mu = %.3f, span = %.3f, demand = %.3f | %d worker(s)\n",
        metrics.item_count, metrics.mu, metrics.span, metrics.total_demand,
        parallel_worker_count());

    if (args.has("no-opt")) {
      Table table({"algorithm", "total cost", "bins opened", "peak open"});
      PackerOptions options;
      options.known_mu = metrics.mu;
      for (const std::string& name : algorithms) {
        const SimulationResult result = simulate(instance, name, model, options);
        table.add_row({result.algorithm, Table::num(result.total_cost, 3),
                       Table::integer((long long)result.bins_opened),
                       Table::integer(result.max_open_bins)});
      }
      table.print(std::cout);
    } else {
      const InstanceEvaluation evaluation =
          evaluate_algorithms(instance, algorithms, model);
      std::cout << strfmt("OPT_total in [%.3f, %.3f]%s\n\n",
                          evaluation.opt.lower_cost, evaluation.opt.upper_cost,
                          evaluation.opt.exact ? " (exact)" : "");
      Table table({"algorithm", "total cost", "ratio vs OPT", "bins opened",
                   "peak open"});
      for (const AlgorithmEvaluation& eval : evaluation.algorithms) {
        table.add_row({eval.display_name, Table::num(eval.total_cost, 3),
                       strfmt("[%.3f, %.3f]", eval.ratio.lower, eval.ratio.upper),
                       Table::integer((long long)eval.bins_opened),
                       Table::integer(eval.max_open_bins)});
      }
      table.print(std::cout);
    }

    if (args.has("timeline")) {
      const std::string prefix = args.require("timeline");
      PackerOptions options;
      options.known_mu = metrics.mu;
      for (const std::string& name : algorithms) {
        const SimulationResult result = simulate(instance, name, model, options);
        {
          const std::string path = prefix + "." + name + ".bins.csv";
          std::ofstream out = open_output_file(path);
          write_step_function_csv(result.open_bins_over_time, out);
          close_output_file(out, path);
        }
        {
          const std::string path = prefix + "." + name + ".assign.csv";
          std::ofstream out = open_output_file(path);
          write_assignment_csv(instance, result, out);
          close_output_file(out, path);
        }
      }
      std::cout << "\ntimelines written to " << prefix << ".<algo>.*.csv\n";
    }

    if (args.has("svg")) {
      const std::string prefix = args.require("svg");
      PackerOptions options;
      options.known_mu = metrics.mu;
      std::vector<SimulationResult> runs;
      runs.reserve(algorithms.size());
      for (const std::string& name : algorithms) {
        runs.push_back(simulate(instance, name, model, options));
        SvgOptions svg_options;
        svg_options.title = runs.back().algorithm + " — bin layout";
        const std::string path = prefix + "." + name + ".gantt.svg";
        std::ofstream out = open_output_file(path);
        out << render_bin_gantt_svg(instance, runs.back(), svg_options);
        close_output_file(out, path);
      }
      std::vector<TimelineSeries> series;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        series.push_back({runs[i].algorithm, &runs[i].open_bins_over_time});
      }
      SvgOptions svg_options;
      svg_options.title = "open bins over time (the MinTotal cost integrand)";
      const std::string path = prefix + ".open_bins.svg";
      std::ofstream out = open_output_file(path);
      out << render_open_bins_svg(series, svg_options);
      close_output_file(out, path);
      std::cout << "SVGs written to " << prefix << ".*\n";
    }
    obs_session.finish();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_run: " << error.what() << "\n";
    return 1;
  }
}
