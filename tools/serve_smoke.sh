#!/usr/bin/env bash
# Serve-path smoke (docs/wire_protocol.md): boots dbp_serve, replays
# generated workloads over both framings, runs the malformed-frame corpus
# (every entry must produce a typed rejection that leaves the server
# serving), stops the server over the wire, and validates the exported
# observability trace. Exits nonzero if any client run fails, any corpus
# entry kills the server, the server exits nonzero, or the trace does not
# validate.
#
# Usage: serve_smoke.sh BUILD_DIR WORK_DIR [PYTHON]
set -euo pipefail

build_dir=$1
work_dir=$2
python=${3:-python3}
tools_dir="$(cd "$(dirname "$0")" && pwd)"

rm -rf "$work_dir"
mkdir -p "$work_dir"
# AF_UNIX paths are capped around 100 bytes and ctest build trees nest
# deep, so the socket lives in its own short-lived temp directory.
sock_dir=$(mktemp -d "${TMPDIR:-/tmp}/dbp_serve_smoke.XXXXXX")
serve_pid=""
cleanup() {
  if [ -n "$serve_pid" ]; then kill "$serve_pid" 2>/dev/null || true; fi
  rm -rf "$sock_dir"
}
trap cleanup EXIT
sock="$sock_dir/wire.sock"

"$build_dir/tools/dbp_serve" --socket="$sock" --shards=2 \
    --epoch-cadence-ms=20 --trace-out="$work_dir/serve.trace.jsonl" \
    --metrics > "$work_dir/serve.json" &
serve_pid=$!

client() { "$build_dir/tools/dbp_client" --socket="$sock" "$@"; }

# Workload replays over both framings. The server's timer provides the
# epoch cadence here — clients must not send explicit epochs alongside a
# ticking timer, since the timer can cut an epoch at the watermark first
# and turn the client's (now regressing) epoch into a typed rejection.
# Each replay restarts logical time near 0, so events of the later
# replays land behind the engine's per-shard clock and are dropped and
# counted as time-order violations — the wire passes them through
# untouched by design (docs/wire_protocol.md, "Semantic validation").
client --framing=binary --events=2000 --workload=bursts \
    > "$work_dir/client.binary.json"
client --framing=json --events=500 --workload=dyadic \
    > "$work_dir/client.json.json"

# Corruption corpus: one connection per malformation kind. dbp_client
# exits nonzero unless the rejection is the expected typed error AND a
# fresh probe connection still gets served afterwards.
: > "$work_dir/corpus.jsonl"
for kind in truncated bad-crc oversized garbage unknown-verb bad-json non-utf8; do
  client --malform="$kind" >> "$work_dir/corpus.jsonl"
done
client --framing=json --malform=unknown-verb >> "$work_dir/corpus.jsonl"
[ "$(grep -c '"server_alive":true' "$work_dir/corpus.jsonl")" -eq 8 ]

# Final replay, then stop the server over the wire and collect its exit.
client --framing=binary --events=200 --workload=uniform --shutdown \
    > "$work_dir/client.final.json"
wait "$serve_pid"

grep -q '"schema": "dbp-serve/1"' "$work_dir/serve.json"
"$python" "$tools_dir/validate_trace.py" "$work_dir/serve.trace.jsonl"
echo "serve smoke ok"
