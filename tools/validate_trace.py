#!/usr/bin/env python3
"""Validate a dbp trace JSONL file (schema "dbp-trace/1").

Usage: validate_trace.py TRACE.jsonl [TRACE2.jsonl ...]

Checks, per file:
  * the first line is a "trace_meta" header with the expected schema and
    consistent records/dropped/capacity bookkeeping;
  * every subsequent line is a standalone JSON object with a known "kind",
    strictly increasing "seq", and correctly typed optional fields;
  * the record count matches the header.

Exit status 0 when every file validates; 1 otherwise (first error per file
is printed). stdlib only — CI and the ctest smoke run it with a bare
python3.
"""

import json
import sys

SCHEMA = "dbp-trace/1"

KNOWN_KINDS = {
    "run_begin",
    "run_end",
    "arrival",
    "departure",
    "bin_open",
    "bin_close",
    "fault_crash",
    "fault_anomaly",
    "redispatch",
    "oracle_hit",
    "oracle_miss",
    "opt_phase",
    "dispatch_reject",
    "session_shed",
    "server_fail",
    "epoch_mark",
    "shard_snapshot",
}

# field name -> required type(s). "seq", "kind" and "t" are mandatory on
# every record; the rest are kind-specific and merely type-checked.
OPTIONAL_FIELDS = {
    "item": int,
    "bin": int,
    "size": (int, float),
    "count": int,
    "ms": (int, float),
    "shard": int,  # engine shard attribution (ObsScope 3-arg form)
    "label": str,
}


class TraceError(Exception):
    pass


def validate_header(line, lineno):
    header = json.loads(line)
    if header.get("kind") != "trace_meta":
        raise TraceError(f"line {lineno}: first line must be a trace_meta header")
    if header.get("schema") != SCHEMA:
        raise TraceError(
            f"line {lineno}: schema {header.get('schema')!r}, expected {SCHEMA!r}")
    for field in ("records", "dropped", "capacity"):
        value = header.get(field)
        if not isinstance(value, int) or value < 0:
            raise TraceError(
                f"line {lineno}: header field {field!r} must be a non-negative "
                f"integer, got {value!r}")
    if header["records"] > header["capacity"]:
        raise TraceError(
            f"line {lineno}: records {header['records']} exceeds capacity "
            f"{header['capacity']}")
    return header


def validate_record(line, lineno, prev_seq):
    record = json.loads(line)
    kind = record.get("kind")
    if kind not in KNOWN_KINDS:
        raise TraceError(f"line {lineno}: unknown kind {kind!r}")
    seq = record.get("seq")
    if not isinstance(seq, int) or seq < 0:
        raise TraceError(f"line {lineno}: missing or invalid seq {seq!r}")
    if prev_seq is not None and seq <= prev_seq:
        raise TraceError(
            f"line {lineno}: seq {seq} not strictly increasing (previous "
            f"{prev_seq})")
    if not isinstance(record.get("t"), (int, float)):
        raise TraceError(f"line {lineno}: missing or invalid time {record.get('t')!r}")
    for field, expected in OPTIONAL_FIELDS.items():
        if field in record and not isinstance(record[field], expected):
            raise TraceError(
                f"line {lineno}: field {field!r} has wrong type "
                f"{type(record[field]).__name__}")
    unknown = set(record) - {"seq", "kind", "t"} - set(OPTIONAL_FIELDS)
    if unknown:
        raise TraceError(f"line {lineno}: unknown fields {sorted(unknown)}")
    return seq


def validate_file(path):
    with open(path, encoding="utf-8") as stream:
        lines = [line for line in (raw.rstrip("\n") for raw in stream) if line]
    if not lines:
        raise TraceError("empty trace file")
    header = validate_header(lines[0], 1)
    prev_seq = None
    for lineno, line in enumerate(lines[1:], start=2):
        prev_seq = validate_record(line, lineno, prev_seq)
    record_count = len(lines) - 1
    if record_count != header["records"]:
        raise TraceError(
            f"header says {header['records']} records, file has {record_count}")
    return record_count


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    status = 0
    for path in argv[1:]:
        try:
            count = validate_file(path)
            print(f"{path}: OK ({count} records)")
        except (TraceError, OSError, json.JSONDecodeError) as error:
            print(f"{path}: INVALID: {error}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
