#!/usr/bin/env python3
"""Determinism lint: statically bans nondeterminism sources in src/.

The library's contract is bit-identical output for identical inputs
(across runs, thread counts, and trace on/off — see docs/observability.md
and tests/opt_total_differential_test.cpp). This linter enforces the three
patterns that historically break that contract:

  rng              rand()/srand()/std::random_device — all randomness must
                   flow through the seeded generators in src/workload/
                   (workload/rng.hpp), so the whole pipeline replays under
                   a fixed seed. Allowed inside src/workload/.

  wall-clock       std::time / time(...) / clock() / gettimeofday /
                   std::chrono::{system,steady,high_resolution}_clock reads.
                   Wall-clock belongs to the observability layer (src/obs/),
                   which is required to be result-neutral; a clock read
                   anywhere else can leak timing into results. Allowed
                   inside src/obs/.

  unordered-container
                   std::unordered_map / std::unordered_set. Iteration order
                   is implementation-defined, so any traversal that feeds
                   cost accounting or serialized output is a portability
                   hazard. Every use must either be replaced with an
                   ordered/dense structure or carry an allowlist marker
                   (see below) justifying why its use is order-independent.
                   #include lines are exempt.

Allowlist syntax — on the offending line, or anywhere in the contiguous
block of // comments directly above it:

    // DBP_LINT_ALLOW(<rule>): <justification>

The justification is mandatory; an empty one is a lint error. Example:

    // DBP_LINT_ALLOW(unordered-container): point lookups by dense id only;
    // never iterated.
    std::unordered_map<ItemId, Time> arrival_of_;

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

ALLOW_MARKER = re.compile(r"DBP_LINT_ALLOW\((?P<rule>[a-z-]+)\):\s*(?P<why>\S.*)?")

# rule name -> (pattern, path predicate saying "exempt", human explanation)
RULES = {
    "rng": (
        re.compile(r"(?<![\w:])(?:std::)?s?rand\s*\(|std::random_device"),
        lambda rel: rel.parts[:2] == ("src", "workload"),
        "randomness outside src/workload/ (must flow through seeded Rng)",
    ),
    "wall-clock": (
        re.compile(
            r"std::chrono::(?:system|steady|high_resolution)_clock"
            r"|(?<![\w:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0|&)"
            r"|std::clock\b"  # bare clock() is too ambiguous (domain clocks)
            r"|gettimeofday|localtime|gmtime"
        ),
        lambda rel: rel.parts[:2] == ("src", "obs"),
        "wall-clock read outside src/obs/ (timing may leak into results)",
    ),
    "unordered-container": (
        re.compile(r"std::unordered_(?:map|set|multimap|multiset)"),
        lambda rel: False,
        "unordered container (iteration order is implementation-defined)",
    ),
}

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".hh"}


def is_comment_line(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def allow_rules_for(lines: list[str], idx: int) -> dict[str, str]:
    """Allowlist markers that apply to lines[idx]: same line, or the
    contiguous comment block directly above. Returns rule -> justification
    ('' when the justification is missing)."""
    allowed: dict[str, str] = {}
    scan = [lines[idx]]
    j = idx - 1
    while j >= 0 and is_comment_line(lines[j]):
        scan.append(lines[j])
        j -= 1
    for line in scan:
        for match in ALLOW_MARKER.finditer(line):
            rule = match.group("rule")
            why = (match.group("why") or "").strip()
            # A continuation comment line directly below the marker line
            # extends the justification; presence is what we enforce.
            allowed[rule] = allowed.get(rule) or why
    return allowed


def lint_file(path: Path, root: Path) -> list[str]:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(*path.parts[-2:])
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [f"{path}: unreadable: {err}"]
    lines = text.splitlines()
    findings: list[str] = []
    for idx, line in enumerate(lines):
        if line.lstrip().startswith("#include"):
            continue
        code = line.split("//", 1)[0] if "DBP_LINT_ALLOW" not in line else line
        for rule, (pattern, exempt, explanation) in RULES.items():
            if not pattern.search(code):
                continue
            if exempt(rel):
                continue
            if is_comment_line(line) and rule != "unordered-container":
                continue  # prose mentioning a banned name is not a use
            allowed = allow_rules_for(lines, idx)
            if rule in allowed:
                if not allowed[rule]:
                    findings.append(
                        f"{path}:{idx + 1}: DBP_LINT_ALLOW({rule}) needs a "
                        "justification after the colon"
                    )
                continue
            findings.append(f"{path}:{idx + 1}: [{rule}] {explanation}\n    {line.strip()}")
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root for rule path exemptions "
                             "(default: the linter's parent directory)")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    files: list[Path] = []
    for raw in (args.paths or ["src"]):
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(p for p in path.rglob("*") if p.suffix in SOURCE_SUFFIXES))
        elif path.is_file():
            files.append(path)
        else:
            print(f"lint_determinism: no such path: {path}", file=sys.stderr)
            return 2

    findings: list[str] = []
    for path in files:
        findings.extend(lint_file(path, root))
    for finding in findings:
        print(finding)
    if findings:
        print(f"\nlint_determinism: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: clean ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
