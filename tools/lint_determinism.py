#!/usr/bin/env python3
"""Determinism lint: statically bans nondeterminism sources in src/.

The library's contract is bit-identical output for identical inputs
(across runs, thread counts, and trace on/off — see docs/observability.md
and tests/opt_total_differential_test.cpp). This linter enforces the three
patterns that historically break that contract:

  rng              rand()/srand()/std::random_device — all randomness must
                   flow through the seeded generators in src/workload/
                   (workload/rng.hpp), so the whole pipeline replays under
                   a fixed seed. Allowed inside src/workload/.

  wall-clock       std::time / time(...) / clock() / gettimeofday /
                   std::chrono::{system,steady,high_resolution}_clock reads.
                   Wall-clock belongs to the observability layer (src/obs/),
                   which is required to be result-neutral; a clock read
                   anywhere else can leak timing into results. Allowed
                   inside src/obs/. (dbp_symcheck.py enforces the same
                   policy against the compiled objects, which also catches
                   clock reads inherited from headers.)

  unordered-container
                   std::unordered_map / std::unordered_set. Iteration order
                   is implementation-defined, so any traversal that feeds
                   cost accounting or serialized output is a portability
                   hazard. Every use must either be replaced with an
                   ordered/dense structure or carry an allowlist marker
                   (see below) justifying why its use is order-independent.
                   #include lines are exempt.

Reporting, exit codes, and the justification-mandatory DBP_LINT_ALLOW
allowlist are shared with dbp_layercheck.py and dbp_symcheck.py through
dbp_lint_common.py — on the offending line, or anywhere in the contiguous
block of // comments directly above it:

    // DBP_LINT_ALLOW(<rule>): <justification>

The justification is mandatory; an empty one is a lint error. Example:

    // DBP_LINT_ALLOW(unordered-container): point lookups by dense id only;
    // never iterated.
    std::unordered_map<ItemId, Time> arrival_of_;

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

import dbp_lint_common as common

TOOL = "lint_determinism"

# rule name -> (pattern, path predicate saying "exempt", human explanation)
RULES = {
    "rng": (
        re.compile(r"(?<![\w:])(?:std::)?s?rand\s*\(|std::random_device"),
        lambda rel: rel.parts[:2] == ("src", "workload"),
        "randomness outside src/workload/ (must flow through seeded Rng)",
    ),
    "wall-clock": (
        re.compile(
            r"std::chrono::(?:system|steady|high_resolution)_clock"
            r"|(?<![\w:])(?:std::)?time\s*\(\s*(?:nullptr|NULL|0|&)"
            r"|std::clock\b"  # bare clock() is too ambiguous (domain clocks)
            r"|gettimeofday|localtime|gmtime"
        ),
        lambda rel: rel.parts[:2] == ("src", "obs"),
        "wall-clock read outside src/obs/ (timing may leak into results)",
    ),
    "unordered-container": (
        re.compile(r"std::unordered_(?:map|set|multimap|multiset)"),
        lambda rel: False,
        "unordered container (iteration order is implementation-defined)",
    ),
}


def lint_file(path: Path, root: Path) -> list[common.Finding]:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(*path.parts[-2:])
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as err:
        return [common.Finding(str(path), 1, "io", f"unreadable: {err}")]
    lines = text.splitlines()
    findings: list[common.Finding] = []
    for idx, line in enumerate(lines):
        if line.lstrip().startswith("#include"):
            continue
        code = line.split("//", 1)[0] if "DBP_LINT_ALLOW" not in line else line
        for rule, (pattern, exempt, explanation) in RULES.items():
            if not pattern.search(code):
                continue
            if exempt(rel):
                continue
            if common.is_comment_line(line) and rule != "unordered-container":
                continue  # prose mentioning a banned name is not a use
            allowed = common.allow_rules_for(lines, idx)
            if rule in allowed:
                if not allowed[rule]:
                    findings.append(
                        common.missing_justification(str(path), idx + 1, rule))
                continue
            findings.append(common.Finding(str(path), idx + 1, rule,
                                           explanation, line.strip()))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--root", default=None,
                        help="repo root for rule path exemptions "
                             "(default: the linter's parent directory)")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    files, missing = common.iter_source_files(args.paths or ["src"])
    if missing:
        return common.usage_error(TOOL, f"no such path: {', '.join(missing)}")

    findings: list[common.Finding] = []
    for path in files:
        findings.extend(lint_file(path, root))
    return common.report(TOOL, findings, len(files))


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
