// dbp_chaos — chaos harness: sweep crash rates x algorithms over one
// workload and report exact cost inflation under fault injection.
//
// Usage:
//   dbp_chaos [--algo=NAME | --algorithms=a,b,c] [--crash-rate=R |
//             --crash-rates=r1,r2,...] [--anomaly-rate=R] [--target=POLICY]
//             [--items=N] [--seed=S] [--trace=FILE]
//
// Every cell runs the fault-free baseline and the faulted run with the
// same seeded FaultPlan, so the printed inflation ratio is exact and two
// invocations with the same arguments produce identical output.
#include <iostream>

#include "analysis/table.hpp"
#include "cli.hpp"
#include "core/strfmt.hpp"
#include "exec/worker_budget.hpp"
#include "obs_cli.hpp"
#include "sim/fault_sim.hpp"
#include "workload/fault_schedule.hpp"
#include "workload/random_instance.hpp"
#include "workload/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dbp_chaos [--algo=NAME | --algorithms=a,b,c]\n"
    "                 [--crash-rate=R | --crash-rates=r1,r2,...]\n"
    "                 [--anomaly-rate=R] [--target=fullest|emptiest|oldest|"
    "newest|random]\n"
    "                 [--items=N] [--seed=S] [--trace=FILE] [--threads=N]\n"
    "                 [--trace-out=FILE] [--metrics]\n";

using namespace dbp;

CrashTarget parse_target(const std::string& name) {
  if (name == "fullest") return CrashTarget::kFullest;
  if (name == "emptiest") return CrashTarget::kEmptiest;
  if (name == "oldest") return CrashTarget::kOldest;
  if (name == "newest") return CrashTarget::kNewest;
  if (name == "random") return CrashTarget::kRandom;
  DBP_REQUIRE(false, "unknown crash target: " + name + "\n" + kUsage);
  return CrashTarget::kFullest;  // unreachable
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"algo", "algorithms", "crash-rate", "crash-rates",
                          "anomaly-rate", "target", "items", "seed", "trace",
                          "threads", "trace-out", "metrics"},
                         kUsage);
    // Pin the worker budget before any work: chaos runs are compared across
    // machines, so the budget must come from the flag, not the core count.
    exec::WorkerBudget::set(args.get_thread_count());
    cli::ObsSession obs_session(args);
    const std::uint64_t seed = args.get_u64("seed", 1);
    const CrashTarget target = parse_target(args.get("target", "fullest"));
    const double anomaly_rate = args.get_double("anomaly-rate", 0.0);

    std::vector<std::string> algorithms =
        args.get_list("algorithms", paper_algorithm_names());
    if (args.has("algo")) algorithms = {args.require("algo")};

    std::vector<std::string> rate_fields =
        args.get_list("crash-rates", {"0.01", "0.02", "0.05", "0.1"});
    if (args.has("crash-rate")) rate_fields = {args.require("crash-rate")};
    std::vector<double> crash_rates;
    for (const std::string& field : rate_fields) {
      crash_rates.push_back(std::stod(field));
    }

    Instance instance;
    if (args.has("trace")) {
      instance = read_instance_csv(args.require("trace"));
    } else {
      RandomInstanceConfig config;
      config.item_count = args.get_u64("items", 500);
      config.arrival.rate = 8.0;
      config.duration.min_length = 0.5;
      config.duration.max_length = 4.0;
      instance = generate_random_instance(config, seed);
    }
    DBP_REQUIRE(!instance.empty(), "chaos workload is empty");
    const CostModel model{1.0, 1.0, 1e-9};
    const TimeInterval period = instance.packing_period();

    std::cout << strfmt(
        "dbp_chaos: %zu items over [%.3f, %.3f], target=%s, anomaly-rate=%g, "
        "seed=%llu\n\n",
        instance.size(), period.begin, period.end, to_string(target),
        anomaly_rate, static_cast<unsigned long long>(seed));

    Table table({"algorithm", "crash rate", "crashes", "redispatched",
                 "anomalies dropped", "baseline cost", "faulted cost",
                 "inflation"});
    for (std::size_t r = 0; r < crash_rates.size(); ++r) {
      // One plan per crash rate, shared by every algorithm: crash targets
      // are selection policies, so the same schedule is comparable across
      // algorithms.
      const FaultPlan plan = make_poisson_fault_plan(
          period, crash_rates[r], anomaly_rate, target, seed + r);
      for (const std::string& algorithm : algorithms) {
        const FaultSimulationResult cell =
            simulate_with_faults(instance, algorithm, model, plan);
        table.add_row(
            {cell.faulted.algorithm, Table::num(crash_rates[r], 3),
             strfmt("%zu/%zu", cell.stats.crashes_landed,
                    cell.stats.crashes_requested),
             Table::integer(
                 static_cast<long long>(cell.stats.sessions_redispatched)),
             strfmt("%llu/%zu",
                    static_cast<unsigned long long>(cell.stats.total_dropped()),
                    cell.stats.anomalies_injected),
             Table::num(cell.baseline.total_cost, 3),
             Table::num(cell.faulted.total_cost, 3),
             Table::num(cell.cost_inflation_ratio, 4)});
      }
    }
    table.print(std::cout);
    obs_session.finish();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_chaos: " << error.what() << "\n";
    return 1;
  }
}
