// dbp_decompose — run the Section 4.3 First Fit proof machinery on a trace.
//
// Usage:
//   dbp_decompose --trace=trace.csv [--capacity=W] [--small-k=K]
//                 [--sub-periods=FILE]
//
// Prints the decomposition summary and the machine-checked invariant
// report; --sub-periods writes every I_{i,j} with its reference data as CSV.
#include <fstream>
#include <iostream>

#include "analysis/ff_decomposition.hpp"
#include "cli.hpp"
#include "core/checked_output.hpp"
#include "core/strfmt.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dbp_decompose --trace=FILE [--capacity=W] [--small-k=K]\n"
    "                     [--sub-periods=FILE]\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"trace", "capacity", "small-k", "sub-periods"}, kUsage);
    const Instance instance = read_instance_csv(args.require("trace"));
    DBP_REQUIRE(!instance.empty(), "trace is empty");
    const CostModel model{args.get_double("capacity", 1.0), 1.0, 1e-9};

    const SimulationResult result = simulate(instance, "first-fit", model);
    const FFDecomposition d = decompose_first_fit(instance, result);
    std::optional<double> small_k;
    if (args.has("small-k")) small_k = args.get_double("small-k", 0.0);
    const DecompositionReport report =
        verify_ff_decomposition(instance, result, d, model, small_k);

    std::cout << strfmt(
        "first-fit trace: %zu bins, Delta = %.4f, mu = %.4f\n"
        "decomposition:   %zu sub-periods | joint %zu | single %zu | "
        "non-intersecting %zu\n"
        "identities:      FF_total %.4f = sum(I^L) %.4f + span %.4f\n"
        "inequality (10): FF_total %.4f <= bound %.4f (tightness %.3f)\n",
        result.bins_opened, d.delta, d.mu, d.sub_periods.size(),
        d.joint_period_count, d.single_period_count, d.non_intersecting_count,
        d.ff_total, d.sum_left_lengths, d.span, d.ff_total, d.cost_bound(1.0),
        d.ff_total / d.cost_bound(1.0));

    std::cout << strfmt(
        "invariants: features %s | lemma1 %s | lemma2 %s | lemma3 %s | "
        "lemma4 %s | lemma5 %s | demand %s | cost-bound %s\n",
        report.features_ok ? "ok" : "FAIL", report.lemma1_ok ? "ok" : "FAIL",
        report.lemma2_ok ? "ok" : "FAIL", report.lemma3_ok ? "ok" : "FAIL",
        report.lemma4_ok ? "ok" : "FAIL", report.lemma5_ok ? "ok" : "FAIL",
        report.demand_ok ? "ok" : "FAIL", report.cost_bound_ok ? "ok" : "FAIL");
    for (const std::string& violation : report.violations) {
      std::cout << "  violation: " << violation << "\n";
    }

    if (args.has("sub-periods")) {
      const std::string path = args.require("sub-periods");
      std::ofstream out = open_output_file(path);
      out << "bin,index,begin,end,reference_point,reference_bin,intersecting,"
             "partner\n";
      for (const SubPeriod& sub : d.sub_periods) {
        out << strfmt("%llu,%zu,%.17g,%.17g,%.17g,%llu,%d,%s\n",
                      static_cast<unsigned long long>(sub.bin), sub.index,
                      sub.interval.begin, sub.interval.end, sub.reference_point,
                      static_cast<unsigned long long>(sub.reference_bin),
                      sub.intersecting ? 1 : 0,
                      sub.partner ? strfmt("%zu", *sub.partner).c_str() : "-");
      }
      close_output_file(out, path);
      std::cout << "sub-periods written to " << path << "\n";
    }
    return report.all_ok() ? 0 : 2;
  } catch (const std::exception& error) {
    std::cerr << "dbp_decompose: " << error.what() << "\n";
    return 1;
  }
}
