// dbp_gen — generate MinTotal DBP workload traces as CSV.
//
// Usage:
//   dbp_gen --kind=random           --out=trace.csv [--items=N] [--mu=M]
//           [--rate=R] [--min-size=S] [--max-size=S] [--seed=K]
//   dbp_gen --kind=anyfit-adversary --out=trace.csv [--k=K] [--mu=M]
//   dbp_gen --kind=bestfit-adversary --out=trace.csv [--k=K] [--mu=M]
//   dbp_gen --kind=cloud-gaming     --out=trace.csv [--hours=H] [--peak=P]
//           [--seed=K]
#include <iostream>

#include "cli.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/adversary_bestfit.hpp"
#include "workload/cloud_gaming.hpp"
#include "workload/random_instance.hpp"
#include "workload/trace_io.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dbp_gen --kind=random|anyfit-adversary|bestfit-adversary|"
    "cloud-gaming --out=FILE\n"
    "  common:            --seed=N (default 1)\n"
    "  random:            --items=N --mu=M --rate=R --min-size=F --max-size=F\n"
    "  anyfit-adversary:  --k=K --mu=M\n"
    "  bestfit-adversary: --k=K --mu=M (mu > 1)\n"
    "  cloud-gaming:      --hours=H --peak=ARRIVALS_PER_MIN\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"kind", "out", "seed", "items", "mu", "rate",
                          "min-size", "max-size", "k", "hours", "peak"},
                         kUsage);
    const std::string kind = args.require("kind");
    const std::string out = args.require("out");
    const std::uint64_t seed = args.get_u64("seed", 1);

    Instance instance;
    if (kind == "random") {
      RandomInstanceConfig config;
      config.item_count = args.get_u64("items", 1000);
      config.arrival.rate = args.get_double("rate", 10.0);
      config.duration.max_length = args.get_double("mu", 4.0);
      config.size.min_fraction = args.get_double("min-size", 0.05);
      config.size.max_fraction = args.get_double("max-size", 0.5);
      instance = generate_random_instance(config, seed);
    } else if (kind == "anyfit-adversary") {
      AnyFitAdversaryConfig config;
      config.k = args.get_u64("k", 10);
      config.mu = args.get_double("mu", 4.0);
      instance = build_anyfit_adversary(config).instance;
    } else if (kind == "bestfit-adversary") {
      BestFitAdversaryConfig config;
      config.k = args.get_u64("k", 6);
      config.mu = args.get_double("mu", 4.0);
      instance = build_bestfit_adversary(config).instance;
    } else if (kind == "cloud-gaming") {
      CloudGamingConfig config;
      config.horizon_hours = args.get_double("hours", 24.0);
      config.peak_arrivals_per_minute = args.get_double("peak", 2.0);
      instance = generate_cloud_gaming_trace(config, seed).instance;
    } else {
      DBP_REQUIRE(false, std::string("unknown kind '") + kind + "'\n" + kUsage);
    }

    write_instance_csv(instance, out);
    std::cout << "wrote " << instance.size() << " items to " << out << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_gen: " << error.what() << "\n";
    return 1;
  }
}
