// dbp_serve — Unix-socket wire front-end for the sharded dispatch engine.
//
// Binds net::WireServer on --socket and serves until a client sends the
// `shutdown` verb or the process receives SIGINT/SIGTERM; both paths run
// the same graceful stop (drain rings, join connections, unlink socket).
// On exit a summary JSON goes to stdout: serving counters plus the final
// engine view (events applied, active sessions, streaming OPT bounds).
//
// Usage:
//   dbp_serve --socket=PATH [--shards=1] [--ring=4096]
//             [--algorithm=first-fit] [--capacity=1.0] [--price-per-hour=6.0]
//             [--epoch-cadence-ms=0] [--threads=N]
//             [--trace-out=FILE] [--metrics]
//
// --epoch-cadence-ms=N starts a timer thread cutting an epoch every N ms at
// the event-time high-water mark (0 = epochs only on explicit request).
// --trace-out/--metrics hand the tracer/registry to every serving thread,
// so the exported trace matches a direct driver's (docs/wire_protocol.md).
#include <csignal>
#include <iostream>
#include <locale>
#include <sstream>
#include <string>

#include "cli.hpp"
#include "core/checked_output.hpp"
#include "core/error.hpp"
#include "engine/engine.hpp"
#include "exec/worker_budget.hpp"
#include "net/wire_server.hpp"
#include "obs_cli.hpp"

namespace {

using namespace dbp;

constexpr const char* kUsage =
    "usage: dbp_serve --socket=PATH [--shards=1] [--ring=4096]\n"
    "                 [--algorithm=first-fit] [--capacity=1.0]\n"
    "                 [--price-per-hour=6.0] [--epoch-cadence-ms=0]\n"
    "                 [--threads=N] [--trace-out=FILE] [--metrics]\n";

volatile std::sig_atomic_t g_signal_seen = 0;

void on_signal(int) { g_signal_seen = 1; }

std::string json_number(double value) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(17);
  out << value;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"socket", "shards", "ring", "algorithm", "capacity",
                          "price-per-hour", "epoch-cadence-ms", "threads",
                          "trace-out", "metrics"},
                         kUsage);
    exec::WorkerBudget::set(args.get_thread_count());
    cli::ObsSession obs_session(args);

    engine::EngineConfig config;
    config.shard_count = std::max<std::uint64_t>(1, args.get_u64("shards", 1));
    config.ring_capacity = args.get_u64("ring", 4096);
    config.algorithm = args.get("algorithm", "first-fit");
    config.spec = ServerSpec{args.get_double("capacity", 1.0),
                             args.get_double("price-per-hour", 6.0)};
    engine::ShardedDispatchEngine eng(config);

    net::WireServerConfig server_config;
    server_config.socket_path = args.require("socket");
    server_config.epoch_cadence_ms = args.get_u64("epoch-cadence-ms", 0);
    net::WireServer server(eng, server_config, obs_session.tracer(),
                           obs_session.metrics());

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    server.start();
    std::cerr << "dbp_serve: listening on " << server_config.socket_path
              << " (" << config.shard_count << " shard(s)";
    if (server_config.epoch_cadence_ms > 0) {
      std::cerr << ", epoch every " << server_config.epoch_cadence_ms << " ms";
    }
    std::cerr << ")\n";

    // Serve until the shutdown verb (wakes the poll immediately) or a
    // signal (seen within one 200 ms poll round).
    while (g_signal_seen == 0 && !server.poll_stop_requested(200)) {
    }
    server.stop();

    const net::WireServerStats stats = server.stats();
    const engine::StreamingOptBounds bounds = eng.opt_bounds();
    std::ostringstream json;
    json << "{\n";
    json << "  \"schema\": \"dbp-serve/1\",\n";
    json << "  \"connections_accepted\": " << stats.connections_accepted
         << ",\n";
    json << "  \"frames_received\": " << stats.frames_received << ",\n";
    json << "  \"frames_rejected\": " << stats.frames_rejected << ",\n";
    json << "  \"bytes_in\": " << stats.bytes_in << ",\n";
    json << "  \"events_submitted\": " << stats.events_submitted << ",\n";
    json << "  \"epochs_advanced\": " << stats.epochs_advanced << ",\n";
    json << "  \"timer_ticks\": " << stats.timer_ticks << ",\n";
    json << "  \"events_applied\": " << eng.events_applied() << ",\n";
    json << "  \"active_sessions\": " << eng.active_sessions() << ",\n";
    json << "  \"dropped_events\": "
         << eng.merged_fault_stats().total_dropped_events() << ",\n";
    json << "  \"opt_lower_dollars\": " << json_number(bounds.lower_dollars)
         << ",\n";
    json << "  \"opt_upper_dollars\": " << json_number(bounds.upper_dollars)
         << ",\n";
    json << "  \"opt_segments\": " << bounds.segments << "\n";
    json << "}\n";
    std::cout << json.str();
    obs_session.finish();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_serve: " << error.what() << "\n";
    return 1;
  }
}
