#!/usr/bin/env python3
"""Bench smoke guard: fail when the adaptive OPT_total path regresses.

Reads a dbp-bench-perf report (schema 1 or 2) and checks, for every
workload that reports both, that ``opt_total_<w>_fast`` is no slower than
``opt_total_<w>_fast_sequential`` by more than the allowed ratio. The
adaptive execution policy exists precisely so the fast path can never do
worse than sequential plus noise; this guard pins that in CI.

Exit codes: 0 = all workloads within bounds, 1 = regression, 2 = bad input.

Usage:
    check_bench_guard.py BENCH_perf.json [--min-ratio=0.95]

``--min-ratio=R`` requires ``seq_ms / fast_ms >= R``. CI uses the default
0.95 (5% tolerance for timer noise); the ctest smoke run uses a loose 0.50
because its tiny instances make the ratio jittery.
"""
import json
import sys


def main(argv):
    path = None
    min_ratio = 0.95
    for arg in argv[1:]:
        if arg.startswith("--min-ratio="):
            min_ratio = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(f"check_bench_guard: unknown option {arg}", file=sys.stderr)
            return 2
        else:
            path = arg
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        cases = {case["name"]: case for case in report["cases"]}
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"check_bench_guard: cannot read {path}: {error}", file=sys.stderr)
        return 2

    suffix = "_fast_sequential"
    checked = 0
    failures = 0
    for name, seq_case in sorted(cases.items()):
        if not name.endswith(suffix):
            continue
        fast_name = name[: -len(suffix)] + "_fast"
        fast_case = cases.get(fast_name)
        if fast_case is None:
            continue
        checked += 1
        fast_ms = float(fast_case["value"])
        seq_ms = float(seq_case["value"])
        ratio = seq_ms / fast_ms if fast_ms > 0 else float("inf")
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        print(
            f"{fast_name}: fast {fast_ms:.2f} ms vs sequential "
            f"{seq_ms:.2f} ms -> ratio {ratio:.3f} (min {min_ratio}) {verdict}"
        )
        if ratio < min_ratio:
            failures += 1

    if checked == 0:
        print(f"check_bench_guard: no fast/sequential case pairs in {path}",
              file=sys.stderr)
        return 2
    if failures:
        print(
            f"check_bench_guard: {failures}/{checked} workload(s) regressed — "
            "the adaptive policy should never lose to sequential by more "
            "than noise",
            file=sys.stderr,
        )
        return 1
    print(f"check_bench_guard: {checked} workload(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
