#!/usr/bin/env python3
"""Bench smoke guard: fail when a benchmarked hot path regresses.

Three checks over a dbp-bench-perf report (schema 1 through 4):

1. Adaptive-policy guard (schema >= 1): for every workload that reports
   both, ``opt_total_<w>_fast`` must be no slower than
   ``opt_total_<w>_fast_sequential`` by more than the allowed ratio. The
   adaptive execution policy exists precisely so the fast path can never do
   worse than sequential plus noise.

2. Packer throughput guard (schema >= 3, needs ``--baseline``): every
   ``packer_*`` case with an ``items_per_sec`` field is compared against the
   same case in the checked-in baseline report. Raw throughput is useless
   across machines and runs, so the comparison is normalized by a machine
   factor: the geometric mean, over the ``packer_*_reference*`` cases present
   in both reports, of current/baseline reference throughput. The reference
   cases run the seed's timed region in the *same run* on the *same machine*,
   so the factor absorbs host speed, load, and workload-size differences, and
   what remains is the optimized loop's real regression. A case fails when
   its normalized throughput drops by more than ``--max-packer-regression``
   (default 0.20, per the bench protocol in docs/performance.md).

3. Dispatch engine guard (schema >= 4, needs ``--baseline``): every
   ``bench_dispatch*`` case with an ``events_per_sec`` field is compared
   against the baseline with the same machine factor as check 2 (the packer
   reference cases are the machine probe for the whole report). A case fails
   when its normalized events/sec drops by more than
   ``--max-dispatch-regression`` (default 0.20). Skipped gracefully when the
   baseline predates schema 4.

Exit codes: 0 = all within bounds, 1 = regression, 2 = bad input.

Usage:
    check_bench_guard.py REPORT [--min-ratio=0.95]
                         [--baseline=BENCH_perf.json]
                         [--max-packer-regression=0.20]
                         [--max-dispatch-regression=0.20]
"""
import json
import math
import sys


def load_cases(path):
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    return {case["name"]: case for case in report["cases"]}


def check_adaptive(cases, min_ratio):
    """Fast-vs-sequential check. Returns (checked, failures)."""
    suffix = "_fast_sequential"
    checked = 0
    failures = 0
    for name, seq_case in sorted(cases.items()):
        if not name.endswith(suffix):
            continue
        fast_name = name[: -len(suffix)] + "_fast"
        fast_case = cases.get(fast_name)
        if fast_case is None:
            continue
        checked += 1
        fast_ms = float(fast_case["value"])
        seq_ms = float(seq_case["value"])
        ratio = seq_ms / fast_ms if fast_ms > 0 else float("inf")
        verdict = "ok" if ratio >= min_ratio else "REGRESSION"
        print(
            f"{fast_name}: fast {fast_ms:.2f} ms vs sequential "
            f"{seq_ms:.2f} ms -> ratio {ratio:.3f} (min {min_ratio}) {verdict}"
        )
        if ratio < min_ratio:
            failures += 1
    return checked, failures


def throughput_field(case, field):
    value = case.get(field)
    return float(value) if value is not None else None


def machine_factor(cases, baseline):
    """Geomean current/baseline throughput over the shared packer_*_reference
    cases — the machine probe every normalized check divides by. None when
    the reports share no reference case."""
    factors = []
    for name, case in sorted(cases.items()):
        if not name.startswith("packer_") or "_reference" not in name:
            continue
        base_case = baseline.get(name)
        if base_case is None:
            continue
        cur = throughput_field(case, "items_per_sec")
        base = throughput_field(base_case, "items_per_sec")
        if cur and base:
            factors.append(cur / base)
    if not factors:
        return None
    factor = math.exp(sum(math.log(f) for f in factors) / len(factors))
    print(f"bench guard: machine factor {factor:.3f} from {len(factors)} "
          "reference case(s)")
    return factor


def check_normalized(cases, baseline, machine, max_regression, selector,
                     field, label):
    """Shared reference-normalized throughput check. `selector(name)` picks
    the cases; `field` is the throughput key. Returns (checked, failures)."""
    checked = 0
    failures = 0
    for name, case in sorted(cases.items()):
        if not selector(name):
            continue
        base_case = baseline.get(name)
        if base_case is None:
            continue
        cur = throughput_field(case, field)
        base = throughput_field(base_case, field)
        if cur is None or base is None:
            continue
        checked += 1
        ratio = cur / (machine * base) if base > 0 else float("inf")
        verdict = "ok" if ratio >= 1.0 - max_regression else "REGRESSION"
        print(
            f"{name}: {cur / 1e6:.2f}M {label} vs baseline {base / 1e6:.2f}M "
            f"-> normalized ratio {ratio:.3f} "
            f"(min {1.0 - max_regression:.2f}) {verdict}"
        )
        if ratio < 1.0 - max_regression:
            failures += 1
    return checked, failures


def check_packers(cases, baseline, machine, max_regression):
    """Normalized packer items_per_sec check. Returns (checked, failures)."""
    return check_normalized(
        cases, baseline, machine, max_regression,
        lambda name: name.startswith("packer_") and "_reference" not in name,
        "items_per_sec", "items/s")


def check_dispatch(cases, baseline, machine, max_regression):
    """Normalized dispatch events_per_sec check. Returns (checked, failures)."""
    if not any(name.startswith("bench_dispatch") for name in baseline):
        print("dispatch guard: baseline has no bench_dispatch* cases "
              "(pre-v4 baseline?) — skipping")
        return 0, 0
    return check_normalized(
        cases, baseline, machine, max_regression,
        lambda name: name.startswith("bench_dispatch"),
        "events_per_sec", "events/s")


def main(argv):
    path = None
    baseline_path = None
    min_ratio = 0.95
    max_packer_regression = 0.20
    max_dispatch_regression = 0.20
    for arg in argv[1:]:
        if arg.startswith("--min-ratio="):
            min_ratio = float(arg.split("=", 1)[1])
        elif arg.startswith("--baseline="):
            baseline_path = arg.split("=", 1)[1]
        elif arg.startswith("--max-packer-regression="):
            max_packer_regression = float(arg.split("=", 1)[1])
        elif arg.startswith("--max-dispatch-regression="):
            max_dispatch_regression = float(arg.split("=", 1)[1])
        elif arg.startswith("--"):
            print(f"check_bench_guard: unknown option {arg}", file=sys.stderr)
            return 2
        else:
            path = arg
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        cases = load_cases(path)
    except (OSError, ValueError, KeyError, TypeError) as error:
        print(f"check_bench_guard: cannot read {path}: {error}", file=sys.stderr)
        return 2

    checked, failures = check_adaptive(cases, min_ratio)
    if checked == 0:
        print(f"check_bench_guard: no fast/sequential case pairs in {path}",
              file=sys.stderr)
        return 2
    if failures:
        print(
            f"check_bench_guard: {failures}/{checked} workload(s) regressed — "
            "the adaptive policy should never lose to sequential by more "
            "than noise",
            file=sys.stderr,
        )
        return 1

    if baseline_path is not None:
        try:
            baseline = load_cases(baseline_path)
        except (OSError, ValueError, KeyError, TypeError) as error:
            print(f"check_bench_guard: cannot read {baseline_path}: {error}",
                  file=sys.stderr)
            return 2
        machine = machine_factor(cases, baseline)
        if machine is None:
            print(
                "bench guard: no shared packer_*_reference cases between "
                "report and baseline (pre-v3 baseline?) — skipping "
                "normalized checks",
            )
        else:
            packer_checked, packer_failures = check_packers(
                cases, baseline, machine, max_packer_regression)
            dispatch_checked, dispatch_failures = check_dispatch(
                cases, baseline, machine, max_dispatch_regression)
            if packer_failures or dispatch_failures:
                print(
                    f"check_bench_guard: "
                    f"{packer_failures + dispatch_failures}/"
                    f"{packer_checked + dispatch_checked} normalized "
                    "case(s) regressed beyond the allowed margin vs the "
                    "checked-in baseline",
                    file=sys.stderr,
                )
                return 1
            checked += packer_checked + dispatch_checked

    print(f"check_bench_guard: {checked} check(s) within bounds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
