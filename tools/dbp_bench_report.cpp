// dbp_bench_report — machine-readable performance trajectory report.
//
// Times the OPT_total fast path (RLE snapshots + dedup + parallel segment
// evaluation) against the retained reference estimator, plus packer event
// throughput and the bin-count oracle, and writes the numbers as JSON so CI
// can archive one BENCH_perf.json per commit and plot the trajectory.
//
// Usage:
//   dbp_bench_report [--out=BENCH_perf.json] [--items=5000] [--repeats=3]
//                    [--threads=N]
//
// Wall-clock numbers are best-of-`repeats` (the minimum is the least noisy
// location statistic for a loaded machine). Estimator bounds are asserted
// bit-identical between the reference and fast paths before any timing is
// reported — a report from a wrong estimator would be worse than no report.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "exec/parallel_map.hpp"
#include "cli.hpp"
#include "core/checked_output.hpp"
#include "core/error.hpp"
#include "engine/engine.hpp"
#include "exec/execution_policy.hpp"
#include "exec/worker_budget.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/obs.hpp"
#include "obs_cli.hpp"
#include "opt/bin_count.hpp"
#include "opt/opt_total.hpp"
#include "opt/opt_total_reference.hpp"
#include "opt/rle.hpp"
#include "sim/simulator.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace dbp;

constexpr const char* kUsage =
    "usage: dbp_bench_report [--out=BENCH_perf.json] [--items=5000]\n"
    "                        [--repeats=3] [--threads=N] [--trace-out=FILE]\n"
    "                        [--metrics]\n";

// DBP_LINT_ALLOW(wall-clock): this is the benchmark harness — measuring
// wall time is its entire job; timings go to the perf report only.
using Clock = std::chrono::steady_clock;

/// One timed invocation of `fn`, in milliseconds.
template <typename Fn>
double time_once_ms(Fn&& fn) {
  const auto start = Clock::now();
  fn();
  const std::chrono::duration<double, std::milli> elapsed = Clock::now() - start;
  return elapsed.count();
}

/// Runs `fn` `repeats` times and returns the best wall-clock milliseconds.
template <typename Fn>
double best_of_ms(std::size_t repeats, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    best = std::min(best, time_once_ms(fn));
  }
  return best;
}

/// One reported measurement. `extras` are preformatted `"key": value` JSON
/// fragments appended to the case object.
struct BenchCase {
  std::string name;
  double value = 0.0;
  std::string unit;
  std::vector<std::string> extras;
};

Instance make_uniform_instance(std::size_t items, std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 0.5;
  return generate_random_instance(config, seed);
}

Instance make_dyadic_instance(std::size_t items, std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 20.0;
  config.duration.max_length = 8.0;
  config.size.kind = SizeModel::Kind::kDyadic;
  config.size.min_exponent = 1;
  config.size.max_exponent = 6;
  return generate_random_instance(config, seed);
}

Instance make_churn_instance(std::size_t items, std::uint64_t seed) {
  // High-churn: large short-lived items, so bins hold only one or two items
  // and close almost immediately — arrivals and departures interleave
  // tightly and the packer index churns on every event instead of settling
  // into a read-mostly steady state.
  RandomInstanceConfig config;
  config.item_count = items;
  config.arrival.rate = 100.0;
  config.duration.max_length = 2.0;
  config.size.min_fraction = 0.4;
  config.size.max_fraction = 0.7;
  return generate_random_instance(config, seed);
}

std::string json_number(double value) {
  // Round-trippable, locale-independent formatting.
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(17);
  out << value;
  return out.str();
}

/// `"workers": N, "policy": "..."` fragments recording what phase 2
/// actually did — the report must never advertise a parallel path the case
/// did not take (the uniform-workload regression hid behind exactly that).
std::vector<std::string> execution_extras(const OptTotalResult& result,
                                          exec::ExecutionPolicy policy) {
  return {"\"workers\": " + std::to_string(result.evaluate_workers),
          "\"policy\": \"" + std::string(exec::to_string(policy)) + "\"",
          std::string("\"evaluate_parallel\": ") +
              (result.evaluate_parallel ? "true" : "false")};
}

void append_opt_total_cases(std::vector<BenchCase>& cases,
                            const std::string& workload,
                            const Instance& instance, const CostModel& model,
                            std::size_t repeats) {
  OptTotalOptions options;
  options.bin_count.exact.node_budget = 20'000;

  // The three estimators are timed interleaved (one round of each per
  // repeat, minimum over rounds) rather than back to back, so the pairs
  // the report gets ratioed on — fast vs reference, fast vs sequential
  // (tools/check_bench_guard.py) — sample the same background load. On a
  // shared machine, back-to-back minima can disagree by more than the
  // guard's tolerance even for identical code paths.
  OptTotalResult reference;
  OptTotalResult fast;
  OptTotalResult sequential;
  double ref_ms = std::numeric_limits<double>::infinity();
  double fast_ms = std::numeric_limits<double>::infinity();
  double seq_ms = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < repeats; ++r) {
    ref_ms = std::min(ref_ms, time_once_ms([&] {
      reference = estimate_opt_total_reference(instance, model, options);
    }));
    // The shipped default: the adaptive policy under the process worker
    // budget. With a 1-worker budget it falls back to the sequential path;
    // with more hardware it fans phase 2 out — either way `workers`
    // records what actually ran.
    options.policy = exec::ExecutionPolicy::kAdaptive;
    fast_ms = std::min(fast_ms, time_once_ms([&] {
      fast = estimate_opt_total(instance, model, options);
    }));
    options.policy = exec::ExecutionPolicy::kSequential;
    seq_ms = std::min(seq_ms, time_once_ms([&] {
      sequential = estimate_opt_total(instance, model, options);
    }));
  }

  // The report is only meaningful for an estimator that matches the
  // specification bit for bit.
  DBP_CHECK(fast.lower_cost == reference.lower_cost &&
                fast.upper_cost == reference.upper_cost &&
                sequential.lower_cost == reference.lower_cost &&
                sequential.upper_cost == reference.upper_cost,
            "fast OPT_total bounds diverged from the reference estimator");

  // One instrumented run outside the timed loops harvests per-phase wall
  // clock (sweep / evaluate / combine) for the report, so the timed numbers
  // above never pay for their own instrumentation.
  options.policy = exec::ExecutionPolicy::kAdaptive;
  obs::MetricsRegistry phase_registry;
  {
    const obs::ObsScope scope(nullptr, &phase_registry);
    (void)estimate_opt_total(instance, model, options);
  }
  std::vector<std::string> fast_extras = {
      "\"segments\": " + std::to_string(fast.segments),
      "\"distinct_snapshots\": " + std::to_string(fast.distinct_snapshots),
      "\"dedup_hits\": " + std::to_string(fast.dedup_hits),
      "\"speedup_vs_reference\": " + json_number(ref_ms / fast_ms)};
  for (std::string& extra : execution_extras(fast, exec::ExecutionPolicy::kAdaptive)) {
    fast_extras.push_back(std::move(extra));
  }
  for (const char* phase : {"sweep", "evaluate", "combine"}) {
    const auto stats =
        phase_registry.timer_stats(std::string("opt_total.") + phase);
    if (stats && stats->count > 0) {
      fast_extras.push_back("\"phase_" + std::string(phase) +
                            "_ms\": " + json_number(stats->total_ms));
    }
  }

  std::vector<std::string> seq_extras = {"\"speedup_vs_reference\": " +
                                         json_number(ref_ms / seq_ms)};
  for (std::string& extra :
       execution_extras(sequential, exec::ExecutionPolicy::kSequential)) {
    seq_extras.push_back(std::move(extra));
  }

  const std::string prefix = "opt_total_" + workload;
  cases.push_back({prefix + "_reference", ref_ms, "ms", {"\"workers\": 1"}});
  cases.push_back({prefix + "_fast", fast_ms, "ms", std::move(fast_extras)});
  cases.push_back(
      {prefix + "_fast_sequential", seq_ms, "ms", std::move(seq_extras)});
}

/// Packer cases (unchanged since schema dbp-bench-perf/3).
///
/// Optimized cases time the steady-state hot path the memory-architecture
/// work targets: events prebuilt, storage reserved, then `replay_events`
/// alone — the region that scales with the event count and that the
/// zero-allocation test pins. The `_reference` cases run the pre-arena
/// strategies under the seed's timed region (full `simulate` by name,
/// including event build and accounting) in the same process, so their
/// items_per_sec stays comparable with the historical BENCH_perf.json
/// trajectory; `speedup_vs_reference` on an optimized case is the ratio of
/// the two protocols, measured interleaved under the same background load.
/// Before any timing, optimized and reference packers are asserted to
/// produce identical results — cost, bin count, and per-item assignment.
void append_packer_cases(std::vector<BenchCase>& cases, const CostModel& model,
                         std::size_t repeats) {
  const std::size_t items = 20'000;

  struct Workload {
    std::string suffix;  // appended to the case name ("" = historical names)
    Instance instance;
    PackerOptions options;
    std::vector<std::string> algorithms;
  };
  PackerOptions uniform_options;
  uniform_options.known_mu = 8.0;
  PackerOptions churn_options;
  churn_options.known_mu = 2.0;
  const std::vector<Workload> workloads = {
      {"",
       make_uniform_instance(items, 17),
       uniform_options,
       {"first-fit", "best-fit", "adaptive-mff", "modified-first-fit",
        "harmonic-first-fit"}},
      {"_churn",
       make_churn_instance(items, 23),
       churn_options,
       {"first-fit", "best-fit", "adaptive-mff"}},
  };

  for (const Workload& workload : workloads) {
    const Instance& instance = workload.instance;
    const PackerOptions& options = workload.options;
    const std::vector<Event> events = build_event_sequence(instance);

    // Bit-identity gate: a throughput report for a packer that diverges
    // from its reference would be worse than no report.
    for (const char* alg : {"first-fit", "best-fit"}) {
      auto optimized = make_packer(alg, model, options);
      const SimulationResult opt_result = simulate(instance, events, *optimized);
      auto reference =
          make_packer(std::string(alg) + "-reference", model, options);
      const SimulationResult ref_result = simulate(instance, events, *reference);
      DBP_CHECK(opt_result.total_cost == ref_result.total_cost &&
                    opt_result.bins_opened == ref_result.bins_opened &&
                    opt_result.assignment == ref_result.assignment,
                "optimized packer diverged from its reference");
    }

    // Interleaved timing: one round of every case per repeat, minimum over
    // rounds, so the ratios the guard checks sample the same background
    // load (same rationale as the OPT_total cases).
    std::vector<double> loop_ms(workload.algorithms.size(),
                                std::numeric_limits<double>::infinity());
    std::vector<std::string> reference_names = {"first-fit", "best-fit"};
    std::vector<double> ref_ms(reference_names.size(),
                               std::numeric_limits<double>::infinity());
    for (std::size_t r = 0; r < repeats; ++r) {
      for (std::size_t a = 0; a < workload.algorithms.size(); ++a) {
        auto packer = make_packer(workload.algorithms[a], model, options);
        packer->reserve_hint(instance.size());
        loop_ms[a] = std::min(loop_ms[a], time_once_ms([&] {
          replay_events(instance, events, *packer);
        }));
        DBP_CHECK(packer->bins().total_bins_opened() > 0, "degenerate packing");
      }
      for (std::size_t a = 0; a < reference_names.size(); ++a) {
        ref_ms[a] = std::min(ref_ms[a], time_once_ms([&] {
          const SimulationResult result = simulate(
              instance, reference_names[a] + "-reference", model, options);
          DBP_CHECK(result.total_cost > 0.0, "degenerate packing cost");
        }));
      }
    }

    const auto throughput = [items](double ms) {
      return "\"items_per_sec\": " +
             json_number(1000.0 * static_cast<double>(items) / ms);
    };
    for (std::size_t a = 0; a < workload.algorithms.size(); ++a) {
      std::vector<std::string> extras = {
          "\"items\": " + std::to_string(items), throughput(loop_ms[a]),
          "\"timed\": \"replay_events\""};
      for (std::size_t ref = 0; ref < reference_names.size(); ++ref) {
        if (reference_names[ref] == workload.algorithms[a]) {
          extras.push_back("\"speedup_vs_reference\": " +
                           json_number(ref_ms[ref] / loop_ms[a]));
        }
      }
      cases.push_back({"packer_" + workload.algorithms[a] + workload.suffix,
                       loop_ms[a], "ms", std::move(extras)});
    }
    for (std::size_t a = 0; a < reference_names.size(); ++a) {
      cases.push_back({"packer_" + reference_names[a] + "_reference" +
                           workload.suffix,
                       ref_ms[a], "ms",
                       {"\"items\": " + std::to_string(items),
                        throughput(ref_ms[a]), "\"timed\": \"simulate\""}});
    }
  }
}

void append_oracle_cases(std::vector<BenchCase>& cases, const CostModel& model,
                         std::size_t repeats) {
  // 2048 items, 6 distinct sizes: the multiplicity-compression showcase.
  std::vector<double> sizes;
  Rng rng(5);
  for (std::size_t i = 0; i < 2048; ++i) {
    sizes.push_back(std::ldexp(1.0, -static_cast<int>(rng.uniform_int(1, 6))));
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  const std::vector<SizeRun> runs = rle_from_sorted(sizes);

  BinCountOptions options;
  options.exact.node_budget = 20'000;
  constexpr int kCalls = 50;
  const double flat_ms = best_of_ms(repeats, [&] {
    for (int c = 0; c < kCalls; ++c) {
      const BinCountBounds bounds = optimal_bin_count(sizes, model, options);
      DBP_CHECK(bounds.lower >= 1, "degenerate bin count");
    }
  });
  const double rle_ms = best_of_ms(repeats, [&] {
    for (int c = 0; c < kCalls; ++c) {
      const BinCountBounds bounds = optimal_bin_count_rle(runs, model, options);
      DBP_CHECK(bounds.lower >= 1, "degenerate bin count");
    }
  });
  cases.push_back({"bin_count_flat_2048x6", flat_ms / kCalls, "ms", {}});
  cases.push_back({"bin_count_rle_2048x6", rle_ms / kCalls, "ms",
                   {"\"speedup_vs_flat\": " + json_number(flat_ms / rle_ms),
                    "\"distinct_sizes\": " + std::to_string(runs.size())}});
}

/// Sharded dispatch engine cases (schema dbp-bench-perf/4).
///
/// Timed region: submit() of every event through the MPSC rings plus the
/// final epoch drain — the sustained streaming path tools/dbp_dispatch_bench
/// exposes standalone. The 1-shard engine is asserted bit-identical to a
/// plain GameServerDispatcher on the same stream before any timing, and
/// the guard (tools/check_bench_guard.py) checks the headline case's
/// events_per_sec against the baseline, machine-normalized.
void append_dispatch_cases(std::vector<BenchCase>& cases, std::size_t repeats) {
  const std::size_t kEvents = 100'000;

  // The stream: a gaming-like random instance expanded to sorted events.
  RandomInstanceConfig config;
  config.item_count = kEvents / 2;
  config.arrival.rate = 50.0;
  config.duration.max_length = 6.0;
  config.size.min_fraction = 0.05;
  config.size.max_fraction = 0.5;
  const Instance instance = generate_random_instance(config, 17);
  std::vector<engine::SessionEvent> stream;
  stream.reserve(2 * instance.size());
  for (const Event& event : build_event_sequence(instance)) {
    if (event.kind == EventKind::kArrival) {
      stream.push_back(engine::start_event(
          event.item, instance.item(event.item).size, event.time));
    } else {
      stream.push_back(engine::end_event(event.item, event.time));
    }
  }

  const auto engine_config = [](std::size_t shards) {
    engine::EngineConfig cfg;
    cfg.shard_count = shards;
    cfg.spec = ServerSpec{1.0, 6.0};
    return cfg;
  };

  // Bit-identity gate: a throughput number for a diverging engine would be
  // worse than no number.
  {
    engine::ShardedDispatchEngine eng(engine_config(1));
    FaultPolicy drop;
    drop.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
    GameServerDispatcher plain(ServerSpec{1.0, 6.0}, "first-fit", {}, drop);
    for (const engine::SessionEvent& event : stream) {
      eng.submit(event);
      if (event.kind == engine::SessionEvent::Kind::kStart) {
        (void)plain.start_session(event.session_id, event.gpu_fraction,
                                  event.time_minutes);
      } else {
        plain.end_session(event.session_id, event.time_minutes);
      }
    }
    eng.drain();
    const Time horizon = stream.back().time_minutes;
    DBP_CHECK(eng.rental_cost_dollars(horizon) ==
                      plain.rental_cost_dollars(horizon) &&
                  eng.active_sessions() == plain.active_sessions(),
              "1-shard engine diverged from the plain dispatcher");
  }

  // Interleaved best-of timing over the shard counts, same rationale as
  // the packer cases.
  const std::vector<std::size_t> shard_counts = {4, 1};
  std::vector<double> best_ms(shard_counts.size(),
                              std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t s = 0; s < shard_counts.size(); ++s) {
      best_ms[s] = std::min(best_ms[s], time_once_ms([&] {
        engine::ShardedDispatchEngine eng(engine_config(shard_counts[s]));
        for (const engine::SessionEvent& event : stream) eng.submit(event);
        eng.advance_epoch(stream.back().time_minutes);
        DBP_CHECK(eng.events_applied() == stream.size(),
                  "engine lost events during the benchmark");
      }));
    }
  }

  for (std::size_t s = 0; s < shard_counts.size(); ++s) {
    const std::string name =
        shard_counts[s] == 4 ? "bench_dispatch_throughput"
                             : "bench_dispatch_throughput_1shard";
    cases.push_back(
        {name, best_ms[s], "ms",
         {"\"events\": " + std::to_string(stream.size()),
          "\"events_per_sec\": " +
              json_number(1000.0 * static_cast<double>(stream.size()) /
                          best_ms[s]),
          "\"shards\": " + std::to_string(shard_counts[s]),
          "\"workers\": " + std::to_string(exec::WorkerBudget::effective())}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(
        argc, argv,
        {"out", "items", "repeats", "threads", "trace-out", "metrics"}, kUsage);
    // No --threads means budget 0: WorkerBudget keeps the runtime default,
    // so the parallel cases genuinely fan out when the hardware has cores.
    exec::WorkerBudget::set(args.get_thread_count());
    cli::ObsSession obs_session(args);
    const std::size_t items = args.get_u64("items", 5'000);
    const std::size_t repeats = std::max<std::size_t>(1, args.get_u64("repeats", 3));
    const std::string out_path = args.get("out", "BENCH_perf.json");
    const CostModel model{1.0, 1.0, 1e-9};

    std::vector<BenchCase> cases;
    append_opt_total_cases(cases, "uniform_" + std::to_string(items),
                           make_uniform_instance(items, 99), model, repeats);
    append_opt_total_cases(cases, "dyadic_" + std::to_string(items),
                           make_dyadic_instance(items, 99), model, repeats);
    append_packer_cases(cases, model, repeats);
    append_oracle_cases(cases, model, repeats);
    append_dispatch_cases(cases, repeats);

    std::ostringstream json;
    json << "{\n";
    json << "  \"schema\": \"dbp-bench-perf/4\",\n";
    json << "  \"workers\": " << exec::WorkerBudget::effective() << ",\n";
    json << "  \"available_workers\": " << exec::WorkerBudget::available()
         << ",\n";
    json << "  \"repeats\": " << repeats << ",\n";
    json << "  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const BenchCase& c = cases[i];
      json << "    {\"name\": \"" << c.name << "\", \"value\": "
           << json_number(c.value) << ", \"unit\": \"" << c.unit << "\"";
      for (const std::string& extra : c.extras) json << ", " << extra;
      json << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";

    std::ofstream out = open_output_file(out_path);
    out << json.str();
    close_output_file(out, out_path);
    std::cout << json.str();
    std::cerr << "report written to " << out_path << "\n";
    obs_session.finish();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_bench_report: " << error.what() << "\n";
    return 1;
  }
}
