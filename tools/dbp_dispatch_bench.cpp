// dbp_dispatch_bench — sustained throughput of the sharded dispatch engine.
//
// Streams a synthetic cloud-gaming session trace (start/end event pairs)
// through engine::ShardedDispatchEngine and reports sustained events/sec:
// submit() through the per-shard MPSC rings plus the epoch-batched drain,
// timed best-of-`repeats`. With --epoch-every=N an advance_epoch lands
// every N events, so the number also covers the RLE snapshot + merged
// OPT_total bound path at that cadence (0 = one epoch at the end).
//
// Usage:
//   dbp_dispatch_bench [--events=200000] [--shards=4] [--threads=N]
//                      [--ring=4096] [--epoch-every=0] [--repeats=3]
//                      [--out=FILE] [--trace-out=FILE] [--metrics]
//
// Before any timing the 1-shard engine's aggregate bill is asserted
// bit-identical to a plain GameServerDispatcher replaying the same stream —
// a throughput number for a diverging engine would be worse than none.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <locale>
#include <sstream>
#include <string>
#include <vector>

#include "cli.hpp"
#include "core/checked_output.hpp"
#include "core/error.hpp"
#include "engine/engine.hpp"
#include "exec/worker_budget.hpp"
#include "obs_cli.hpp"
#include "sim/event.hpp"
#include "workload/random_instance.hpp"

namespace {

using namespace dbp;

constexpr const char* kUsage =
    "usage: dbp_dispatch_bench [--events=200000] [--shards=4] [--threads=N]\n"
    "                          [--ring=4096] [--epoch-every=0] [--repeats=3]\n"
    "                          [--out=FILE] [--trace-out=FILE] [--metrics]\n";

// DBP_LINT_ALLOW(wall-clock): benchmark harness — measuring wall time is
// its entire job; timings go to the report only.
using Clock = std::chrono::steady_clock;

std::string json_number(double value) {
  std::ostringstream out;
  out.imbue(std::locale::classic());
  out.precision(17);
  out << value;
  return out.str();
}

/// The benchmark event stream: a random gaming-like instance expanded to
/// its sorted event sequence and mapped to engine SessionEvents.
std::vector<engine::SessionEvent> make_stream(std::size_t events,
                                              std::uint64_t seed) {
  RandomInstanceConfig config;
  config.item_count = std::max<std::size_t>(1, events / 2);
  config.arrival.rate = 50.0;
  config.duration.max_length = 6.0;
  config.size.min_fraction = 0.05;
  config.size.max_fraction = 0.5;
  const Instance instance = generate_random_instance(config, seed);

  std::vector<engine::SessionEvent> stream;
  stream.reserve(2 * instance.size());
  for (const Event& event : build_event_sequence(instance)) {
    if (event.kind == EventKind::kArrival) {
      stream.push_back(engine::start_event(
          event.item, instance.item(event.item).size, event.time));
    } else {
      stream.push_back(engine::end_event(event.item, event.time));
    }
  }
  return stream;
}

engine::EngineConfig engine_config(std::size_t shards, std::size_t ring) {
  engine::EngineConfig config;
  config.shard_count = shards;
  config.ring_capacity = ring;
  config.spec = ServerSpec{1.0, 6.0};
  return config;
}

/// One timed replay of the stream; returns milliseconds.
double run_once_ms(const std::vector<engine::SessionEvent>& stream,
                   std::size_t shards, std::size_t ring,
                   std::size_t epoch_every) {
  engine::ShardedDispatchEngine eng(engine_config(shards, ring));
  const auto start = Clock::now();
  std::size_t since_epoch = 0;
  for (const engine::SessionEvent& event : stream) {
    eng.submit(event);
    if (epoch_every != 0 && ++since_epoch == epoch_every) {
      eng.advance_epoch(event.time_minutes);
      since_epoch = 0;
    }
  }
  eng.advance_epoch(stream.empty() ? 0.0 : stream.back().time_minutes);
  const std::chrono::duration<double, std::milli> elapsed =
      Clock::now() - start;
  DBP_CHECK(eng.events_applied() == stream.size(),
            "engine lost events during the benchmark");
  return elapsed.count();
}

/// Bit-identity gate: the 1-shard engine equals a plain dispatcher.
void check_engine_identity(const std::vector<engine::SessionEvent>& stream) {
  engine::ShardedDispatchEngine eng(engine_config(1, 4096));
  FaultPolicy drop;
  drop.on_anomaly = FaultPolicy::AnomalyAction::kDropAndCount;
  GameServerDispatcher plain(ServerSpec{1.0, 6.0}, "first-fit", {}, drop);
  for (const engine::SessionEvent& event : stream) {
    eng.submit(event);
    if (event.kind == engine::SessionEvent::Kind::kStart) {
      (void)plain.start_session(event.session_id, event.gpu_fraction,
                                event.time_minutes);
    } else {
      plain.end_session(event.session_id, event.time_minutes);
    }
  }
  eng.drain();
  const Time horizon =
      stream.empty() ? 0.0 : stream.back().time_minutes;
  DBP_CHECK(eng.rental_cost_dollars(horizon) ==
                    plain.rental_cost_dollars(horizon) &&
                eng.active_sessions() == plain.active_sessions(),
            "1-shard engine diverged from the plain dispatcher");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbp;
  try {
    const cli::Args args(argc, argv,
                         {"events", "shards", "threads", "ring", "epoch-every",
                          "repeats", "out", "trace-out", "metrics"},
                         kUsage);
    exec::WorkerBudget::set(args.get_thread_count());
    cli::ObsSession obs_session(args);
    const std::size_t events = args.get_u64("events", 200'000);
    const std::size_t shards = std::max<std::size_t>(1, args.get_u64("shards", 4));
    const std::size_t ring = args.get_u64("ring", 4096);
    const std::size_t epoch_every = args.get_u64("epoch-every", 0);
    const std::size_t repeats =
        std::max<std::size_t>(1, args.get_u64("repeats", 3));

    const std::vector<engine::SessionEvent> stream = make_stream(events, 17);
    check_engine_identity(stream);

    double best_ms = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < repeats; ++r) {
      best_ms = std::min(best_ms, run_once_ms(stream, shards, ring, epoch_every));
    }
    const double events_per_sec =
        1000.0 * static_cast<double>(stream.size()) / best_ms;

    std::ostringstream json;
    json << "{\n";
    json << "  \"schema\": \"dbp-dispatch-bench/1\",\n";
    json << "  \"events\": " << stream.size() << ",\n";
    json << "  \"shards\": " << shards << ",\n";
    json << "  \"ring\": " << ring << ",\n";
    json << "  \"epoch_every\": " << epoch_every << ",\n";
    json << "  \"workers\": " << exec::WorkerBudget::effective() << ",\n";
    json << "  \"repeats\": " << repeats << ",\n";
    json << "  \"best_ms\": " << json_number(best_ms) << ",\n";
    json << "  \"events_per_sec\": " << json_number(events_per_sec) << "\n";
    json << "}\n";

    if (args.has("out")) {
      const std::string out_path = args.require("out");
      std::ofstream out = open_output_file(out_path);
      out << json.str();
      close_output_file(out, out_path);
      std::cerr << "report written to " << out_path << "\n";
    }
    std::cout << json.str();
    obs_session.finish();
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "dbp_dispatch_bench: " << error.what() << "\n";
    return 1;
  }
}
