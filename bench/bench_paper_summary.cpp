// E0 — the abstract, reproduced in one table.
//
// Each headline claim of the paper next to the measurement that exercises
// it. Runs in a couple of seconds; the detailed per-claim benches are
// bench_thm1 .. bench_mff_bounds.
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/ratio.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/adversary_bestfit.hpp"
#include "workload/random_instance.hpp"

int main() {
  using namespace dbp;
  bench::banner("E0", "Paper summary",
                "every abstract claim next to its measurement (mu = 8)");
  const CostModel model{1.0, 1.0, 1e-9};
  const double mu = 8.0;

  Table table({"claim (abstract)", "predicted", "measured", "how"});

  {  // Theorem 1: Any Fit >= mu.
    const auto built = build_anyfit_adversary({.k = 64, .mu = mu});
    const SimulationResult ff = simulate(built.instance, "first-fit", model);
    const OptTotalResult opt = estimate_opt_total(built.instance, model);
    table.add_row({"Any Fit ratio >= mu (Thm 1)",
                   strfmt(">= %.3f (k=64)", anyfit_construction_ratio(64, mu)),
                   Table::num(ff.total_cost / opt.upper_cost, 3),
                   "construction, exact OPT"});
  }
  {  // Theorem 2: Best Fit unbounded.
    BestFitAdversaryConfig config;
    config.k = 10;
    config.mu = mu;
    config.window = 0.25;
    const auto built = build_bestfit_adversary(config);
    const SimulationResult bf = simulate(built.instance, "best-fit", model);
    const OptTotalResult opt = estimate_opt_total(built.instance, model);
    table.add_row({"Best Fit unbounded (Thm 2)", ">= k/2 = 5 (k=10)",
                   Table::num(bf.total_cost / opt.upper_cost, 3),
                   "construction, exact OPT"});
  }
  {  // Theorems 4/5 + Section 4.4: upper bounds hold.
    RandomInstanceConfig config;
    config.item_count = 800;
    config.arrival.rate = 12.0;
    config.duration.max_length = mu;
    config.size.min_fraction = 0.02;
    config.size.max_fraction = 0.9;
    const Instance instance = generate_random_instance(config, 20140623);
    const InstanceEvaluation evaluation = evaluate_algorithms(
        instance,
        {"first-fit", "modified-first-fit", "modified-first-fit-known-mu"},
        model);
    table.add_row({"FF ratio <= 2mu+13 (Thm 5)",
                   strfmt("<= %.0f", ff_general_bound(mu)),
                   Table::num(evaluation.row("first-fit").ratio.upper, 3),
                   "random workload"});
    table.add_row({"MFF ratio <= 8mu/7+55/7 (Sec 4.4)",
                   strfmt("<= %.2f", mff_bound(mu)),
                   Table::num(evaluation.row("modified-first-fit").ratio.upper, 3),
                   "random workload"});
    table.add_row(
        {"MFF(mu known) ratio <= mu+8 (Sec 4.4)",
         strfmt("<= %.0f", mff_known_mu_bound(mu)),
         Table::num(evaluation.row("modified-first-fit-known-mu").ratio.upper, 3),
         "random workload"});
  }
  {  // Theorem 4 small items, k = 8.
    RandomInstanceConfig config;
    config.item_count = 800;
    config.arrival.rate = 30.0;
    config.duration.max_length = mu;
    config.size.min_fraction = 0.01;
    config.size.max_fraction = 0.124;
    const Instance instance = generate_random_instance(config, 612);
    const InstanceEvaluation evaluation =
        evaluate_algorithms(instance, {"first-fit"}, model);
    table.add_row({"FF small items < W/8 (Thm 4)",
                   strfmt("<= %.2f", ff_small_items_bound(8.0, mu)),
                   Table::num(evaluation.row("first-fit").ratio.upper, 3),
                   "random small-item workload"});
  }
  {  // Theorem 3 large items, k = 4.
    RandomInstanceConfig config;
    config.item_count = 800;
    config.arrival.rate = 8.0;
    config.duration.max_length = mu;
    config.size.min_fraction = 0.25;
    config.size.max_fraction = 0.95;
    const Instance instance = generate_random_instance(config, 613);
    const InstanceEvaluation evaluation =
        evaluate_algorithms(instance, {"first-fit"}, model);
    table.add_row({"FF large items >= W/4 (Thm 3)",
                   strfmt("<= %.0f", ff_large_items_bound(4.0)),
                   Table::num(evaluation.row("first-fit").ratio.upper, 3),
                   "random large-item workload"});
  }

  table.print(std::cout);
  std::cout << "\nEvery 'measured' value must satisfy its 'predicted' claim;\n"
               "lower-bound rows approach the prediction from below (finite\n"
               "k), upper-bound rows sit under it. See EXPERIMENTS.md for the\n"
               "full sweeps.\n";
  return 0;
}
