// E2 — Theorem 2 / Figure 3: Best Fit is unbounded for any fixed mu.
//
// Reproduces inequality (2): with n >= (k-1)*Delta/(mu*Delta - delta), the
// construction forces BF_total / OPT_total >= k/2, growing without bound in
// k while mu stays fixed.
#include <iostream>

#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_bestfit.hpp"

namespace {

struct Cell {
  std::size_t k;
  double mu;
};

struct Row {
  Cell cell;
  std::size_t iterations;
  std::size_t items;
  double measured_bf;
  double measured_ff;
  double half_k;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E2", "Best Fit unbounded-ratio construction",
                "Theorem 2 / Figure 3: BF/OPT >= k/2 for fixed mu");
  const CostModel model{1.0, 1.0, 1e-9};

  std::vector<Cell> cells;
  for (const double mu : {2.0, 4.0}) {
    for (const std::size_t k : {2u, 4u, 6u, 8u, 10u, 12u}) {
      cells.push_back({k, mu});
    }
  }

  const auto rows = parallel_map(cells, [&](const Cell& cell) {
    BestFitAdversaryConfig config;
    config.k = cell.k;
    config.mu = cell.mu;
    const auto built = build_bestfit_adversary(config);
    const SimulationResult bf = simulate(built.instance, "best-fit", model);
    const SimulationResult ff = simulate(built.instance, "first-fit", model);
    const OptTotalResult opt = estimate_opt_total(built.instance, model);
    Row row;
    row.cell = cell;
    row.iterations = built.iterations;
    row.items = built.instance.size();
    row.measured_bf = bf.total_cost / opt.upper_cost;
    row.measured_ff = ff.total_cost / opt.upper_cost;
    row.half_k = static_cast<double>(cell.k) / 2.0;
    return row;
  });

  Table table({"mu", "k", "n", "items", "BF/OPT", "k/2 target", "FF/OPT (same trace)"});
  for (const Row& row : rows) {
    table.add_row({Table::num(row.cell.mu, 0), Table::integer((long long)row.cell.k),
                   Table::integer((long long)row.iterations),
                   Table::integer((long long)row.items),
                   Table::num(row.measured_bf, 3), Table::num(row.half_k, 1),
                   Table::num(row.measured_ff, 3)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: BF/OPT >= k/2 and growing linearly in k at\n"
               "fixed mu (Best Fit has NO bounded competitive ratio), while\n"
               "First Fit on the very same traces stays flat and cheap.\n";
  return 0;
}
