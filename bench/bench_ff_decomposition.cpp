// E8 — Figures 4-8 + Table 2: the First Fit proof machinery, measured.
//
// Runs First Fit over assorted workloads, rebuilds the Section 4.3
// decomposition, machine-checks Features (f.1)-(f.5), Lemmas 1-5 and
// inequalities (8)/(10)/(14), and reports how tight inequality (10) — the
// heart of Theorems 4-5 — is in practice.
#include <iostream>

#include "analysis/ff_decomposition.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/cloud_gaming.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Job {
  std::string label;
  dbp::Instance instance;
};

struct Row {
  std::string label;
  std::size_t bins;
  std::size_t sub_periods;
  std::size_t joints;
  std::size_t singles;
  std::size_t non_intersecting;
  double ff_total;
  double bound10;
  bool all_ok;
  std::string first_violation;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E8", "First Fit decomposition instrumentation",
                "Figures 4-8 + Table 2: proof objects on real traces");
  const CostModel model{1.0, 1.0, 1e-9};

  std::vector<Job> jobs;
  for (const double mu : {1.0, 4.0, 8.0}) {
    for (const std::uint64_t seed : {1u, 2u}) {
      RandomInstanceConfig config;
      config.item_count = 1200;
      config.arrival.rate = 15.0;
      config.duration.max_length = mu;
      config.size.min_fraction = 0.05;
      config.size.max_fraction = 0.6;
      jobs.push_back({strfmt("random mu=%g seed=%llu", mu,
                             static_cast<unsigned long long>(seed)),
                      generate_random_instance(config, seed)});
    }
  }
  {
    const auto built = build_anyfit_adversary({.k = 16, .mu = 8.0});
    jobs.push_back({"thm1 adversary k=16 mu=8", built.instance});
  }
  {
    CloudGamingConfig config;
    config.horizon_hours = 24.0;
    config.peak_arrivals_per_minute = 1.5;
    jobs.push_back({"cloud gaming 24h",
                    generate_cloud_gaming_trace(config, 9).instance});
  }

  const auto rows = parallel_map(jobs, [&](const Job& job) {
    const SimulationResult result = simulate(job.instance, "first-fit", model);
    const FFDecomposition d = decompose_first_fit(job.instance, result);
    const DecompositionReport report =
        verify_ff_decomposition(job.instance, result, d, model);
    Row row;
    row.label = job.label;
    row.bins = result.bins_opened;
    row.sub_periods = d.sub_periods.size();
    row.joints = d.joint_period_count;
    row.singles = d.single_period_count;
    row.non_intersecting = d.non_intersecting_count;
    row.ff_total = d.ff_total;
    row.bound10 = d.cost_bound(1.0);
    row.all_ok = report.all_ok();
    row.first_violation =
        report.violations.empty() ? "-" : report.violations.front();
    return row;
  });

  Table table({"trace", "bins", "I_{i,j}", "joint |J|", "single |S|", "|U|",
               "FF_total", "ineq(10) bound", "tightness", "invariants"});
  for (const Row& row : rows) {
    table.add_row({row.label, Table::integer((long long)row.bins),
                   Table::integer((long long)row.sub_periods),
                   Table::integer((long long)row.joints),
                   Table::integer((long long)row.singles),
                   Table::integer((long long)row.non_intersecting),
                   Table::num(row.ff_total, 1), Table::num(row.bound10, 1),
                   Table::num(row.ff_total / row.bound10, 3),
                   row.all_ok ? "all pass" : row.first_violation});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every trace passes all machine-checked proof\n"
               "invariants (Features f.1-f.5, Lemmas 1-5, inequalities 8/10/14);\n"
               "tightness << 1 shows how much slack Theorem 4/5's constants\n"
               "carry on non-adversarial workloads.\n";
  return 0;
}
