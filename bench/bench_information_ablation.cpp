// E12 — ablation: what does each capability buy? (extension, not in paper)
//
// Four information/capability regimes on identical workloads:
//   1. online, mu unknown            (first-fit, modified-first-fit k=8)
//   2. semi-online, mu known         (modified-first-fit k=mu+7, paper §4.4)
//   3. clairvoyant departures        (align-departures / min-extension fit)
//   4. migration allowed             (FFD repack at every event)
// against the certified OPT_total. Quantifies the paper's modelling choices:
// how much of the online gap comes from not knowing departures vs not being
// able to migrate.
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "opt/repack_baseline.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  double mu;
  std::uint64_t seed;
};

struct CellResult {
  double ff, mff, mff_known, align, min_ext, repack;
  std::uint64_t migrations;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E12", "Information & capability ablation",
                "extension: online vs known-mu vs clairvoyant vs migration");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<double> mus{1.0, 4.0, 16.0};
  const std::vector<std::uint64_t> seeds{2, 4, 6, 8, 10, 12};

  std::vector<Cell> cells;
  for (const double mu : mus) {
    for (const std::uint64_t seed : seeds) cells.push_back({mu, seed});
  }

  const auto results = parallel_map(cells, [&](const Cell& cell) {
    RandomInstanceConfig config;
    config.item_count = 800;
    config.arrival.rate = 10.0;
    config.duration.max_length = cell.mu;
    config.size.min_fraction = 0.05;
    config.size.max_fraction = 0.6;
    const Instance instance = generate_random_instance(config, cell.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 20'000;
    const InstanceEvaluation evaluation = evaluate_algorithms(
        instance,
        {"first-fit", "modified-first-fit", "modified-first-fit-known-mu",
         "align-departures-fit", "min-extension-fit"},
        model, options);
    const RepackBaselineResult repack = run_repack_baseline(instance, model);
    CellResult r;
    r.ff = evaluation.row("first-fit").ratio.upper;
    r.mff = evaluation.row("modified-first-fit").ratio.upper;
    r.mff_known = evaluation.row("modified-first-fit-known-mu").ratio.upper;
    r.align = evaluation.row("align-departures-fit").ratio.upper;
    r.min_ext = evaluation.row("min-extension-fit").ratio.upper;
    r.repack = repack.total_cost / evaluation.opt.lower_cost;
    r.migrations = repack.migrations;
    return r;
  });

  Table table({"mu", "online FF", "online MFF", "semi-online MFF(mu)",
               "clairvoyant align", "clairvoyant min-ext",
               "migration (FFD repack)", "migrations/item"});
  std::size_t index = 0;
  for (const double mu : mus) {
    std::vector<double> ff, mff, known, align, min_ext, repack, migr;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      const CellResult& r = results[index++];
      ff.push_back(r.ff);
      mff.push_back(r.mff);
      known.push_back(r.mff_known);
      align.push_back(r.align);
      min_ext.push_back(r.min_ext);
      repack.push_back(r.repack);
      migr.push_back(static_cast<double>(r.migrations) / 800.0);
    }
    table.add_row({Table::num(mu, 0), Table::num(summarize(ff).mean, 3),
                   Table::num(summarize(mff).mean, 3),
                   Table::num(summarize(known).mean, 3),
                   Table::num(summarize(align).mean, 3),
                   Table::num(summarize(min_ext).mean, 3),
                   Table::num(summarize(repack).mean, 3),
                   Table::num(summarize(migr).mean, 1)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: mean cost ratio falls monotonically with\n"
               "capability (online -> clairvoyant -> migration), but the\n"
               "migration column needs ~10+ moves per item — the overhead the\n"
               "paper's no-migration model refuses to pay (Section 1).\n";
  return 0;
}
