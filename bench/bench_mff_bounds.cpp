// E6 — Section 4.4: Modified First Fit's improved bounds.
//
//   mu unknown, k = 8:     MFF/OPT <= 8/7*mu + 55/7
//   mu known,  k = mu+7:   MFF/OPT <= mu + 8
//
// Also reports plain FF side by side, and an ablation over the MFF split
// parameter k (the paper sets k = 8 when mu is unknown; the sweep shows why).
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  double mu;
  std::uint64_t seed;
};

dbp::Instance make_instance(double mu, std::uint64_t seed) {
  dbp::RandomInstanceConfig config;
  config.item_count = 900;
  config.arrival.rate = 10.0;
  config.duration.max_length = mu;
  config.size.min_fraction = 0.02;
  config.size.max_fraction = 1.0;
  return dbp::generate_random_instance(config, seed);
}

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E6", "Modified First Fit bounds",
                "Section 4.4: MFF <= 8/7*mu + 55/7 (mu unknown), <= mu+8 (known)");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<double> mus{1.0, 2.0, 4.0, 8.0, 16.0};
  const std::vector<std::uint64_t> seeds{10, 20, 30, 40, 50, 60};

  std::vector<Cell> cells;
  for (const double mu : mus) {
    for (const std::uint64_t seed : seeds) cells.push_back({mu, seed});
  }

  struct CellResult {
    double ff, mff, mff_known;
  };
  const auto results = parallel_map(cells, [&](const Cell& cell) {
    const Instance instance = make_instance(cell.mu, cell.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 20'000;
    const InstanceEvaluation evaluation = evaluate_algorithms(
        instance,
        {"first-fit", "modified-first-fit", "modified-first-fit-known-mu"},
        model, options);
    return CellResult{evaluation.row("first-fit").ratio.upper,
                      evaluation.row("modified-first-fit").ratio.upper,
                      evaluation.row("modified-first-fit-known-mu").ratio.upper};
  });

  Table table({"mu", "FF worst", "MFF(k=8) worst", "MFF(known mu) worst",
               "bound 8mu/7+55/7", "bound mu+8", "bound FF 2mu+13"});
  std::size_t index = 0;
  for (const double mu : mus) {
    std::vector<double> ff, mff, known;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      ff.push_back(results[index].ff);
      mff.push_back(results[index].mff);
      known.push_back(results[index].mff_known);
      ++index;
    }
    table.add_row({Table::num(mu, 0), Table::num(summarize(ff).max, 3),
                   Table::num(summarize(mff).max, 3),
                   Table::num(summarize(known).max, 3),
                   Table::num(8.0 / 7.0 * mu + 55.0 / 7.0, 2),
                   Table::num(mu + 8.0, 0), Table::num(2.0 * mu + 13.0, 0)});
  }
  table.print(std::cout);

  // Ablation: the MFF split parameter k on a fixed workload. The paper's
  // analysis minimizes max{k, (mu+6)/(1-1/k)}; k = 8 balances the two terms
  // when mu is unknown.
  std::cout << "\nAblation: MFF split parameter k (mu = 8 workload)\n\n";
  const std::vector<double> ks{2.0, 4.0, 8.0, 15.0, 32.0};
  const auto ablation = parallel_map(ks, [&](double k) {
    std::vector<double> ratios;
    for (const std::uint64_t seed : seeds) {
      const Instance instance = make_instance(8.0, seed);
      EvaluateOptions options;
      options.packer.mff_k = k;
      options.opt.bin_count.exact.node_budget = 20'000;
      const InstanceEvaluation evaluation =
          evaluate_algorithms(instance, {"modified-first-fit"}, model, options);
      ratios.push_back(evaluation.algorithms[0].ratio.upper);
    }
    return summarize(ratios);
  });
  Table ablation_table({"k", "worst MFF/OPT", "mean MFF/OPT",
                        "analysis bound max{k,(mu+6)/(1-1/k)}+1"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const double k = ks[i];
    const double bound =
        std::max(k, (8.0 + 6.0) / (1.0 - 1.0 / k)) + 1.0;
    ablation_table.add_row({Table::num(k, 0), Table::num(ablation[i].max, 3),
                            Table::num(ablation[i].mean, 3),
                            Table::num(bound, 2)});
  }
  ablation_table.print(std::cout);
  std::cout << "\nExpected shape: MFF bounds dominate FF's 2mu+13 for large mu;\n"
               "the known-mu variant has the best slope (exactly mu+8). The\n"
               "ablation shows measured cost is least sensitive near moderate k\n"
               "— consistent with the paper's k = 8 choice.\n";
  return 0;
}
