// E17 — warm-pool provisioning tradeoff (extension).
//
// Section 1 motivates renting game servers on demand, but VMs boot in
// minutes. Sweep the warm-spare target and chart the classic tradeoff:
// bigger pools cost idle dollars, smaller ones cost player waiting time.
#include <iostream>

#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "gaming/provisioner.hpp"
#include "workload/cloud_gaming.hpp"

int main() {
  using namespace dbp;
  bench::banner("E17", "Warm-pool provisioning tradeoff",
                "extension: boot-delay latency vs idle-spare cost");
  const ServerSpec spec{1.0, 1.2};
  const double boot_minutes = 3.0;

  CloudGamingConfig config;
  config.horizon_hours = 48.0;
  config.peak_arrivals_per_minute = 2.0;
  const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 4242);
  const SimulationResult dispatch =
      simulate(trace.instance, "modified-first-fit", spec.to_cost_model());
  std::cout << strfmt(
      "%zu sessions over 48h, %zu servers opened, boot time %.0f min\n\n",
      trace.instance.size(), dispatch.bins_opened, boot_minutes);

  const std::vector<std::size_t> warm_targets{0, 1, 2, 3, 4, 6, 8, 12};
  const auto reports = parallel_map(warm_targets, [&](std::size_t warm) {
    return analyze_provisioning(trace.instance, dispatch, spec,
                                ProvisioningPolicy{boot_minutes, warm});
  });

  Table table({"warm spares", "total bill $", "pool idle $", "cold starts",
               "boots", "mean wait (min)", "max wait (min)"});
  for (std::size_t i = 0; i < warm_targets.size(); ++i) {
    const ProvisioningReport& report = reports[i];
    table.add_row({Table::integer((long long)warm_targets[i]),
                   Table::num(report.total_dollars(), 2),
                   Table::num(report.warm_pool_dollars, 2),
                   Table::integer((long long)report.cold_starts),
                   Table::integer((long long)report.boots),
                   Table::num(report.wait_minutes.mean, 3),
                   Table::num(report.wait_minutes.max, 2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: cold starts and waits fall monotonically in\n"
               "the pool size while the idle bill grows linearly; a few warm\n"
               "spares (2-4) buy away nearly all boot latency for a small\n"
               "premium — the operational answer the MinTotal model abstracts\n"
               "away.\n";
  return 0;
}
