// E3 — Theorem 3: First Fit on large items (s(r) >= W/k) costs at most
// k * OPT_total.
//
// Sweeps k and mu over random large-item workloads and reports the measured
// worst ratio against the k bound (and the looser 2*mu+13 general bound for
// context).
#include <algorithm>
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  double k;   // size class parameter: sizes in [W/k, W]
  double mu;
  std::uint64_t seed;
};

struct Row {
  double k;
  double mu;
  double worst_ratio;  // max over seeds of FF / OPT (upper estimate)
  double mean_ratio;
  double bound;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E3", "First Fit on large items",
                "Theorem 3: FF_total <= k * OPT_total when all s(r) >= W/k");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};

  std::vector<Cell> cells;
  for (const double k : {2.0, 4.0, 8.0}) {
    for (const double mu : {1.0, 4.0, 16.0}) {
      for (const std::uint64_t seed : seeds) cells.push_back({k, mu, seed});
    }
  }

  const auto ratios = parallel_map(cells, [&](const Cell& cell) {
    RandomInstanceConfig config;
    config.item_count = 800;
    config.arrival.rate = 6.0;
    config.duration.max_length = cell.mu;
    config.size.min_fraction = 1.0 / cell.k;  // all items "large"
    config.size.max_fraction = 1.0;
    const Instance instance = generate_random_instance(config, cell.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 50'000;
    const InstanceEvaluation evaluation =
        evaluate_algorithms(instance, {"first-fit"}, model, options);
    return evaluation.algorithms[0].ratio.upper;  // conservative upper estimate
  });

  Table table({"k (sizes >= W/k)", "mu", "worst FF/OPT", "mean FF/OPT",
               "Thm 3 bound k", "general bound 2mu+13"});
  std::size_t index = 0;
  for (const double k : {2.0, 4.0, 8.0}) {
    for (const double mu : {1.0, 4.0, 16.0}) {
      std::vector<double> cell_ratios;
      for (std::size_t s = 0; s < seeds.size(); ++s) {
        cell_ratios.push_back(ratios[index++]);
      }
      const SummaryStats stats = summarize(cell_ratios);
      table.add_row({Table::num(k, 0), Table::num(mu, 0),
                     Table::num(stats.max, 3), Table::num(stats.mean, 3),
                     Table::num(k, 0), Table::num(2.0 * mu + 13.0, 0)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: worst FF/OPT stays below the Theorem 3 bound\n"
               "k for every (k, mu) cell, independent of mu — large items make\n"
               "First Fit's cost a pure volume effect (proof via bound (b.3)).\n";
  return 0;
}
