// E1 — Theorem 1 / Figure 2: the Any Fit lower-bound construction.
//
// Reproduces equation (1): AF_total / OPT_total = k*mu / (k + mu - 1),
// which approaches mu as k grows, for every Any Fit family member.
#include <iostream>

#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "analysis/adaptive_adversary.hpp"
#include "workload/adversary_anyfit.hpp"

namespace {

struct Cell {
  std::size_t k;
  double mu;
};

struct Row {
  Cell cell;
  double predicted;
  double measured_ff;
  double measured_bf;
  double opt_cost;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E1", "Any Fit lower bound construction",
                "Theorem 1 / Figure 2: ratio = k*mu/(k+mu-1) -> mu");
  const CostModel model{1.0, 1.0, 1e-9};

  std::vector<Cell> cells;
  for (const double mu : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
      cells.push_back({k, mu});
    }
  }

  const auto rows = parallel_map(cells, [&](const Cell& cell) {
    const auto built =
        build_anyfit_adversary({.k = cell.k, .mu = cell.mu, .delta = 1.0,
                                .bin_capacity = 1.0});
    const SimulationResult ff = simulate(built.instance, "first-fit", model);
    const SimulationResult bf = simulate(built.instance, "best-fit", model);
    const OptTotalResult opt = estimate_opt_total(built.instance, model);
    Row row;
    row.cell = cell;
    row.predicted = built.predicted_ratio;
    row.measured_ff = ff.total_cost / opt.upper_cost;
    row.measured_bf = bf.total_cost / opt.upper_cost;
    row.opt_cost = opt.upper_cost;
    return row;
  });

  Table table({"mu", "k", "predicted k*mu/(k+mu-1)", "measured FF/OPT",
               "measured BF/OPT", "OPT_total", "ratio/mu"});
  for (const Row& row : rows) {
    table.add_row({Table::num(row.cell.mu, 0), Table::integer((long long)row.cell.k),
                   Table::num(row.predicted, 4), Table::num(row.measured_ff, 4),
                   Table::num(row.measured_bf, 4), Table::num(row.opt_cost, 2),
                   Table::num(row.measured_ff / row.cell.mu, 4)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: measured == predicted exactly (OPT is exact\n"
               "on equal-size items); ratio/mu -> 1 as k grows, proving the\n"
               "competitive ratio of Any Fit packing is at least mu.\n";

  // --- The footnote to Theorem 1: the bound applies to ANY online
  // algorithm. The adaptive adversary probes each target's actual packing
  // before scheduling departures, so no Any Fit assumption is needed.
  std::cout << "\nAdaptive adversary (Theorem 1 footnote): every online "
               "algorithm, k = 16, mu = 8\n\n";
  std::vector<std::string> targets = all_algorithm_names();
  const auto adaptive_rows = parallel_map(targets, [&](const std::string& name) {
    PackerOptions options;
    options.known_mu = 8.0;
    const AdaptiveAdversaryOutcome outcome = run_adaptive_adversary(
        [&]() { return make_packer(name, model, options); },
        {.k = 16, .mu = 8.0});
    return std::make_pair(outcome.probe_bins, outcome.ratio);
  });
  Table adaptive_table({"algorithm", "bins forced", "measured ratio",
                        "construction k*mu/(k+mu-1)"});
  for (std::size_t i = 0; i < targets.size(); ++i) {
    adaptive_table.add_row(
        {targets[i], Table::integer((long long)adaptive_rows[i].first),
         Table::num(adaptive_rows[i].second, 4),
         Table::num(16.0 * 8.0 / (16.0 + 8.0 - 1.0), 4)});
  }
  adaptive_table.print(std::cout);
  std::cout << "\nExpected shape: every algorithm (Any Fit or not) is forced\n"
               "to at least the construction ratio — the mu lower bound is\n"
               "universal for online MinTotal DBP.\n";
  return 0;
}
