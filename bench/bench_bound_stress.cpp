// E14 — randomized bound-stress search (extension).
//
// Samples hundreds of random workload configurations (size regimes, arrival
// processes, duration shapes, mu) and tracks the worst measured ratio per
// algorithm. A cheap falsification harness: if any proven bound were
// implemented wrong — in the algorithms, the simulator, or the OPT
// estimator — a violation would surface here as "worst > bound".
#include <iostream>

#include "analysis/bounds.hpp"
#include "analysis/ratio.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "workload/random_instance.hpp"
#include "workload/rng.hpp"

namespace {

struct Probe {
  dbp::RandomInstanceConfig config;
  std::uint64_t seed;
  std::string label;
};

Probe sample_probe(dbp::Rng& rng, std::uint64_t index) {
  using namespace dbp;
  Probe probe;
  probe.seed = index * 7919 + 13;
  RandomInstanceConfig& config = probe.config;
  config.item_count = 400 + rng.uniform_int(0, 400);
  const double mu = std::exp(rng.uniform(0.0, std::log(32.0)));
  config.duration.max_length = mu;
  config.duration.kind = static_cast<DurationModel::Kind>(rng.uniform_int(0, 4));
  config.duration.log_mean = rng.uniform(-0.5, 1.0);
  config.duration.pareto_shape = rng.uniform(1.1, 2.5);
  if (rng.bernoulli(0.3)) {
    config.arrival.kind = ArrivalModel::Kind::kBursts;
    config.arrival.burst_size = 4 + rng.uniform_int(0, 28);
    config.arrival.burst_gap = rng.uniform(0.2, mu);
  } else {
    config.arrival.rate = rng.uniform(2.0, 40.0);
  }
  const double lo = rng.uniform(0.01, 0.3);
  config.size.min_fraction = lo;
  config.size.max_fraction = rng.uniform(lo, 1.0);
  probe.label = strfmt("mu=%.1f n=%zu", mu, config.item_count);
  return probe;
}

struct WorstCase {
  double ratio = 0.0;
  std::string label;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E14", "Randomized bound-stress search",
                "extension: hunt for bound violations over random configs");
  const CostModel model{1.0, 1.0, 1e-9};
  constexpr std::size_t kProbes = 160;

  Rng rng(20140623);  // SPAA'14 conference date
  std::vector<Probe> probes;
  probes.reserve(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i) probes.push_back(sample_probe(rng, i));

  const std::vector<std::string> algorithms = {
      "first-fit", "best-fit", "modified-first-fit",
      "modified-first-fit-known-mu", "next-fit", "harmonic-first-fit"};

  struct ProbeResult {
    std::vector<double> ratios;  // by algorithm index
    double mu;
    std::string label;
  };
  const auto results = parallel_map(probes, [&](const Probe& probe) {
    const Instance instance = generate_random_instance(probe.config, probe.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 5'000;
    const InstanceEvaluation evaluation =
        evaluate_algorithms(instance, algorithms, model, options);
    ProbeResult result;
    result.mu = evaluation.metrics.mu;
    result.label = probe.label;
    for (const std::string& name : algorithms) {
      result.ratios.push_back(evaluation.row(name).ratio.upper);
    }
    return result;
  });

  Table table({"algorithm", "worst ratio found", "at workload",
               "bound at that mu", "violations"});
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    WorstCase worst;
    std::size_t violations = 0;
    double bound_at_worst = 0.0;
    for (const ProbeResult& result : results) {
      const auto bound = proven_bound_for(algorithms[a], result.mu);
      if (bound && result.ratios[a] > *bound + 1e-9) ++violations;
      if (result.ratios[a] > worst.ratio) {
        worst.ratio = result.ratios[a];
        worst.label = result.label;
        bound_at_worst = bound.value_or(0.0);
      }
    }
    table.add_row({algorithms[a], Table::num(worst.ratio, 3), worst.label,
                   bound_at_worst > 0.0 ? Table::num(bound_at_worst, 2) : "-",
                   Table::integer(static_cast<long long>(violations))});
  }
  table.print(std::cout);
  std::cout << strfmt("\n%zu random configurations probed; the violations\n"
                      "column must read 0 everywhere. Worst ratios cluster at\n"
                      "low mu + bursty arrivals — churn, not interval spread,\n"
                      "drives typical-case inefficiency.\n",
                      kProbes);
  return 0;
}
