// E18 — numerics ablation (extension): why the fit tolerance exists.
//
// DESIGN.md's semantics section fixes feasibility at sum <= W + tolerance.
// This ablation shows the design point: with tolerance 0, floating-point
// rounding breaks the exact-fill packings the paper's constructions rely
// on (k items of size W/k no longer share a bin for non-dyadic k), while
// any tolerance from 1e-12 to 1e-6 reproduces identical results — the
// choice of 1e-9 sits in a wide insensitive plateau.
#include <iostream>

#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "opt/opt_total.hpp"
#include "sim/simulator.hpp"
#include "workload/adversary_anyfit.hpp"
#include "workload/random_instance.hpp"

int main() {
  using namespace dbp;
  bench::banner("E18", "Numerics ablation",
                "fit tolerance sensitivity: exact fills vs fp rounding");

  // Theorem 1 construction with k = 10 (1/10 is not a binary fraction):
  // ten items of size 0.1 must exactly fill a unit bin.
  const auto built = build_anyfit_adversary({.k = 10, .mu = 4.0});

  Table table({"fit tolerance", "FF bins opened (construction)",
               "FF cost", "predicted bins", "verdict"});
  for (const double tolerance : {0.0, 1e-15, 1e-12, 1e-9, 1e-6}) {
    const CostModel model{1.0, 1.0, tolerance};
    const SimulationResult ff = simulate(built.instance, "first-fit", model);
    const bool matches = ff.bins_opened == 10;
    table.add_row({strfmt("%g", tolerance),
                   Table::integer((long long)ff.bins_opened),
                   Table::num(ff.total_cost, 2), "10",
                   matches ? "exact fills work" : "fp rounding leaks bins"});
  }
  table.print(std::cout);

  // Random mixed workload: results must be identical across the plateau.
  RandomInstanceConfig config;
  config.item_count = 800;
  config.arrival.rate = 10.0;
  config.duration.max_length = 6.0;
  const Instance random_instance = generate_random_instance(config, 8);
  std::cout << "\nrandom workload sensitivity (cost should be flat):\n\n";
  Table random_table({"fit tolerance", "FF cost", "BF cost", "bins (FF)"});
  for (const double tolerance : {1e-12, 1e-9, 1e-6}) {
    const CostModel model{1.0, 1.0, tolerance};
    const SimulationResult ff = simulate(random_instance, "first-fit", model);
    const SimulationResult bf = simulate(random_instance, "best-fit", model);
    random_table.add_row({strfmt("%g", tolerance), Table::num(ff.total_cost, 6),
                          Table::num(bf.total_cost, 6),
                          Table::integer((long long)ff.bins_opened)});
  }
  random_table.print(std::cout);
  std::cout << "\nExpected shape: tolerance 0 (and values below the fp noise\n"
               "floor) over-open bins on the construction; every tolerance in\n"
               "[1e-12, 1e-6] gives identical packings — 1e-9 is safely inside\n"
               "the plateau, far below any meaningful item size.\n";
  return 0;
}
