// E13 — classical DBP cross-check (paper Section 2, related work).
//
// The same runs scored under the *classical* dynamic bin packing objective
// (max bins ever open, Coffman-Garey-Johnson 1983):
//   * general items:       FF's classical ratio is in [2.75, 2.897];
//   * unit-fraction items: Any Fit is exactly 3-competitive (Chan-Lam-Wong).
// Our measured peak-bin ratios on random workloads must respect those
// classical bounds, tying the MinTotal library back to the literature the
// paper builds on — and showing that the two objectives rank algorithms
// differently.
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  bool unit_fractions;
  std::uint64_t seed;
};

struct CellResult {
  double ff_peak_ratio, bf_peak_ratio, nf_peak_ratio;
  double ff_total_ratio;
};

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E13", "Classical DBP (max-bins) cross-check",
                "Section 2: FF in [2.75, 2.897]; Any Fit = 3 on unit fractions");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6, 7, 8};

  std::vector<Cell> cells;
  for (const bool unit : {false, true}) {
    for (const std::uint64_t seed : seeds) cells.push_back({unit, seed});
  }

  const auto results = parallel_map(cells, [&](const Cell& cell) {
    RandomInstanceConfig config;
    config.item_count = 900;
    config.arrival.rate = 15.0;
    config.duration.max_length = 6.0;
    if (cell.unit_fractions) {
      config.size.kind = SizeModel::Kind::kDyadic;  // sizes 1/2 .. 1/32
      config.size.min_exponent = 1;
      config.size.max_exponent = 5;
    } else {
      config.size.min_fraction = 0.03;
      config.size.max_fraction = 0.95;
    }
    const Instance instance = generate_random_instance(config, cell.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 20'000;
    const InstanceEvaluation evaluation = evaluate_algorithms(
        instance, {"first-fit", "best-fit", "next-fit"}, model, options);
    const double opt_peak = static_cast<double>(evaluation.opt.max_bins_lower);
    CellResult r;
    r.ff_peak_ratio =
        static_cast<double>(evaluation.row("first-fit").max_open_bins) / opt_peak;
    r.bf_peak_ratio =
        static_cast<double>(evaluation.row("best-fit").max_open_bins) / opt_peak;
    r.nf_peak_ratio =
        static_cast<double>(evaluation.row("next-fit").max_open_bins) / opt_peak;
    r.ff_total_ratio = evaluation.row("first-fit").ratio.upper;
    return r;
  });

  Table table({"items", "FF peak ratio (worst)", "BF peak ratio (worst)",
               "NF peak ratio (worst)", "FF MinTotal ratio (worst)",
               "classical FF bound"});
  std::size_t index = 0;
  for (const bool unit : {false, true}) {
    std::vector<double> ff, bf, nf, total;
    for (std::size_t s = 0; s < seeds.size(); ++s) {
      ff.push_back(results[index].ff_peak_ratio);
      bf.push_back(results[index].bf_peak_ratio);
      nf.push_back(results[index].nf_peak_ratio);
      total.push_back(results[index].ff_total_ratio);
      ++index;
    }
    table.add_row({unit ? "dyadic (unit fractions)" : "general",
                   Table::num(summarize(ff).max, 3),
                   Table::num(summarize(bf).max, 3),
                   Table::num(summarize(nf).max, 3),
                   Table::num(summarize(total).max, 3),
                   unit ? "3 (Any Fit, Chan et al.)" : "2.897 (Coffman et al.)"});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: measured peak-bin ratios sit below the\n"
               "classical worst-case constants; the MinTotal column shows the\n"
               "total-cost objective is the gentler one on random traffic —\n"
               "bins are over-provisioned briefly (peak) but not for long\n"
               "(integral), which is why the paper's cost model needed its\n"
               "own analysis.\n";
  return 0;
}
