// Shared helpers for the experiment binaries.
#pragma once

#include <iostream>
#include <string>

namespace dbp::bench {

/// Prints the standard experiment banner so bench output is self-describing
/// when all binaries run back to back.
inline void banner(const std::string& experiment_id, const std::string& title,
                   const std::string& paper_artifact) {
  std::cout << "\n=== " << experiment_id << ": " << title << " ===\n"
            << "paper artifact: " << paper_artifact << "\n\n";
}

}  // namespace dbp::bench
