// E10 — cross-algorithm mu sweep: the summary comparison table.
//
// For each mu, every algorithm's worst and mean cost ratio over a pool of
// random mixed workloads, next to its proven bound (where one exists).
#include <iostream>

#include "analysis/ratio.hpp"
#include "analysis/stats.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "workload/random_instance.hpp"

namespace {

struct Cell {
  double mu;
  std::uint64_t seed;
};

std::string bound_for(const std::string& algorithm, double mu) {
  using dbp::Table;
  if (algorithm == "first-fit") return Table::num(2.0 * mu + 13.0, 1);
  if (algorithm == "modified-first-fit") {
    return Table::num(8.0 / 7.0 * mu + 55.0 / 7.0, 1);
  }
  if (algorithm == "modified-first-fit-known-mu") return Table::num(mu + 8.0, 1);
  if (algorithm == "best-fit") return "unbounded";
  return "-";
}

}  // namespace

int main() {
  using namespace dbp;
  bench::banner("E10", "Cross-algorithm mu sweep",
                "summary: measured ratios vs proven bounds, all algorithms");
  const CostModel model{1.0, 1.0, 1e-9};
  const std::vector<double> mus{1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  const std::vector<std::uint64_t> seeds{7, 14, 21, 28, 35};

  std::vector<Cell> cells;
  for (const double mu : mus) {
    for (const std::uint64_t seed : seeds) cells.push_back({mu, seed});
  }

  const auto evaluations = parallel_map(cells, [&](const Cell& cell) {
    RandomInstanceConfig config;
    config.item_count = 700;
    config.arrival.rate = 10.0;
    config.duration.max_length = cell.mu;
    config.size.min_fraction = 0.02;
    config.size.max_fraction = 0.9;
    const Instance instance = generate_random_instance(config, cell.seed);
    EvaluateOptions options;
    options.opt.bin_count.exact.node_budget = 20'000;
    return evaluate_algorithms(instance, all_algorithm_names(), model, options);
  });

  for (const double mu : mus) {
    std::cout << "mu = " << mu << "\n";
    Table table({"algorithm", "worst ratio", "mean ratio", "mean bins opened",
                 "proven bound"});
    for (const std::string& name : all_algorithm_names()) {
      std::vector<double> ratios;
      std::vector<double> bins;
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].mu != mu) continue;
        const AlgorithmEvaluation& eval = evaluations[i].row(name);
        ratios.push_back(eval.ratio.upper);
        bins.push_back(static_cast<double>(eval.bins_opened));
      }
      table.add_row({name, Table::num(summarize(ratios).max, 3),
                     Table::num(summarize(ratios).mean, 3),
                     Table::num(summarize(bins).mean, 1), bound_for(name, mu)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: on random traffic all Any Fit members are\n"
               "close; the paper's contribution is the *worst case*: FF and\n"
               "MFF carry mu-linear guarantees, BF does not (Theorem 2), and\n"
               "next-fit pays a visible premium even on random traffic.\n";
  return 0;
}
