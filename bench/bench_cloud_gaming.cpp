// E9 — Section 1 motivation: the cloud-gaming request dispatching study.
//
// A synthetic 24h/72h session trace (diurnal arrivals, catalog of per-game
// GPU fractions) is dispatched by every algorithm; the table reports rental
// bills in dollars against the certified minimum possible bill.
#include <iostream>

#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "gaming/dispatcher.hpp"

int main() {
  using namespace dbp;
  bench::banner("E9", "Cloud gaming dispatch cost study",
                "Section 1: game-server rental cost across dispatch policies");
  const ServerSpec spec{1.0, 1.2};  // $1.2 per server-hour (GPU VM ballpark)

  for (const double hours : {24.0, 72.0}) {
    CloudGamingConfig config;
    config.horizon_hours = hours;
    config.peak_arrivals_per_minute = 2.0;
    config.diurnal_trough_ratio = 0.2;
    const CloudGamingTrace trace = generate_cloud_gaming_trace(config, 2014);

    const DispatchComparison comparison = compare_dispatch_algorithms(
        trace, all_algorithm_names(), spec);

    std::cout << strfmt(
        "horizon %.0fh: %zu sessions, mu = %.1f (session lengths %.0f-%.0f "
        "min), demand %.1f GPU-hours\n",
        hours, trace.instance.size(), comparison.metrics.mu,
        comparison.metrics.min_interval_length,
        comparison.metrics.max_interval_length,
        comparison.metrics.total_demand / 60.0);
    std::cout << strfmt(
        "minimum possible bill (certified): $%.2f .. $%.2f\n\n",
        comparison.optimal_dollars_lower, comparison.optimal_dollars_upper);

    Table table({"dispatch policy", "bill $", "overspend vs OPT", "servers rented",
                 "peak fleet", "utilization"});
    for (const DispatchReport& report : comparison.reports) {
      table.add_row({report.algorithm, Table::num(report.total_dollars, 2),
                     Table::num(report.overspend.upper, 3),
                     Table::integer((long long)report.servers_rented),
                     Table::integer(report.peak_servers),
                     Table::num(report.utilization, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: first-fit and modified-first-fit track the\n"
               "optimum closely (bounded overspend per Theorems 4-5 / Sec 4.4);\n"
               "next-fit wastes servers; best-fit is competitive on benign\n"
               "diurnal traffic even though it is provably unbounded in the\n"
               "worst case (Theorem 2) — the paper's reason to prefer FF/MFF.\n";
  return 0;
}
