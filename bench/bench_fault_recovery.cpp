// Experiment FR: cost inflation under server crashes.
//
// The paper (and the server-renting line of work after it) treats bins as
// perfectly reliable. This experiment quantifies what a crash actually
// costs each algorithm: a crashed bin stops accruing cost but its live
// items must be re-dispatched as fresh arrivals, breaking the packing the
// algorithm had built. We sweep Poisson crash rates and report the exact
// faulted/fault-free cost ratio per algorithm, plus the adversarial
// fullest-bin schedule as a worst-case anchor.
#include <iostream>
#include <vector>

#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "core/strfmt.hpp"
#include "sim/fault_sim.hpp"
#include "workload/fault_schedule.hpp"
#include "workload/random_instance.hpp"

int main() {
  using namespace dbp;
  bench::banner("FR", "Fault recovery: cost inflation vs crash rate",
                "new experiment (no paper analogue; bins assumed reliable)");

  RandomInstanceConfig config;
  config.item_count = 1200;
  config.arrival.rate = 10.0;
  config.duration.min_length = 0.5;
  config.duration.max_length = 6.0;
  const Instance instance = generate_random_instance(config, 7);
  const CostModel model{1.0, 1.0, 1e-9};
  const TimeInterval period = instance.packing_period();

  const std::vector<std::string> algorithms{"first-fit", "best-fit",
                                            "worst-fit", "modified-first-fit"};
  const std::vector<double> crash_rates{0.0, 0.005, 0.01, 0.02, 0.05, 0.1};

  std::cout << strfmt("%zu items over [%.2f, %.2f]; Poisson crashes, "
                      "fullest-bin target, one plan per rate\n\n",
                      instance.size(), period.begin, period.end);

  Table table({"crash rate", "algorithm", "crashes", "redispatched",
               "baseline cost", "faulted cost", "inflation"});
  for (std::size_t r = 0; r < crash_rates.size(); ++r) {
    const FaultPlan plan = make_poisson_fault_plan(
        period, crash_rates[r], 0.0, CrashTarget::kFullest, 17 + r);
    for (const std::string& algorithm : algorithms) {
      const FaultSimulationResult cell =
          simulate_with_faults(instance, algorithm, model, plan);
      table.add_row(
          {Table::num(crash_rates[r], 3), cell.faulted.algorithm,
           Table::integer(static_cast<long long>(cell.stats.crashes_landed)),
           Table::integer(
               static_cast<long long>(cell.stats.sessions_redispatched)),
           Table::num(cell.baseline.total_cost, 3),
           Table::num(cell.faulted.total_cost, 3),
           Table::num(cell.cost_inflation_ratio, 4)});
    }
  }
  table.print(std::cout);

  // Worst-case anchor: the adversary crashes the fullest bin 20 times.
  std::cout << "\nadversarial fullest-bin schedule (20 crashes):\n\n";
  const FaultPlan adversarial = make_fullest_bin_crash_plan(period, 20, 23);
  Table worst({"algorithm", "redispatched", "baseline cost", "faulted cost",
               "inflation"});
  for (const std::string& algorithm : algorithms) {
    const FaultSimulationResult cell =
        simulate_with_faults(instance, algorithm, model, adversarial);
    worst.add_row(
        {cell.faulted.algorithm,
         Table::integer(
             static_cast<long long>(cell.stats.sessions_redispatched)),
         Table::num(cell.baseline.total_cost, 3),
         Table::num(cell.faulted.total_cost, 3),
         Table::num(cell.cost_inflation_ratio, 4)});
  }
  worst.print(std::cout);
  return 0;
}
