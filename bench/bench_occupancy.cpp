// E15 — occupancy texture (extension): why the cost totals differ.
//
// For one representative workload per regime, the per-algorithm breakdown
// of paid vs used capacity, bin lifetimes and fleet busy time — the
// mechanism behind the MinTotal cost ranking.
#include <iostream>

#include "analysis/occupancy.hpp"
#include "exec/parallel_map.hpp"
#include "analysis/table.hpp"
#include "bench_common.hpp"
#include "workload/cloud_gaming.hpp"
#include "workload/random_instance.hpp"

int main() {
  using namespace dbp;
  bench::banner("E15", "Occupancy texture",
                "extension: utilization / lifetimes behind the cost totals");
  const CostModel model{1.0, 1.0, 1e-9};

  struct Workload {
    std::string label;
    Instance instance;
  };
  std::vector<Workload> workloads;
  {
    RandomInstanceConfig config;
    config.item_count = 1500;
    config.arrival.rate = 12.0;
    config.duration.max_length = 6.0;
    config.size.min_fraction = 0.05;
    config.size.max_fraction = 0.6;
    workloads.push_back({"random mixed", generate_random_instance(config, 33)});
  }
  {
    CloudGamingConfig config;
    config.horizon_hours = 24.0;
    config.peak_arrivals_per_minute = 1.5;
    workloads.push_back(
        {"cloud gaming 24h", generate_cloud_gaming_trace(config, 44).instance});
  }

  const std::vector<std::string> algorithms = {
      "first-fit", "best-fit", "worst-fit", "next-fit",
      "modified-first-fit", "harmonic-first-fit", "min-extension-fit"};

  for (const Workload& workload : workloads) {
    std::cout << workload.label << " (" << workload.instance.size()
              << " items)\n";
    const auto reports = parallel_map(algorithms, [&](const std::string& name) {
      PackerOptions options;
      options.known_mu = 1.0;
      const SimulationResult result =
          simulate(workload.instance, name, model, options);
      return std::make_pair(result.total_cost,
                            compute_occupancy(workload.instance, result, model));
    });
    Table table({"algorithm", "total cost", "utilization", "mean bin life",
                 "p95 bin life", "items/bin", "busy fraction"});
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const auto& [cost, occ] = reports[a];
      table.add_row({algorithms[a], Table::num(cost, 1),
                     Table::num(occ.utilization, 3),
                     Table::num(occ.bin_lifetime.mean, 2),
                     Table::num(occ.bin_lifetime.p95, 2),
                     Table::num(occ.items_per_bin.mean, 1),
                     Table::num(occ.busy_fraction, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Expected shape: cost ranks inversely with utilization;\n"
               "next-fit's waste shows as many short-lived, lightly-filled\n"
               "bins; the clairvoyant min-extension-fit buys its edge with\n"
               "shorter bin lifetimes at similar fill.\n";
  return 0;
}
